# Empty compiler generated dependencies file for streaming_imputation.
# This may be replaced when dependencies are built.
