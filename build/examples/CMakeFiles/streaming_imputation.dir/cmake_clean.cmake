file(REMOVE_RECURSE
  "CMakeFiles/streaming_imputation.dir/streaming_imputation.cpp.o"
  "CMakeFiles/streaming_imputation.dir/streaming_imputation.cpp.o.d"
  "streaming_imputation"
  "streaming_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
