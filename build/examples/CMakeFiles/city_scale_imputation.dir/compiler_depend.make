# Empty compiler generated dependencies file for city_scale_imputation.
# This may be replaced when dependencies are built.
