file(REMOVE_RECURSE
  "CMakeFiles/city_scale_imputation.dir/city_scale_imputation.cpp.o"
  "CMakeFiles/city_scale_imputation.dir/city_scale_imputation.cpp.o.d"
  "city_scale_imputation"
  "city_scale_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_scale_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
