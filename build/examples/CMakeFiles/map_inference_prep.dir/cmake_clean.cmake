file(REMOVE_RECURSE
  "CMakeFiles/map_inference_prep.dir/map_inference_prep.cpp.o"
  "CMakeFiles/map_inference_prep.dir/map_inference_prep.cpp.o.d"
  "map_inference_prep"
  "map_inference_prep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_inference_prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
