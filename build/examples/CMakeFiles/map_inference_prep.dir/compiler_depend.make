# Empty compiler generated dependencies file for map_inference_prep.
# This may be replaced when dependencies are built.
