file(REMOVE_RECURSE
  "CMakeFiles/fig09_sparseness.dir/fig09_sparseness.cc.o"
  "CMakeFiles/fig09_sparseness.dir/fig09_sparseness.cc.o.d"
  "fig09_sparseness"
  "fig09_sparseness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_sparseness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
