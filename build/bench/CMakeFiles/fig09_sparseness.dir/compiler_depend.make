# Empty compiler generated dependencies file for fig09_sparseness.
# This may be replaced when dependencies are built.
