file(REMOVE_RECURSE
  "libkamel_bench_common.a"
)
