# Empty dependencies file for kamel_bench_common.
# This may be replaced when dependencies are built.
