file(REMOVE_RECURSE
  "CMakeFiles/kamel_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/kamel_bench_common.dir/bench_common.cc.o.d"
  "libkamel_bench_common.a"
  "libkamel_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
