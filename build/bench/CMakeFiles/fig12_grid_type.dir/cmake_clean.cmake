file(REMOVE_RECURSE
  "CMakeFiles/fig12_grid_type.dir/fig12_grid_type.cc.o"
  "CMakeFiles/fig12_grid_type.dir/fig12_grid_type.cc.o.d"
  "fig12_grid_type"
  "fig12_grid_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_grid_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
