# Empty compiler generated dependencies file for fig12_grid_type.
# This may be replaced when dependencies are built.
