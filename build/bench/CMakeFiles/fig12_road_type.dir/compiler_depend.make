# Empty compiler generated dependencies file for fig12_road_type.
# This may be replaced when dependencies are built.
