file(REMOVE_RECURSE
  "CMakeFiles/fig12_road_type.dir/fig12_road_type.cc.o"
  "CMakeFiles/fig12_road_type.dir/fig12_road_type.cc.o.d"
  "fig12_road_type"
  "fig12_road_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_road_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
