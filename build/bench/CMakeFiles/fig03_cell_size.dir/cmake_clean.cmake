file(REMOVE_RECURSE
  "CMakeFiles/fig03_cell_size.dir/fig03_cell_size.cc.o"
  "CMakeFiles/fig03_cell_size.dir/fig03_cell_size.cc.o.d"
  "fig03_cell_size"
  "fig03_cell_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_cell_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
