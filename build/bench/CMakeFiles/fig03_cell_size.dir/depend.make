# Empty dependencies file for fig03_cell_size.
# This may be replaced when dependencies are built.
