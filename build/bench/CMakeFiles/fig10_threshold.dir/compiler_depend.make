# Empty compiler generated dependencies file for fig10_threshold.
# This may be replaced when dependencies are built.
