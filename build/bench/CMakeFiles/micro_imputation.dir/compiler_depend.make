# Empty compiler generated dependencies file for micro_imputation.
# This may be replaced when dependencies are built.
