file(REMOVE_RECURSE
  "CMakeFiles/micro_imputation.dir/micro_imputation.cc.o"
  "CMakeFiles/micro_imputation.dir/micro_imputation.cc.o.d"
  "micro_imputation"
  "micro_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
