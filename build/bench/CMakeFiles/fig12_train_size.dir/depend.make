# Empty dependencies file for fig12_train_size.
# This may be replaced when dependencies are built.
