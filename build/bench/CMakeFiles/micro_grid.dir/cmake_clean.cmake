file(REMOVE_RECURSE
  "CMakeFiles/micro_grid.dir/micro_grid.cc.o"
  "CMakeFiles/micro_grid.dir/micro_grid.cc.o.d"
  "micro_grid"
  "micro_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
