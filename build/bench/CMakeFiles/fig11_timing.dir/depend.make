# Empty dependencies file for fig11_timing.
# This may be replaced when dependencies are built.
