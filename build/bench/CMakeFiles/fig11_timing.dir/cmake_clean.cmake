file(REMOVE_RECURSE
  "CMakeFiles/fig11_timing.dir/fig11_timing.cc.o"
  "CMakeFiles/fig11_timing.dir/fig11_timing.cc.o.d"
  "fig11_timing"
  "fig11_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
