file(REMOVE_RECURSE
  "CMakeFiles/kamel_nn_tests.dir/mlm_bert_test.cc.o"
  "CMakeFiles/kamel_nn_tests.dir/mlm_bert_test.cc.o.d"
  "CMakeFiles/kamel_nn_tests.dir/nn_extra_test.cc.o"
  "CMakeFiles/kamel_nn_tests.dir/nn_extra_test.cc.o.d"
  "CMakeFiles/kamel_nn_tests.dir/nn_test.cc.o"
  "CMakeFiles/kamel_nn_tests.dir/nn_test.cc.o.d"
  "kamel_nn_tests"
  "kamel_nn_tests.pdb"
  "kamel_nn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_nn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
