# Empty dependencies file for kamel_nn_tests.
# This may be replaced when dependencies are built.
