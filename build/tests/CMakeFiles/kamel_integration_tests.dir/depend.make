# Empty dependencies file for kamel_integration_tests.
# This may be replaced when dependencies are built.
