file(REMOVE_RECURSE
  "CMakeFiles/kamel_integration_tests.dir/baselines_test.cc.o"
  "CMakeFiles/kamel_integration_tests.dir/baselines_test.cc.o.d"
  "CMakeFiles/kamel_integration_tests.dir/extensions_test.cc.o"
  "CMakeFiles/kamel_integration_tests.dir/extensions_test.cc.o.d"
  "CMakeFiles/kamel_integration_tests.dir/kamel_test.cc.o"
  "CMakeFiles/kamel_integration_tests.dir/kamel_test.cc.o.d"
  "CMakeFiles/kamel_integration_tests.dir/repository_test.cc.o"
  "CMakeFiles/kamel_integration_tests.dir/repository_test.cc.o.d"
  "CMakeFiles/kamel_integration_tests.dir/system_extra_test.cc.o"
  "CMakeFiles/kamel_integration_tests.dir/system_extra_test.cc.o.d"
  "kamel_integration_tests"
  "kamel_integration_tests.pdb"
  "kamel_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
