# Empty dependencies file for kamel_tests.
# This may be replaced when dependencies are built.
