
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/kamel_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/kamel_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/constraints_test.cc" "tests/CMakeFiles/kamel_tests.dir/constraints_test.cc.o" "gcc" "tests/CMakeFiles/kamel_tests.dir/constraints_test.cc.o.d"
  "/root/repo/tests/core_modules_test.cc" "tests/CMakeFiles/kamel_tests.dir/core_modules_test.cc.o" "gcc" "tests/CMakeFiles/kamel_tests.dir/core_modules_test.cc.o.d"
  "/root/repo/tests/detokenizer_test.cc" "tests/CMakeFiles/kamel_tests.dir/detokenizer_test.cc.o" "gcc" "tests/CMakeFiles/kamel_tests.dir/detokenizer_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/kamel_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/kamel_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/geo_test.cc" "tests/CMakeFiles/kamel_tests.dir/geo_test.cc.o" "gcc" "tests/CMakeFiles/kamel_tests.dir/geo_test.cc.o.d"
  "/root/repo/tests/grid_test.cc" "tests/CMakeFiles/kamel_tests.dir/grid_test.cc.o" "gcc" "tests/CMakeFiles/kamel_tests.dir/grid_test.cc.o.d"
  "/root/repo/tests/imputer_test.cc" "tests/CMakeFiles/kamel_tests.dir/imputer_test.cc.o" "gcc" "tests/CMakeFiles/kamel_tests.dir/imputer_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/kamel_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/kamel_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/kamel_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/kamel_tests.dir/sim_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/kamel_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/kamel_io.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/kamel_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kamel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kamel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bert/CMakeFiles/kamel_bert.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/kamel_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/kamel_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/kamel_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kamel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
