file(REMOVE_RECURSE
  "CMakeFiles/kamel_tests.dir/common_test.cc.o"
  "CMakeFiles/kamel_tests.dir/common_test.cc.o.d"
  "CMakeFiles/kamel_tests.dir/constraints_test.cc.o"
  "CMakeFiles/kamel_tests.dir/constraints_test.cc.o.d"
  "CMakeFiles/kamel_tests.dir/core_modules_test.cc.o"
  "CMakeFiles/kamel_tests.dir/core_modules_test.cc.o.d"
  "CMakeFiles/kamel_tests.dir/detokenizer_test.cc.o"
  "CMakeFiles/kamel_tests.dir/detokenizer_test.cc.o.d"
  "CMakeFiles/kamel_tests.dir/eval_test.cc.o"
  "CMakeFiles/kamel_tests.dir/eval_test.cc.o.d"
  "CMakeFiles/kamel_tests.dir/geo_test.cc.o"
  "CMakeFiles/kamel_tests.dir/geo_test.cc.o.d"
  "CMakeFiles/kamel_tests.dir/grid_test.cc.o"
  "CMakeFiles/kamel_tests.dir/grid_test.cc.o.d"
  "CMakeFiles/kamel_tests.dir/imputer_test.cc.o"
  "CMakeFiles/kamel_tests.dir/imputer_test.cc.o.d"
  "CMakeFiles/kamel_tests.dir/io_test.cc.o"
  "CMakeFiles/kamel_tests.dir/io_test.cc.o.d"
  "CMakeFiles/kamel_tests.dir/sim_test.cc.o"
  "CMakeFiles/kamel_tests.dir/sim_test.cc.o.d"
  "kamel_tests"
  "kamel_tests.pdb"
  "kamel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
