# Empty compiler generated dependencies file for kamel_cli.
# This may be replaced when dependencies are built.
