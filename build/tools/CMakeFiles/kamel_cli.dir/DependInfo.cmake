
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/kamel_cli.cc" "tools/CMakeFiles/kamel_cli.dir/kamel_cli.cc.o" "gcc" "tools/CMakeFiles/kamel_cli.dir/kamel_cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/kamel_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/kamel_io.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/kamel_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kamel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kamel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bert/CMakeFiles/kamel_bert.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/kamel_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/kamel_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/kamel_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kamel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
