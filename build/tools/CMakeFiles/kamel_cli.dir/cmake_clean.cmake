file(REMOVE_RECURSE
  "CMakeFiles/kamel_cli.dir/kamel_cli.cc.o"
  "CMakeFiles/kamel_cli.dir/kamel_cli.cc.o.d"
  "kamel"
  "kamel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
