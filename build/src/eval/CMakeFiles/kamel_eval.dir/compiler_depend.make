# Empty compiler generated dependencies file for kamel_eval.
# This may be replaced when dependencies are built.
