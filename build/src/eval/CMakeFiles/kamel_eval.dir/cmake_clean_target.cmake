file(REMOVE_RECURSE
  "libkamel_eval.a"
)
