file(REMOVE_RECURSE
  "CMakeFiles/kamel_eval.dir/bootstrap.cc.o"
  "CMakeFiles/kamel_eval.dir/bootstrap.cc.o.d"
  "CMakeFiles/kamel_eval.dir/cell_size_tuner.cc.o"
  "CMakeFiles/kamel_eval.dir/cell_size_tuner.cc.o.d"
  "CMakeFiles/kamel_eval.dir/evaluator.cc.o"
  "CMakeFiles/kamel_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/kamel_eval.dir/metrics.cc.o"
  "CMakeFiles/kamel_eval.dir/metrics.cc.o.d"
  "CMakeFiles/kamel_eval.dir/scenario.cc.o"
  "CMakeFiles/kamel_eval.dir/scenario.cc.o.d"
  "libkamel_eval.a"
  "libkamel_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
