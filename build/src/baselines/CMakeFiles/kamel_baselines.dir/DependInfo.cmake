
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/kinematic.cc" "src/baselines/CMakeFiles/kamel_baselines.dir/kinematic.cc.o" "gcc" "src/baselines/CMakeFiles/kamel_baselines.dir/kinematic.cc.o.d"
  "/root/repo/src/baselines/linear.cc" "src/baselines/CMakeFiles/kamel_baselines.dir/linear.cc.o" "gcc" "src/baselines/CMakeFiles/kamel_baselines.dir/linear.cc.o.d"
  "/root/repo/src/baselines/map_matching.cc" "src/baselines/CMakeFiles/kamel_baselines.dir/map_matching.cc.o" "gcc" "src/baselines/CMakeFiles/kamel_baselines.dir/map_matching.cc.o.d"
  "/root/repo/src/baselines/trimpute.cc" "src/baselines/CMakeFiles/kamel_baselines.dir/trimpute.cc.o" "gcc" "src/baselines/CMakeFiles/kamel_baselines.dir/trimpute.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/kamel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kamel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/kamel_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kamel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bert/CMakeFiles/kamel_bert.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/kamel_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/kamel_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
