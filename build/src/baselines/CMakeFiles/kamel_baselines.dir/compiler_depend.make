# Empty compiler generated dependencies file for kamel_baselines.
# This may be replaced when dependencies are built.
