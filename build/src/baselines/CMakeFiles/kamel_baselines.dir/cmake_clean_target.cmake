file(REMOVE_RECURSE
  "libkamel_baselines.a"
)
