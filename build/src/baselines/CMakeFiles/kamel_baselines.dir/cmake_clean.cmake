file(REMOVE_RECURSE
  "CMakeFiles/kamel_baselines.dir/kinematic.cc.o"
  "CMakeFiles/kamel_baselines.dir/kinematic.cc.o.d"
  "CMakeFiles/kamel_baselines.dir/linear.cc.o"
  "CMakeFiles/kamel_baselines.dir/linear.cc.o.d"
  "CMakeFiles/kamel_baselines.dir/map_matching.cc.o"
  "CMakeFiles/kamel_baselines.dir/map_matching.cc.o.d"
  "CMakeFiles/kamel_baselines.dir/trimpute.cc.o"
  "CMakeFiles/kamel_baselines.dir/trimpute.cc.o.d"
  "libkamel_baselines.a"
  "libkamel_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
