# Empty dependencies file for kamel_bert.
# This may be replaced when dependencies are built.
