file(REMOVE_RECURSE
  "CMakeFiles/kamel_bert.dir/traj_bert.cc.o"
  "CMakeFiles/kamel_bert.dir/traj_bert.cc.o.d"
  "CMakeFiles/kamel_bert.dir/vocab.cc.o"
  "CMakeFiles/kamel_bert.dir/vocab.cc.o.d"
  "libkamel_bert.a"
  "libkamel_bert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_bert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
