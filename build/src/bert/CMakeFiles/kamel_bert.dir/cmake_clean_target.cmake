file(REMOVE_RECURSE
  "libkamel_bert.a"
)
