# CMake generated Testfile for 
# Source directory: /root/repo/src/bert
# Build directory: /root/repo/build/src/bert
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
