file(REMOVE_RECURSE
  "CMakeFiles/kamel_nn.dir/adam.cc.o"
  "CMakeFiles/kamel_nn.dir/adam.cc.o.d"
  "CMakeFiles/kamel_nn.dir/attention.cc.o"
  "CMakeFiles/kamel_nn.dir/attention.cc.o.d"
  "CMakeFiles/kamel_nn.dir/blas.cc.o"
  "CMakeFiles/kamel_nn.dir/blas.cc.o.d"
  "CMakeFiles/kamel_nn.dir/layers.cc.o"
  "CMakeFiles/kamel_nn.dir/layers.cc.o.d"
  "CMakeFiles/kamel_nn.dir/mlm_trainer.cc.o"
  "CMakeFiles/kamel_nn.dir/mlm_trainer.cc.o.d"
  "CMakeFiles/kamel_nn.dir/ops.cc.o"
  "CMakeFiles/kamel_nn.dir/ops.cc.o.d"
  "CMakeFiles/kamel_nn.dir/tensor.cc.o"
  "CMakeFiles/kamel_nn.dir/tensor.cc.o.d"
  "CMakeFiles/kamel_nn.dir/transformer.cc.o"
  "CMakeFiles/kamel_nn.dir/transformer.cc.o.d"
  "libkamel_nn.a"
  "libkamel_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
