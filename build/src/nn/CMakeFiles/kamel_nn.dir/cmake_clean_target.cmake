file(REMOVE_RECURSE
  "libkamel_nn.a"
)
