
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cc" "src/nn/CMakeFiles/kamel_nn.dir/adam.cc.o" "gcc" "src/nn/CMakeFiles/kamel_nn.dir/adam.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/kamel_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/kamel_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/blas.cc" "src/nn/CMakeFiles/kamel_nn.dir/blas.cc.o" "gcc" "src/nn/CMakeFiles/kamel_nn.dir/blas.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/kamel_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/kamel_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/mlm_trainer.cc" "src/nn/CMakeFiles/kamel_nn.dir/mlm_trainer.cc.o" "gcc" "src/nn/CMakeFiles/kamel_nn.dir/mlm_trainer.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/nn/CMakeFiles/kamel_nn.dir/ops.cc.o" "gcc" "src/nn/CMakeFiles/kamel_nn.dir/ops.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/nn/CMakeFiles/kamel_nn.dir/tensor.cc.o" "gcc" "src/nn/CMakeFiles/kamel_nn.dir/tensor.cc.o.d"
  "/root/repo/src/nn/transformer.cc" "src/nn/CMakeFiles/kamel_nn.dir/transformer.cc.o" "gcc" "src/nn/CMakeFiles/kamel_nn.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kamel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
