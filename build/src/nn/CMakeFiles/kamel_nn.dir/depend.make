# Empty dependencies file for kamel_nn.
# This may be replaced when dependencies are built.
