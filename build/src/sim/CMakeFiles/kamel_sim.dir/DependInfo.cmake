
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/datasets.cc" "src/sim/CMakeFiles/kamel_sim.dir/datasets.cc.o" "gcc" "src/sim/CMakeFiles/kamel_sim.dir/datasets.cc.o.d"
  "/root/repo/src/sim/gps_simulator.cc" "src/sim/CMakeFiles/kamel_sim.dir/gps_simulator.cc.o" "gcc" "src/sim/CMakeFiles/kamel_sim.dir/gps_simulator.cc.o.d"
  "/root/repo/src/sim/network_generator.cc" "src/sim/CMakeFiles/kamel_sim.dir/network_generator.cc.o" "gcc" "src/sim/CMakeFiles/kamel_sim.dir/network_generator.cc.o.d"
  "/root/repo/src/sim/road_network.cc" "src/sim/CMakeFiles/kamel_sim.dir/road_network.cc.o" "gcc" "src/sim/CMakeFiles/kamel_sim.dir/road_network.cc.o.d"
  "/root/repo/src/sim/route_planner.cc" "src/sim/CMakeFiles/kamel_sim.dir/route_planner.cc.o" "gcc" "src/sim/CMakeFiles/kamel_sim.dir/route_planner.cc.o.d"
  "/root/repo/src/sim/sparsifier.cc" "src/sim/CMakeFiles/kamel_sim.dir/sparsifier.cc.o" "gcc" "src/sim/CMakeFiles/kamel_sim.dir/sparsifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/kamel_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kamel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
