# Empty dependencies file for kamel_sim.
# This may be replaced when dependencies are built.
