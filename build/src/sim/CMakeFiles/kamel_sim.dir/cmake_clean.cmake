file(REMOVE_RECURSE
  "CMakeFiles/kamel_sim.dir/datasets.cc.o"
  "CMakeFiles/kamel_sim.dir/datasets.cc.o.d"
  "CMakeFiles/kamel_sim.dir/gps_simulator.cc.o"
  "CMakeFiles/kamel_sim.dir/gps_simulator.cc.o.d"
  "CMakeFiles/kamel_sim.dir/network_generator.cc.o"
  "CMakeFiles/kamel_sim.dir/network_generator.cc.o.d"
  "CMakeFiles/kamel_sim.dir/road_network.cc.o"
  "CMakeFiles/kamel_sim.dir/road_network.cc.o.d"
  "CMakeFiles/kamel_sim.dir/route_planner.cc.o"
  "CMakeFiles/kamel_sim.dir/route_planner.cc.o.d"
  "CMakeFiles/kamel_sim.dir/sparsifier.cc.o"
  "CMakeFiles/kamel_sim.dir/sparsifier.cc.o.d"
  "libkamel_sim.a"
  "libkamel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
