file(REMOVE_RECURSE
  "libkamel_sim.a"
)
