file(REMOVE_RECURSE
  "libkamel_common.a"
)
