file(REMOVE_RECURSE
  "CMakeFiles/kamel_common.dir/binary_io.cc.o"
  "CMakeFiles/kamel_common.dir/binary_io.cc.o.d"
  "CMakeFiles/kamel_common.dir/logging.cc.o"
  "CMakeFiles/kamel_common.dir/logging.cc.o.d"
  "CMakeFiles/kamel_common.dir/rng.cc.o"
  "CMakeFiles/kamel_common.dir/rng.cc.o.d"
  "CMakeFiles/kamel_common.dir/status.cc.o"
  "CMakeFiles/kamel_common.dir/status.cc.o.d"
  "CMakeFiles/kamel_common.dir/table.cc.o"
  "CMakeFiles/kamel_common.dir/table.cc.o.d"
  "libkamel_common.a"
  "libkamel_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
