# Empty compiler generated dependencies file for kamel_common.
# This may be replaced when dependencies are built.
