file(REMOVE_RECURSE
  "CMakeFiles/kamel_core.dir/dbscan.cc.o"
  "CMakeFiles/kamel_core.dir/dbscan.cc.o.d"
  "CMakeFiles/kamel_core.dir/detokenizer.cc.o"
  "CMakeFiles/kamel_core.dir/detokenizer.cc.o.d"
  "CMakeFiles/kamel_core.dir/imputer.cc.o"
  "CMakeFiles/kamel_core.dir/imputer.cc.o.d"
  "CMakeFiles/kamel_core.dir/kamel.cc.o"
  "CMakeFiles/kamel_core.dir/kamel.cc.o.d"
  "CMakeFiles/kamel_core.dir/maintenance.cc.o"
  "CMakeFiles/kamel_core.dir/maintenance.cc.o.d"
  "CMakeFiles/kamel_core.dir/model_repository.cc.o"
  "CMakeFiles/kamel_core.dir/model_repository.cc.o.d"
  "CMakeFiles/kamel_core.dir/pyramid.cc.o"
  "CMakeFiles/kamel_core.dir/pyramid.cc.o.d"
  "CMakeFiles/kamel_core.dir/spatial_constraints.cc.o"
  "CMakeFiles/kamel_core.dir/spatial_constraints.cc.o.d"
  "CMakeFiles/kamel_core.dir/tokenizer.cc.o"
  "CMakeFiles/kamel_core.dir/tokenizer.cc.o.d"
  "CMakeFiles/kamel_core.dir/trajectory_store.cc.o"
  "CMakeFiles/kamel_core.dir/trajectory_store.cc.o.d"
  "libkamel_core.a"
  "libkamel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
