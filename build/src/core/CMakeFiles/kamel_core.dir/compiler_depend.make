# Empty compiler generated dependencies file for kamel_core.
# This may be replaced when dependencies are built.
