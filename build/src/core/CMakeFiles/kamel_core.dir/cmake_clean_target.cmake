file(REMOVE_RECURSE
  "libkamel_core.a"
)
