
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dbscan.cc" "src/core/CMakeFiles/kamel_core.dir/dbscan.cc.o" "gcc" "src/core/CMakeFiles/kamel_core.dir/dbscan.cc.o.d"
  "/root/repo/src/core/detokenizer.cc" "src/core/CMakeFiles/kamel_core.dir/detokenizer.cc.o" "gcc" "src/core/CMakeFiles/kamel_core.dir/detokenizer.cc.o.d"
  "/root/repo/src/core/imputer.cc" "src/core/CMakeFiles/kamel_core.dir/imputer.cc.o" "gcc" "src/core/CMakeFiles/kamel_core.dir/imputer.cc.o.d"
  "/root/repo/src/core/kamel.cc" "src/core/CMakeFiles/kamel_core.dir/kamel.cc.o" "gcc" "src/core/CMakeFiles/kamel_core.dir/kamel.cc.o.d"
  "/root/repo/src/core/maintenance.cc" "src/core/CMakeFiles/kamel_core.dir/maintenance.cc.o" "gcc" "src/core/CMakeFiles/kamel_core.dir/maintenance.cc.o.d"
  "/root/repo/src/core/model_repository.cc" "src/core/CMakeFiles/kamel_core.dir/model_repository.cc.o" "gcc" "src/core/CMakeFiles/kamel_core.dir/model_repository.cc.o.d"
  "/root/repo/src/core/pyramid.cc" "src/core/CMakeFiles/kamel_core.dir/pyramid.cc.o" "gcc" "src/core/CMakeFiles/kamel_core.dir/pyramid.cc.o.d"
  "/root/repo/src/core/spatial_constraints.cc" "src/core/CMakeFiles/kamel_core.dir/spatial_constraints.cc.o" "gcc" "src/core/CMakeFiles/kamel_core.dir/spatial_constraints.cc.o.d"
  "/root/repo/src/core/tokenizer.cc" "src/core/CMakeFiles/kamel_core.dir/tokenizer.cc.o" "gcc" "src/core/CMakeFiles/kamel_core.dir/tokenizer.cc.o.d"
  "/root/repo/src/core/trajectory_store.cc" "src/core/CMakeFiles/kamel_core.dir/trajectory_store.cc.o" "gcc" "src/core/CMakeFiles/kamel_core.dir/trajectory_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bert/CMakeFiles/kamel_bert.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/kamel_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/kamel_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kamel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/kamel_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
