# Empty dependencies file for kamel_io.
# This may be replaced when dependencies are built.
