file(REMOVE_RECURSE
  "libkamel_io.a"
)
