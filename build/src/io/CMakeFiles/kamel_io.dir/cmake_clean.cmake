file(REMOVE_RECURSE
  "CMakeFiles/kamel_io.dir/trajectory_csv.cc.o"
  "CMakeFiles/kamel_io.dir/trajectory_csv.cc.o.d"
  "libkamel_io.a"
  "libkamel_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
