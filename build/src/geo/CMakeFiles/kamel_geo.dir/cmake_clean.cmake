file(REMOVE_RECURSE
  "CMakeFiles/kamel_geo.dir/latlng.cc.o"
  "CMakeFiles/kamel_geo.dir/latlng.cc.o.d"
  "CMakeFiles/kamel_geo.dir/polyline.cc.o"
  "CMakeFiles/kamel_geo.dir/polyline.cc.o.d"
  "CMakeFiles/kamel_geo.dir/projection.cc.o"
  "CMakeFiles/kamel_geo.dir/projection.cc.o.d"
  "CMakeFiles/kamel_geo.dir/trajectory.cc.o"
  "CMakeFiles/kamel_geo.dir/trajectory.cc.o.d"
  "libkamel_geo.a"
  "libkamel_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
