# Empty compiler generated dependencies file for kamel_geo.
# This may be replaced when dependencies are built.
