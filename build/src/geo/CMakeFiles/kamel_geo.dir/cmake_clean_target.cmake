file(REMOVE_RECURSE
  "libkamel_geo.a"
)
