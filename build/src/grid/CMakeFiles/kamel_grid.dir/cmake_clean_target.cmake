file(REMOVE_RECURSE
  "libkamel_grid.a"
)
