# Empty compiler generated dependencies file for kamel_grid.
# This may be replaced when dependencies are built.
