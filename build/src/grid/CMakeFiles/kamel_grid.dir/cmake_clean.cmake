file(REMOVE_RECURSE
  "CMakeFiles/kamel_grid.dir/grid_system.cc.o"
  "CMakeFiles/kamel_grid.dir/grid_system.cc.o.d"
  "CMakeFiles/kamel_grid.dir/hex_grid.cc.o"
  "CMakeFiles/kamel_grid.dir/hex_grid.cc.o.d"
  "CMakeFiles/kamel_grid.dir/square_grid.cc.o"
  "CMakeFiles/kamel_grid.dir/square_grid.cc.o.d"
  "libkamel_grid.a"
  "libkamel_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kamel_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
