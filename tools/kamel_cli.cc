// kamel — command-line front-end for the KAMEL trajectory imputation
// system.
//
//   kamel generate --scenario porto --out data/        synthesize a dataset
//   kamel sparsify --data in.csv --distance 1000 --out sparse.csv
//   kamel train    --data train.csv --model city.kamel [--steps N]
//   kamel impute   --model city.kamel --data sparse.csv --out imputed.csv
//   kamel evaluate --model city.kamel --data dense.csv --sparseness 1000
//   kamel fsck     city.kamel                          verify a snapshot
//
// Trajectories are CSV (`trajectory_id,lat,lng,time`); `--geojson` adds a
// GeoJSON export for map inspection.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/kamel.h"
#include "core/maintenance.h"
#include "eval/bootstrap.h"
#include "eval/evaluator.h"
#include "eval/scenario.h"
#include "io/trajectory_csv.h"
#include "nn/backend/backend.h"
#include "nn/backend/quant.h"
#include "shard/router.h"
#include "shard/worker.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel::cli {
namespace {

// ---- tiny flag parser ------------------------------------------------

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  bool Has(const std::string& name) const { return values_.count(name); }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Applies `--backend scalar|optimized` for the whole process. Every
// serving path (impute/evaluate/worker/route/stats) reads the active
// backend; training is pinned to the scalar reference regardless.
int ApplyBackendFlag(const Flags& flags) {
  if (!flags.Has("backend")) return 0;
  const Status set = nn::SetActiveBackend(flags.Get("backend"));
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.ToString().c_str());
    return 2;
  }
  return 0;
}

// Parses `--quantize q8_0|q4_0|none` into the snapshot serving weight
// format. A bad value is a usage error (exit 2), like --overload-policy.
int ParseQuantizeFlag(const Flags& flags, KamelOptions* options) {
  if (!flags.Has("quantize")) return 0;
  const auto format = nn::ParseWeightFormat(flags.Get("quantize"));
  if (!format.ok()) {
    std::fprintf(stderr, "bad --quantize: %s\n",
                 format.status().ToString().c_str());
    return 2;
  }
  options->serving_weight_format = *format;
  return 0;
}

KamelOptions OptionsFromFlags(const Flags& flags) {
  KamelOptions options = BenchKamelOptions();
  options.hex_edge_m = flags.GetDouble("hex-edge", options.hex_edge_m);
  if (flags.Get("grid") == "square") options.grid_type = GridType::kSquare;
  options.bert.train.steps =
      flags.GetInt("steps", options.bert.train.steps);
  options.model_token_threshold =
      flags.GetInt("model-threshold", options.model_token_threshold);
  options.pyramid_height = static_cast<int>(
      flags.GetInt("pyramid-height", options.pyramid_height));
  options.pyramid_levels = static_cast<int>(
      flags.GetInt("pyramid-levels", options.pyramid_levels));
  options.beam_size =
      static_cast<int>(flags.GetInt("beam", options.beam_size));
  options.max_gap_m = flags.GetDouble("max-gap", options.max_gap_m);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  if (flags.Get("method") == "iterative") {
    options.method = ImputeMethod::kIterativeBert;
  }
  options.impute_deadline_seconds =
      flags.GetDouble("deadline", options.impute_deadline_seconds);
  options.max_resident_models = static_cast<int>(
      flags.GetInt("max-resident-models", options.max_resident_models));
  options.max_resident_bytes = static_cast<uint64_t>(
      flags.GetInt("max-resident-bytes", options.max_resident_bytes));
  return options;
}

int LoadOrFail(Kamel* system, const Flags& flags) {
  LoadReport report;
  const Status loaded = system->LoadFromFile(flags.Get("model"), &report);
  if (!loaded.ok()) return Fail(loaded);
  if (report.partial()) {
    std::fprintf(stderr, "warning: partial snapshot load: %s\n",
                 report.Summary().c_str());
  }
  return 0;
}

// ---- subcommands -----------------------------------------------------

int Generate(const Flags& flags) {
  const std::string kind = flags.Get("scenario", "porto");
  ScenarioSpec spec;
  if (kind == "porto") {
    spec = PortoLikeSpec(static_cast<uint64_t>(flags.GetInt("seed", 11)));
  } else if (kind == "jakarta") {
    spec = JakartaLikeSpec(static_cast<uint64_t>(flags.GetInt("seed", 13)));
  } else if (kind == "mini") {
    spec = MiniSpec(static_cast<uint64_t>(flags.GetInt("seed", 17)));
  } else {
    std::fprintf(stderr, "unknown scenario '%s' (porto|jakarta|mini)\n",
                 kind.c_str());
    return 1;
  }
  if (flags.Has("trips")) {
    spec.trips.num_trips = static_cast<int>(flags.GetInt("trips", 100));
  }
  const std::string out = flags.Get("out", ".");
  const SimScenario scenario = BuildScenario(spec);
  Status status =
      io::WriteCsvFile(scenario.train, out + "/train.csv");
  if (status.ok()) {
    status = io::WriteCsvFile(scenario.test, out + "/test.csv");
  }
  if (status.ok() && flags.Has("geojson")) {
    status = io::WriteGeoJsonFile(scenario.test, out + "/test.geojson");
  }
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu train / %zu test trajectories under %s\n",
              scenario.train.trajectories.size(),
              scenario.test.trajectories.size(), out.c_str());
  return 0;
}

int SparsifyCmd(const Flags& flags) {
  auto data = io::ReadCsvFile(flags.Get("data"));
  if (!data.ok()) return Fail(data.status());
  const double distance = flags.GetDouble("distance", 1000.0);
  const TrajectoryDataset sparse = SparsifyDataset(*data, distance);
  const Status status = io::WriteCsvFile(sparse, flags.Get("out"));
  if (!status.ok()) return Fail(status);
  std::printf("sparsified %zu trajectories at %.0f m\n",
              sparse.trajectories.size(), distance);
  return 0;
}

// Parses `--fsync-policy` / `--fsync-every` into `options` (the WAL
// directory itself comes from `--wal-dir`). A bad policy name is a usage
// error (exit 2), caught before any file is touched.
int ParseWalFlags(const Flags& flags, WalOptions* options) {
  options->dir = flags.Get("wal-dir");
  const std::string policy = flags.Get("fsync-policy", "every-record");
  if (policy == "every-record") {
    options->fsync_policy = FsyncPolicy::kEveryRecord;
  } else if (policy == "every-n") {
    options->fsync_policy = FsyncPolicy::kEveryN;
  } else if (policy == "on-rotate") {
    options->fsync_policy = FsyncPolicy::kOnRotate;
  } else {
    std::fprintf(
        stderr,
        "unknown --fsync-policy '%s' (every-record|every-n|on-rotate)\n",
        policy.c_str());
    return 2;
  }
  options->fsync_every_n =
      static_cast<int>(flags.GetInt("fsync-every", options->fsync_every_n));
  options->disk_budget_bytes = static_cast<uint64_t>(
      flags.GetInt("wal-disk-budget", options->disk_budget_bytes));
  options->io_stall_budget_s =
      flags.GetDouble("io-stall-budget", options->io_stall_budget_s);
  return 0;
}

// Durable training: every trajectory is write-ahead-logged before it is
// acknowledged, batches train through the MaintenanceScheduler, and each
// trained batch checkpoints the model file, letting old log segments be
// deleted. Re-running after a crash resumes from the checkpoint plus the
// log; nothing acknowledged is ever retrained from scratch or lost.
int TrainDurable(const Flags& flags, Kamel* system,
                 const TrajectoryDataset& data,
                 const std::string& model_path) {
  WalOptions wal_options;
  if (const int rc = ParseWalFlags(flags, &wal_options); rc != 0) return rc;
  MaintenanceOptions policy;
  policy.min_batch_trajectories = static_cast<size_t>(
      flags.GetInt("batch-trips", policy.min_batch_trajectories));
  MaintenanceScheduler scheduler(system, policy);
  IngestRecoveryReport recovery;
  auto wal = OpenDurableIngestion(system, &scheduler, wal_options,
                                  model_path, &recovery);
  if (!wal.ok()) return Fail(wal.status());
  if (recovery.snapshot_loaded || recovery.submits_replayed > 0 ||
      recovery.batches_retrained > 0) {
    std::printf(
        "recovered: %s%zu submit(s) replayed, %zu batch(es) retrained, "
        "%zu record(s) already checkpointed\n",
        recovery.snapshot_loaded ? "checkpoint loaded, " : "",
        recovery.submits_replayed, recovery.batches_retrained,
        recovery.records_skipped);
  }
  for (const Trajectory& trajectory : data.trajectories) {
    if (const Status status = scheduler.Submit(trajectory); !status.ok()) {
      return Fail(status);
    }
  }
  if (const Status status = scheduler.Flush(); !status.ok()) {
    return Fail(status);
  }
  if (!system->trained()) {
    return Fail(Status(StatusCode::kInvalidArgument,
                       "no usable training trajectories (need >= 2 "
                       "on-grid points each)"));
  }
  const WriteAheadLog::Stats& stats = (*wal)->stats();
  std::printf(
      "durably trained %zu trajectories in %d batch(es): %d models, "
      "%.1fs | log: %lld append(s), %lld fsync(s), %zu live segment(s)\n",
      system->ingested().size(), scheduler.batches_trained(),
      system->repository().num_models(), system->total_train_seconds(),
      static_cast<long long>(stats.appends),
      static_cast<long long>(stats.fsyncs), (*wal)->segment_count());
  return 0;
}

int Train(const Flags& flags) {
  KamelOptions options = OptionsFromFlags(flags);
  if (int rc = ParseQuantizeFlag(flags, &options); rc != 0) return rc;
  auto data = io::ReadCsvFile(flags.Get("data"));
  if (!data.ok()) return Fail(data.status());
  Kamel system(options);
  const std::string model_path = flags.Get("model", "model.kamel");
  if (flags.Has("wal-dir")) {
    return TrainDurable(flags, &system, *data, model_path);
  }
  const Status trained = system.Train(*data);
  if (!trained.ok()) return Fail(trained);
  const Status saved = system.SaveToFile(model_path);
  if (!saved.ok()) return Fail(saved);
  std::printf(
      "trained on %zu trajectories: %d models (%d single, %d neighbor), "
      "%.1fs, speed bound %.1f m/s\n",
      data->trajectories.size(), system.repository().num_models(),
      system.repository().num_single_models(),
      system.repository().num_neighbor_models(),
      system.total_train_seconds(), system.max_speed_mps());
  return 0;
}

// Parses `--overload-policy`. A bad value is a usage error (exit 2, like
// any other invalid command line), not a runtime failure, so this runs
// before the engine is built.
int ParseOverloadPolicy(const Flags& flags, OverloadPolicy* policy) {
  const std::string name = flags.Get("overload-policy", "block");
  if (name == "block") {
    *policy = OverloadPolicy::kBlock;
  } else if (name == "shed") {
    *policy = OverloadPolicy::kShed;
  } else if (name == "degrade") {
    *policy = OverloadPolicy::kDegrade;
  } else {
    std::fprintf(stderr,
                 "unknown --overload-policy '%s' (block|shed|degrade)\n",
                 name.c_str());
    return 2;
  }
  return 0;
}

// Builds the concurrent serving engine for impute/evaluate. `--threads 1`
// (the default) serves on a single pool thread; outputs are byte-identical
// at any thread count, so parallelism is purely a throughput knob.
// `--max-pending N` bounds queued imputations and `--overload-policy
// block|shed|degrade` picks what happens beyond the bound (admission
// control; the default 0 is unbounded and fully deterministic).
Result<std::unique_ptr<ServingEngine>> MakeEngine(Kamel* system,
                                                  const Flags& flags,
                                                  OverloadPolicy policy) {
  KAMEL_ASSIGN_OR_RETURN(auto snapshot, system->Snapshot());
  ServingOptions serving;
  serving.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  serving.max_pending = static_cast<int>(flags.GetInt("max-pending", 0));
  serving.overload_policy = policy;
  return std::make_unique<ServingEngine>(std::move(snapshot), serving);
}

int Impute(const Flags& flags) {
  OverloadPolicy policy;
  if (int rc = ParseOverloadPolicy(flags, &policy); rc != 0) return rc;
  Kamel system(OptionsFromFlags(flags));
  if (int rc = LoadOrFail(&system, flags); rc != 0) return rc;
  auto data = io::ReadCsvFile(flags.Get("data"));
  if (!data.ok()) return Fail(data.status());

  auto engine = MakeEngine(&system, flags, policy);
  if (!engine.ok()) return Fail(engine.status());
  auto results = (*engine)->ImputeBatch(*data);
  if (!results.ok()) return Fail(results.status());
  TrajectoryDataset imputed;
  int segments = 0;
  int failed = 0;
  for (auto& result : *results) {
    segments += result.stats.segments;
    failed += result.stats.failed_segments;
    imputed.trajectories.push_back(std::move(result.trajectory));
  }
  const Status written =
      io::WriteCsvFile(imputed, flags.Get("out", "imputed.csv"));
  if (!written.ok()) return Fail(written);
  if (flags.Has("geojson")) {
    const Status gj =
        io::WriteGeoJsonFile(imputed, flags.Get("out") + ".geojson");
    if (!gj.ok()) return Fail(gj);
  }
  std::printf("imputed %zu trajectories: %d gaps, %d failures (%.1f%%)\n",
              imputed.trajectories.size(), segments, failed,
              segments > 0 ? 100.0 * failed / segments : 0.0);
  return 0;
}

int Evaluate(const Flags& flags) {
  OverloadPolicy policy;
  if (int rc = ParseOverloadPolicy(flags, &policy); rc != 0) return rc;
  Kamel system(OptionsFromFlags(flags));
  if (int rc = LoadOrFail(&system, flags); rc != 0) return rc;
  auto dense = io::ReadCsvFile(flags.Get("data"));
  if (!dense.ok()) return Fail(dense.status());

  const Evaluator evaluator(&system.projection());
  auto engine = MakeEngine(&system, flags, policy);
  if (!engine.ok()) return Fail(engine.status());
  auto run = evaluator.RunEngine(engine->get(), *dense,
                                 flags.GetDouble("sparseness", 1000.0));
  if (!run.ok()) return Fail(run.status());
  ScoreConfig score;
  score.delta_m = flags.GetDouble("delta", 50.0);
  score.max_gap_m = flags.GetDouble("max-gap", 100.0);
  const ScoredWithIntervals scored =
      ScoreWithBootstrap(evaluator, *run, score);
  std::printf("recall    %.3f  [%.3f, %.3f]\n", scored.recall.value,
              scored.recall.lo, scored.recall.hi);
  std::printf("precision %.3f  [%.3f, %.3f]\n", scored.precision.value,
              scored.precision.lo, scored.precision.hi);
  std::printf("failure   %.3f  [%.3f, %.3f]\n", scored.failure_rate.value,
              scored.failure_rate.lo, scored.failure_rate.hi);
  return 0;
}

int FsckSnapshotFile(const std::string& path) {
  auto report = FsckSnapshot(path);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s: snapshot version %u, %zu sections\n", path.c_str(),
              report->version, report->sections.size());
  std::printf("  %-12s %12s %12s  %s\n", "section", "offset", "bytes",
              "crc");
  for (const auto& section : report->sections) {
    std::printf("  %-12s %12zu %12llu  %s\n", section.name.c_str(),
                section.payload_offset,
                static_cast<unsigned long long>(section.length),
                section.crc_ok ? "ok" : "CORRUPT");
  }
  if (!report->truncation_error.empty()) {
    std::printf("  TRUNCATED: %s\n", report->truncation_error.c_str());
  }
  if (!report->clean()) {
    std::printf("%s: snapshot is DAMAGED\n", path.c_str());
    return 1;
  }
  std::printf("%s: snapshot is clean\n", path.c_str());
  return 0;
}

// CRC-checks every record of every WAL segment, naming each damaged one
// and classifying it: a torn tail is what a crash leaves behind and
// recovery truncates it silently; anything else is mid-log corruption —
// data loss that Open will refuse to skip over.
int FsckWalDir(const std::string& dir) {
  auto report = FsckWal(dir);
  if (!report.ok()) return Fail(report.status());
  std::printf(
      "%s: %zu segment(s), %llu clean record(s) (lsn %llu..%llu), "
      "checkpoint at lsn %llu\n",
      dir.c_str(), report->segments,
      static_cast<unsigned long long>(report->records),
      static_cast<unsigned long long>(report->first_lsn),
      static_cast<unsigned long long>(report->last_lsn),
      static_cast<unsigned long long>(report->checkpoint_lsn));
  for (const auto& damage : report->damaged) {
    std::printf("  %s: record %llu at offset %llu: %s\n    -> %s\n",
                damage.segment.c_str(),
                static_cast<unsigned long long>(damage.record_index),
                static_cast<unsigned long long>(damage.offset),
                damage.error.c_str(),
                damage.torn_tail
                    ? "torn tail (recoverable: reopening truncates it)"
                    : "MID-LOG CORRUPTION (data loss: records after "
                      "this point cannot be trusted)");
  }
  if (!report->clean()) {
    std::printf("%s: log is DAMAGED (%s)\n", dir.c_str(),
                report->data_loss() ? "unrecoverable" : "recoverable");
    return 1;
  }
  std::printf("%s: log is clean\n", dir.c_str());
  return 0;
}

int Fsck(int argc, char** argv, const Flags& flags) {
  // Accept the snapshot as a positional argument or via --model; a WAL
  // directory via --wal-dir. Either alone is fine; with both, the exit
  // code is the worse of the two verdicts.
  std::string path = flags.Get("model");
  if (path.empty() && argc > 2 && std::strncmp(argv[2], "--", 2) != 0) {
    path = argv[2];
  }
  const std::string wal_dir = flags.Get("wal-dir");
  if (path.empty() && wal_dir.empty()) {
    std::fprintf(stderr, "usage: kamel fsck <snapshot> [--wal-dir DIR]\n");
    return 2;
  }
  int rc = 0;
  if (!path.empty()) rc = std::max(rc, FsckSnapshotFile(path));
  if (!wal_dir.empty()) rc = std::max(rc, FsckWalDir(wal_dir));
  return rc;
}

// ---- sharded serving -------------------------------------------------

// Parses `--shards host:port,host:port,...` (bare `port` gets 127.0.0.1).
// One endpoint per shard, ordered by shard index.
Result<std::vector<shard::ShardEndpoint>> ParseEndpoints(
    const std::string& spec) {
  std::vector<shard::ShardEndpoint> endpoints;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) continue;
    shard::ShardEndpoint endpoint;
    const size_t colon = token.rfind(':');
    std::string port = token;
    if (colon != std::string::npos) {
      endpoint.host = token.substr(0, colon);
      port = token.substr(colon + 1);
    }
    const long parsed = std::atol(port.c_str());
    if (parsed <= 0 || parsed > 65535) {
      return Status::InvalidArgument("bad shard endpoint '" + token + "'");
    }
    endpoint.port = static_cast<uint16_t>(parsed);
    endpoints.push_back(std::move(endpoint));
  }
  if (endpoints.empty()) {
    return Status::InvalidArgument(
        "--shards needs at least one host:port endpoint");
  }
  return endpoints;
}

std::atomic<bool> g_worker_stop{false};
void HandleStopSignal(int) { g_worker_stop.store(true); }

// One shard-serving process: loads its partition of the snapshot and
// serves the shard RPC protocol until SIGINT/SIGTERM.
int Worker(const Flags& flags) {
  OverloadPolicy policy;
  if (int rc = ParseOverloadPolicy(flags, &policy); rc != 0) return rc;
  shard::WorkerOptions options;
  options.host = flags.Get("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  options.shard = static_cast<int>(flags.GetInt("shard", 0));
  options.num_shards = static_cast<int>(flags.GetInt("num-shards", 1));
  options.kamel = OptionsFromFlags(flags);
  options.serving.num_threads =
      static_cast<int>(flags.GetInt("threads", 1));
  options.serving.max_pending =
      static_cast<int>(flags.GetInt("max-pending", 0));
  options.serving.overload_policy = policy;
  if (options.shard < 0 || options.shard >= options.num_shards) {
    std::fprintf(stderr, "--shard must be in [0, --num-shards)\n");
    return 2;
  }
  // Replication: --wal-dir turns the ingest WAL on; --standby-of makes
  // this worker a warm standby of that primary instead of a primary
  // itself (same parser as --shards endpoints, single entry).
  options.wal_dir = flags.Get("wal-dir");
  if (flags.Has("standby-of")) {
    if (options.wal_dir.empty()) {
      std::fprintf(stderr, "--standby-of requires --wal-dir\n");
      return 2;
    }
    auto primary = ParseEndpoints(flags.Get("standby-of"));
    if (!primary.ok() || primary->size() != 1) {
      std::fprintf(stderr, "--standby-of needs one host:port endpoint\n");
      return 2;
    }
    options.standby_of_host = primary->front().host;
    options.standby_of_port = primary->front().port;
  }
  options.replica_id = flags.Get("replica-id");
  options.replication.min_sync_standbys =
      static_cast<int>(flags.GetInt("min-sync-standbys", 0));
  options.replication.max_lag_records = static_cast<uint64_t>(
      flags.GetInt("max-lag-records",
                   static_cast<int64_t>(
                       options.replication.max_lag_records)));

  g_worker_stop.store(false);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  shard::ShardWorker worker(options);
  const Status started = worker.Start(flags.Get("model"));
  if (!started.ok()) return Fail(started);
  const shard::RoleInfo role = worker.role_info();
  std::printf("shard %d/%d serving on %s:%u (key level %d, %d models "
              "dropped by partition, role %s epoch %llu)\n",
              options.shard, options.num_shards, options.host.c_str(),
              worker.port(), worker.partition().level,
              worker.models_dropped(), replication::ToString(role.role),
              static_cast<unsigned long long>(role.epoch));
  std::fflush(stdout);
  while (!g_worker_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  worker.Stop();
  return 0;
}

// Routed imputation: the sharded counterpart of `kamel impute`. With all
// shards healthy the output is byte-identical to the single-process path.
int Route(const Flags& flags) {
  auto endpoints = ParseEndpoints(flags.Get("shards"));
  if (!endpoints.ok()) return Fail(endpoints.status());
  Kamel system(OptionsFromFlags(flags));
  if (int rc = LoadOrFail(&system, flags); rc != 0) return rc;
  auto data = io::ReadCsvFile(flags.Get("data"));
  if (!data.ok()) return Fail(data.status());
  auto snapshot = system.Snapshot();
  if (!snapshot.ok()) return Fail(snapshot.status());

  shard::RouterOptions options;
  options.call_deadline_s = flags.GetDouble("call-deadline", 2.0);
  options.hedging = flags.Get("hedging", "on") != "off";
  options.replicas = static_cast<int>(flags.GetInt("replicas", 0));
  options.balance_reads = flags.Get("balance-reads", "on") != "off";
  const int group_size = std::max(0, options.replicas) + 1;
  if (endpoints->size() % static_cast<size_t>(group_size) != 0) {
    std::fprintf(stderr,
                 "--shards must list a multiple of %d endpoints "
                 "(groups of primary + %d standby(s), primary first)\n",
                 group_size, options.replicas);
    return 2;
  }
  shard::ShardRouter router(*snapshot, std::move(*endpoints), options);
  const double wait_s = flags.GetDouble("wait-healthy", 10.0);
  if (const Status healthy = router.WaitHealthy(wait_s); !healthy.ok()) {
    std::fprintf(stderr, "warning: %s (degraded routing)\n",
                 healthy.ToString().c_str());
  }

  TrajectoryDataset imputed;
  int segments = 0;
  int failed = 0;
  for (const Trajectory& trajectory : data->trajectories) {
    auto result = router.Impute(trajectory);
    if (!result.ok()) return Fail(result.status());
    segments += result->stats.segments;
    failed += result->stats.failed_segments;
    imputed.trajectories.push_back(std::move(result->trajectory));
  }
  const Status written =
      io::WriteCsvFile(imputed, flags.Get("out", "imputed.csv"));
  if (!written.ok()) return Fail(written);
  const shard::RouterStats stats = router.stats();
  std::printf(
      "routed %zu trajectories across %d shards: %d gaps, %d failures | "
      "%lld calls, %lld retries, %lld hedges (%lld won), %lld failovers, "
      "%lld linear-fallback gaps\n",
      imputed.trajectories.size(), router.num_shards(), segments, failed,
      static_cast<long long>(stats.remote_calls),
      static_cast<long long>(stats.retries),
      static_cast<long long>(stats.hedges),
      static_cast<long long>(stats.hedge_wins),
      static_cast<long long>(stats.failovers),
      static_cast<long long>(stats.linear_fallback_gaps));
  return 0;
}

// Dumps EngineStats + HealthState as JSON, one object per line. With
// --shards it asks each worker over RPC (the same Stats method and JSON
// schema the router's health prober consumes); with --model it builds a
// local engine and reports its stats directly.
int StatsCmd(const Flags& flags) {
  if (flags.Has("shards")) {
    auto endpoints = ParseEndpoints(flags.Get("shards"));
    if (!endpoints.ok()) return Fail(endpoints.status());
    int rc = 0;
    for (size_t s = 0; s < endpoints->size(); ++s) {
      const shard::ShardEndpoint& endpoint = (*endpoints)[s];
      net::RpcClientOptions client_options;
      client_options.call_deadline_s = flags.GetDouble("call-deadline", 2.0);
      net::RpcClient client(endpoint.host, endpoint.port, client_options);
      auto response = client.Call(shard::kMethodStats, {});
      if (response.ok()) {
        auto status = shard::DecodeStatus(*response);
        if (status.ok()) {
          // One JSON object per shard (schema in README): identity +
          // replication posture at the top level, engine counters nested
          // under "stats". role/epoch/lag mirror kMethodRole at the same
          // instant the engine snapshot was taken.
          std::printf(
              "{\"shard\":%d,\"endpoint\":\"%s:%u\",\"reachable\":true,"
              "\"role\":\"%s\",\"epoch\":%llu,\"durable_lsn\":%llu,"
              "\"applied_lsn\":%llu,\"replication_lag\":%llu,"
              "\"stats\":%s}\n",
              status->shard, endpoint.host.c_str(), endpoint.port,
              replication::ToString(status->role),
              static_cast<unsigned long long>(status->epoch),
              static_cast<unsigned long long>(status->durable_lsn),
              static_cast<unsigned long long>(status->applied_lsn),
              static_cast<unsigned long long>(status->replication_lag),
              status->json.c_str());
          continue;
        }
        response = status.status();
      }
      std::printf(
          "{\"shard\":%zu,\"endpoint\":\"%s:%u\",\"reachable\":false,"
          "\"error\":\"%s\"}\n",
          s, endpoint.host.c_str(), endpoint.port,
          response.status().ToString().c_str());
      rc = 1;
    }
    return rc;
  }
  // Local mode: load the snapshot and report a fresh engine's view.
  Kamel system(OptionsFromFlags(flags));
  if (int rc = LoadOrFail(&system, flags); rc != 0) return rc;
  OverloadPolicy policy;
  if (int rc = ParseOverloadPolicy(flags, &policy); rc != 0) return rc;
  auto engine = MakeEngine(&system, flags, policy);
  if (!engine.ok()) return Fail(engine.status());
  std::printf("{\"shard\":-1,\"endpoint\":\"local\",\"reachable\":true,"
              "\"stats\":%s}\n",
              EngineStatsJson((*engine)->stats(), (*engine)->health())
                  .c_str());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: kamel <command> [flags]\n"
      "  generate  --scenario porto|jakarta|mini --out DIR [--trips N]\n"
      "            [--geojson] [--seed N]\n"
      "  sparsify  --data in.csv --distance METERS --out out.csv\n"
      "  train     --data train.csv --model out.kamel [--steps N]\n"
      "            [--quantize q8_0|q4_0|none] block-quantize every big\n"
      "            weight matrix in the saved snapshot (q8_0 ~28%%, q4_0\n"
      "            ~16%% of fp32 bytes); training itself always runs fp32\n"
      "            and `none` keeps the historical snapshot bytes exactly\n"
      "            [--hex-edge M] [--grid hex|square] [--model-threshold N]\n"
      "            [--pyramid-height H] [--pyramid-levels L]\n"
      "            (small datasets: --pyramid-height 0 --pyramid-levels 1\n"
      "             trains one model over the whole area)\n"
      "            [--wal-dir DIR] write-ahead-logs every trajectory\n"
      "            before acknowledging it and checkpoints the model\n"
      "            after each trained batch; re-running after a crash\n"
      "            resumes from the checkpoint plus the log.\n"
      "            [--fsync-policy every-record|every-n|on-rotate]\n"
      "            [--fsync-every N] [--batch-trips N] tune durability\n"
      "            vs throughput and the training batch size.\n"
      "            [--wal-disk-budget BYTES] caps live log + checkpoint\n"
      "            bytes; at pressure the scheduler checkpoints\n"
      "            proactively, then sheds submits cleanly (0 = off).\n"
      "            [--io-stall-budget SECONDS] stuck-IO watchdog budget\n"
      "            per WAL fsync (stalls surface as DEGRADED health).\n"
      "  impute    --model m.kamel --data sparse.csv --out imputed.csv\n"
      "            [--geojson] [--beam N] [--method beam|iterative]\n"
      "  evaluate  --model m.kamel --data dense.csv [--sparseness M]\n"
      "            [--delta M]\n"
      "  worker    --model m.kamel --shard I --num-shards N --port P\n"
      "            [--host H] [--threads N] [--max-pending N]\n"
      "            [--overload-policy block|shed|degrade]\n"
      "            serve shard I's partition of the snapshot over RPC\n"
      "            until SIGTERM (port 0 picks a free port)\n"
      "            [--wal-dir DIR] own a durable ingest WAL and serve\n"
      "            Submit as a replication PRIMARY (epoch persisted\n"
      "            beside the log); add [--standby-of host:port] to run\n"
      "            as a warm STANDBY instead, pulling that primary's\n"
      "            WAL into DIR and promotable in place.\n"
      "            [--replica-id NAME] [--min-sync-standbys N]\n"
      "            [--max-lag-records N] tune ack durability and the\n"
      "            caught-up threshold.\n"
      "  route     --model m.kamel --shards host:p,host:p,...\n"
      "            --data sparse.csv --out imputed.csv\n"
      "            [--call-deadline S] [--hedging on|off]\n"
      "            [--wait-healthy S]\n"
      "            [--replicas N] endpoints are groups of 1 primary +\n"
      "            N standbys (primary first, group-major); the router\n"
      "            probes roles, promotes on primary death, and\n"
      "            [--balance-reads on|off] spreads reads across\n"
      "            caught-up replicas by observed latency\n"
      "            impute through the shard fleet (health-checked\n"
      "            fan-out with retries, hedging, and failover; output\n"
      "            is byte-identical to `kamel impute` while every\n"
      "            shard is healthy)\n"
      "  stats     --shards host:p,... | --model m.kamel\n"
      "            dump per-shard (or local-engine) EngineStats +\n"
      "            HealthState as JSON, one object per line, with\n"
      "            role/epoch/durable_lsn/applied_lsn/replication_lag\n"
      "            at the top level (schema in README); exit 1 if\n"
      "            any shard is unreachable\n"
      "  fsck      SNAPSHOT [--wal-dir DIR]  verify framing and\n"
      "            checksums of a snapshot and/or a write-ahead log;\n"
      "            every damaged section or log record is named, and log\n"
      "            damage is classified torn-tail (recoverable) vs\n"
      "            mid-log corruption (data loss). exit 0 = clean, 1 =\n"
      "            damaged or unreadable, 2 = usage error\n"
      "  (impute/evaluate: [--threads N] imputes trajectories in parallel\n"
      "   on N pool threads (0 = hardware concurrency); outputs are\n"
      "   byte-identical at any thread count.\n"
      "   [--deadline SECONDS] bounds each Impute call; overruns fall\n"
      "   back to straight lines instead of stalling.\n"
      "   [--max-pending N] bounds queued imputations (0 = unbounded);\n"
      "   [--overload-policy block|shed|degrade] picks what happens\n"
      "   beyond the bound: callers wait, are refused, or get straight-\n"
      "   line service.\n"
      "   [--max-resident-models N] / [--max-resident-bytes BYTES]\n"
      "   bound the demand-load model cache by count / by bytes; either\n"
      "   enables lazy snapshot loading, and byte pressure evicts\n"
      "   unpinned LRU models)\n"
      "  (any command: [--backend scalar|optimized] picks the NN compute\n"
      "   backend for serving — scalar is the bit-exact reference,\n"
      "   optimized uses cache-blocked SIMD kernels; KAMEL_NN_BACKEND in\n"
      "   the environment sets the same default. Training always runs on\n"
      "   the scalar reference regardless.)\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (int rc = ApplyBackendFlag(flags); rc != 0) return rc;
  if (command == "generate") return Generate(flags);
  if (command == "sparsify") return SparsifyCmd(flags);
  if (command == "train") return Train(flags);
  if (command == "impute") return Impute(flags);
  if (command == "evaluate") return Evaluate(flags);
  if (command == "worker") return Worker(flags);
  if (command == "route") return Route(flags);
  if (command == "stats") return StatsCmd(flags);
  if (command == "fsck") return Fsck(argc, argv, flags);
  return Usage();
}

}  // namespace
}  // namespace kamel::cli

int main(int argc, char** argv) { return kamel::cli::Main(argc, argv); }
