// kamel — command-line front-end for the KAMEL trajectory imputation
// system.
//
//   kamel generate --scenario porto --out data/        synthesize a dataset
//   kamel sparsify --data in.csv --distance 1000 --out sparse.csv
//   kamel train    --data train.csv --model city.kamel [--steps N]
//   kamel impute   --model city.kamel --data sparse.csv --out imputed.csv
//   kamel evaluate --model city.kamel --data dense.csv --sparseness 1000
//   kamel fsck     city.kamel                          verify a snapshot
//
// Trajectories are CSV (`trajectory_id,lat,lng,time`); `--geojson` adds a
// GeoJSON export for map inspection.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/kamel.h"
#include "eval/bootstrap.h"
#include "eval/evaluator.h"
#include "eval/scenario.h"
#include "io/trajectory_csv.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace kamel::cli {
namespace {

// ---- tiny flag parser ------------------------------------------------

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  bool Has(const std::string& name) const { return values_.count(name); }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

KamelOptions OptionsFromFlags(const Flags& flags) {
  KamelOptions options = BenchKamelOptions();
  options.hex_edge_m = flags.GetDouble("hex-edge", options.hex_edge_m);
  if (flags.Get("grid") == "square") options.grid_type = GridType::kSquare;
  options.bert.train.steps =
      flags.GetInt("steps", options.bert.train.steps);
  options.model_token_threshold =
      flags.GetInt("model-threshold", options.model_token_threshold);
  options.pyramid_height = static_cast<int>(
      flags.GetInt("pyramid-height", options.pyramid_height));
  options.pyramid_levels = static_cast<int>(
      flags.GetInt("pyramid-levels", options.pyramid_levels));
  options.beam_size =
      static_cast<int>(flags.GetInt("beam", options.beam_size));
  options.max_gap_m = flags.GetDouble("max-gap", options.max_gap_m);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  if (flags.Get("method") == "iterative") {
    options.method = ImputeMethod::kIterativeBert;
  }
  options.impute_deadline_seconds =
      flags.GetDouble("deadline", options.impute_deadline_seconds);
  return options;
}

int LoadOrFail(Kamel* system, const Flags& flags) {
  LoadReport report;
  const Status loaded = system->LoadFromFile(flags.Get("model"), &report);
  if (!loaded.ok()) return Fail(loaded);
  if (report.partial()) {
    std::fprintf(stderr, "warning: partial snapshot load: %s\n",
                 report.Summary().c_str());
  }
  return 0;
}

// ---- subcommands -----------------------------------------------------

int Generate(const Flags& flags) {
  const std::string kind = flags.Get("scenario", "porto");
  ScenarioSpec spec;
  if (kind == "porto") {
    spec = PortoLikeSpec(static_cast<uint64_t>(flags.GetInt("seed", 11)));
  } else if (kind == "jakarta") {
    spec = JakartaLikeSpec(static_cast<uint64_t>(flags.GetInt("seed", 13)));
  } else if (kind == "mini") {
    spec = MiniSpec(static_cast<uint64_t>(flags.GetInt("seed", 17)));
  } else {
    std::fprintf(stderr, "unknown scenario '%s' (porto|jakarta|mini)\n",
                 kind.c_str());
    return 1;
  }
  if (flags.Has("trips")) {
    spec.trips.num_trips = static_cast<int>(flags.GetInt("trips", 100));
  }
  const std::string out = flags.Get("out", ".");
  const SimScenario scenario = BuildScenario(spec);
  Status status =
      io::WriteCsvFile(scenario.train, out + "/train.csv");
  if (status.ok()) {
    status = io::WriteCsvFile(scenario.test, out + "/test.csv");
  }
  if (status.ok() && flags.Has("geojson")) {
    status = io::WriteGeoJsonFile(scenario.test, out + "/test.geojson");
  }
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu train / %zu test trajectories under %s\n",
              scenario.train.trajectories.size(),
              scenario.test.trajectories.size(), out.c_str());
  return 0;
}

int SparsifyCmd(const Flags& flags) {
  auto data = io::ReadCsvFile(flags.Get("data"));
  if (!data.ok()) return Fail(data.status());
  const double distance = flags.GetDouble("distance", 1000.0);
  const TrajectoryDataset sparse = SparsifyDataset(*data, distance);
  const Status status = io::WriteCsvFile(sparse, flags.Get("out"));
  if (!status.ok()) return Fail(status);
  std::printf("sparsified %zu trajectories at %.0f m\n",
              sparse.trajectories.size(), distance);
  return 0;
}

int Train(const Flags& flags) {
  auto data = io::ReadCsvFile(flags.Get("data"));
  if (!data.ok()) return Fail(data.status());
  Kamel system(OptionsFromFlags(flags));
  const Status trained = system.Train(*data);
  if (!trained.ok()) return Fail(trained);
  const Status saved = system.SaveToFile(flags.Get("model", "model.kamel"));
  if (!saved.ok()) return Fail(saved);
  std::printf(
      "trained on %zu trajectories: %d models (%d single, %d neighbor), "
      "%.1fs, speed bound %.1f m/s\n",
      data->trajectories.size(), system.repository().num_models(),
      system.repository().num_single_models(),
      system.repository().num_neighbor_models(),
      system.total_train_seconds(), system.max_speed_mps());
  return 0;
}

// Parses `--overload-policy`. A bad value is a usage error (exit 2, like
// any other invalid command line), not a runtime failure, so this runs
// before the engine is built.
int ParseOverloadPolicy(const Flags& flags, OverloadPolicy* policy) {
  const std::string name = flags.Get("overload-policy", "block");
  if (name == "block") {
    *policy = OverloadPolicy::kBlock;
  } else if (name == "shed") {
    *policy = OverloadPolicy::kShed;
  } else if (name == "degrade") {
    *policy = OverloadPolicy::kDegrade;
  } else {
    std::fprintf(stderr,
                 "unknown --overload-policy '%s' (block|shed|degrade)\n",
                 name.c_str());
    return 2;
  }
  return 0;
}

// Builds the concurrent serving engine for impute/evaluate. `--threads 1`
// (the default) serves on a single pool thread; outputs are byte-identical
// at any thread count, so parallelism is purely a throughput knob.
// `--max-pending N` bounds queued imputations and `--overload-policy
// block|shed|degrade` picks what happens beyond the bound (admission
// control; the default 0 is unbounded and fully deterministic).
Result<std::unique_ptr<ServingEngine>> MakeEngine(Kamel* system,
                                                  const Flags& flags,
                                                  OverloadPolicy policy) {
  KAMEL_ASSIGN_OR_RETURN(auto snapshot, system->Snapshot());
  ServingOptions serving;
  serving.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  serving.max_pending = static_cast<int>(flags.GetInt("max-pending", 0));
  serving.overload_policy = policy;
  return std::make_unique<ServingEngine>(std::move(snapshot), serving);
}

int Impute(const Flags& flags) {
  OverloadPolicy policy;
  if (int rc = ParseOverloadPolicy(flags, &policy); rc != 0) return rc;
  Kamel system(OptionsFromFlags(flags));
  if (int rc = LoadOrFail(&system, flags); rc != 0) return rc;
  auto data = io::ReadCsvFile(flags.Get("data"));
  if (!data.ok()) return Fail(data.status());

  auto engine = MakeEngine(&system, flags, policy);
  if (!engine.ok()) return Fail(engine.status());
  auto results = (*engine)->ImputeBatch(*data);
  if (!results.ok()) return Fail(results.status());
  TrajectoryDataset imputed;
  int segments = 0;
  int failed = 0;
  for (auto& result : *results) {
    segments += result.stats.segments;
    failed += result.stats.failed_segments;
    imputed.trajectories.push_back(std::move(result.trajectory));
  }
  const Status written =
      io::WriteCsvFile(imputed, flags.Get("out", "imputed.csv"));
  if (!written.ok()) return Fail(written);
  if (flags.Has("geojson")) {
    const Status gj =
        io::WriteGeoJsonFile(imputed, flags.Get("out") + ".geojson");
    if (!gj.ok()) return Fail(gj);
  }
  std::printf("imputed %zu trajectories: %d gaps, %d failures (%.1f%%)\n",
              imputed.trajectories.size(), segments, failed,
              segments > 0 ? 100.0 * failed / segments : 0.0);
  return 0;
}

int Evaluate(const Flags& flags) {
  OverloadPolicy policy;
  if (int rc = ParseOverloadPolicy(flags, &policy); rc != 0) return rc;
  Kamel system(OptionsFromFlags(flags));
  if (int rc = LoadOrFail(&system, flags); rc != 0) return rc;
  auto dense = io::ReadCsvFile(flags.Get("data"));
  if (!dense.ok()) return Fail(dense.status());

  const Evaluator evaluator(&system.projection());
  auto engine = MakeEngine(&system, flags, policy);
  if (!engine.ok()) return Fail(engine.status());
  auto run = evaluator.RunEngine(engine->get(), *dense,
                                 flags.GetDouble("sparseness", 1000.0));
  if (!run.ok()) return Fail(run.status());
  ScoreConfig score;
  score.delta_m = flags.GetDouble("delta", 50.0);
  score.max_gap_m = flags.GetDouble("max-gap", 100.0);
  const ScoredWithIntervals scored =
      ScoreWithBootstrap(evaluator, *run, score);
  std::printf("recall    %.3f  [%.3f, %.3f]\n", scored.recall.value,
              scored.recall.lo, scored.recall.hi);
  std::printf("precision %.3f  [%.3f, %.3f]\n", scored.precision.value,
              scored.precision.lo, scored.precision.hi);
  std::printf("failure   %.3f  [%.3f, %.3f]\n", scored.failure_rate.value,
              scored.failure_rate.lo, scored.failure_rate.hi);
  return 0;
}

int Fsck(int argc, char** argv, const Flags& flags) {
  // Accept the snapshot as a positional argument or via --model.
  std::string path = flags.Get("model");
  if (path.empty() && argc > 2 && std::strncmp(argv[2], "--", 2) != 0) {
    path = argv[2];
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: kamel fsck <snapshot>\n");
    return 2;
  }
  auto report = FsckSnapshot(path);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s: snapshot version %u, %zu sections\n", path.c_str(),
              report->version, report->sections.size());
  std::printf("  %-12s %12s %12s  %s\n", "section", "offset", "bytes",
              "crc");
  for (const auto& section : report->sections) {
    std::printf("  %-12s %12zu %12llu  %s\n", section.name.c_str(),
                section.payload_offset,
                static_cast<unsigned long long>(section.length),
                section.crc_ok ? "ok" : "CORRUPT");
  }
  if (!report->truncation_error.empty()) {
    std::printf("  TRUNCATED: %s\n", report->truncation_error.c_str());
  }
  if (!report->clean()) {
    std::printf("%s: snapshot is DAMAGED\n", path.c_str());
    return 1;
  }
  std::printf("%s: snapshot is clean\n", path.c_str());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: kamel <command> [flags]\n"
      "  generate  --scenario porto|jakarta|mini --out DIR [--trips N]\n"
      "            [--geojson] [--seed N]\n"
      "  sparsify  --data in.csv --distance METERS --out out.csv\n"
      "  train     --data train.csv --model out.kamel [--steps N]\n"
      "            [--hex-edge M] [--grid hex|square] [--model-threshold N]\n"
      "            [--pyramid-height H] [--pyramid-levels L]\n"
      "            (small datasets: --pyramid-height 0 --pyramid-levels 1\n"
      "             trains one model over the whole area)\n"
      "  impute    --model m.kamel --data sparse.csv --out imputed.csv\n"
      "            [--geojson] [--beam N] [--method beam|iterative]\n"
      "  evaluate  --model m.kamel --data dense.csv [--sparseness M]\n"
      "            [--delta M]\n"
      "  fsck      SNAPSHOT        verify framing and checksums; exit 0 =\n"
      "            clean, 1 = damaged or unreadable (the damaged section\n"
      "            is named), 2 = usage error\n"
      "  (impute/evaluate: [--threads N] imputes trajectories in parallel\n"
      "   on N pool threads (0 = hardware concurrency); outputs are\n"
      "   byte-identical at any thread count.\n"
      "   [--deadline SECONDS] bounds each Impute call; overruns fall\n"
      "   back to straight lines instead of stalling.\n"
      "   [--max-pending N] bounds queued imputations (0 = unbounded);\n"
      "   [--overload-policy block|shed|degrade] picks what happens\n"
      "   beyond the bound: callers wait, are refused, or get straight-\n"
      "   line service)\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "generate") return Generate(flags);
  if (command == "sparsify") return SparsifyCmd(flags);
  if (command == "train") return Train(flags);
  if (command == "impute") return Impute(flags);
  if (command == "evaluate") return Evaluate(flags);
  if (command == "fsck") return Fsck(argc, argv, flags);
  return Usage();
}

}  // namespace
}  // namespace kamel::cli

int main(int argc, char** argv) { return kamel::cli::Main(argc, argv); }
