// Corpus-replay fuzz harness for the trajectory CSV parser. Each input
// is fed to io::ReadCsvString as-is. Invariants, checked on every input:
//
//   * the parser never crashes — malformed text is refused with a
//     Status, not an exception or a fault;
//   * accepted input round-trips: re-serializing the parsed dataset and
//     parsing that again must succeed and serialize identically (the
//     writer is the canonical form, so write->read->write is a fixed
//     point).
//
// Usage:
//   trajectory_csv_fuzz <corpus-dir>          replay + KAMEL_FUZZ_ITERS
//                                             mutation rounds (default
//                                             2000; KAMEL_FUZZ_SEED
//                                             picks the stream)
//   trajectory_csv_fuzz --write-seeds <dir>   regenerate the seed corpus
//
// Exit 0 = all invariants held, 1 = violation, 2 = usage/setup error.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz_common.h"
#include "io/trajectory_csv.h"

namespace kamel::fuzz {
namespace {

int RunOne(const std::vector<uint8_t>& bytes) {
  const std::string text(bytes.begin(), bytes.end());
  auto parsed = io::ReadCsvString(text);
  if (!parsed.ok()) return 0;  // refusing malformed text is correct

  const std::string canonical = io::WriteCsvString(*parsed);
  auto reparsed = io::ReadCsvString(canonical);
  if (!reparsed.ok()) {
    std::fprintf(stderr,
                 "VIOLATION: writer output does not reparse: %s\n",
                 reparsed.status().ToString().c_str());
    return 1;
  }
  if (io::WriteCsvString(*reparsed) != canonical) {
    std::fprintf(stderr,
                 "VIOLATION: write->read->write is not a fixed point\n");
    return 1;
  }
  return 0;
}

int WriteSeeds(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::vector<std::pair<std::string, std::string>> seeds = {
      {"valid.csv",
       "trajectory_id,lat,lng,time\n"
       "1,41.1579,-8.6291,0\n"
       "1,41.1602,-8.6275,60\n"
       "1,41.1625,-8.6259,120\n"
       "2,41.1400,-8.6100,0\n"
       "2,41.1410,-8.6090,30\n"},
      {"comments.csv",
       "# porto mini export\n"
       "trajectory_id,lat,lng,time\n"
       "\n"
       "9,41.0,-8.0,0\n"
       "# mid-file comment\n"
       "9,41.1,-8.1,10\n"},
      {"unordered.csv",
       "trajectory_id,lat,lng,time\n"
       "3,41.0,-8.0,100\n"
       "3,41.1,-8.1,50\n"},
      {"truncated.csv",
       "trajectory_id,lat,lng,time\n"
       "4,41.0,-8.0\n"},
      {"garbage.csv", "\xff\xfenot,a,csv\n\x00\x01\x02"},
  };
  for (const auto& [name, text] : seeds) {
    std::vector<uint8_t> bytes(text.begin(), text.end());
    if (!WriteFileBytes(dir + "/" + name, bytes)) {
      std::fprintf(stderr, "seed '%s': write failed\n", name.c_str());
      return 2;
    }
  }
  std::printf("wrote %zu seeds under %s\n", seeds.size(), dir.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--write-seeds") {
    return WriteSeeds(argv[2]);
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: trajectory_csv_fuzz <corpus-dir> | --write-seeds "
                 "<dir>\n");
    return 2;
  }
  const auto corpus = LoadCorpus(argv[1]);
  if (corpus.empty()) {
    std::fprintf(stderr, "empty corpus at %s\n", argv[1]);
    return 2;
  }
  for (const auto& [name, bytes] : corpus) {
    if (const int rc = RunOne(bytes); rc != 0) {
      std::fprintf(stderr, "corpus entry '%s' failed\n", name.c_str());
      return rc;
    }
  }
  const long iters = EnvLong("KAMEL_FUZZ_ITERS", 2000);
  const uint64_t seed =
      static_cast<uint64_t>(EnvLong("KAMEL_FUZZ_SEED", 0x5EED));
  std::mt19937_64 rng(seed);
  for (long i = 0; i < iters; ++i) {
    const auto& base = corpus[rng() % corpus.size()];
    if (const int rc = RunOne(Mutate(base.second, &rng)); rc != 0) {
      std::fprintf(stderr,
                   "mutation round %ld of '%s' failed (seed 0x%llx)\n", i,
                   base.first.c_str(),
                   static_cast<unsigned long long>(seed));
      return rc;
    }
  }
  std::printf(
      "trajectory_csv_fuzz: %zu corpus entries + %ld mutants clean\n",
      corpus.size(), iters);
  return 0;
}

}  // namespace
}  // namespace kamel::fuzz

int main(int argc, char** argv) { return kamel::fuzz::Main(argc, argv); }
