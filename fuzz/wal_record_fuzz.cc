// Corpus-replay fuzz harness for the WAL record reader. Each input is
// the byte image of one segment file; the harness materializes it as
// `wal-0000000000000001.log` in a scratch directory and drives both
// readers over it: FsckWal (pure scan) and WriteAheadLog::Open (replay +
// torn-tail truncation). Invariants, checked on every input:
//
//   * neither reader crashes, hangs, or over-allocates (the 64 MB record
//     bound must hold against hostile length fields);
//   * FsckWal never fails on a readable directory — damage is reported,
//     not thrown;
//   * when Open accepts, every surviving record survives both payload
//     decoders (they may refuse, they may not crash);
//   * recovery is idempotent: reopening the directory Open just repaired
//     succeeds, reports no torn tail, and yields the same record count.
//
// Usage:
//   wal_record_fuzz <corpus-dir>          replay + KAMEL_FUZZ_ITERS
//                                         mutation rounds (default 2000;
//                                         KAMEL_FUZZ_SEED picks the
//                                         stream, default 0x5EED)
//   wal_record_fuzz --write-seeds <dir>   regenerate the seed corpus
//
// Exit 0 = all invariants held, 1 = violation (the offending round is
// named), 2 = usage/setup error.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz_common.h"
#include "io/wal.h"

namespace kamel::fuzz {
namespace {

namespace fs = std::filesystem;

const char kScratch[] = "/tmp/kamel_wal_fuzz_scratch";

int RunOne(const std::vector<uint8_t>& bytes) {
  std::error_code ec;
  fs::remove_all(kScratch, ec);
  fs::create_directories(kScratch, ec);
  const std::string segment =
      std::string(kScratch) + "/wal-0000000000000001.log";
  if (!WriteFileBytes(segment, bytes)) {
    std::fprintf(stderr, "cannot write scratch segment\n");
    return 2;
  }

  auto fsck = FsckWal(kScratch);
  if (!fsck.ok()) {
    std::fprintf(stderr, "VIOLATION: FsckWal failed on a readable dir: %s\n",
                 fsck.status().ToString().c_str());
    return 1;
  }

  WalOptions options;
  options.dir = kScratch;
  WalRecoveryReport report;
  auto log = WriteAheadLog::Open(options, &report);
  if (!log.ok()) return 0;  // refusing damaged input is correct behavior
  log->reset();
  for (const WalRecord& record : report.records) {
    // The log is payload-agnostic, so any payload may sit under any
    // type; both codecs must tolerate all of them.
    (void)DecodeTrajectoryPayload(record.payload);
    (void)DecodeLsnPayload(record.payload);
  }

  WalRecoveryReport second;
  auto reopened = WriteAheadLog::Open(options, &second);
  if (!reopened.ok()) {
    std::fprintf(stderr,
                 "VIOLATION: reopen after successful recovery failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  reopened->reset();
  if (second.torn_tail_bytes != 0) {
    std::fprintf(stderr,
                 "VIOLATION: recovery left a torn tail behind (%zu bytes)\n",
                 second.torn_tail_bytes);
    return 1;
  }
  if (second.records.size() != report.records.size()) {
    std::fprintf(stderr,
                 "VIOLATION: recovery not idempotent (%zu records, then "
                 "%zu)\n",
                 report.records.size(), second.records.size());
    return 1;
  }
  return 0;
}

/// Reads back the first (only) segment the seed builder produced.
std::vector<uint8_t> SegmentBytes(const std::string& dir) {
  auto corpus = LoadCorpus(dir);
  return corpus.empty() ? std::vector<uint8_t>{} : corpus.front().second;
}

int WriteSeeds(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string scratch = std::string(kScratch) + "_seed";

  Trajectory trajectory;
  trajectory.id = 7;
  for (int i = 0; i < 5; ++i) {
    trajectory.points.push_back(
        {41.1 + 0.001 * i, -8.6 + 0.0005 * i, 60.0 * i});
  }

  const auto build = [&](const std::string& name, auto&& fill,
                         size_t tear_bytes) -> int {
    fs::remove_all(scratch, ec);
    WalOptions options;
    options.dir = scratch;
    auto log = WriteAheadLog::Open(options);
    if (!log.ok()) {
      std::fprintf(stderr, "seed '%s': open failed: %s\n", name.c_str(),
                   log.status().ToString().c_str());
      return 2;
    }
    if (const Status status = fill(log->get()); !status.ok()) {
      std::fprintf(stderr, "seed '%s': fill failed: %s\n", name.c_str(),
                   status.ToString().c_str());
      return 2;
    }
    log->reset();
    std::vector<uint8_t> bytes = SegmentBytes(scratch);
    if (tear_bytes > 0 && bytes.size() > tear_bytes) {
      bytes.resize(bytes.size() - tear_bytes);
    }
    if (!WriteFileBytes(dir + "/" + name, bytes)) {
      std::fprintf(stderr, "seed '%s': write failed\n", name.c_str());
      return 2;
    }
    return 0;
  };

  const auto submits = [&](WriteAheadLog* log) -> Status {
    for (int i = 0; i < 3; ++i) {
      Trajectory one = trajectory;
      one.id = trajectory.id + i;
      KAMEL_ASSIGN_OR_RETURN(
          uint64_t lsn,
          log->Append(WalRecordType::kSubmit, EncodeTrajectoryPayload(one)));
      (void)lsn;
    }
    return Status::OK();
  };
  const auto mixed = [&](WriteAheadLog* log) -> Status {
    KAMEL_RETURN_NOT_OK(submits(log));
    KAMEL_ASSIGN_OR_RETURN(
        uint64_t store_lsn,
        log->Append(WalRecordType::kStoreAppend,
                    EncodeTrajectoryPayload(trajectory)));
    (void)store_lsn;
    KAMEL_ASSIGN_OR_RETURN(
        uint64_t marker,
        log->Append(WalRecordType::kBatchTrained, EncodeLsnPayload(3)));
    (void)marker;
    return log->Checkpoint(3);
  };

  int rc = 0;
  rc = std::max(rc, build("empty.bin", [](WriteAheadLog*) {
    return Status::OK();
  }, 0));
  rc = std::max(rc, build("submits.bin", submits, 0));
  rc = std::max(rc, build("mixed.bin", mixed, 0));
  rc = std::max(rc, build("torn.bin", submits, 7));
  std::vector<uint8_t> garbage;
  for (const char c : std::string("this is not a wal segment\n")) {
    garbage.push_back(static_cast<uint8_t>(c));
  }
  if (!WriteFileBytes(dir + "/garbage.bin", garbage)) rc = 2;
  if (rc == 0) std::printf("wrote 5 seeds under %s\n", dir.c_str());
  return rc;
}

int Main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--write-seeds") {
    return WriteSeeds(argv[2]);
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: wal_record_fuzz <corpus-dir> | --write-seeds "
                 "<dir>\n");
    return 2;
  }
  const auto corpus = LoadCorpus(argv[1]);
  if (corpus.empty()) {
    std::fprintf(stderr, "empty corpus at %s\n", argv[1]);
    return 2;
  }
  for (const auto& [name, bytes] : corpus) {
    if (const int rc = RunOne(bytes); rc != 0) {
      std::fprintf(stderr, "corpus entry '%s' failed\n", name.c_str());
      return rc;
    }
  }
  const long iters = EnvLong("KAMEL_FUZZ_ITERS", 2000);
  const uint64_t seed =
      static_cast<uint64_t>(EnvLong("KAMEL_FUZZ_SEED", 0x5EED));
  std::mt19937_64 rng(seed);
  for (long i = 0; i < iters; ++i) {
    const auto& base = corpus[rng() % corpus.size()];
    if (const int rc = RunOne(Mutate(base.second, &rng)); rc != 0) {
      std::fprintf(stderr,
                   "mutation round %ld of '%s' failed (seed 0x%llx)\n", i,
                   base.first.c_str(),
                   static_cast<unsigned long long>(seed));
      return rc;
    }
  }
  std::printf("wal_record_fuzz: %zu corpus entries + %ld mutants clean\n",
              corpus.size(), iters);
  return 0;
}

}  // namespace
}  // namespace kamel::fuzz

int main(int argc, char** argv) { return kamel::fuzz::Main(argc, argv); }
