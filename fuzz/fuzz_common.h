// Shared plumbing for the corpus-replay fuzz harnesses (built only under
// -DKAMEL_FUZZ=ON): corpus loading, seed writing, and a deterministic
// structure-unaware byte mutator. No libFuzzer dependency — each harness
// is a plain binary that replays its checked-in corpus and then runs a
// bounded number of mutation rounds from a fixed RNG seed, so a CI run
// is reproducible and a failure names the exact (seed, round) to replay.
#ifndef KAMEL_FUZZ_FUZZ_COMMON_H_
#define KAMEL_FUZZ_FUZZ_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <utility>
#include <vector>

namespace kamel::fuzz {

inline long EnvLong(const char* name, long fallback) {
  if (const char* env = std::getenv(name)) {
    const long parsed = std::atol(env);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

/// Corpus entries in sorted-name order (directory iteration order is
/// filesystem-dependent; the fuzz schedule must not be).
inline std::vector<std::pair<std::string, std::vector<uint8_t>>> LoadCorpus(
    const std::string& dir) {
  std::vector<std::pair<std::string, std::vector<uint8_t>>> corpus;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    corpus.emplace_back(entry.path().filename().string(),
                        std::move(bytes));
  }
  std::sort(corpus.begin(), corpus.end());
  return corpus;
}

inline bool WriteFileBytes(const std::string& path,
                           const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

/// 1..8 random edits: bit flips, byte overwrites, truncations, single
/// insertions, and block duplications. Structure-unaware on purpose —
/// the seeds supply structure, the mutator supplies damage.
inline std::vector<uint8_t> Mutate(std::vector<uint8_t> data,
                                   std::mt19937_64* rng) {
  auto rand = [rng](uint64_t bound) -> uint64_t {
    return bound == 0 ? 0 : (*rng)() % bound;
  };
  const int edits = 1 + static_cast<int>(rand(8));
  for (int e = 0; e < edits; ++e) {
    switch (rand(5)) {
      case 0:
        if (!data.empty()) {
          data[rand(data.size())] ^= static_cast<uint8_t>(1u << rand(8));
        }
        break;
      case 1:
        if (!data.empty()) {
          data[rand(data.size())] = static_cast<uint8_t>(rand(256));
        }
        break;
      case 2:
        data.resize(rand(data.size() + 1));  // truncate (possibly to 0)
        break;
      case 3:
        data.insert(data.begin() + static_cast<long>(rand(data.size() + 1)),
                    static_cast<uint8_t>(rand(256)));
        break;
      case 4:
        if (data.size() >= 2) {
          const size_t begin = rand(data.size() - 1);
          const size_t len =
              1 + rand(std::min<size_t>(64, data.size() - begin));
          std::vector<uint8_t> block(data.begin() + begin,
                                     data.begin() + begin + len);
          const size_t at = rand(data.size() + 1);
          data.insert(data.begin() + static_cast<long>(at), block.begin(),
                      block.end());
        }
        break;
    }
  }
  return data;
}

}  // namespace kamel::fuzz

#endif  // KAMEL_FUZZ_FUZZ_COMMON_H_
