#ifndef KAMEL_NN_LAYERS_H_
#define KAMEL_NN_LAYERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/backend/backend.h"
#include "nn/backend/quant.h"
#include "nn/tensor.h"

namespace kamel::nn {

/// A trainable tensor with its gradient accumulator.
///
/// A param loaded from a quantized (serving-only) snapshot holds its
/// weights in `quant` instead; `value` and `grad` are then empty, so the
/// training entry points (Forward/Backward) refuse to touch it — a
/// quantized model can only serve.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  QuantMatrix quant;

  Param() = default;
  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  bool quantized() const { return !quant.empty(); }

  /// Replaces the fp32 storage with quantized storage (serving only).
  void SetQuantized(QuantMatrix q) {
    quant = std::move(q);
    value = Tensor();
    grad = Tensor();
  }
};

/// Affine map y = x W + b on rank-2 inputs [N, in] -> [N, out].
///
/// Layers in this library follow a cache-and-replay contract: Forward
/// stores whatever activations Backward needs, Backward consumes the most
/// recent Forward and *accumulates* parameter gradients (callers zero grads
/// between optimizer steps).
class Linear {
 public:
  Linear(std::string name, int64_t in_features, int64_t out_features,
         Rng* rng);

  /// x: [N, in] -> [N, out]. Training-only: refuses quantized weights.
  Tensor Forward(const Tensor& x);

  /// Inference-only forward: same math as Forward but writes no caches, so
  /// it is safe to call concurrently from many threads on a shared, frozen
  /// layer. Every layer in this file pairs its Forward with such an Apply.
  /// Runs on the process-wide active backend; `act` fuses an activation
  /// into the output write (the backend may do it in-register).
  Tensor Apply(const Tensor& x, Activation act = Activation::kNone) const;

  /// grad_out: [N, out] -> gradient w.r.t. x [N, in]; accumulates into
  /// the weight and bias gradients.
  Tensor Backward(const Tensor& grad_out);

  void CollectParams(std::vector<Param*>* out);

  int64_t in_features() const {
    return weight_.quantized() ? weight_.quant.rows() : weight_.value.dim(0);
  }
  int64_t out_features() const {
    return weight_.quantized() ? weight_.quant.cols() : weight_.value.dim(1);
  }

 private:
  Param weight_;  // [in, out]
  Param bias_;    // [out]
  Tensor x_cache_;
};

/// Layer normalization over the last dimension of [N, D] inputs.
class LayerNorm {
 public:
  LayerNorm(std::string name, int64_t dim, float eps = 1e-5f);

  Tensor Forward(const Tensor& x);
  /// Cache-free, thread-safe inference forward.
  Tensor Apply(const Tensor& x) const;
  Tensor Backward(const Tensor& grad_out);
  void CollectParams(std::vector<Param*>* out);

 private:
  Param gamma_;  // [D]
  Param beta_;   // [D]
  float eps_;
  Tensor xhat_cache_;     // [N, D]
  std::vector<float> inv_std_cache_;  // [N]
};

/// Inverted dropout. In train mode zeroes each element with probability p
/// and scales survivors by 1/(1-p); in eval mode it is the identity.
class Dropout {
 public:
  explicit Dropout(double p) : p_(p) {}

  Tensor Forward(const Tensor& x, bool train, Rng* rng);
  Tensor Backward(const Tensor& grad_out);

  double p() const { return p_; }

 private:
  double p_;
  bool identity_ = true;
  std::vector<uint8_t> kept_;
};

/// Token embedding lookup table [vocab, D].
class Embedding {
 public:
  Embedding(std::string name, int64_t vocab, int64_t dim, Rng* rng);

  /// ids: N token indices -> [N, D].
  Tensor Forward(const std::vector<int32_t>& ids);

  /// Cache-free, thread-safe inference lookup.
  Tensor Lookup(const std::vector<int32_t>& ids) const;

  /// Accumulates row gradients; returns nothing (ids are not
  /// differentiable).
  void Backward(const Tensor& grad_out);

  void CollectParams(std::vector<Param*>* out);

  int64_t vocab_size() const {
    return table_.quantized() ? table_.quant.rows() : table_.value.dim(0);
  }
  int64_t dim() const {
    return table_.quantized() ? table_.quant.cols() : table_.value.dim(1);
  }

 private:
  Param table_;  // [vocab, D]
  std::vector<int32_t> ids_cache_;
};

}  // namespace kamel::nn

#endif  // KAMEL_NN_LAYERS_H_
