#ifndef KAMEL_NN_OPS_H_
#define KAMEL_NN_OPS_H_

#include <cmath>
#include <cstdint>

namespace kamel::nn {

/// GELU of one value (tanh approximation, as in the original BERT
/// release). The single definition behind GeluForward and every fused
/// backend epilogue, so "gelu" means the same bits everywhere.
inline float GeluOne(float v) {
  constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
  constexpr float kGeluA = 0.044715f;
  const float u = kGeluC * (v + kGeluA * v * v * v);
  return 0.5f * v * (1.0f + std::tanh(u));
}

/// GELU activation applied elementwise: y[i] = gelu(x[i]).
void GeluForward(const float* x, float* y, int64_t n);

/// Elementwise GELU gradient: dx[i] = dy[i] * gelu'(x[i]).
/// `x` must be the forward input.
void GeluBackward(const float* x, const float* dy, float* dx, int64_t n);

/// Numerically stable softmax over one row of length n, in place allowed
/// (y may alias x).
void SoftmaxRow(const float* x, float* y, int64_t n);

/// Softmax Jacobian-vector product for one row:
/// dx[j] = p[j] * (dy[j] - sum_k dy[k] * p[k]), where p is the forward
/// softmax output.
void SoftmaxBackwardRow(const float* p, const float* dy, float* dx,
                        int64_t n);

}  // namespace kamel::nn

#endif  // KAMEL_NN_OPS_H_
