#ifndef KAMEL_NN_ATTENTION_H_
#define KAMEL_NN_ATTENTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace kamel::nn {

/// Multi-head scaled-dot-product self-attention (Vaswani et al.),
/// bidirectional as in BERT.
///
/// Input/output tensors are [B*T, D] (flattened batch of sequences);
/// `key_mask` has one float per (batch, position): 1 for real tokens, 0 for
/// padding. Padded keys receive -inf scores before the softmax, so no
/// probability mass ever attends to padding.
class MultiHeadAttention {
 public:
  MultiHeadAttention(std::string name, int64_t d_model, int64_t num_heads,
                     Rng* rng);

  /// x: [B*T, D]; key_mask: B*T entries. Caches everything Backward needs.
  Tensor Forward(const Tensor& x, const std::vector<float>& key_mask,
                 int64_t batch, int64_t seq_len);

  /// Inference-only forward: identical math to Forward, but all scratch
  /// lives on the stack — no caches, safe to call concurrently on a shared,
  /// frozen layer.
  Tensor Apply(const Tensor& x, const std::vector<float>& key_mask,
               int64_t batch, int64_t seq_len) const;

  /// grad_out: [B*T, D] -> gradient w.r.t. x; accumulates weight grads.
  Tensor Backward(const Tensor& grad_out);

  void CollectParams(std::vector<Param*>* out);

  int64_t num_heads() const { return num_heads_; }
  int64_t head_dim() const { return head_dim_; }

 private:
  int64_t d_model_;
  int64_t num_heads_;
  int64_t head_dim_;
  Linear qkv_;   // [D, 3D]
  Linear proj_;  // [D, D]

  // Forward caches.
  int64_t batch_ = 0;
  int64_t seq_len_ = 0;
  Tensor qkv_cache_;    // [B*T, 3D]
  Tensor probs_cache_;  // [B*H*T*T] attention probabilities
};

}  // namespace kamel::nn

#endif  // KAMEL_NN_ATTENTION_H_
