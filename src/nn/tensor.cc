#include "nn/tensor.h"

#include <cmath>
#include <cstring>
#include <numeric>

namespace kamel::nn {

namespace {
int64_t ElementCount(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    KAMEL_CHECK(d > 0, "tensor extents must be positive");
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(ElementCount(shape_)), 0.0f);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng* rng, double stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->NextGaussian(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) t[i] = value;
  return t;
}

void Tensor::SetZero() {
  std::memset(data_.data(), 0, data_.size() * sizeof(float));
}

void Tensor::Reshape(std::vector<int64_t> shape) {
  KAMEL_CHECK(ElementCount(shape) == size(),
              "reshape must preserve element count");
  shape_ = std::move(shape);
}

double Tensor::Sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

float Tensor::AbsMax() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Tensor::ShapeString() const {
  std::string s = "f32[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(shape_[i]);
  }
  return s + "]";
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

}  // namespace kamel::nn
