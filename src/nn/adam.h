#ifndef KAMEL_NN_ADAM_H_
#define KAMEL_NN_ADAM_H_

#include <cstdint>
#include <vector>

#include "nn/layers.h"

namespace kamel::nn {

/// Adam optimizer hyperparameters (Kingma & Ba), the optimizer used by the
/// original BERT release.
struct AdamOptions {
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  /// Decoupled L2 weight decay (AdamW); 0 disables.
  double weight_decay = 0.0;
  /// Global-norm gradient clipping; <= 0 disables.
  double clip_norm = 1.0;
};

/// Adam over a fixed parameter list. The parameter list is captured at
/// construction; moments are keyed by position, so the list must not
/// change between steps.
class AdamOptimizer {
 public:
  AdamOptimizer(std::vector<Param*> params, AdamOptions options = {});

  /// Applies one update with the given learning rate, then leaves grads
  /// untouched (callers zero them before the next accumulation).
  void Step(double lr);

  int64_t step_count() const { return step_; }

 private:
  std::vector<Param*> params_;
  AdamOptions options_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int64_t step_ = 0;
};

/// Linear warmup followed by linear decay to zero — BERT's schedule.
/// Returns the learning rate for `step` in [0, total_steps).
double WarmupLinearDecay(double peak_lr, int64_t step, int64_t warmup_steps,
                         int64_t total_steps);

}  // namespace kamel::nn

#endif  // KAMEL_NN_ADAM_H_
