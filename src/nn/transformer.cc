#include "nn/transformer.h"

#include <cmath>

#include "nn/blas.h"
#include "nn/ops.h"

namespace kamel::nn {

int64_t BertConfig::NumParameters() const {
  int64_t n = vocab_size * d_model;       // token embeddings
  n += max_seq_len * d_model;             // position embeddings
  const int64_t per_block = 2 * (2 * d_model)                // two LayerNorms
                            + d_model * 3 * d_model + 3 * d_model  // qkv
                            + d_model * d_model + d_model          // proj
                            + d_model * ffn_dim + ffn_dim          // fc1
                            + ffn_dim * d_model + d_model;         // fc2
  n += num_layers * per_block;
  n += 2 * d_model;                       // final LayerNorm
  n += d_model * vocab_size + vocab_size; // MLM head
  return n;
}

EncoderBlock::EncoderBlock(const std::string& name, const BertConfig& config,
                           Rng* rng)
    : ln1_(name + ".ln1", config.d_model),
      attention_(name + ".attn", config.d_model, config.num_heads, rng),
      attn_dropout_(config.dropout),
      ln2_(name + ".ln2", config.d_model),
      fc1_(name + ".fc1", config.d_model, config.ffn_dim, rng),
      fc2_(name + ".fc2", config.ffn_dim, config.d_model, rng),
      ffn_dropout_(config.dropout) {}

Tensor EncoderBlock::Forward(const Tensor& x,
                             const std::vector<float>& key_mask,
                             int64_t batch, int64_t seq_len, bool train,
                             Rng* rng) {
  // x1 = x + Dropout(MHA(LN1(x)))
  Tensor attn_out = attn_dropout_.Forward(
      attention_.Forward(ln1_.Forward(x), key_mask, batch, seq_len), train,
      rng);
  Tensor x1(x.shape());
  for (int64_t i = 0; i < x.size(); ++i) x1[i] = x[i] + attn_out[i];

  // x2 = x1 + Dropout(fc2(gelu(fc1(LN2(x1)))))
  gelu_in_cache_ = fc1_.Forward(ln2_.Forward(x1));
  Tensor gelu_out(gelu_in_cache_.shape());
  GeluForward(gelu_in_cache_.data(), gelu_out.data(), gelu_out.size());
  Tensor ffn_out = ffn_dropout_.Forward(fc2_.Forward(gelu_out), train, rng);
  Tensor x2(x1.shape());
  for (int64_t i = 0; i < x1.size(); ++i) x2[i] = x1[i] + ffn_out[i];
  return x2;
}

Tensor EncoderBlock::Apply(const Tensor& x,
                           const std::vector<float>& key_mask, int64_t batch,
                           int64_t seq_len) const {
  // x1 = x + MHA(LN1(x))   (dropout is the identity in eval mode)
  Tensor attn_out =
      attention_.Apply(ln1_.Apply(x), key_mask, batch, seq_len);
  Tensor x1(x.shape());
  for (int64_t i = 0; i < x.size(); ++i) x1[i] = x[i] + attn_out[i];

  // x2 = x1 + fc2(gelu(fc1(LN2(x1)))), with the GELU fused into fc1's
  // output write (byte-identical on the scalar backend: gemm, bias, gelu
  // in the same order as the unfused training path).
  Tensor gelu_out = fc1_.Apply(ln2_.Apply(x1), Activation::kGelu);
  Tensor ffn_out = fc2_.Apply(gelu_out);
  Tensor x2(x1.shape());
  for (int64_t i = 0; i < x1.size(); ++i) x2[i] = x1[i] + ffn_out[i];
  return x2;
}

Tensor EncoderBlock::Backward(const Tensor& grad_out) {
  // Through the FFN residual branch.
  Tensor g_ffn = ffn_dropout_.Backward(grad_out);
  Tensor g_gelu_out = fc2_.Backward(g_ffn);
  Tensor g_gelu_in(g_gelu_out.shape());
  GeluBackward(gelu_in_cache_.data(), g_gelu_out.data(), g_gelu_in.data(),
               g_gelu_in.size());
  Tensor g_x1 = ln2_.Backward(fc1_.Backward(g_gelu_in));
  // Residual: total gradient at x1 is branch + skip.
  for (int64_t i = 0; i < g_x1.size(); ++i) g_x1[i] += grad_out[i];

  // Through the attention residual branch.
  Tensor g_attn = attn_dropout_.Backward(g_x1);
  Tensor g_x = ln1_.Backward(attention_.Backward(g_attn));
  for (int64_t i = 0; i < g_x.size(); ++i) g_x[i] += g_x1[i];
  return g_x;
}

void EncoderBlock::CollectParams(std::vector<Param*>* out) {
  ln1_.CollectParams(out);
  attention_.CollectParams(out);
  ln2_.CollectParams(out);
  fc1_.CollectParams(out);
  fc2_.CollectParams(out);
}

BertModel::BertModel(const BertConfig& config, uint64_t seed)
    : config_(config),
      rng_(seed),
      token_embedding_("embed.token", config.vocab_size, config.d_model,
                       &rng_),
      position_embedding_("embed.position",
                          Tensor::Randn({config.max_seq_len, config.d_model},
                                        &rng_, 0.02)),
      embedding_dropout_(config.dropout),
      final_ln_("final_ln", config.d_model),
      mlm_head_("mlm_head", config.d_model, config.vocab_size, &rng_) {
  KAMEL_CHECK(config.vocab_size > 0, "vocab_size must be set");
  for (int64_t l = 0; l < config.num_layers; ++l) {
    blocks_.push_back(std::make_unique<EncoderBlock>(
        "block" + std::to_string(l), config, &rng_));
  }
}

Tensor BertModel::Forward(const std::vector<int32_t>& ids,
                          const std::vector<float>& key_mask, int64_t batch,
                          int64_t seq_len, bool train,
                          const std::vector<int32_t>* position_offsets) {
  KAMEL_CHECK(static_cast<int64_t>(ids.size()) == batch * seq_len,
              "ids size mismatch");
  KAMEL_CHECK(seq_len <= config_.max_seq_len,
              "sequence longer than max_seq_len");
  batch_ = batch;
  seq_len_ = seq_len;
  if (position_offsets != nullptr) {
    KAMEL_CHECK(static_cast<int64_t>(position_offsets->size()) == batch,
                "one position offset per batch row required");
    position_offsets_ = *position_offsets;
  } else {
    position_offsets_.assign(static_cast<size_t>(batch), 0);
  }

  Tensor x = token_embedding_.Forward(ids);
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t offset = position_offsets_[static_cast<size_t>(b)];
    KAMEL_CHECK(offset >= 0 && offset + seq_len <= config_.max_seq_len,
                "position offset out of range");
    for (int64_t t = 0; t < seq_len; ++t) {
      Saxpy(config_.d_model, 1.0f,
            position_embedding_.value.data() +
                (offset + t) * config_.d_model,
            x.data() + (b * seq_len + t) * config_.d_model);
    }
  }
  x = embedding_dropout_.Forward(x, train, &rng_);
  for (auto& block : blocks_) {
    x = block->Forward(x, key_mask, batch, seq_len, train, &rng_);
  }
  x = final_ln_.Forward(x);
  return mlm_head_.Forward(x);
}

Tensor BertModel::ForwardInference(
    const std::vector<int32_t>& ids, const std::vector<float>& key_mask,
    int64_t batch, int64_t seq_len,
    const std::vector<int32_t>* position_offsets) const {
  KAMEL_CHECK(static_cast<int64_t>(ids.size()) == batch * seq_len,
              "ids size mismatch");
  KAMEL_CHECK(seq_len <= config_.max_seq_len,
              "sequence longer than max_seq_len");
  if (position_offsets != nullptr) {
    KAMEL_CHECK(static_cast<int64_t>(position_offsets->size()) == batch,
                "one position offset per batch row required");
  }

  Tensor x = token_embedding_.Lookup(ids);
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t offset =
        position_offsets != nullptr
            ? (*position_offsets)[static_cast<size_t>(b)]
            : 0;
    KAMEL_CHECK(offset >= 0 && offset + seq_len <= config_.max_seq_len,
                "position offset out of range");
    for (int64_t t = 0; t < seq_len; ++t) {
      Saxpy(config_.d_model, 1.0f,
            position_embedding_.value.data() +
                (offset + t) * config_.d_model,
            x.data() + (b * seq_len + t) * config_.d_model);
    }
  }
  for (const auto& block : blocks_) {
    x = block->Apply(x, key_mask, batch, seq_len);
  }
  x = final_ln_.Apply(x);
  return mlm_head_.Apply(x);
}

double BertModel::LossAndBackward(const Tensor& logits,
                                  const std::vector<int32_t>& labels) {
  const int64_t n = logits.dim(0);
  const int64_t v = logits.dim(1);
  KAMEL_CHECK(static_cast<int64_t>(labels.size()) == n,
              "labels size mismatch");

  int64_t num_masked = 0;
  for (int32_t label : labels) {
    if (label >= 0) ++num_masked;
  }
  Tensor dlogits({n, v});
  if (num_masked == 0) return 0.0;

  double loss = 0.0;
  std::vector<float> probs(static_cast<size_t>(v));
  const float inv_masked = 1.0f / static_cast<float>(num_masked);
  for (int64_t r = 0; r < n; ++r) {
    const int32_t label = labels[static_cast<size_t>(r)];
    if (label < 0) continue;
    SoftmaxRow(logits.data() + r * v, probs.data(), v);
    loss -= std::log(std::max(1e-12, static_cast<double>(
                                         probs[static_cast<size_t>(label)])));
    float* dst = dlogits.data() + r * v;
    for (int64_t c = 0; c < v; ++c) dst[c] = probs[c] * inv_masked;
    dst[label] -= inv_masked;
  }

  Tensor g = final_ln_.Backward(mlm_head_.Backward(dlogits));
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  g = embedding_dropout_.Backward(g);
  // Position embedding gradient (respecting the forward offsets).
  for (int64_t b = 0; b < batch_; ++b) {
    const int64_t offset = position_offsets_[static_cast<size_t>(b)];
    for (int64_t t = 0; t < seq_len_; ++t) {
      Saxpy(config_.d_model, 1.0f,
            g.data() + (b * seq_len_ + t) * config_.d_model,
            position_embedding_.grad.data() +
                (offset + t) * config_.d_model);
    }
  }
  token_embedding_.Backward(g);
  return loss / static_cast<double>(num_masked);
}

std::vector<float> BertModel::PositionProbabilities(const Tensor& logits,
                                                    int64_t position) const {
  const int64_t v = logits.dim(1);
  KAMEL_CHECK(position >= 0 && position < logits.dim(0),
              "position out of range");
  std::vector<float> probs(static_cast<size_t>(v));
  SoftmaxRow(logits.data() + position * v, probs.data(), v);
  return probs;
}

std::vector<Param*> BertModel::Params() {
  std::vector<Param*> out;
  token_embedding_.CollectParams(&out);
  out.push_back(&position_embedding_);
  for (auto& block : blocks_) block->CollectParams(&out);
  final_ln_.CollectParams(&out);
  mlm_head_.CollectParams(&out);
  return out;
}

std::vector<const Param*> BertModel::Params() const {
  // Const view over the same stable parameter order; used by the
  // thread-safe snapshot save path.
  std::vector<Param*> mutable_params =
      const_cast<BertModel*>(this)->Params();
  return std::vector<const Param*>(mutable_params.begin(),
                                   mutable_params.end());
}

void BertModel::ZeroGrads() {
  for (Param* p : Params()) p->grad.SetZero();
}

namespace {

// Which params a quantized save block-encodes: the big rank-2 weight
// matrices. Rank-1 params (biases, LayerNorm gamma/beta) are a rounding
// error in bytes, and the position table stays fp32 because the
// inference path adds its rows directly with Saxpy.
bool ShouldQuantize(const Param& p) {
  return p.value.rank() == 2 && p.name != "embed.position";
}

}  // namespace

WeightFormat BertModel::weight_format() const {
  for (const Param* p : Params()) {
    if (p->quantized()) return p->quant.format();
  }
  return WeightFormat::kF32;
}

int64_t BertModel::WeightBytes() const {
  int64_t bytes = 0;
  for (const Param* p : Params()) {
    bytes += p->quantized()
                 ? p->quant.byte_size()
                 : p->value.size() * static_cast<int64_t>(sizeof(float));
  }
  return bytes;
}

Status BertModel::Save(BinaryWriter* writer, WeightFormat format) const {
  const std::vector<const Param*> params = Params();
  bool any_quant = false;
  for (const Param* p : params) {
    if (p->quantized() ||
        (format != WeightFormat::kF32 && ShouldQuantize(*p))) {
      any_quant = true;
      break;
    }
  }
  // All-fp32 saves keep the exact v1 byte layout, so snapshots from builds
  // that never quantize stay byte-identical to historical files.
  writer->WriteString(any_quant ? "kamel-bert-v2" : "kamel-bert-v1");
  writer->WriteI64(config_.vocab_size);
  writer->WriteI64(config_.d_model);
  writer->WriteI64(config_.num_heads);
  writer->WriteI64(config_.num_layers);
  writer->WriteI64(config_.ffn_dim);
  writer->WriteI64(config_.max_seq_len);
  writer->WriteF64(config_.dropout);
  for (const Param* p : params) {
    writer->WriteString(p->name);
    if (p->quantized()) {
      writer->WriteU8(1);
      p->quant.Save(writer);
      continue;
    }
    if (any_quant && format != WeightFormat::kF32 && ShouldQuantize(*p)) {
      KAMEL_ASSIGN_OR_RETURN(
          QuantMatrix q,
          QuantMatrix::Quantize(format, p->value.data(), p->value.dim(0),
                                p->value.dim(1)));
      writer->WriteU8(1);
      q.Save(writer);
      continue;
    }
    if (any_quant) writer->WriteU8(0);  // v2 tags every param's storage
    writer->WriteF32Array(p->value.data(),
                          static_cast<size_t>(p->value.size()));
  }
  return Status::OK();
}

void BertModel::Save(BinaryWriter* writer) const {
  const Status status = Save(writer, WeightFormat::kF32);
  KAMEL_CHECK(status.ok(), status.ToString());
}

Result<std::unique_ptr<BertModel>> BertModel::Load(BinaryReader* reader) {
  KAMEL_ASSIGN_OR_RETURN(std::string magic, reader->ReadString());
  const bool v2 = magic == "kamel-bert-v2";
  if (magic != "kamel-bert-v1" && !v2) {
    return Status::IOError("bad model magic: " + magic);
  }
  BertConfig config;
  KAMEL_ASSIGN_OR_RETURN(config.vocab_size, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(config.d_model, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(config.num_heads, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(config.num_layers, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(config.ffn_dim, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(config.max_seq_len, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(config.dropout, reader->ReadF64());
  auto model = std::make_unique<BertModel>(config, /*seed=*/0);
  for (Param* p : model->Params()) {
    KAMEL_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    if (name != p->name) {
      return Status::IOError("parameter order mismatch: expected " +
                             p->name + ", found " + name);
    }
    uint8_t storage = 0;
    if (v2) {
      KAMEL_ASSIGN_OR_RETURN(storage, reader->ReadU8());
    }
    if (storage == 0) {
      KAMEL_RETURN_NOT_OK(reader->ReadF32Array(
          p->value.data(), static_cast<size_t>(p->value.size())));
      continue;
    }
    if (storage != 1) {
      return Status::IOError("bad weight storage tag for " + p->name);
    }
    KAMEL_ASSIGN_OR_RETURN(QuantMatrix q, QuantMatrix::Load(reader));
    if (q.rows() != p->value.dim(0) || q.cols() != p->value.dim(1)) {
      return Status::IOError("quantized shape mismatch for " + p->name);
    }
    p->SetQuantized(std::move(q));
  }
  return model;
}

}  // namespace kamel::nn
