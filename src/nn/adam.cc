#include "nn/adam.h"

#include <cmath>

#include "common/check.h"

namespace kamel::nn {

AdamOptimizer::AdamOptimizer(std::vector<Param*> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void AdamOptimizer::Step(double lr) {
  ++step_;

  if (options_.clip_norm > 0.0) {
    double sq = 0.0;
    for (Param* p : params_) {
      for (int64_t i = 0; i < p->grad.size(); ++i) {
        sq += static_cast<double>(p->grad[i]) * p->grad[i];
      }
    }
    const double norm = std::sqrt(sq);
    if (norm > options_.clip_norm) {
      const float scale = static_cast<float>(options_.clip_norm / norm);
      for (Param* p : params_) {
        for (int64_t i = 0; i < p->grad.size(); ++i) p->grad[i] *= scale;
      }
    }
  }

  const double bc1 = 1.0 - std::pow(options_.beta1, step_);
  const double bc2 = 1.0 - std::pow(options_.beta2, step_);
  for (size_t j = 0; j < params_.size(); ++j) {
    Param* p = params_[j];
    Tensor& m = m_[j];
    Tensor& v = v_[j];
    for (int64_t i = 0; i < p->value.size(); ++i) {
      const double g = p->grad[i];
      m[i] = static_cast<float>(options_.beta1 * m[i] +
                                (1.0 - options_.beta1) * g);
      v[i] = static_cast<float>(options_.beta2 * v[i] +
                                (1.0 - options_.beta2) * g * g);
      const double m_hat = m[i] / bc1;
      const double v_hat = v[i] / bc2;
      double update = m_hat / (std::sqrt(v_hat) + options_.eps);
      if (options_.weight_decay > 0.0) {
        update += options_.weight_decay * p->value[i];
      }
      p->value[i] -= static_cast<float>(lr * update);
    }
  }
}

double WarmupLinearDecay(double peak_lr, int64_t step, int64_t warmup_steps,
                         int64_t total_steps) {
  KAMEL_CHECK(total_steps > 0, "total_steps must be positive");
  if (warmup_steps > 0 && step < warmup_steps) {
    return peak_lr * static_cast<double>(step + 1) /
           static_cast<double>(warmup_steps);
  }
  const double remaining = static_cast<double>(total_steps - step) /
                           static_cast<double>(
                               std::max<int64_t>(1, total_steps - warmup_steps));
  return peak_lr * std::max(0.0, remaining);
}

}  // namespace kamel::nn
