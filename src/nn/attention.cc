#include "nn/attention.h"

#include <cmath>
#include <vector>

#include "nn/backend/backend.h"
#include "nn/blas.h"
#include "nn/ops.h"

namespace kamel::nn {

MultiHeadAttention::MultiHeadAttention(std::string name, int64_t d_model,
                                       int64_t num_heads, Rng* rng)
    : d_model_(d_model),
      num_heads_(num_heads),
      head_dim_(d_model / num_heads),
      qkv_(name + ".qkv", d_model, 3 * d_model, rng),
      proj_(name + ".proj", d_model, d_model, rng) {
  KAMEL_CHECK(d_model % num_heads == 0,
              "d_model must be divisible by num_heads");
}

namespace {

// Copies the (b, h) head slice of a [B*T, stride] matrix into a packed
// [T, head_dim] buffer. `col0` selects Q (0), K (D) or V (2D) blocks.
void GatherHead(const float* src, int64_t stride, int64_t b, int64_t t_len,
                int64_t col0, int64_t head_dim, float* dst) {
  for (int64_t t = 0; t < t_len; ++t) {
    const float* row = src + (b * t_len + t) * stride + col0;
    for (int64_t c = 0; c < head_dim; ++c) dst[t * head_dim + c] = row[c];
  }
}

// Adds a packed [T, head_dim] buffer back into the (b, h) head slice.
void ScatterHeadAdd(const float* src, int64_t t_len, int64_t head_dim,
                    int64_t b, int64_t col0, int64_t stride, float* dst) {
  for (int64_t t = 0; t < t_len; ++t) {
    float* row = dst + (b * t_len + t) * stride + col0;
    for (int64_t c = 0; c < head_dim; ++c) row[c] += src[t * head_dim + c];
  }
}

}  // namespace

Tensor MultiHeadAttention::Forward(const Tensor& x,
                                   const std::vector<float>& key_mask,
                                   int64_t batch, int64_t seq_len) {
  KAMEL_CHECK(x.rank() == 2 && x.dim(0) == batch * seq_len &&
                  x.dim(1) == d_model_,
              "attention input shape mismatch");
  KAMEL_CHECK(static_cast<int64_t>(key_mask.size()) == batch * seq_len,
              "attention mask size mismatch");
  batch_ = batch;
  seq_len_ = seq_len;

  qkv_cache_ = qkv_.Forward(x);  // [B*T, 3D]
  probs_cache_ = Tensor({batch * num_heads_ * seq_len_ * seq_len_});
  // Training is pinned to the scalar reference backend regardless of what
  // serving selects, so training numerics never depend on --backend.
  Tensor ctx({batch * seq_len, d_model_});
  ScalarBackend::Instance().AttentionContext(
      qkv_cache_.data(), key_mask.data(), batch, seq_len, d_model_,
      num_heads_, probs_cache_.data(), ctx.data());
  return proj_.Forward(ctx);
}

Tensor MultiHeadAttention::Apply(const Tensor& x,
                                 const std::vector<float>& key_mask,
                                 int64_t batch, int64_t seq_len) const {
  KAMEL_CHECK(x.rank() == 2 && x.dim(0) == batch * seq_len &&
                  x.dim(1) == d_model_,
              "attention input shape mismatch");
  KAMEL_CHECK(static_cast<int64_t>(key_mask.size()) == batch * seq_len,
              "attention mask size mismatch");
  const Tensor qkv = qkv_.Apply(x);  // [B*T, 3D]
  // The backend's batched attention reads Q/K/V as strided views of the
  // fused qkv matrix — no per-head gather copies. The scalar backend's
  // GEMMs accumulate each output element in the same order as the packed
  // formulation, so default serving output is byte-identical to Forward.
  Tensor ctx({batch * seq_len, d_model_});
  ActiveBackend()->AttentionContext(qkv.data(), key_mask.data(), batch,
                                    seq_len, d_model_, num_heads_,
                                    /*probs_out=*/nullptr, ctx.data());
  return proj_.Apply(ctx);
}

Tensor MultiHeadAttention::Backward(const Tensor& grad_out) {
  const int64_t batch = batch_;
  const int64_t seq_len = seq_len_;
  const Tensor gctx = proj_.Backward(grad_out);  // [B*T, D]

  Tensor gqkv({batch * seq_len, 3 * d_model_});
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  std::vector<float> q(static_cast<size_t>(seq_len * head_dim_));
  std::vector<float> k(q.size());
  std::vector<float> v(q.size());
  std::vector<float> g_head(q.size());
  std::vector<float> g_probs(static_cast<size_t>(seq_len * seq_len));
  std::vector<float> g_scores(g_probs.size());
  std::vector<float> gq(q.size());
  std::vector<float> gk(q.size());
  std::vector<float> gv(q.size());

  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t h = 0; h < num_heads_; ++h) {
      const int64_t col = h * head_dim_;
      GatherHead(qkv_cache_.data(), 3 * d_model_, b, seq_len, col, head_dim_,
                 q.data());
      GatherHead(qkv_cache_.data(), 3 * d_model_, b, seq_len,
                 d_model_ + col, head_dim_, k.data());
      GatherHead(qkv_cache_.data(), 3 * d_model_, b, seq_len,
                 2 * d_model_ + col, head_dim_, v.data());
      GatherHead(gctx.data(), d_model_, b, seq_len, col, head_dim_,
                 g_head.data());

      const float* probs = probs_cache_.data() +
                           ((b * num_heads_ + h) * seq_len_) * seq_len_;

      // dP = g_head V^T ;  dV = P^T g_head
      Sgemm(false, true, seq_len, seq_len, head_dim_, 1.0f, g_head.data(),
            head_dim_, v.data(), head_dim_, 0.0f, g_probs.data(), seq_len);
      Sgemm(true, false, seq_len, head_dim_, seq_len, 1.0f, probs, seq_len,
            g_head.data(), head_dim_, 0.0f, gv.data(), head_dim_);

      // Softmax backward per row. Masked (-1e9) columns carry ~0
      // probability, so their gradient contribution vanishes naturally.
      for (int64_t t = 0; t < seq_len; ++t) {
        SoftmaxBackwardRow(probs + t * seq_len, g_probs.data() + t * seq_len,
                           g_scores.data() + t * seq_len, seq_len);
      }

      // dQ = dS K * scale ;  dK = dS^T Q * scale
      Sgemm(false, false, seq_len, head_dim_, seq_len, scale,
            g_scores.data(), seq_len, k.data(), head_dim_, 0.0f, gq.data(),
            head_dim_);
      Sgemm(true, false, seq_len, head_dim_, seq_len, scale, g_scores.data(),
            seq_len, q.data(), head_dim_, 0.0f, gk.data(), head_dim_);

      ScatterHeadAdd(gq.data(), seq_len, head_dim_, b, col, 3 * d_model_,
                     gqkv.data());
      ScatterHeadAdd(gk.data(), seq_len, head_dim_, b, d_model_ + col,
                     3 * d_model_, gqkv.data());
      ScatterHeadAdd(gv.data(), seq_len, head_dim_, b, 2 * d_model_ + col,
                     3 * d_model_, gqkv.data());
    }
  }
  return qkv_.Backward(gqkv);
}

void MultiHeadAttention::CollectParams(std::vector<Param*>* out) {
  qkv_.CollectParams(out);
  proj_.CollectParams(out);
}

}  // namespace kamel::nn
