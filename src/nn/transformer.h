#ifndef KAMEL_NN_TRANSFORMER_H_
#define KAMEL_NN_TRANSFORMER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "common/rng.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace kamel::nn {

/// Hyperparameters of a BERT encoder.
///
/// The paper trains Google's original BERT-Base (768/12/12, Section 8);
/// KAMEL's reproduction defaults to a proportionally smaller encoder that
/// trains on one CPU core (see DESIGN.md substitution table). The
/// architecture family is identical: learned token+position embeddings,
/// multi-head self-attention blocks with GELU feed-forward nets, and a
/// masked-language-model head.
struct BertConfig {
  int64_t vocab_size = 0;
  int64_t d_model = 64;
  int64_t num_heads = 4;
  int64_t num_layers = 2;
  int64_t ffn_dim = 256;
  int64_t max_seq_len = 48;
  double dropout = 0.1;

  /// Number of trainable scalars for this configuration.
  int64_t NumParameters() const;
};

/// One pre-LN transformer encoder block:
/// x <- x + MHA(LN1(x)); x <- x + FFN(LN2(x)).
///
/// Pre-LN (rather than the original post-LN) keeps small-model training
/// stable without long warmup schedules; the representational family is
/// unchanged.
class EncoderBlock {
 public:
  EncoderBlock(const std::string& name, const BertConfig& config, Rng* rng);

  Tensor Forward(const Tensor& x, const std::vector<float>& key_mask,
                 int64_t batch, int64_t seq_len, bool train, Rng* rng);

  /// Inference-only forward (eval mode: dropout is the identity): identical
  /// math to Forward(train=false) with no cache writes, safe to call
  /// concurrently on a shared, frozen block.
  Tensor Apply(const Tensor& x, const std::vector<float>& key_mask,
               int64_t batch, int64_t seq_len) const;

  Tensor Backward(const Tensor& grad_out);
  void CollectParams(std::vector<Param*>* out);

 private:
  LayerNorm ln1_;
  MultiHeadAttention attention_;
  Dropout attn_dropout_;
  LayerNorm ln2_;
  Linear fc1_;
  Linear fc2_;
  Dropout ffn_dropout_;
  Tensor gelu_in_cache_;
};

/// A BERT-style bidirectional encoder with a masked-LM head.
///
/// This is the "BERT black box" at the bottom of the paper's Figure 1.
/// Inputs are padded token-id batches; the model predicts a distribution
/// over the vocabulary at every position; the KAMEL modules around it only
/// consume top-k predictions at [MASK] positions.
class BertModel {
 public:
  BertModel(const BertConfig& config, uint64_t seed);

  /// Forward pass.
  /// ids:  batch*seq_len token ids (row-major, padded).
  /// key_mask: 1.0 for real tokens, 0.0 for padding, same length.
  /// position_offsets: optional per-row shift added to every position
  /// index (so row b's token t uses position embedding offset[b] + t).
  /// The MLM trainer randomizes these so the model cannot memorize
  /// absolute statement positions and must rely on context — essential
  /// for trajectory statements, which are far more repetitive than
  /// natural language. Must satisfy offset[b] + seq_len <= max_seq_len.
  /// Returns logits [batch*seq_len, vocab].
  Tensor Forward(const std::vector<int32_t>& ids,
                 const std::vector<float>& key_mask, int64_t batch,
                 int64_t seq_len, bool train,
                 const std::vector<int32_t>* position_offsets = nullptr);

  /// Inference-only forward pass: identical math (and bytes) to
  /// Forward(train=false), but writes no caches and never touches the
  /// dropout RNG, so any number of threads may call it concurrently on one
  /// frozen model. Serving paths must use this instead of Forward.
  Tensor ForwardInference(
      const std::vector<int32_t>& ids, const std::vector<float>& key_mask,
      int64_t batch, int64_t seq_len,
      const std::vector<int32_t>* position_offsets = nullptr) const;

  /// Masked-LM loss and full backward pass.
  /// labels: one per position; -1 means "not masked, ignore".
  /// Returns mean cross-entropy over the masked positions (0 if none) and
  /// accumulates gradients on all parameters.
  double LossAndBackward(const Tensor& logits,
                         const std::vector<int32_t>& labels);

  /// Softmax probabilities over the vocabulary at one position of a single
  /// sequence (batch must have been 1 in the preceding Forward call).
  std::vector<float> PositionProbabilities(const Tensor& logits,
                                           int64_t position) const;

  /// All trainable parameters (stable order; used by the optimizer and the
  /// serializer).
  std::vector<Param*> Params();
  std::vector<const Param*> Params() const;

  /// Zeroes all parameter gradients.
  void ZeroGrads();

  const BertConfig& config() const { return config_; }

  /// Serving weight format: kF32 for a trainable fp32 model, the block
  /// format if this model was loaded from a quantized snapshot.
  WeightFormat weight_format() const;

  /// Resident bytes of all weights in their current storage (quantized
  /// matrices count their encoded size, fp32 tensors 4 bytes/element).
  int64_t WeightBytes() const;

  /// Serializes config + weights. `format` picks the *serving* storage:
  /// kF32 writes the historical "kamel-bert-v1" layout byte-for-byte; a
  /// quantized format writes "kamel-bert-v2" where every rank-2 weight
  /// matrix except the position table is stored as ggml-style blocks
  /// (rank-1 biases/LayerNorm params are tiny and stay fp32). Params that
  /// are already quantized are written as-is under either format. Returns
  /// InvalidArgument if quantization meets a non-finite weight.
  Status Save(BinaryWriter* writer, WeightFormat format) const;

  /// fp32 save — cannot fail; kept for the training and test paths.
  void Save(BinaryWriter* writer) const;

  /// Restores a model saved with Save(); v2 files may hand back a
  /// serving-only model (quantized params refuse Forward/Backward).
  static Result<std::unique_ptr<BertModel>> Load(BinaryReader* reader);

 private:
  BertConfig config_;
  Rng rng_;  // dropout noise
  Embedding token_embedding_;
  Param position_embedding_;  // [max_seq_len, d_model]
  Dropout embedding_dropout_;
  std::vector<std::unique_ptr<EncoderBlock>> blocks_;
  LayerNorm final_ln_;
  Linear mlm_head_;

  // Forward caches.
  int64_t batch_ = 0;
  int64_t seq_len_ = 0;
  std::vector<int32_t> position_offsets_;
};

}  // namespace kamel::nn

#endif  // KAMEL_NN_TRANSFORMER_H_
