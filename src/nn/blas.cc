#include "nn/blas.h"

#include "nn/backend/backend.h"

namespace kamel::nn {

// The kernels behind these live in the backend subsystem now
// (backend/scalar_backend.cc holds the reference implementations); the
// free functions forward to the scalar backend so training and legacy
// call sites keep their exact historical numerics regardless of which
// backend serving selects.
void Sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
           float alpha, const float* a, int64_t lda, const float* b,
           int64_t ldb, float beta, float* c, int64_t ldc) {
  ScalarBackend::Instance().Gemm(trans_a, trans_b, m, n, k, alpha, a, lda, b,
                                 ldb, beta, c, ldc);
}

void Saxpy(int64_t n, float alpha, const float* x, float* y) {
  ScalarBackend::Instance().Axpy(n, alpha, x, y);
}

}  // namespace kamel::nn
