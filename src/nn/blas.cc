#include "nn/blas.h"

#include <vector>

#include "common/check.h"

namespace kamel::nn {

namespace {

// C[m,n] (+)= alpha * A[m,k] * B[k,n], all row-major, no transposes.
// Four C rows are produced together so each B row is loaded once per four
// rows of output (register blocking); the contiguous j loops vectorize to
// FMA under -O3 -march=native.
void GemmNN(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
            int64_t lda, const float* b, int64_t ldb, float beta, float* c,
            int64_t ldc) {
  auto scale_row = [&](float* row) {
    if (beta == 0.0f) {
      for (int64_t j = 0; j < n; ++j) row[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  };

  int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    float* __restrict c0 = c + i * ldc;
    float* __restrict c1 = c0 + ldc;
    float* __restrict c2 = c1 + ldc;
    float* __restrict c3 = c2 + ldc;
    scale_row(c0);
    scale_row(c1);
    scale_row(c2);
    scale_row(c3);
    const float* a0 = a + i * lda;
    const float* a1 = a0 + lda;
    const float* a2 = a1 + lda;
    const float* a3 = a2 + lda;
    for (int64_t p = 0; p < k; ++p) {
      const float v0 = alpha * a0[p];
      const float v1 = alpha * a1[p];
      const float v2 = alpha * a2[p];
      const float v3 = alpha * a3[p];
      const float* __restrict b_row = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) {
        const float bv = b_row[j];
        c0[j] += v0 * bv;
        c1[j] += v1 * bv;
        c2[j] += v2 * bv;
        c3[j] += v3 * bv;
      }
    }
  }
  for (; i < m; ++i) {
    float* __restrict c_row = c + i * ldc;
    scale_row(c_row);
    const float* a_row = a + i * lda;
    for (int64_t p = 0; p < k; ++p) {
      const float av = alpha * a_row[p];
      const float* __restrict b_row = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

// Materializes op(X) as a packed row-major matrix of shape rows x cols.
std::vector<float> PackTransposed(const float* x, int64_t rows, int64_t cols,
                                  int64_t ldx) {
  // Output (r, c) = X(c, r); rows/cols describe the *output* shape.
  std::vector<float> out(static_cast<size_t>(rows * cols));
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      out[static_cast<size_t>(r * cols + c)] = x[c * ldx + r];
    }
  }
  return out;
}

}  // namespace

void Sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
           float alpha, const float* a, int64_t lda, const float* b,
           int64_t ldb, float beta, float* c, int64_t ldc) {
  KAMEL_DCHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0) return;
  // Transposed operands are packed into temporaries so the hot kernel stays
  // a single well-vectorized NN loop. The packs are O(m*k)/O(k*n) and small
  // compared to the O(m*k*n) multiply.
  if (!trans_a && !trans_b) {
    GemmNN(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  std::vector<float> a_packed;
  std::vector<float> b_packed;
  const float* a_eff = a;
  int64_t lda_eff = lda;
  if (trans_a) {
    a_packed = PackTransposed(a, m, k, lda);
    a_eff = a_packed.data();
    lda_eff = k;
  }
  const float* b_eff = b;
  int64_t ldb_eff = ldb;
  if (trans_b) {
    b_packed = PackTransposed(b, k, n, ldb);
    b_eff = b_packed.data();
    ldb_eff = n;
  }
  GemmNN(m, n, k, alpha, a_eff, lda_eff, b_eff, ldb_eff, beta, c, ldc);
}

void Saxpy(int64_t n, float alpha, const float* x, float* y) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

}  // namespace kamel::nn
