#ifndef KAMEL_NN_MLM_TRAINER_H_
#define KAMEL_NN_MLM_TRAINER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "nn/adam.h"
#include "nn/transformer.h"

namespace kamel::nn {

/// Masked-language-model training options (BERT's pretraining recipe
/// applied to trajectory statements).
struct MlmTrainOptions {
  int64_t steps = 1200;
  int64_t batch_size = 16;
  double peak_lr = 1e-3;
  int64_t warmup_steps = 100;
  /// Fraction of maskable positions selected per statement.
  double mask_prob = 0.15;
  /// Of the selected positions: 80% -> [MASK], 10% -> random token,
  /// 10% -> kept, exactly as in the original BERT.
  double mask_token_frac = 0.8;
  double random_token_frac = 0.1;
  /// Probability of training on a random-length window of a statement
  /// instead of the whole statement. Imputation queries are short
  /// ([CLS] left [MASK] right [SEP]), so the model must also see short
  /// contexts during training.
  double crop_prob = 0.5;
  /// Minimum window length when cropping.
  int64_t min_crop_len = 4;
  /// Probability that a statement becomes a *gap-deletion* example
  /// instead of a standard masked one: a contiguous run of
  /// [gap_min_len, gap_max_len] content tokens is removed and replaced by
  /// a single [MASK], whose label is the first or last deleted token
  /// (chosen at random). This is exactly the subproblem the Multipoint
  /// Imputation module poses at inference ("which token extends the left
  /// or right side of this gap?"), which plain BERT masking never
  /// generates — plain masks always keep their immediate neighbors
  /// visible, so the model otherwise learns continuation without any
  /// pull toward the far gap endpoint.
  double gap_deletion_prob = 0.5;
  int64_t gap_min_len = 2;
  int64_t gap_max_len = 8;
  uint64_t seed = 7;
  AdamOptions adam;
  /// Log the loss every N steps; 0 disables.
  int64_t log_every = 0;
};

/// Token-id layout the trainer must know about.
struct MlmTokenLayout {
  int32_t pad_id = 0;
  int32_t mask_id = 0;
  /// Ids >= first_content_id are real content tokens: only they are
  /// masked, and random replacements are drawn from them.
  int32_t first_content_id = 0;
};

/// Outcome of a training run.
struct MlmTrainStats {
  int64_t steps = 0;
  double final_loss = 0.0;  // EMA of the masked-LM loss
  double seconds = 0.0;
};

/// One training batch: padded ids, key mask, MLM labels (-1 = ignore),
/// and one random position-embedding offset per row (so the model cannot
/// tie tokens to absolute positions — trajectory statements repeat far
/// more than language sentences).
struct MlmBatch {
  std::vector<int32_t> ids;
  std::vector<float> key_mask;
  std::vector<int32_t> labels;
  std::vector<int32_t> position_offsets;
  int64_t batch = 0;
  int64_t seq_len = 0;
};

/// Builds a masked batch from `batch` randomly sampled sequences.
/// Sequences longer than the model's max_seq_len are cropped with a random
/// offset so all parts of long trajectories contribute.
MlmBatch BuildMlmBatch(const std::vector<std::vector<int32_t>>& sequences,
                       const MlmTokenLayout& layout,
                       const MlmTrainOptions& options, int64_t max_seq_len,
                       int64_t vocab_size, Rng* rng);

/// Runs the full masked-LM training loop on `model`.
/// Returns InvalidArgument when `sequences` is empty.
Result<MlmTrainStats> TrainMlm(
    BertModel* model, const std::vector<std::vector<int32_t>>& sequences,
    const MlmTokenLayout& layout, const MlmTrainOptions& options);

}  // namespace kamel::nn

#endif  // KAMEL_NN_MLM_TRAINER_H_
