#include "nn/mlm_trainer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace kamel::nn {

MlmBatch BuildMlmBatch(const std::vector<std::vector<int32_t>>& sequences,
                       const MlmTokenLayout& layout,
                       const MlmTrainOptions& options, int64_t max_seq_len,
                       int64_t vocab_size, Rng* rng) {
  KAMEL_CHECK(!sequences.empty(), "empty corpus");
  const int64_t batch = options.batch_size;

  // Sample, crop, and find the batch's padded length.
  std::vector<std::vector<int32_t>> chosen;
  chosen.reserve(static_cast<size_t>(batch));
  int64_t seq_len = 1;
  for (int64_t b = 0; b < batch; ++b) {
    const auto& full = sequences[rng->NextUint64(sequences.size())];
    int64_t len = static_cast<int64_t>(full.size());
    int64_t window = std::min(len, max_seq_len);
    // Randomly shorten the window sometimes so the model also learns from
    // contexts as short as the online imputation queries.
    if (window > options.min_crop_len &&
        rng->NextBernoulli(options.crop_prob)) {
      window = options.min_crop_len +
               static_cast<int64_t>(rng->NextUint64(
                   static_cast<uint64_t>(window - options.min_crop_len) + 1));
    }
    int64_t offset = 0;
    if (len > window) {
      offset = static_cast<int64_t>(
          rng->NextUint64(static_cast<uint64_t>(len - window) + 1));
    }
    chosen.emplace_back(full.begin() + offset,
                        full.begin() + offset + window);
    seq_len = std::max(seq_len, window);
  }

  MlmBatch out;
  out.batch = batch;
  out.seq_len = seq_len;
  out.ids.assign(static_cast<size_t>(batch * seq_len), layout.pad_id);
  out.key_mask.assign(static_cast<size_t>(batch * seq_len), 0.0f);
  out.labels.assign(static_cast<size_t>(batch * seq_len), -1);
  out.position_offsets.assign(static_cast<size_t>(batch), 0);
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t slack = max_seq_len - seq_len;
    if (slack > 0) {
      out.position_offsets[static_cast<size_t>(b)] = static_cast<int32_t>(
          rng->NextUint64(static_cast<uint64_t>(slack) + 1));
    }
  }

  const int64_t content_vocab = vocab_size - layout.first_content_id;
  for (int64_t b = 0; b < batch; ++b) {
    auto& seq = chosen[static_cast<size_t>(b)];

    // Gap-deletion example: remove a contiguous content run, put one
    // [MASK] in its place, and ask for one of the run's endpoints — the
    // Multipoint Imputation subproblem (Section 6).
    if (rng->NextBernoulli(options.gap_deletion_prob)) {
      // Find the contiguous content region [lo, hi).
      int64_t lo = 0;
      int64_t hi = static_cast<int64_t>(seq.size());
      while (lo < hi && seq[static_cast<size_t>(lo)] <
                            layout.first_content_id) {
        ++lo;
      }
      while (hi > lo && seq[static_cast<size_t>(hi - 1)] <
                            layout.first_content_id) {
        --hi;
      }
      // Need at least one context token on each side of the gap.
      const int64_t content = hi - lo;
      if (content >= options.gap_min_len + 2) {
        const int64_t max_len =
            std::min(options.gap_max_len, content - 2);
        const int64_t gap_len =
            options.gap_min_len +
            static_cast<int64_t>(rng->NextUint64(static_cast<uint64_t>(
                max_len - options.gap_min_len) + 1));
        const int64_t start =
            lo + 1 +
            static_cast<int64_t>(rng->NextUint64(
                static_cast<uint64_t>(content - gap_len - 1)));
        const int32_t label =
            rng->NextBernoulli(0.5)
                ? seq[static_cast<size_t>(start)]
                : seq[static_cast<size_t>(start + gap_len - 1)];
        std::vector<int32_t> collapsed(seq.begin(), seq.begin() + start);
        collapsed.push_back(layout.mask_id);
        const int64_t mask_pos = static_cast<int64_t>(collapsed.size()) - 1;
        collapsed.insert(collapsed.end(), seq.begin() + start + gap_len,
                         seq.end());
        const int64_t idx0 = b * seq_len;
        for (size_t t = 0; t < collapsed.size(); ++t) {
          out.ids[static_cast<size_t>(idx0) + t] = collapsed[t];
          out.key_mask[static_cast<size_t>(idx0) + t] = 1.0f;
        }
        out.labels[static_cast<size_t>(idx0 + mask_pos)] = label;
        continue;
      }
      // Too short for a gap: fall through to standard masking.
    }
    int64_t masked_here = 0;
    // Guarantee at least one mask per statement: remember one eligible
    // position to force-mask if the Bernoulli draws select none.
    int64_t fallback_pos = -1;
    for (size_t t = 0; t < seq.size(); ++t) {
      const int64_t idx = b * seq_len + static_cast<int64_t>(t);
      out.ids[static_cast<size_t>(idx)] = seq[t];
      out.key_mask[static_cast<size_t>(idx)] = 1.0f;
      if (seq[t] < layout.first_content_id) continue;
      if (fallback_pos < 0 || rng->NextBernoulli(0.3)) fallback_pos = idx;
      if (!rng->NextBernoulli(options.mask_prob)) continue;
      out.labels[static_cast<size_t>(idx)] = seq[t];
      ++masked_here;
      const double roll = rng->NextDouble();
      if (roll < options.mask_token_frac) {
        out.ids[static_cast<size_t>(idx)] = layout.mask_id;
      } else if (roll < options.mask_token_frac + options.random_token_frac &&
                 content_vocab > 0) {
        out.ids[static_cast<size_t>(idx)] =
            layout.first_content_id +
            static_cast<int32_t>(rng->NextUint64(
                static_cast<uint64_t>(content_vocab)));
      }  // else: keep the original token.
    }
    if (masked_here == 0 && fallback_pos >= 0) {
      out.labels[static_cast<size_t>(fallback_pos)] =
          out.ids[static_cast<size_t>(fallback_pos)];
      out.ids[static_cast<size_t>(fallback_pos)] = layout.mask_id;
    }
  }
  return out;
}

Result<MlmTrainStats> TrainMlm(
    BertModel* model, const std::vector<std::vector<int32_t>>& sequences,
    const MlmTokenLayout& layout, const MlmTrainOptions& options) {
  if (sequences.empty()) {
    return Status::InvalidArgument("MLM training needs a non-empty corpus");
  }
  Rng rng(options.seed);
  AdamOptimizer optimizer(model->Params(), options.adam);
  Stopwatch watch;

  double ema_loss = 0.0;
  bool ema_init = false;
  for (int64_t step = 0; step < options.steps; ++step) {
    MlmBatch batch = BuildMlmBatch(sequences, layout, options,
                                   model->config().max_seq_len,
                                   model->config().vocab_size, &rng);
    model->ZeroGrads();
    Tensor logits =
        model->Forward(batch.ids, batch.key_mask, batch.batch,
                       batch.seq_len, /*train=*/true,
                       &batch.position_offsets);
    const double loss = model->LossAndBackward(logits, batch.labels);
    optimizer.Step(WarmupLinearDecay(options.peak_lr, step,
                                     options.warmup_steps, options.steps));
    ema_loss = ema_init ? 0.98 * ema_loss + 0.02 * loss : loss;
    ema_init = true;
    if (options.log_every > 0 && (step + 1) % options.log_every == 0) {
      KAMEL_LOG(Info) << "mlm step " << (step + 1) << "/" << options.steps
                      << " loss=" << ema_loss;
    }
  }

  MlmTrainStats stats;
  stats.steps = options.steps;
  stats.final_loss = ema_loss;
  stats.seconds = watch.ElapsedSeconds();
  return stats;
}

}  // namespace kamel::nn
