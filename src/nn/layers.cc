#include "nn/layers.h"

#include <cmath>
#include <cstring>

#include "nn/blas.h"

namespace kamel::nn {

Linear::Linear(std::string name, int64_t in_features, int64_t out_features,
               Rng* rng)
    : weight_(name + ".weight",
              Tensor::Randn({in_features, out_features}, rng,
                            // Xavier-ish fan-in scaling keeps activations
                            // O(1) at init for any layer width.
                            1.0 / std::sqrt(static_cast<double>(in_features)))),
      bias_(name + ".bias", Tensor::Zeros({out_features})) {}

Tensor Linear::Forward(const Tensor& x) {
  KAMEL_CHECK(!weight_.quantized(),
              "cannot train a layer with quantized (serving-only) weights");
  Tensor y = Apply(x);
  x_cache_ = x;
  return y;
}

Tensor Linear::Apply(const Tensor& x, Activation act) const {
  KAMEL_CHECK(x.rank() == 2 && x.dim(1) == in_features(),
              "Linear input shape mismatch: " + x.ShapeString());
  const int64_t n = x.dim(0);
  const int64_t out = out_features();
  Tensor y({n, out});
  const WeightView w = weight_.quantized()
                           ? WeightView::Quant(&weight_.quant)
                           : WeightView::Dense(weight_.value.data());
  ActiveBackend()->LinearForward(n, in_features(), out, x.data(), w,
                                 bias_.value.data(), act, y.data());
  return y;
}

Tensor Linear::Backward(const Tensor& grad_out) {
  KAMEL_CHECK(!weight_.quantized(),
              "cannot train a layer with quantized (serving-only) weights");
  const int64_t n = x_cache_.dim(0);
  const int64_t in = in_features();
  const int64_t out = out_features();
  KAMEL_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == n &&
                  grad_out.dim(1) == out,
              "Linear grad shape mismatch");
  // dW += x^T * gout
  Sgemm(true, false, in, out, n, 1.0f, x_cache_.data(), in, grad_out.data(),
        out, 1.0f, weight_.grad.data(), out);
  // db += column sums of gout
  for (int64_t r = 0; r < n; ++r) {
    Saxpy(out, 1.0f, grad_out.data() + r * out, bias_.grad.data());
  }
  // dx = gout * W^T
  Tensor dx({n, in});
  Sgemm(false, true, n, in, out, 1.0f, grad_out.data(), out,
        weight_.value.data(), out, 0.0f, dx.data(), in);
  return dx;
}

void Linear::CollectParams(std::vector<Param*>* out) {
  out->push_back(&weight_);
  out->push_back(&bias_);
}

LayerNorm::LayerNorm(std::string name, int64_t dim, float eps)
    : gamma_(name + ".gamma", Tensor::Full({dim}, 1.0f)),
      beta_(name + ".beta", Tensor::Zeros({dim})),
      eps_(eps) {}

namespace {

// Shared LayerNorm forward math. When `xhat_out`/`inv_std_out` are given the
// normalized activations are cached for Backward; the inference path passes
// nullptr so the same code runs cache-free (and byte-identical).
Tensor LayerNormForward(const Tensor& x, const Param& gamma,
                        const Param& beta, float eps, Tensor* xhat_out,
                        std::vector<float>* inv_std_out) {
  const int64_t d = gamma.value.dim(0);
  KAMEL_CHECK(x.rank() == 2 && x.dim(1) == d, "LayerNorm shape mismatch");
  const int64_t n = x.dim(0);
  Tensor y({n, d});
  if (xhat_out != nullptr) *xhat_out = Tensor({n, d});
  if (inv_std_out != nullptr) inv_std_out->assign(static_cast<size_t>(n), 0.0f);
  std::vector<float> xhat_local(static_cast<size_t>(d));
  for (int64_t r = 0; r < n; ++r) {
    const float* xr = x.data() + r * d;
    double mean = 0.0;
    for (int64_t c = 0; c < d; ++c) mean += xr[c];
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (int64_t c = 0; c < d; ++c) {
      const double diff = xr[c] - mean;
      var += diff * diff;
    }
    var /= static_cast<double>(d);
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps));
    if (inv_std_out != nullptr) {
      (*inv_std_out)[static_cast<size_t>(r)] = inv_std;
    }
    float* xhat =
        xhat_out != nullptr ? xhat_out->data() + r * d : xhat_local.data();
    float* yr = y.data() + r * d;
    const float meanf = static_cast<float>(mean);
    for (int64_t c = 0; c < d; ++c) {
      xhat[c] = (xr[c] - meanf) * inv_std;
      yr[c] = xhat[c] * gamma.value[c] + beta.value[c];
    }
  }
  return y;
}

}  // namespace

Tensor LayerNorm::Forward(const Tensor& x) {
  return LayerNormForward(x, gamma_, beta_, eps_, &xhat_cache_,
                          &inv_std_cache_);
}

Tensor LayerNorm::Apply(const Tensor& x) const {
  const int64_t d = gamma_.value.dim(0);
  KAMEL_CHECK(x.rank() == 2 && x.dim(1) == d, "LayerNorm shape mismatch");
  Tensor y({x.dim(0), d});
  // The scalar backend's LayerNormRows carries the same double-precision
  // mean/variance math as LayerNormForward, so the default serving path
  // stays byte-identical to training's forward.
  ActiveBackend()->LayerNormRows(x.dim(0), d, x.data(), gamma_.value.data(),
                                 beta_.value.data(), eps_, y.data());
  return y;
}

Tensor LayerNorm::Backward(const Tensor& grad_out) {
  const int64_t d = gamma_.value.dim(0);
  const int64_t n = xhat_cache_.dim(0);
  KAMEL_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == n &&
                  grad_out.dim(1) == d,
              "LayerNorm grad shape mismatch");
  Tensor dx({n, d});
  for (int64_t r = 0; r < n; ++r) {
    const float* g = grad_out.data() + r * d;
    const float* xhat = xhat_cache_.data() + r * d;
    const float inv_std = inv_std_cache_[static_cast<size_t>(r)];
    double sum_dxhat = 0.0;
    double sum_dxhat_xhat = 0.0;
    for (int64_t c = 0; c < d; ++c) {
      const double dxhat = static_cast<double>(g[c]) * gamma_.value[c];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * xhat[c];
      gamma_.grad[c] += g[c] * xhat[c];
      beta_.grad[c] += g[c];
    }
    float* dxr = dx.data() + r * d;
    const double inv_d = 1.0 / static_cast<double>(d);
    for (int64_t c = 0; c < d; ++c) {
      const double dxhat = static_cast<double>(g[c]) * gamma_.value[c];
      dxr[c] = static_cast<float>(
          inv_std * (dxhat - inv_d * sum_dxhat -
                     static_cast<double>(xhat[c]) * inv_d * sum_dxhat_xhat));
    }
  }
  return dx;
}

void LayerNorm::CollectParams(std::vector<Param*>* out) {
  out->push_back(&gamma_);
  out->push_back(&beta_);
}

Tensor Dropout::Forward(const Tensor& x, bool train, Rng* rng) {
  if (!train || p_ <= 0.0) {
    identity_ = true;
    return x;
  }
  identity_ = false;
  const float scale = static_cast<float>(1.0 / (1.0 - p_));
  Tensor y(x.shape());
  kept_.assign(static_cast<size_t>(x.size()), 0);
  for (int64_t i = 0; i < x.size(); ++i) {
    if (!rng->NextBernoulli(p_)) {
      kept_[static_cast<size_t>(i)] = 1;
      y[i] = x[i] * scale;
    }
  }
  return y;
}

Tensor Dropout::Backward(const Tensor& grad_out) {
  if (identity_) return grad_out;
  const float scale = static_cast<float>(1.0 / (1.0 - p_));
  Tensor dx(grad_out.shape());
  for (int64_t i = 0; i < grad_out.size(); ++i) {
    dx[i] = kept_[static_cast<size_t>(i)] ? grad_out[i] * scale : 0.0f;
  }
  return dx;
}

Embedding::Embedding(std::string name, int64_t vocab, int64_t dim, Rng* rng)
    : table_(name + ".table", Tensor::Randn({vocab, dim}, rng, 0.02)) {}

Tensor Embedding::Forward(const std::vector<int32_t>& ids) {
  KAMEL_CHECK(!table_.quantized(),
              "cannot train an embedding with quantized weights");
  Tensor y = Lookup(ids);
  ids_cache_ = ids;
  return y;
}

Tensor Embedding::Lookup(const std::vector<int32_t>& ids) const {
  const int64_t d = dim();
  Tensor y({static_cast<int64_t>(ids.size()), d});
  for (size_t i = 0; i < ids.size(); ++i) {
    KAMEL_DCHECK(ids[i] >= 0 && ids[i] < vocab_size(),
                 "embedding id out of range");
    if (table_.quantized()) {
      // Rows are quantized independently, so one lookup decodes exactly
      // one row's blocks — no neighbor rows are touched.
      table_.quant.DequantizeRow(ids[i],
                                 y.data() + static_cast<int64_t>(i) * d);
    } else {
      std::memcpy(y.data() + static_cast<int64_t>(i) * d,
                  table_.value.data() + static_cast<int64_t>(ids[i]) * d,
                  static_cast<size_t>(d) * sizeof(float));
    }
  }
  return y;
}

void Embedding::Backward(const Tensor& grad_out) {
  const int64_t d = dim();
  KAMEL_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == d &&
                  grad_out.dim(0) == static_cast<int64_t>(ids_cache_.size()),
              "Embedding grad shape mismatch");
  for (size_t i = 0; i < ids_cache_.size(); ++i) {
    Saxpy(d, 1.0f, grad_out.data() + static_cast<int64_t>(i) * d,
          table_.grad.data() + static_cast<int64_t>(ids_cache_[i]) * d);
  }
}

void Embedding::CollectParams(std::vector<Param*>* out) {
  out->push_back(&table_);
}

}  // namespace kamel::nn
