#ifndef KAMEL_NN_TENSOR_H_
#define KAMEL_NN_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace kamel::nn {

/// Dense row-major float32 tensor.
///
/// The nn library keeps tensors deliberately simple: contiguous storage, no
/// views, no broadcasting, no reference counting. All layer code operates on
/// explicit shapes; reshapes are metadata-only. This is the numerical
/// substrate for KAMEL's BERT component.
class Tensor {
 public:
  /// Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape. All extents
  /// must be positive.
  explicit Tensor(std::vector<int64_t> shape);

  /// Zero-initialized tensor (alias of the shape constructor, reads better
  /// at call sites).
  static Tensor Zeros(std::vector<int64_t> shape);

  /// I.i.d. normal entries with the given standard deviation.
  static Tensor Randn(std::vector<int64_t> shape, Rng* rng,
                      double stddev = 0.02);

  /// Filled with a constant.
  static Tensor Full(std::vector<int64_t> shape, float value);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int i) const { return shape_[static_cast<size_t>(i)]; }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// Element at (row, col) of a rank-2 tensor.
  float& At(int64_t r, int64_t c) {
    KAMEL_DCHECK(rank() == 2);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  float At(int64_t r, int64_t c) const {
    KAMEL_DCHECK(rank() == 2);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }

  /// Sets every element to zero (keeps the allocation).
  void SetZero();

  /// Changes the shape metadata; the element count must be preserved.
  void Reshape(std::vector<int64_t> shape);

  /// Sum of all elements (float64 accumulator).
  double Sum() const;

  /// Largest absolute element, 0 for empty tensors.
  float AbsMax() const;

  /// "f32[2, 3]"-style description.
  std::string ShapeString() const;

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

/// True when shapes are identical.
bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace kamel::nn

#endif  // KAMEL_NN_TENSOR_H_
