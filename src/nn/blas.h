#ifndef KAMEL_NN_BLAS_H_
#define KAMEL_NN_BLAS_H_

#include <cstdint>

namespace kamel::nn {

/// Single-precision matrix multiply: C = alpha * op(A) * op(B) + beta * C.
///
/// op(A) is m x k, op(B) is k x n, C is m x n; all matrices are dense
/// row-major with the given leading dimensions (row strides). This is the
/// single compute kernel behind every layer in the nn library; the
/// no-transpose path uses an i-k-j loop ordering that GCC/Clang vectorize
/// well at -O3, which is sufficient for KAMEL's CPU-scale models.
void Sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
           float alpha, const float* a, int64_t lda, const float* b,
           int64_t ldb, float beta, float* c, int64_t ldc);

/// y += x, both of length n.
void Saxpy(int64_t n, float alpha, const float* x, float* y);

}  // namespace kamel::nn

#endif  // KAMEL_NN_BLAS_H_
