#include "nn/backend/quant.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace kamel::nn {

namespace {

// q8_0: fp32 scale + 32 int8 quants. q = round(v / scale) with
// scale = absmax / 127, so the largest-magnitude weight maps to ±127
// exactly and an all-zero block stores scale 0 (decoding to exact zeros
// without a division anywhere).
constexpr int64_t kQ8BlockBytes = 4 + kQuantBlock;
// q4_0: fp32 scale + 16 bytes of packed nibbles. q = round(v / scale) in
// [-7, 7] stored biased as q + 8 (1..15); scale = absmax / 7.
constexpr int64_t kQ4BlockBytes = 4 + kQuantBlock / 2;

void StoreF32(uint8_t* dst, float v) { std::memcpy(dst, &v, sizeof(v)); }

float LoadF32(const uint8_t* src) {
  float v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

int QuantizeValue(float v, float inv_scale, int bound) {
  const int q = static_cast<int>(std::lrintf(v * inv_scale));
  return q < -bound ? -bound : (q > bound ? bound : q);
}

// `src` holds exactly 32 values (callers pad tail blocks with zeros).
void EncodeBlockQ8(const float* src, uint8_t* dst) {
  float absmax = 0.0f;
  for (int64_t i = 0; i < kQuantBlock; ++i) {
    absmax = std::max(absmax, std::fabs(src[i]));
  }
  const float scale = absmax / 127.0f;
  StoreF32(dst, scale);
  const float inv_scale = scale > 0.0f ? 1.0f / scale : 0.0f;
  int8_t* q = reinterpret_cast<int8_t*>(dst + 4);
  for (int64_t i = 0; i < kQuantBlock; ++i) {
    q[i] = static_cast<int8_t>(QuantizeValue(src[i], inv_scale, 127));
  }
}

void EncodeBlockQ4(const float* src, uint8_t* dst) {
  float absmax = 0.0f;
  for (int64_t i = 0; i < kQuantBlock; ++i) {
    absmax = std::max(absmax, std::fabs(src[i]));
  }
  const float scale = absmax / 7.0f;
  StoreF32(dst, scale);
  const float inv_scale = scale > 0.0f ? 1.0f / scale : 0.0f;
  uint8_t* packed = dst + 4;
  for (int64_t i = 0; i < kQuantBlock / 2; ++i) {
    const int lo = QuantizeValue(src[2 * i], inv_scale, 7) + 8;
    const int hi = QuantizeValue(src[2 * i + 1], inv_scale, 7) + 8;
    packed[i] = static_cast<uint8_t>(lo | (hi << 4));
  }
}

void DecodeBlockQ8(const uint8_t* src, float* dst) {
  const float scale = LoadF32(src);
  const int8_t* q = reinterpret_cast<const int8_t*>(src + 4);
  for (int64_t i = 0; i < kQuantBlock; ++i) {
    dst[i] = scale * static_cast<float>(q[i]);
  }
}

void DecodeBlockQ4(const uint8_t* src, float* dst) {
  const float scale = LoadF32(src);
  const uint8_t* packed = src + 4;
  for (int64_t i = 0; i < kQuantBlock / 2; ++i) {
    const int byte = packed[i];
    dst[2 * i] = scale * static_cast<float>((byte & 0x0F) - 8);
    dst[2 * i + 1] = scale * static_cast<float>((byte >> 4) - 8);
  }
}

}  // namespace

const char* ToString(WeightFormat format) {
  switch (format) {
    case WeightFormat::kF32:
      return "f32";
    case WeightFormat::kQ8_0:
      return "q8_0";
    case WeightFormat::kQ4_0:
      return "q4_0";
  }
  return "unknown";
}

Result<WeightFormat> ParseWeightFormat(std::string_view name) {
  if (name == "none" || name == "f32" || name == "fp32") {
    return WeightFormat::kF32;
  }
  if (name == "q8_0") return WeightFormat::kQ8_0;
  if (name == "q4_0") return WeightFormat::kQ4_0;
  return Status::InvalidArgument("unknown weight format '" +
                                 std::string(name) +
                                 "' (none|q8_0|q4_0)");
}

int64_t QuantBlockBytes(WeightFormat format) {
  KAMEL_CHECK(format != WeightFormat::kF32,
              "fp32 weights are not block-encoded");
  return format == WeightFormat::kQ8_0 ? kQ8BlockBytes : kQ4BlockBytes;
}

int64_t QuantRowBytes(WeightFormat format, int64_t cols) {
  const int64_t blocks = (cols + kQuantBlock - 1) / kQuantBlock;
  return blocks * QuantBlockBytes(format);
}

Result<QuantMatrix> QuantMatrix::Quantize(WeightFormat format,
                                          const float* src, int64_t rows,
                                          int64_t cols) {
  KAMEL_CHECK(rows > 0 && cols > 0, "quantizing an empty matrix");
  KAMEL_CHECK(format != WeightFormat::kF32,
              "QuantMatrix cannot hold fp32 weights");
  for (int64_t i = 0; i < rows * cols; ++i) {
    if (!std::isfinite(src[i])) {
      return Status::InvalidArgument(
          "non-finite weight at flat index " + std::to_string(i) +
          "; refusing to quantize a poisoned model");
    }
  }
  QuantMatrix out;
  out.format_ = format;
  out.rows_ = rows;
  out.cols_ = cols;
  const int64_t row_bytes = out.row_bytes();
  const int64_t block_bytes = QuantBlockBytes(format);
  out.data_.resize(static_cast<size_t>(rows * row_bytes));
  float padded[kQuantBlock];
  for (int64_t r = 0; r < rows; ++r) {
    const float* src_row = src + r * cols;
    uint8_t* dst = out.data_.data() + r * row_bytes;
    for (int64_t c = 0; c < cols; c += kQuantBlock) {
      const float* block_src = src_row + c;
      const int64_t have = std::min(kQuantBlock, cols - c);
      if (have < kQuantBlock) {
        // Tail block: pad with zeros so decode always runs a full block.
        std::memcpy(padded, block_src, static_cast<size_t>(have) *
                                           sizeof(float));
        std::memset(padded + have, 0,
                    static_cast<size_t>(kQuantBlock - have) * sizeof(float));
        block_src = padded;
      }
      if (format == WeightFormat::kQ8_0) {
        EncodeBlockQ8(block_src, dst);
      } else {
        EncodeBlockQ4(block_src, dst);
      }
      dst += block_bytes;
    }
  }
  return out;
}

void QuantMatrix::DequantizeRow(int64_t row, float* dst) const {
  KAMEL_DCHECK(row >= 0 && row < rows_, "quant row out of range");
  const uint8_t* src = row_data(row);
  const int64_t block_bytes = QuantBlockBytes(format_);
  float block[kQuantBlock];
  for (int64_t c = 0; c < cols_; c += kQuantBlock) {
    const int64_t want = std::min(kQuantBlock, cols_ - c);
    if (want == kQuantBlock) {
      DequantizeBlock(format_, src, dst + c);
    } else {
      DequantizeBlock(format_, src, block);
      std::memcpy(dst + c, block, static_cast<size_t>(want) * sizeof(float));
    }
    src += block_bytes;
  }
}

void QuantMatrix::Dequantize(float* dst) const {
  for (int64_t r = 0; r < rows_; ++r) DequantizeRow(r, dst + r * cols_);
}

void QuantMatrix::Save(BinaryWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(format_));
  writer->WriteI64(rows_);
  writer->WriteI64(cols_);
  writer->WriteBytes(data_);
}

Result<QuantMatrix> QuantMatrix::Load(BinaryReader* reader) {
  KAMEL_ASSIGN_OR_RETURN(uint8_t format_byte, reader->ReadU8());
  if (format_byte != static_cast<uint8_t>(WeightFormat::kQ8_0) &&
      format_byte != static_cast<uint8_t>(WeightFormat::kQ4_0)) {
    return Status::IOError("bad quantized weight format tag " +
                           std::to_string(format_byte));
  }
  QuantMatrix out;
  out.format_ = static_cast<WeightFormat>(format_byte);
  KAMEL_ASSIGN_OR_RETURN(out.rows_, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(out.cols_, reader->ReadI64());
  if (out.rows_ <= 0 || out.cols_ <= 0) {
    return Status::IOError("bad quantized weight shape");
  }
  KAMEL_ASSIGN_OR_RETURN(out.data_, reader->ReadBytes());
  const int64_t expected = out.rows_ * out.row_bytes();
  if (static_cast<int64_t>(out.data_.size()) != expected) {
    return Status::IOError(
        "quantized weight payload size mismatch: expected " +
        std::to_string(expected) + " bytes, found " +
        std::to_string(out.data_.size()));
  }
  return out;
}

void DequantizeBlock(WeightFormat format, const uint8_t* block, float* dst) {
  if (format == WeightFormat::kQ8_0) {
    DecodeBlockQ8(block, dst);
  } else {
    DecodeBlockQ4(block, dst);
  }
}

}  // namespace kamel::nn
