#ifndef KAMEL_NN_BACKEND_QUANT_H_
#define KAMEL_NN_BACKEND_QUANT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "common/status.h"

namespace kamel::nn {

/// Storage format of one weight matrix. fp32 is the training format and
/// the serving default; the quantized formats are ggml-style block codes
/// used for *serving only* — KamelBuilder quantizes at snapshot-save time
/// and a quantized model can never be trained further (it is replaced
/// wholesale on retrain, like every model in the repository).
enum class WeightFormat : uint8_t {
  kF32 = 0,
  /// Blocks of 32 weights, each stored as one fp32 scale + 32 int8
  /// quants: 36 bytes per block, 28.1% of fp32.
  kQ8_0 = 1,
  /// Blocks of 32 weights, each stored as one fp32 scale + 16 bytes of
  /// packed 4-bit quants: 20 bytes per block, 15.6% of fp32.
  kQ4_0 = 2,
};

/// Weights per quantization block (both quantized formats).
inline constexpr int64_t kQuantBlock = 32;

const char* ToString(WeightFormat format);

/// Parses "none"/"f32"/"fp32" -> kF32, "q8_0" -> kQ8_0, "q4_0" -> kQ4_0.
Result<WeightFormat> ParseWeightFormat(std::string_view name);

/// Bytes of one encoded block of `format` (must be a quantized format).
int64_t QuantBlockBytes(WeightFormat format);

/// Encoded bytes of one row of `cols` weights: the row is covered by
/// ceil(cols / 32) blocks; a short tail block is zero-padded to full size
/// so every row decodes with the same block loop.
int64_t QuantRowBytes(WeightFormat format, int64_t cols);

/// A row-major [rows, cols] weight matrix held in a block-quantized
/// format. Rows are quantized independently (each row is a whole number
/// of blocks), so a single row — an embedding-table entry, one k-slice of
/// a GEMM — can be decoded without touching its neighbors.
class QuantMatrix {
 public:
  QuantMatrix() = default;

  /// Quantizes a dense row-major [rows, cols] fp32 matrix. Returns
  /// InvalidArgument if any weight is NaN or Inf — a model with poisoned
  /// weights must be rejected at snapshot-save time, not discovered as
  /// garbage predictions after a demand load.
  static Result<QuantMatrix> Quantize(WeightFormat format, const float* src,
                                      int64_t rows, int64_t cols);

  bool empty() const { return rows_ == 0; }
  WeightFormat format() const { return format_; }
  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t row_bytes() const { return QuantRowBytes(format_, cols_); }
  int64_t byte_size() const { return static_cast<int64_t>(data_.size()); }
  const uint8_t* row_data(int64_t row) const {
    return data_.data() + row * row_bytes();
  }

  /// Decodes one row into `dst` (cols floats).
  void DequantizeRow(int64_t row, float* dst) const;

  /// Decodes the whole matrix into `dst` (rows * cols floats).
  void Dequantize(float* dst) const;

  /// Serializes format + shape + encoded bytes.
  void Save(BinaryWriter* writer) const;
  static Result<QuantMatrix> Load(BinaryReader* reader);

 private:
  WeightFormat format_ = WeightFormat::kQ8_0;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<uint8_t> data_;
};

/// Decodes one encoded block into 32 floats (`dst` must hold 32). Exposed
/// for kernels that fuse decoding into a GEMM inner loop.
void DequantizeBlock(WeightFormat format, const uint8_t* block, float* dst);

}  // namespace kamel::nn

#endif  // KAMEL_NN_BACKEND_QUANT_H_
