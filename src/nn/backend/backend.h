#ifndef KAMEL_NN_BACKEND_BACKEND_H_
#define KAMEL_NN_BACKEND_BACKEND_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "nn/backend/quant.h"

namespace kamel::nn {

/// Pointwise activation fused into LinearForward.
enum class Activation { kNone, kGelu };

/// One serving-path weight matrix: exactly one of `dense` (row-major fp32
/// [rows, cols]) or `quant` is set. A view, not an owner.
struct WeightView {
  const float* dense = nullptr;
  const QuantMatrix* quant = nullptr;

  static WeightView Dense(const float* w) { return {w, nullptr}; }
  static WeightView Quant(const QuantMatrix* q) { return {nullptr, q}; }
  bool quantized() const { return quant != nullptr; }
};

/// The compute interface behind every inference op in the nn library.
///
/// Two implementations exist: ScalarBackend is the numerical reference —
/// the original straightforward kernels, kept byte-for-byte compatible
/// with historical serving output — and OptimizedBackend is the
/// cache-blocked, SIMD-vectorized rewrite. Every op of every backend is
/// gated against the scalar fp32 reference by an NMSE tolerance in
/// tests/backend_conformance_test.cc (the ggml test-backend-ops idea).
///
/// All methods are const and stateless: any number of threads may push
/// work through one backend concurrently. The serving determinism
/// contract (ImputeBatch byte-identical at any thread count) holds per
/// fixed backend + weight format; switching backends may legally change
/// low-order output bits.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual const char* name() const = 0;

  /// C = alpha * op(A) * op(B) + beta * C; op(A) m x k, op(B) k x n,
  /// row-major with leading dimensions (row strides) lda/ldb/ldc.
  virtual void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n,
                    int64_t k, float alpha, const float* a, int64_t lda,
                    const float* b, int64_t ldb, float beta, float* c,
                    int64_t ldc) const = 0;

  /// y += alpha * x, both of length n.
  virtual void Axpy(int64_t n, float alpha, const float* x,
                    float* y) const = 0;

  /// Elementwise GELU (tanh approximation), y may alias x.
  virtual void Gelu(const float* x, float* y, int64_t n) const = 0;

  /// Row-batched numerically-stable softmax over [rows, n]; y may alias x.
  virtual void SoftmaxRows(int64_t rows, int64_t n, const float* x,
                           float* y) const = 0;

  /// Row-batched LayerNorm over [rows, dim] with fp32 gamma/beta.
  virtual void LayerNormRows(int64_t rows, int64_t dim, const float* x,
                             const float* gamma, const float* beta,
                             float eps, float* y) const = 0;

  /// y[rows, out] = act(x[rows, in] * W[in, out] + bias). The weight may
  /// be dense fp32 or block-quantized; activations are always fp32
  /// (weights-only quantization). bias may be null (no bias).
  virtual void LinearForward(int64_t rows, int64_t in, int64_t out,
                             const float* x, const WeightView& w,
                             const float* bias, Activation act,
                             float* y) const = 0;

  /// Batched scaled-dot-product attention over every (batch, head) pair.
  /// `qkv` is [batch*seq_len, 3*d_model] (Q | K | V column blocks);
  /// `key_mask` has batch*seq_len entries, 0 marking padded keys (their
  /// scores are forced to -1e9 before the softmax). Writes per-head
  /// contexts into `ctx` [batch*seq_len, d_model]. When `probs_out` is
  /// non-null the attention probabilities are stored there
  /// ([batch*num_heads*seq_len, seq_len]; the training path caches them
  /// for Backward) — inference passes nullptr and scratch stays local.
  ///
  /// The base implementation reads Q/K/V as strided views of `qkv` (no
  /// gather/scatter copies) and runs on this backend's Gemm/SoftmaxRows,
  /// so both backends share one batched attention path whose speed
  /// follows their GEMM.
  virtual void AttentionContext(const float* qkv, const float* key_mask,
                                int64_t batch, int64_t seq_len,
                                int64_t d_model, int64_t num_heads,
                                float* probs_out, float* ctx) const;
};

/// The reference backend: the original scalar kernels.
class ScalarBackend final : public Backend {
 public:
  const char* name() const override { return "scalar"; }
  void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
            float alpha, const float* a, int64_t lda, const float* b,
            int64_t ldb, float beta, float* c, int64_t ldc) const override;
  void Axpy(int64_t n, float alpha, const float* x, float* y) const override;
  void Gelu(const float* x, float* y, int64_t n) const override;
  void SoftmaxRows(int64_t rows, int64_t n, const float* x,
                   float* y) const override;
  void LayerNormRows(int64_t rows, int64_t dim, const float* x,
                     const float* gamma, const float* beta, float eps,
                     float* y) const override;
  void LinearForward(int64_t rows, int64_t in, int64_t out, const float* x,
                     const WeightView& w, const float* bias, Activation act,
                     float* y) const override;

  static const ScalarBackend& Instance();
};

/// The fast backend: register-tiled, L1-blocked GEMM (accumulators live
/// in registers across the whole k loop; B is walked in L1-resident
/// column panels), fused bias+activation epilogues, and block-at-a-time
/// dequantization fused into the quantized GEMM panel loop.
class OptimizedBackend final : public Backend {
 public:
  const char* name() const override { return "optimized"; }
  void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
            float alpha, const float* a, int64_t lda, const float* b,
            int64_t ldb, float beta, float* c, int64_t ldc) const override;
  void Axpy(int64_t n, float alpha, const float* x, float* y) const override;
  void Gelu(const float* x, float* y, int64_t n) const override;
  void SoftmaxRows(int64_t rows, int64_t n, const float* x,
                   float* y) const override;
  void LayerNormRows(int64_t rows, int64_t dim, const float* x,
                     const float* gamma, const float* beta, float eps,
                     float* y) const override;
  void LinearForward(int64_t rows, int64_t in, int64_t out, const float* x,
                     const WeightView& w, const float* bias, Activation act,
                     float* y) const override;

  static const OptimizedBackend& Instance();
};

/// All registered backends (scalar first).
std::vector<const Backend*> AllBackends();

/// Backend by name ("scalar" | "optimized"); nullptr if unknown.
const Backend* FindBackend(std::string_view name);

/// The process-wide backend used by every inference path (Linear::Apply,
/// MultiHeadAttention::Apply, BertModel::ForwardInference, ...). Defaults
/// to scalar — the reference — unless $KAMEL_NN_BACKEND names another;
/// `kamel --backend` and tests override it via SetActiveBackend. Read
/// with a relaxed atomic load: set it once at startup, before serving
/// threads exist, to keep outputs deterministic.
const Backend* ActiveBackend();

/// Selects the process-wide backend; InvalidArgument on an unknown name.
Status SetActiveBackend(std::string_view name);

}  // namespace kamel::nn

#endif  // KAMEL_NN_BACKEND_BACKEND_H_
