// The fast backend: register-tiled, L1-blocked kernels.
//
// The reference GemmNN keeps its C rows in memory, so every k step is a
// load+FMA+store round trip over 4*n floats of C — at n=256 that is ~32MB
// of L1 traffic for a 256^3 multiply. This kernel instead tiles C into
// 4x32 accumulator blocks that live in vector registers across the
// entire k loop (8 zmm / 16 ymm registers), and walks B in 32-column
// panels: one panel spans k*128 bytes, L1-resident for every k this
// codebase uses, so each B element is loaded once per 4 output rows from
// L1 instead of from L2. C is touched exactly once per tile.
//
// The 32-column panel width deliberately equals the quantization block
// size (kQuantBlock): the quantized GEMM decodes one block per (row,
// panel) into an L1 scratch panel and runs the same micro-kernel, so
// dequantization is fused into the panel walk and costs one decode of W
// per call regardless of how many input rows multiply against it.
//
// Per-element accumulation order over k is ascending in both backends;
// results differ from the reference only by FMA/reassociation rounding,
// which the conformance harness bounds by NMSE.
#include <cmath>
#include <vector>

#include "common/check.h"
#include "nn/backend/backend.h"
#include "nn/backend/kernel_util.h"
#include "nn/ops.h"

namespace kamel::nn {

namespace {

constexpr int64_t kNr = 32;  // panel width == kQuantBlock
constexpr int64_t kMr = 4;   // rows per register tile

static_assert(kNr == kQuantBlock,
              "panel width must match the quantization block size so the "
              "quantized GEMM decodes exactly one block per panel row");

// What happens to a finished accumulator tile on its way into C.
struct Epilogue {
  float beta = 0.0f;         // C = beta * C + result
  const float* bias = nullptr;  // per-output-column bias, nullable
  bool gelu = false;
};

// One register tile: MR rows x 32 columns of C, accumulated over all of
// k with the accumulators in vector registers. The accumulate loops are
// always full panel width (fixed trip count vectorizes cleanly); `width`
// only limits the writeback, so a tail panel runs on a zero-padded B
// scratch at full register-tile speed and just stores fewer columns.
template <int MR>
void PanelKernel(int64_t k, float alpha, const float* __restrict a,
                 int64_t lda, const float* __restrict b, int64_t ldb,
                 const Epilogue& epi, int64_t width, float* __restrict c,
                 int64_t ldc) {
  float acc[MR][kNr];
  for (int r = 0; r < MR; ++r) {
#pragma omp simd
    for (int64_t j = 0; j < kNr; ++j) acc[r][j] = 0.0f;
  }
  for (int64_t p = 0; p < k; ++p) {
    const float* __restrict b_row = b + p * ldb;
    for (int r = 0; r < MR; ++r) {
      const float av = alpha * a[r * lda + p];
#pragma omp simd
      for (int64_t j = 0; j < kNr; ++j) acc[r][j] += av * b_row[j];
    }
  }
  for (int r = 0; r < MR; ++r) {
    float* __restrict c_row = c + r * ldc;
    for (int64_t j = 0; j < width; ++j) {
      float v = acc[r][j];
      if (epi.bias != nullptr) v += epi.bias[j];
      if (epi.beta != 0.0f) v += epi.beta * c_row[j];
      c_row[j] = epi.gelu ? GeluOne(v) : v;
    }
  }
}

// All row tiles of one B panel (`width` <= 32 live columns).
void PanelRows(int64_t m, int64_t k, float alpha, const float* a,
               int64_t lda, const float* b, int64_t ldb, const Epilogue& epi,
               int64_t width, float* c, int64_t ldc) {
  int64_t i = 0;
  for (; i + kMr <= m; i += kMr) {
    PanelKernel<kMr>(k, alpha, a + i * lda, lda, b, ldb, epi, width,
                     c + i * ldc, ldc);
  }
  for (; i < m; ++i) {
    PanelKernel<1>(k, alpha, a + i * lda, lda, b, ldb, epi, width,
                   c + i * ldc, ldc);
  }
}

// C[m,n] = epilogue(alpha * A[m,k] * B[k,n]), no transposes.
void GemmNNOpt(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
               int64_t lda, const float* b, int64_t ldb, const Epilogue& epi,
               float* c, int64_t ldc) {
  int64_t j0 = 0;
  for (; j0 + kNr <= n; j0 += kNr) {
    Epilogue panel_epi = epi;
    if (epi.bias != nullptr) panel_epi.bias = epi.bias + j0;
    PanelRows(m, k, alpha, a, lda, b + j0, ldb, panel_epi, kNr,
              c + j0, ldc);
  }
  if (j0 < n) {
    // Pack the tail columns into a zero-padded 32-wide panel so the tail
    // runs the same register-tiled kernel instead of a strided slow path
    // (the padding columns are computed and discarded — cheaper than
    // losing the register tiling).
    const int64_t width = n - j0;
    std::vector<float> panel(static_cast<size_t>(k * kNr), 0.0f);
    for (int64_t p = 0; p < k; ++p) {
      const float* src = b + p * ldb + j0;
      float* dst = panel.data() + p * kNr;
      for (int64_t j = 0; j < width; ++j) dst[j] = src[j];
    }
    Epilogue tail_epi = epi;
    if (epi.bias != nullptr) tail_epi.bias = epi.bias + j0;
    PanelRows(m, k, alpha, a, lda, panel.data(), kNr, tail_epi, width,
              c + j0, ldc);
  }
}

// y[m, out] = epilogue(x[m, in] * Wq[in, out]) with W block-quantized.
// Decodes W one 32-column panel at a time into an L1-resident scratch
// ([k x 32] floats) and reuses the fp32 micro-kernel against it, so the
// whole matrix is decoded exactly once per call.
void GemmQuantOpt(int64_t m, int64_t in, int64_t out, const float* x,
                  const QuantMatrix& w, const Epilogue& epi, float* y) {
  const int64_t block_bytes = QuantBlockBytes(w.format());
  std::vector<float> panel(static_cast<size_t>(in * kNr));
  const int64_t panels = (out + kNr - 1) / kNr;
  for (int64_t pb = 0; pb < panels; ++pb) {
    const int64_t j0 = pb * kNr;
    const int64_t width = std::min(kNr, out - j0);
    for (int64_t p = 0; p < in; ++p) {
      // Tail blocks are stored zero-padded, so a full-block decode is
      // always safe; the kernel only reads `width` columns.
      DequantizeBlock(w.format(), w.row_data(p) + pb * block_bytes,
                      panel.data() + p * kNr);
    }
    Epilogue panel_epi = epi;
    if (epi.bias != nullptr) panel_epi.bias = epi.bias + j0;
    // Tail blocks decode zero-padded, so the full-width kernel is safe;
    // `width` limits the writeback.
    PanelRows(m, in, 1.0f, x, in, panel.data(), kNr, panel_epi, width,
              y + j0, out);
  }
}

}  // namespace

void OptimizedBackend::Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n,
                            int64_t k, float alpha, const float* a,
                            int64_t lda, const float* b, int64_t ldb,
                            float beta, float* c, int64_t ldc) const {
  KAMEL_DCHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0) return;
  Epilogue epi;
  epi.beta = beta;
  if (!trans_a && !trans_b) {
    GemmNNOpt(m, n, k, alpha, a, lda, b, ldb, epi, c, ldc);
    return;
  }
  std::vector<float> a_packed;
  std::vector<float> b_packed;
  const float* a_eff = a;
  int64_t lda_eff = lda;
  if (trans_a) {
    a_packed = internal::PackTransposed(a, m, k, lda);
    a_eff = a_packed.data();
    lda_eff = k;
  }
  const float* b_eff = b;
  int64_t ldb_eff = ldb;
  if (trans_b) {
    b_packed = internal::PackTransposed(b, k, n, ldb);
    b_eff = b_packed.data();
    ldb_eff = n;
  }
  GemmNNOpt(m, n, k, alpha, a_eff, lda_eff, b_eff, ldb_eff, epi, c, ldc);
}

void OptimizedBackend::Axpy(int64_t n, float alpha, const float* x,
                            float* y) const {
#pragma omp simd
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void OptimizedBackend::Gelu(const float* x, float* y, int64_t n) const {
  GeluForward(x, y, n);
}

void OptimizedBackend::SoftmaxRows(int64_t rows, int64_t n, const float* x,
                                   float* y) const {
  for (int64_t r = 0; r < rows; ++r) {
    SoftmaxRow(x + r * n, y + r * n, n);
  }
}

void OptimizedBackend::LayerNormRows(int64_t rows, int64_t dim,
                                     const float* x, const float* gamma,
                                     const float* beta, float eps,
                                     float* y) const {
  for (int64_t r = 0; r < rows; ++r) {
    const float* __restrict xr = x + r * dim;
    float* __restrict yr = y + r * dim;
    double mean = 0.0;
#pragma omp simd reduction(+ : mean)
    for (int64_t c = 0; c < dim; ++c) mean += xr[c];
    mean /= static_cast<double>(dim);
    double var = 0.0;
#pragma omp simd reduction(+ : var)
    for (int64_t c = 0; c < dim; ++c) {
      const double diff = xr[c] - mean;
      var += diff * diff;
    }
    var /= static_cast<double>(dim);
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps));
    const float meanf = static_cast<float>(mean);
#pragma omp simd
    for (int64_t c = 0; c < dim; ++c) {
      yr[c] = (xr[c] - meanf) * inv_std * gamma[c] + beta[c];
    }
  }
}

void OptimizedBackend::LinearForward(int64_t rows, int64_t in, int64_t out,
                                     const float* x, const WeightView& w,
                                     const float* bias, Activation act,
                                     float* y) const {
  Epilogue epi;
  epi.bias = bias;
  epi.gelu = act == Activation::kGelu;
  if (w.quantized()) {
    KAMEL_DCHECK(w.quant->rows() == in && w.quant->cols() == out,
                 "quantized weight shape mismatch");
    GemmQuantOpt(rows, in, out, x, *w.quant, epi, y);
    return;
  }
  GemmNNOpt(rows, out, in, 1.0f, x, in, w.dense, out, epi, y, out);
}

const OptimizedBackend& OptimizedBackend::Instance() {
  static const OptimizedBackend instance;
  return instance;
}

}  // namespace kamel::nn
