#ifndef KAMEL_NN_BACKEND_KERNEL_UTIL_H_
#define KAMEL_NN_BACKEND_KERNEL_UTIL_H_

#include <cstdint>
#include <vector>

namespace kamel::nn::internal {

/// The one beta-handling implementation shared by every GEMM path (both
/// backends, all transpose variants): C_row = beta * C_row before the
/// products accumulate. beta == 0 must WRITE zeros (not multiply), so an
/// uninitialized C never contaminates the result with NaNs.
inline void ScaleRow(float* row, int64_t n, float beta) {
  if (beta == 0.0f) {
    for (int64_t j = 0; j < n; ++j) row[j] = 0.0f;
  } else if (beta != 1.0f) {
    for (int64_t j = 0; j < n; ++j) row[j] *= beta;
  }
}

/// Materializes op(X) = X^T as a packed row-major matrix of shape
/// rows x cols (rows/cols describe the *output* shape): out(r, c) =
/// X(c, r). Transposed GEMM operands are packed through this so the hot
/// kernels only ever walk contiguous rows.
inline std::vector<float> PackTransposed(const float* x, int64_t rows,
                                         int64_t cols, int64_t ldx) {
  std::vector<float> out(static_cast<size_t>(rows * cols));
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      out[static_cast<size_t>(r * cols + c)] = x[c * ldx + r];
    }
  }
  return out;
}

}  // namespace kamel::nn::internal

#endif  // KAMEL_NN_BACKEND_KERNEL_UTIL_H_
