#include "nn/backend/backend.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/check.h"

namespace kamel::nn {

void Backend::AttentionContext(const float* qkv, const float* key_mask,
                               int64_t batch, int64_t seq_len,
                               int64_t d_model, int64_t num_heads,
                               float* probs_out, float* ctx) const {
  const int64_t head_dim = d_model / num_heads;
  const int64_t qkv_stride = 3 * d_model;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

  std::vector<float> scores(static_cast<size_t>(seq_len * seq_len));
  std::vector<float> probs_local;
  if (probs_out == nullptr) {
    probs_local.resize(static_cast<size_t>(seq_len * seq_len));
  }

  for (int64_t b = 0; b < batch; ++b) {
    const float* qkv_b = qkv + b * seq_len * qkv_stride;
    const float* mask_b = key_mask + b * seq_len;
    for (int64_t h = 0; h < num_heads; ++h) {
      const int64_t col = h * head_dim;
      // Q, K, V are strided column slices of the fused qkv matrix; the
      // GEMMs read them in place (lda = 3*d_model), so the per-head
      // gather copies of the training Backward path never happen here.
      const float* q = qkv_b + col;
      const float* k = qkv_b + d_model + col;
      const float* v = qkv_b + 2 * d_model + col;

      // scores = Q K^T * scale
      Gemm(false, true, seq_len, seq_len, head_dim, scale, q, qkv_stride, k,
           qkv_stride, 0.0f, scores.data(), seq_len);

      float* probs = probs_out != nullptr
                         ? probs_out + ((b * num_heads + h) * seq_len) *
                                           seq_len
                         : probs_local.data();
      for (int64_t t = 0; t < seq_len; ++t) {
        float* row = scores.data() + t * seq_len;
        for (int64_t u = 0; u < seq_len; ++u) {
          if (mask_b[u] == 0.0f) row[u] = -1e9f;
        }
      }
      SoftmaxRows(seq_len, seq_len, scores.data(), probs);

      // ctx_head = P V, written straight into the head's column slice.
      Gemm(false, false, seq_len, head_dim, seq_len, 1.0f, probs, seq_len,
           v, qkv_stride, 0.0f, ctx + b * seq_len * d_model + col, d_model);
    }
  }
}

std::vector<const Backend*> AllBackends() {
  return {&ScalarBackend::Instance(), &OptimizedBackend::Instance()};
}

const Backend* FindBackend(std::string_view name) {
  for (const Backend* backend : AllBackends()) {
    if (name == backend->name()) return backend;
  }
  return nullptr;
}

namespace {

const Backend* InitialBackend() {
  if (const char* env = std::getenv("KAMEL_NN_BACKEND");
      env != nullptr && *env != '\0') {
    if (const Backend* backend = FindBackend(env)) return backend;
    KAMEL_CHECK(false, std::string("KAMEL_NN_BACKEND names an unknown "
                                   "backend: ") +
                           env);
  }
  return &ScalarBackend::Instance();
}

std::atomic<const Backend*>& ActiveSlot() {
  static std::atomic<const Backend*> slot{InitialBackend()};
  return slot;
}

}  // namespace

const Backend* ActiveBackend() {
  return ActiveSlot().load(std::memory_order_relaxed);
}

Status SetActiveBackend(std::string_view name) {
  const Backend* backend = FindBackend(name);
  if (backend == nullptr) {
    return Status::InvalidArgument("unknown backend '" + std::string(name) +
                                   "' (scalar|optimized)");
  }
  ActiveSlot().store(backend, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace kamel::nn
