// The reference backend: the nn library's original kernels, verbatim.
// Every other backend is conformance-tested against this one, and the
// serving default stays here so historical snapshots keep producing
// byte-identical imputations.
#include <cmath>
#include <vector>

#include "common/check.h"
#include "nn/backend/backend.h"
#include "nn/backend/kernel_util.h"
#include "nn/ops.h"

namespace kamel::nn {

namespace {

// C[m,n] (+)= alpha * A[m,k] * B[k,n], all row-major, no transposes.
// Four C rows are produced together so each B row is loaded once per four
// rows of output (register blocking); the contiguous j loops vectorize to
// FMA under -O3 -march=native.
void GemmNN(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
            int64_t lda, const float* b, int64_t ldb, float beta, float* c,
            int64_t ldc) {
  int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    float* __restrict c0 = c + i * ldc;
    float* __restrict c1 = c0 + ldc;
    float* __restrict c2 = c1 + ldc;
    float* __restrict c3 = c2 + ldc;
    internal::ScaleRow(c0, n, beta);
    internal::ScaleRow(c1, n, beta);
    internal::ScaleRow(c2, n, beta);
    internal::ScaleRow(c3, n, beta);
    const float* a0 = a + i * lda;
    const float* a1 = a0 + lda;
    const float* a2 = a1 + lda;
    const float* a3 = a2 + lda;
    for (int64_t p = 0; p < k; ++p) {
      const float v0 = alpha * a0[p];
      const float v1 = alpha * a1[p];
      const float v2 = alpha * a2[p];
      const float v3 = alpha * a3[p];
      const float* __restrict b_row = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) {
        const float bv = b_row[j];
        c0[j] += v0 * bv;
        c1[j] += v1 * bv;
        c2[j] += v2 * bv;
        c3[j] += v3 * bv;
      }
    }
  }
  for (; i < m; ++i) {
    float* __restrict c_row = c + i * ldc;
    internal::ScaleRow(c_row, n, beta);
    const float* a_row = a + i * lda;
    for (int64_t p = 0; p < k; ++p) {
      const float av = alpha * a_row[p];
      const float* __restrict b_row = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

}  // namespace

void ScalarBackend::Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n,
                         int64_t k, float alpha, const float* a, int64_t lda,
                         const float* b, int64_t ldb, float beta, float* c,
                         int64_t ldc) const {
  KAMEL_DCHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0) return;
  // Transposed operands are packed into temporaries so the hot kernel
  // stays a single well-vectorized NN loop. The packs are O(m*k)/O(k*n)
  // and small compared to the O(m*k*n) multiply.
  if (!trans_a && !trans_b) {
    GemmNN(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  std::vector<float> a_packed;
  std::vector<float> b_packed;
  const float* a_eff = a;
  int64_t lda_eff = lda;
  if (trans_a) {
    a_packed = internal::PackTransposed(a, m, k, lda);
    a_eff = a_packed.data();
    lda_eff = k;
  }
  const float* b_eff = b;
  int64_t ldb_eff = ldb;
  if (trans_b) {
    b_packed = internal::PackTransposed(b, k, n, ldb);
    b_eff = b_packed.data();
    ldb_eff = n;
  }
  GemmNN(m, n, k, alpha, a_eff, lda_eff, b_eff, ldb_eff, beta, c, ldc);
}

void ScalarBackend::Axpy(int64_t n, float alpha, const float* x,
                         float* y) const {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScalarBackend::Gelu(const float* x, float* y, int64_t n) const {
  GeluForward(x, y, n);
}

void ScalarBackend::SoftmaxRows(int64_t rows, int64_t n, const float* x,
                                float* y) const {
  for (int64_t r = 0; r < rows; ++r) {
    SoftmaxRow(x + r * n, y + r * n, n);
  }
}

void ScalarBackend::LayerNormRows(int64_t rows, int64_t dim, const float* x,
                                  const float* gamma, const float* beta,
                                  float eps, float* y) const {
  // Double-precision mean/variance accumulators, exactly as the training
  // forward computes them — LayerNorm::Apply must stay byte-identical to
  // LayerNorm::Forward.
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * dim;
    float* yr = y + r * dim;
    double mean = 0.0;
    for (int64_t c = 0; c < dim; ++c) mean += xr[c];
    mean /= static_cast<double>(dim);
    double var = 0.0;
    for (int64_t c = 0; c < dim; ++c) {
      const double diff = xr[c] - mean;
      var += diff * diff;
    }
    var /= static_cast<double>(dim);
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps));
    const float meanf = static_cast<float>(mean);
    for (int64_t c = 0; c < dim; ++c) {
      yr[c] = (xr[c] - meanf) * inv_std * gamma[c] + beta[c];
    }
  }
}

void ScalarBackend::LinearForward(int64_t rows, int64_t in, int64_t out,
                                  const float* x, const WeightView& w,
                                  const float* bias, Activation act,
                                  float* y) const {
  std::vector<float> dequant;
  const float* weight = w.dense;
  if (w.quantized()) {
    // Reference semantics for quantized weights: decode the whole matrix,
    // then run the unmodified fp32 kernel. The only error versus fp32 is
    // the weight rounding itself — which is what the conformance
    // tolerances quantify.
    KAMEL_DCHECK(w.quant->rows() == in && w.quant->cols() == out,
                 "quantized weight shape mismatch");
    dequant.resize(static_cast<size_t>(in * out));
    w.quant->Dequantize(dequant.data());
    weight = dequant.data();
  }
  Gemm(false, false, rows, out, in, 1.0f, x, in, weight, out, 0.0f, y, out);
  if (bias != nullptr) {
    for (int64_t r = 0; r < rows; ++r) Axpy(out, 1.0f, bias, y + r * out);
  }
  if (act == Activation::kGelu) Gelu(y, y, rows * out);
}

const ScalarBackend& ScalarBackend::Instance() {
  static const ScalarBackend instance;
  return instance;
}

}  // namespace kamel::nn
