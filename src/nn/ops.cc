#include "nn/ops.h"

#include <cmath>

namespace kamel::nn {

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;
}  // namespace

void GeluForward(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = GeluOne(x[i]);
}

void GeluBackward(const float* x, const float* dy, float* dx, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float v = x[i];
    const float u = kGeluC * (v + kGeluA * v * v * v);
    const float t = std::tanh(u);
    const float du = kGeluC * (1.0f + 3.0f * kGeluA * v * v);
    const float grad = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
    dx[i] = dy[i] * grad;
  }
}

void SoftmaxRow(const float* x, float* y, int64_t n) {
  float max_v = x[0];
  for (int64_t i = 1; i < n; ++i) max_v = std::max(max_v, x[i]);
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float e = std::exp(x[i] - max_v);
    y[i] = e;
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (int64_t i = 0; i < n; ++i) y[i] *= inv;
}

void SoftmaxBackwardRow(const float* p, const float* dy, float* dx,
                        int64_t n) {
  double dot = 0.0;
  for (int64_t i = 0; i < n; ++i) dot += static_cast<double>(dy[i]) * p[i];
  const float dotf = static_cast<float>(dot);
  for (int64_t i = 0; i < n; ++i) dx[i] = p[i] * (dy[i] - dotf);
}

}  // namespace kamel::nn
