#include "baselines/linear.h"

#include <cmath>

#include "common/stopwatch.h"

namespace kamel {

Status LinearInterpolation::Train(const TrajectoryDataset& /*data*/) {
  // Linear interpolation is training-free.
  return Status::OK();
}

Result<ImputedTrajectory> LinearInterpolation::Impute(
    const Trajectory& sparse) {
  Stopwatch watch;
  ImputedTrajectory out;
  out.trajectory.id = sparse.id;
  for (size_t i = 0; i < sparse.points.size(); ++i) {
    out.trajectory.points.push_back(sparse.points[i]);
    if (i + 1 >= sparse.points.size()) break;
    const TrajPoint& a = sparse.points[i];
    const TrajPoint& b = sparse.points[i + 1];
    const double gap = HaversineMeters(a.pos, b.pos);
    if (gap <= gap_trigger_m_) continue;

    ++out.stats.segments;
    ++out.stats.failed_segments;  // a linear fill is a failure by definition
    out.stats.outcomes.push_back({a.time, b.time, true});
    const int steps = static_cast<int>(std::floor(gap / max_gap_m_));
    for (int k = 1; k <= steps; ++k) {
      const double t = static_cast<double>(k) / (steps + 1);
      out.trajectory.points.push_back(
          {{a.pos.lat + t * (b.pos.lat - a.pos.lat),
            a.pos.lng + t * (b.pos.lng - a.pos.lng)},
           a.time + t * (b.time - a.time)});
    }
  }
  out.stats.seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace kamel
