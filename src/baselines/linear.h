#ifndef KAMEL_BASELINES_LINEAR_H_
#define KAMEL_BASELINES_LINEAR_H_

#include "baselines/imputation_method.h"

namespace kamel {

/// The paper's baseline (Section 8): every gap is imputed by a straight
/// line with one point every `max_gap_m`. By definition its failure rate
/// is 100% — a "failure" in the paper's metric *is* a linear fill.
class LinearInterpolation final : public ImputationMethod {
 public:
  explicit LinearInterpolation(double max_gap_m = 100.0,
                               double gap_trigger_m = 150.0)
      : max_gap_m_(max_gap_m), gap_trigger_m_(gap_trigger_m) {}

  std::string name() const override { return "Linear"; }
  Status Train(const TrajectoryDataset& data) override;
  Result<ImputedTrajectory> Impute(const Trajectory& sparse) override;
  double train_seconds() const override { return 0.0; }

 private:
  double max_gap_m_;
  /// Consecutive points farther apart than this count as a gap segment.
  double gap_trigger_m_;
};

}  // namespace kamel

#endif  // KAMEL_BASELINES_LINEAR_H_
