#ifndef KAMEL_BASELINES_IMPUTATION_METHOD_H_
#define KAMEL_BASELINES_IMPUTATION_METHOD_H_

#include <string>

#include "common/result.h"
#include "core/kamel.h"
#include "geo/trajectory.h"

namespace kamel {

/// Uniform interface over every imputation technique in the evaluation
/// (Section 8): KAMEL itself, TrImpute, linear interpolation, and the
/// map-matching reference. The experiment harness trains and runs all of
/// them through this.
class ImputationMethod {
 public:
  virtual ~ImputationMethod() = default;

  /// Display name used in result tables ("KAMEL", "TrImpute", ...).
  virtual std::string name() const = 0;

  /// Offline training / preparation on dense historical trajectories.
  virtual Status Train(const TrajectoryDataset& data) = 0;

  /// Imputes one sparse trajectory.
  virtual Result<ImputedTrajectory> Impute(const Trajectory& sparse) = 0;

  /// Cumulative offline training time, seconds (Figure 11a).
  virtual double train_seconds() const = 0;
};

/// Adapts a Kamel instance to the common interface.
class KamelMethod final : public ImputationMethod {
 public:
  /// Takes ownership of nothing: `system` must outlive the method.
  explicit KamelMethod(Kamel* system, std::string display_name = "KAMEL")
      : system_(system), name_(std::move(display_name)) {}

  std::string name() const override { return name_; }
  Status Train(const TrajectoryDataset& data) override {
    return system_->Train(data);
  }
  Result<ImputedTrajectory> Impute(const Trajectory& sparse) override {
    return system_->Impute(sparse);
  }
  double train_seconds() const override {
    return system_->total_train_seconds();
  }

 private:
  Kamel* system_;
  std::string name_;
};

}  // namespace kamel

#endif  // KAMEL_BASELINES_IMPUTATION_METHOD_H_
