#ifndef KAMEL_BASELINES_MAP_MATCHING_H_
#define KAMEL_BASELINES_MAP_MATCHING_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/imputation_method.h"
#include "geo/projection.h"
#include "sim/road_network.h"
#include "sim/route_planner.h"

namespace kamel {

/// HMM map-matching tunables (Newson–Krumm style, as in FMM [74]).
struct MapMatchingOptions {
  /// Emission model: GPS error standard deviation, meters.
  double gps_sigma_m = 25.0;
  /// Transition model: scale of |route - great-circle| penalty, meters.
  double transition_beta_m = 200.0;
  /// Candidate edges per point.
  int candidates_per_point = 4;
  /// Candidates farther than this from the reading are ignored, meters.
  double candidate_radius_m = 250.0;
  /// Output spacing along matched routes, meters.
  double max_gap_m = 100.0;
};

/// Map matching + shortest-path gap filling — the paper's reference line
/// (Section 8: "techniques that rely on road networks"). It is handed the
/// *true* simulator network, so it upper-bounds what any network-less
/// method can achieve; the paper's headline is that KAMEL gets close to it
/// without ever seeing the map.
class MapMatching final : public ImputationMethod {
 public:
  /// `network` and `projection` are borrowed and must outlive the method.
  MapMatching(const RoadNetwork* network, const LocalProjection* projection,
              MapMatchingOptions options = {});

  std::string name() const override { return "MapMatch"; }
  Status Train(const TrajectoryDataset& data) override;
  Result<ImputedTrajectory> Impute(const Trajectory& sparse) override;
  double train_seconds() const override { return train_seconds_; }

 private:
  struct MatchCandidate {
    int edge = -1;        // directed edge index
    Vec2 point;           // projection of the reading onto the edge
    double offset = 0.0;  // meters from edge start
    double emission_log = 0.0;
  };

  std::vector<MatchCandidate> CandidatesFor(const Vec2& reading) const;

  /// Network route distance between two candidates; +inf if unreachable.
  double RouteDistance(const MatchCandidate& a,
                       const MatchCandidate& b) const;

  /// Route polyline between two candidates (including both match points).
  std::vector<Vec2> RoutePolyline(const MatchCandidate& a,
                                  const MatchCandidate& b) const;

  const RoadNetwork* network_;
  const LocalProjection* projection_;
  MapMatchingOptions options_;
  std::unique_ptr<RoutePlanner> planner_;
  double train_seconds_ = 0.0;
  /// Per-source Dijkstra results, reused across Viterbi transitions of one
  /// Impute call (cleared at call start).
  mutable std::unordered_map<int, std::vector<double>> distance_cache_;
};

}  // namespace kamel

#endif  // KAMEL_BASELINES_MAP_MATCHING_H_
