#ifndef KAMEL_BASELINES_KINEMATIC_H_
#define KAMEL_BASELINES_KINEMATIC_H_

#include <memory>

#include "baselines/imputation_method.h"
#include "geo/projection.h"

namespace kamel {

/// Kinematic (Hermite) interpolation — the classical physics-based
/// imputation the paper's related work cites (Long, "Kinematic
/// Interpolation of Movement Data" [39]): each gap is filled with a cubic
/// curve matching the positions *and velocities* at both endpoints, so
/// the path bends the way a vehicle that was already turning would.
///
/// Like linear interpolation it uses no historical data and cannot know
/// about roads, but it beats straight lines on smooth curves — a stronger
/// training-free baseline for the evaluation harness.
class KinematicInterpolation final : public ImputationMethod {
 public:
  explicit KinematicInterpolation(double max_gap_m = 100.0,
                                  double gap_trigger_m = 150.0)
      : max_gap_m_(max_gap_m), gap_trigger_m_(gap_trigger_m) {}

  std::string name() const override { return "Kinematic"; }
  Status Train(const TrajectoryDataset& data) override;
  Result<ImputedTrajectory> Impute(const Trajectory& sparse) override;
  double train_seconds() const override { return 0.0; }

 private:
  double max_gap_m_;
  double gap_trigger_m_;
  std::unique_ptr<LocalProjection> projection_;
};

}  // namespace kamel

#endif  // KAMEL_BASELINES_KINEMATIC_H_
