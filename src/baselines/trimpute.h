#ifndef KAMEL_BASELINES_TRIMPUTE_H_
#define KAMEL_BASELINES_TRIMPUTE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/imputation_method.h"
#include "geo/projection.h"

namespace kamel {

/// TrImpute tunables.
struct TrImputeOptions {
  /// Crowd-wisdom search radius around the walking frontier, meters.
  double search_radius_m = 120.0;
  /// Preferred stride per imputed step, meters.
  double step_m = 100.0;
  /// Historical headings must align with the step direction within this
  /// angle, degrees.
  double heading_tolerance_deg = 60.0;
  /// Minimum supporting historical points for a step (the "crowd").
  int min_support = 3;
  /// Give up after this many steps per segment.
  int max_steps = 200;
  /// Output spacing (for failure-fallback lines), meters.
  double max_gap_m = 100.0;
  /// Index cell size, meters.
  double index_cell_m = 60.0;
};

/// Reimplementation of TrImpute [20] (Elshrif, Isufaj, Mokbel,
/// SIGSPATIAL 2022), the paper's state-of-the-art competitor: network-less
/// imputation guided by the "crowd wisdom" of historical GPS points.
///
/// Training indexes all historical readings (position + heading) in a
/// uniform grid. Imputing a gap S->D walks a frontier from S towards D;
/// each step moves to the position voted by historical points near the
/// frontier whose headings agree with the direction of travel. When the
/// crowd is absent (sparse history — TrImpute's documented weakness) the
/// segment fails and falls back to a straight line.
class TrImpute final : public ImputationMethod {
 public:
  explicit TrImpute(TrImputeOptions options = {});

  std::string name() const override { return "TrImpute"; }
  Status Train(const TrajectoryDataset& data) override;
  Result<ImputedTrajectory> Impute(const Trajectory& sparse) override;
  double train_seconds() const override { return train_seconds_; }

  size_t num_indexed_points() const { return num_points_; }

 private:
  struct HistoricalPoint {
    Vec2 position;
    double heading;
  };

  int64_t IndexKey(const Vec2& p) const;
  std::vector<const HistoricalPoint*> Near(const Vec2& p,
                                           double radius) const;

  /// One crowd-guided step from `from` towards `target`; returns false
  /// when the crowd is too thin. `last_heading` is the walk's previous
  /// step direction (NaN on the first step): historical points may align
  /// with either the straight-to-target bearing or the current momentum,
  /// so the walk can follow a road that bends away from the target.
  bool Step(const Vec2& from, const Vec2& target, double last_heading,
            Vec2* next) const;

  TrImputeOptions options_;
  std::unique_ptr<LocalProjection> projection_;
  std::unordered_map<int64_t, std::vector<HistoricalPoint>> index_;
  size_t num_points_ = 0;
  double train_seconds_ = 0.0;
};

}  // namespace kamel

#endif  // KAMEL_BASELINES_TRIMPUTE_H_
