#include "baselines/trimpute.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stopwatch.h"

namespace kamel {

TrImpute::TrImpute(TrImputeOptions options) : options_(options) {}

int64_t TrImpute::IndexKey(const Vec2& p) const {
  const auto ix =
      static_cast<int32_t>(std::floor(p.x / options_.index_cell_m));
  const auto iy =
      static_cast<int32_t>(std::floor(p.y / options_.index_cell_m));
  return (static_cast<int64_t>(ix) << 32) |
         static_cast<int64_t>(static_cast<uint32_t>(iy));
}

Status TrImpute::Train(const TrajectoryDataset& data) {
  Stopwatch watch;
  if (projection_ == nullptr) {
    // Anchor at the first point seen; any city-scale anchor works.
    for (const auto& trajectory : data.trajectories) {
      if (!trajectory.points.empty()) {
        projection_ =
            std::make_unique<LocalProjection>(trajectory.points[0].pos);
        break;
      }
    }
    if (projection_ == nullptr) {
      return Status::InvalidArgument("TrImpute training data is empty");
    }
  }
  for (const auto& trajectory : data.trajectories) {
    std::vector<Vec2> pts;
    pts.reserve(trajectory.points.size());
    for (const auto& point : trajectory.points) {
      pts.push_back(projection_->Project(point.pos));
    }
    for (size_t i = 0; i < pts.size(); ++i) {
      double heading = 0.0;
      if (i + 1 < pts.size()) {
        heading = HeadingRadians(pts[i], pts[i + 1]);
      } else if (i > 0) {
        heading = HeadingRadians(pts[i - 1], pts[i]);
      }
      index_[IndexKey(pts[i])].push_back({pts[i], heading});
      ++num_points_;
    }
  }
  train_seconds_ += watch.ElapsedSeconds();
  return Status::OK();
}

std::vector<const TrImpute::HistoricalPoint*> TrImpute::Near(
    const Vec2& p, double radius) const {
  std::vector<const HistoricalPoint*> out;
  const int span =
      static_cast<int>(std::ceil(radius / options_.index_cell_m));
  const auto cx =
      static_cast<int32_t>(std::floor(p.x / options_.index_cell_m));
  const auto cy =
      static_cast<int32_t>(std::floor(p.y / options_.index_cell_m));
  const double r2 = radius * radius;
  for (int dx = -span; dx <= span; ++dx) {
    for (int dy = -span; dy <= span; ++dy) {
      const int64_t key =
          (static_cast<int64_t>(cx + dx) << 32) |
          static_cast<int64_t>(static_cast<uint32_t>(cy + dy));
      auto it = index_.find(key);
      if (it == index_.end()) continue;
      for (const HistoricalPoint& hp : it->second) {
        if ((hp.position - p).SquaredNorm() <= r2) out.push_back(&hp);
      }
    }
  }
  return out;
}

bool TrImpute::Step(const Vec2& from, const Vec2& target,
                    double last_heading, Vec2* next) const {
  // The frontier advances by ~step_m towards the target; the crowd near
  // the naive next position votes on where the road actually is.
  const Vec2 to_target = target - from;
  const double remaining = to_target.Norm();
  if (remaining < 1e-9) return false;
  const double stride = std::min(options_.step_m, remaining);
  const Vec2 naive = from + to_target * (stride / remaining);
  const double travel_heading = std::atan2(to_target.y, to_target.x);
  const double tolerance = DegToRad(options_.heading_tolerance_deg);

  const std::vector<const HistoricalPoint*> crowd =
      Near(naive, options_.search_radius_m);
  Vec2 vote{0.0, 0.0};
  double weight_sum = 0.0;
  int support = 0;
  for (const HistoricalPoint* hp : crowd) {
    double misalign = AngleDifference(hp->heading, travel_heading);
    if (!std::isnan(last_heading)) {
      // A road bending away from the straight-to-target bearing is fine
      // as long as it agrees with the walk's own momentum.
      misalign = std::min(misalign,
                          AngleDifference(hp->heading, last_heading));
    }
    if (misalign > tolerance) continue;
    // Must make forward progress relative to the frontier.
    if ((hp->position - from).Dot(to_target) <= 0.0) continue;
    const double w = (1.0 + std::cos(misalign)) /
                     (1.0 + Distance(hp->position, naive));
    vote = vote + hp->position * w;
    weight_sum += w;
    ++support;
  }
  if (support < options_.min_support || weight_sum <= 0.0) return false;
  *next = vote * (1.0 / weight_sum);
  // Degenerate votes that do not advance stall the walk: reject them.
  if (Distance(*next, from) < options_.step_m * 0.2) return false;
  return true;
}

Result<ImputedTrajectory> TrImpute::Impute(const Trajectory& sparse) {
  if (projection_ == nullptr) {
    return Status::FailedPrecondition("TrImpute::Impute before Train");
  }
  Stopwatch watch;
  ImputedTrajectory out;
  out.trajectory.id = sparse.id;

  std::vector<Vec2> pts;
  pts.reserve(sparse.points.size());
  for (const auto& point : sparse.points) {
    pts.push_back(projection_->Project(point.pos));
  }

  auto append_linear = [&](size_t i) {
    const double gap = Distance(pts[i], pts[i + 1]);
    const int steps = static_cast<int>(std::floor(gap / options_.max_gap_m));
    for (int k = 1; k <= steps; ++k) {
      const double t = static_cast<double>(k) / (steps + 1);
      const Vec2 p = pts[i] + (pts[i + 1] - pts[i]) * t;
      out.trajectory.points.push_back(
          {projection_->Unproject(p),
           sparse.points[i].time +
               t * (sparse.points[i + 1].time - sparse.points[i].time)});
    }
  };

  for (size_t i = 0; i < pts.size(); ++i) {
    out.trajectory.points.push_back(sparse.points[i]);
    if (i + 1 >= pts.size()) break;
    const double gap = Distance(pts[i], pts[i + 1]);
    if (gap <= options_.max_gap_m * 1.5) continue;

    ++out.stats.segments;
    out.stats.outcomes.push_back(
        {sparse.points[i].time, sparse.points[i + 1].time, false});
    // Crowd-guided walk from S to D.
    std::vector<Vec2> walked;
    Vec2 cursor = pts[i];
    double last_heading = std::numeric_limits<double>::quiet_NaN();
    bool ok = true;
    int steps = 0;
    while (Distance(cursor, pts[i + 1]) > options_.max_gap_m) {
      if (++steps > options_.max_steps) {
        ok = false;
        break;
      }
      Vec2 next;
      if (!Step(cursor, pts[i + 1], last_heading, &next)) {
        ok = false;
        break;
      }
      last_heading = HeadingRadians(cursor, next);
      walked.push_back(next);
      cursor = next;
    }
    if (!ok) {
      ++out.stats.failed_segments;
      out.stats.outcomes.back().failed = true;
      append_linear(i);
      continue;
    }
    // Timestamps linear in arc length.
    std::vector<Vec2> path = {pts[i]};
    path.insert(path.end(), walked.begin(), walked.end());
    path.push_back(pts[i + 1]);
    double total = 0.0;
    for (size_t k = 1; k < path.size(); ++k) {
      total += Distance(path[k - 1], path[k]);
    }
    double acc = 0.0;
    for (size_t k = 1; k + 1 < path.size(); ++k) {
      acc += Distance(path[k - 1], path[k]);
      const double t = total > 0.0 ? acc / total : 0.0;
      out.trajectory.points.push_back(
          {projection_->Unproject(path[k]),
           sparse.points[i].time +
               t * (sparse.points[i + 1].time - sparse.points[i].time)});
    }
  }
  out.stats.seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace kamel
