#include "baselines/kinematic.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"

namespace kamel {

Status KinematicInterpolation::Train(const TrajectoryDataset& data) {
  // Training-free; only anchors the local frame.
  if (projection_ == nullptr) {
    for (const auto& trajectory : data.trajectories) {
      if (!trajectory.points.empty()) {
        projection_ =
            std::make_unique<LocalProjection>(trajectory.points[0].pos);
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

namespace {

// Endpoint velocity estimated from the adjacent observation when one
// exists; zero (straight-line fall-back) otherwise.
Vec2 VelocityAt(const std::vector<Vec2>& pts,
                const std::vector<double>& times, size_t index,
                bool forward) {
  if (forward && index + 1 < pts.size()) {
    const double dt = times[index + 1] - times[index];
    if (dt > 1e-9) return (pts[index + 1] - pts[index]) * (1.0 / dt);
  }
  if (!forward && index > 0) {
    const double dt = times[index] - times[index - 1];
    if (dt > 1e-9) return (pts[index] - pts[index - 1]) * (1.0 / dt);
  }
  return {0.0, 0.0};
}

}  // namespace

Result<ImputedTrajectory> KinematicInterpolation::Impute(
    const Trajectory& sparse) {
  Stopwatch watch;
  ImputedTrajectory out;
  out.trajectory.id = sparse.id;
  if (sparse.points.empty()) {
    out.stats.seconds = watch.ElapsedSeconds();
    return out;
  }
  if (projection_ == nullptr) {
    projection_ = std::make_unique<LocalProjection>(sparse.points[0].pos);
  }

  std::vector<Vec2> pts;
  std::vector<double> times;
  pts.reserve(sparse.points.size());
  for (const auto& point : sparse.points) {
    pts.push_back(projection_->Project(point.pos));
    times.push_back(point.time);
  }

  for (size_t i = 0; i < pts.size(); ++i) {
    out.trajectory.points.push_back(sparse.points[i]);
    if (i + 1 >= pts.size()) break;
    const double gap = Distance(pts[i], pts[i + 1]);
    if (gap <= gap_trigger_m_) continue;
    ++out.stats.segments;
    out.stats.outcomes.push_back(
        {sparse.points[i].time, sparse.points[i + 1].time, false});

    const double duration = times[i + 1] - times[i];
    if (duration <= 1e-9) continue;
    // Hermite basis over normalized time u in (0,1); tangents are the
    // endpoint velocities scaled by the gap duration. Using the *prior*
    // observed leg at S and the *next* observed leg at D mirrors how the
    // vehicle actually entered and left the gap.
    const Vec2 v0 = VelocityAt(pts, times, i, /*forward=*/false) * duration;
    const Vec2 v1 =
        VelocityAt(pts, times, i + 1, /*forward=*/true) * duration;
    // Clamp runaway tangents: a tangent much longer than the chord makes
    // the curve loop.
    auto clamp_tangent = [gap](const Vec2& t) {
      const double len = t.Norm();
      const double limit = 2.0 * gap;
      return len > limit ? t * (limit / len) : t;
    };
    const Vec2 t0 = clamp_tangent(v0);
    const Vec2 t1 = clamp_tangent(v1);

    const int steps = std::max(
        1, static_cast<int>(std::floor(gap / max_gap_m_)));
    for (int k = 1; k <= steps; ++k) {
      const double u = static_cast<double>(k) / (steps + 1);
      const double u2 = u * u;
      const double u3 = u2 * u;
      const double h00 = 2 * u3 - 3 * u2 + 1;
      const double h10 = u3 - 2 * u2 + u;
      const double h01 = -2 * u3 + 3 * u2;
      const double h11 = u3 - u2;
      const Vec2 p = pts[i] * h00 + t0 * h10 + pts[i + 1] * h01 + t1 * h11;
      out.trajectory.points.push_back(
          {projection_->Unproject(p), times[i] + u * duration});
    }
  }
  out.stats.seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace kamel
