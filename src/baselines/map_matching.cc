#include "baselines/map_matching.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/check.h"
#include "common/stopwatch.h"
#include "geo/polyline.h"

namespace kamel {

MapMatching::MapMatching(const RoadNetwork* network,
                         const LocalProjection* projection,
                         MapMatchingOptions options)
    : network_(network), projection_(projection), options_(options) {
  KAMEL_CHECK(network != nullptr && projection != nullptr);
  planner_ = std::make_unique<RoutePlanner>(network_,
                                            RoutePlanner::Cost::kDistance);
}

Status MapMatching::Train(const TrajectoryDataset& /*data*/) {
  // Map matching needs no trajectory training: it is handed the map.
  return Status::OK();
}

std::vector<MapMatching::MatchCandidate> MapMatching::CandidatesFor(
    const Vec2& reading) const {
  // Score every undirected road once, keep the nearest few, then emit both
  // directed candidates per kept road (direction matters for routing).
  struct Scored {
    int undirected_edge;
    double distance;
    Vec2 point;
    double offset;  // along the even (forward) direction
  };
  std::vector<Scored> scored;
  const auto& edges = network_->edges();
  for (size_t i = 0; i < edges.size(); i += 2) {
    const RoadEdge& e = edges[i];
    const Vec2& a = network_->NodePosition(e.from);
    const Vec2& b = network_->NodePosition(e.to);
    const Vec2 ab = b - a;
    const double len2 = ab.SquaredNorm();
    double t = len2 > 0.0 ? (reading - a).Dot(ab) / len2 : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    const Vec2 q = a + ab * t;
    const double d = Distance(reading, q);
    if (d > options_.candidate_radius_m) continue;
    scored.push_back({static_cast<int>(i), d, q, t * e.length});
  }
  const size_t keep = std::min<size_t>(
      scored.size(), static_cast<size_t>(options_.candidates_per_point));
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    [](const Scored& a, const Scored& b) {
                      return a.distance < b.distance;
                    });
  scored.resize(keep);

  std::vector<MatchCandidate> out;
  out.reserve(keep * 2);
  const double inv_2s2 = 1.0 / (2.0 * options_.gps_sigma_m *
                                options_.gps_sigma_m);
  for (const Scored& s : scored) {
    const double emission = -s.distance * s.distance * inv_2s2;
    const double length = edges[static_cast<size_t>(s.undirected_edge)].length;
    out.push_back({s.undirected_edge, s.point, s.offset, emission});
    out.push_back(
        {s.undirected_edge + 1, s.point, length - s.offset, emission});
  }
  return out;
}

double MapMatching::RouteDistance(const MatchCandidate& a,
                                  const MatchCandidate& b) const {
  const RoadEdge& ea = network_->Edge(a.edge);
  const RoadEdge& eb = network_->Edge(b.edge);
  if (a.edge == b.edge && b.offset >= a.offset) {
    return b.offset - a.offset;
  }
  const double head = ea.length - a.offset;  // reach ea.to
  const double tail = b.offset;              // from eb.from
  auto it = distance_cache_.find(ea.to);
  if (it == distance_cache_.end()) {
    it = distance_cache_.emplace(ea.to, planner_->AllDistances(ea.to)).first;
  }
  const double middle = it->second[static_cast<size_t>(eb.from)];
  return head + middle + tail;
}

std::vector<Vec2> MapMatching::RoutePolyline(const MatchCandidate& a,
                                             const MatchCandidate& b) const {
  if (a.edge == b.edge && b.offset >= a.offset) {
    return {a.point, b.point};
  }
  const RoadEdge& ea = network_->Edge(a.edge);
  const RoadEdge& eb = network_->Edge(b.edge);
  const std::vector<int> path = planner_->ShortestPath(ea.to, eb.from);
  if (path.empty()) return {};
  std::vector<Vec2> out = {a.point};
  for (int node : path) out.push_back(network_->NodePosition(node));
  out.push_back(b.point);
  return polyline::DropConsecutiveDuplicates(out);
}

Result<ImputedTrajectory> MapMatching::Impute(const Trajectory& sparse) {
  Stopwatch watch;
  distance_cache_.clear();
  ImputedTrajectory out;
  out.trajectory.id = sparse.id;
  const size_t n = sparse.points.size();
  if (n == 0) {
    out.stats.seconds = watch.ElapsedSeconds();
    return out;
  }

  std::vector<Vec2> readings;
  readings.reserve(n);
  for (const auto& point : sparse.points) {
    readings.push_back(projection_->Project(point.pos));
  }

  // Viterbi over per-reading candidates.
  std::vector<std::vector<MatchCandidate>> candidates(n);
  for (size_t i = 0; i < n; ++i) candidates[i] = CandidatesFor(readings[i]);

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> score(n);
  std::vector<std::vector<int>> back(n);
  for (size_t i = 0; i < n; ++i) {
    score[i].assign(candidates[i].size(), kNegInf);
    back[i].assign(candidates[i].size(), -1);
  }
  for (size_t c = 0; c < candidates[0].size(); ++c) {
    score[0][c] = candidates[0][c].emission_log;
  }
  for (size_t i = 1; i < n; ++i) {
    const double straight = Distance(readings[i - 1], readings[i]);
    for (size_t c = 0; c < candidates[i].size(); ++c) {
      for (size_t p = 0; p < candidates[i - 1].size(); ++p) {
        if (score[i - 1][p] == kNegInf) continue;
        const double route =
            RouteDistance(candidates[i - 1][p], candidates[i][c]);
        if (!std::isfinite(route)) continue;
        // Newson–Krumm transition: routes much longer than the great-
        // circle distance are implausible.
        const double transition =
            -std::fabs(route - straight) / options_.transition_beta_m;
        const double total = score[i - 1][p] + transition +
                             candidates[i][c].emission_log;
        if (total > score[i][c]) {
          score[i][c] = total;
          back[i][c] = static_cast<int>(p);
        }
      }
      // Stranded reading (no candidates or unreachable): restart the
      // chain here so the rest of the trajectory still matches.
      if (score[i][c] == kNegInf && !candidates[i].empty()) {
        score[i][c] = candidates[i][c].emission_log;
        back[i][c] = -1;
      }
    }
  }

  // Backtrack the best chain.
  std::vector<int> chosen(n, -1);
  for (size_t i = n; i-- > 0;) {
    if (i + 1 < n && chosen[i + 1] >= 0 &&
        back[i + 1][static_cast<size_t>(chosen[i + 1])] >= 0) {
      chosen[i] = back[i + 1][static_cast<size_t>(chosen[i + 1])];
      continue;
    }
    int best = -1;
    for (size_t c = 0; c < candidates[i].size(); ++c) {
      if (score[i][c] != kNegInf &&
          (best < 0 || score[i][c] > score[i][static_cast<size_t>(best)])) {
        best = static_cast<int>(c);
      }
    }
    chosen[i] = best;
  }

  // Emit: original readings plus route interiors for sparse gaps.
  for (size_t i = 0; i < n; ++i) {
    out.trajectory.points.push_back(sparse.points[i]);
    if (i + 1 >= n) break;
    const double gap = Distance(readings[i], readings[i + 1]);
    if (gap <= options_.max_gap_m * 1.5) continue;
    ++out.stats.segments;
    out.stats.outcomes.push_back(
        {sparse.points[i].time, sparse.points[i + 1].time, false});

    std::vector<Vec2> route;
    if (chosen[i] >= 0 && chosen[i + 1] >= 0 &&
        back[i + 1][static_cast<size_t>(chosen[i + 1])] ==
            chosen[i]) {
      route = RoutePolyline(candidates[i][static_cast<size_t>(chosen[i])],
                            candidates[i + 1][static_cast<size_t>(
                                chosen[i + 1])]);
    }
    if (route.size() < 2) {
      ++out.stats.failed_segments;
      out.stats.outcomes.back().failed = true;
      route = {readings[i], readings[i + 1]};
    }
    const std::vector<Vec2> samples =
        polyline::ResampleEvery(route, options_.max_gap_m);
    const double total_len = polyline::Length(route);
    double walked = 0.0;
    for (size_t k = 1; k + 1 < samples.size(); ++k) {
      walked += Distance(samples[k - 1], samples[k]);
      const double t = total_len > 0.0 ? walked / total_len : 0.0;
      out.trajectory.points.push_back(
          {projection_->Unproject(samples[k]),
           sparse.points[i].time +
               t * (sparse.points[i + 1].time - sparse.points[i].time)});
    }
  }
  out.stats.seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace kamel
