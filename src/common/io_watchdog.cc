#include "common/io_watchdog.h"

#include <chrono>
#include <utility>

namespace kamel {

IoWatchdog& IoWatchdog::Instance() {
  static IoWatchdog* instance = new IoWatchdog();
  return *instance;
}

double IoWatchdog::NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

IoWatchdog::Scope::Scope(IoWatchdog* watchdog, const char* name,
                         double budget_s)
    : watchdog_(watchdog), start_s_(NowSeconds()), budget_s_(budget_s) {
  if (budget_s > 0.0) {
    id_ = watchdog->Begin(name, start_s_ + budget_s);
  }
}

IoWatchdog::Scope::Scope(Scope&& other) noexcept
    : watchdog_(other.watchdog_),
      id_(other.id_),
      start_s_(other.start_s_),
      budget_s_(other.budget_s_) {
  other.id_ = 0;
}

IoWatchdog::Scope::~Scope() {
  if (id_ != 0) watchdog_->End(id_, stalled());
}

double IoWatchdog::Scope::elapsed_s() const {
  return NowSeconds() - start_s_;
}

bool IoWatchdog::Scope::stalled() const {
  return budget_s_ > 0.0 && elapsed_s() > budget_s_;
}

uint64_t IoWatchdog::Begin(const char* name, double deadline_s) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_id_++;
  active_[id] = Op{name, deadline_s, false};
  return id;
}

void IoWatchdog::End(uint64_t id, bool stalled) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  // A stall is counted exactly once: here if completion is the first
  // observation, or earlier by a stuck_now() scan that marked it.
  if (stalled && !it->second.reported) ++stall_events_;
  active_.erase(it);
}

int IoWatchdog::stuck_now() {
  std::lock_guard<std::mutex> lock(mu_);
  const double now = NowSeconds();
  int stuck = 0;
  for (auto& [id, op] : active_) {
    (void)id;
    if (now > op.deadline_s) {
      ++stuck;
      if (!op.reported) {
        op.reported = true;
        ++stall_events_;
      }
    }
  }
  return stuck;
}

std::vector<std::string> IoWatchdog::StuckOps() {
  std::lock_guard<std::mutex> lock(mu_);
  const double now = NowSeconds();
  std::vector<std::string> names;
  for (const auto& [id, op] : active_) {
    (void)id;
    if (now > op.deadline_s) names.push_back(op.name);
  }
  return names;
}

int64_t IoWatchdog::stall_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_events_;
}

void IoWatchdog::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  stall_events_ = 0;
  for (auto& [id, op] : active_) {
    (void)id;
    op.reported = false;
  }
}

}  // namespace kamel
