#ifndef KAMEL_COMMON_STATUS_H_
#define KAMEL_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace kamel {

/// Error categories used across the KAMEL public API.
///
/// KAMEL does not throw exceptions across API boundaries (RocksDB/Arrow
/// idiom); every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kIOError,
  kInternal,
  kUnimplemented,
  /// Transiently refusing work: a circuit breaker is open or the serving
  /// engine is draining. Safe to retry later (unlike kResourceExhausted,
  /// which asks the caller to back off or shrink the request).
  kUnavailable,
  /// A per-call deadline elapsed before the operation completed (RPC
  /// timeouts, stalled reads). The work may still be running remotely, so
  /// only idempotent operations are safe to retry.
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Operation outcome: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is empty in the common OK case).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace kamel

/// Propagates a non-OK Status to the caller.
#define KAMEL_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::kamel::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

#endif  // KAMEL_COMMON_STATUS_H_
