#include "common/io_env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"

namespace kamel {
namespace io {

namespace {

std::optional<IoFaultSpec> HitIo(const char* failpoint) {
  if (failpoint == nullptr) return std::nullopt;  // unseamed call site
  return FaultInjector::Instance().HitIo(failpoint);
}

}  // namespace

Status ErrnoStatus(const std::string& what, const std::string& path,
                   int err) {
  const std::string message =
      what + " failed: " + path +
      (err != 0 ? std::string(": ") + std::strerror(err) : std::string());
  if (err == ENOSPC || err == EDQUOT) {
    return Status::ResourceExhausted(message);
  }
  return Status::IOError(message);
}

Result<int> OpenFd(const std::string& path, int flags, unsigned mode,
                   const char* failpoint) {
  if (auto fault = HitIo(failpoint)) {
    return ErrnoStatus("open", path, fault->err);
  }
  const int fd = ::open(path.c_str(), flags, static_cast<mode_t>(mode));
  if (fd < 0) return ErrnoStatus("open", path, errno);
  return fd;
}

Status WriteAll(int fd, const uint8_t* data, size_t size,
                const std::string& path, const char* failpoint,
                size_t* bytes_written) {
  size_t written = 0;
  if (bytes_written != nullptr) *bytes_written = 0;
  if (auto fault = HitIo(failpoint)) {
    if (fault->short_write && size > 1) {
      // Land a real partial prefix before failing: the shape a disk
      // filling up mid-write leaves on media. The caller's torn-tail
      // story (poison + truncate-on-reopen for the WAL) must absorb it.
      const size_t half = size / 2;
      while (written < half) {
        const ssize_t n = ::write(fd, data + written, half - written);
        if (n < 0) {
          if (errno == EINTR) continue;
          break;
        }
        written += static_cast<size_t>(n);
      }
    }
    if (bytes_written != nullptr) *bytes_written = written;
    return ErrnoStatus("write", path, fault->err);
  }
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (bytes_written != nullptr) *bytes_written = written;
      return ErrnoStatus("write", path, errno);
    }
    written += static_cast<size_t>(n);
  }
  if (bytes_written != nullptr) *bytes_written = written;
  return Status::OK();
}

Status Fsync(int fd, const std::string& path, const char* failpoint) {
  if (auto fault = HitIo(failpoint)) {
    return ErrnoStatus("fsync", path, fault->err);
  }
  if (fd >= 0 && ::fsync(fd) != 0) {
    return ErrnoStatus("fsync", path, errno);
  }
  return Status::OK();
}

Status FsyncDir(const std::string& dir, const char* failpoint) {
  if (auto fault = HitIo(failpoint)) {
    return ErrnoStatus("dir fsync", dir, fault->err);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return ErrnoStatus("open dir", dir, errno);
  }
  ::fsync(fd);  // best-effort: some filesystems refuse dir fsync
  ::close(fd);
  return Status::OK();
}

Status Rename(const std::string& from, const std::string& to,
              const char* failpoint) {
  if (auto fault = HitIo(failpoint)) {
    return ErrnoStatus("rename", from + " -> " + to, fault->err);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from + " -> " + to, errno);
  }
  return Status::OK();
}

Status Unlink(const std::string& path, const char* failpoint) {
  if (auto fault = HitIo(failpoint)) {
    return ErrnoStatus("unlink", path, fault->err);
  }
  if (::unlink(path.c_str()) != 0) {
    return ErrnoStatus("unlink", path, errno);
  }
  return Status::OK();
}

Status Ftruncate(int fd, uint64_t size, const std::string& path,
                 const char* failpoint) {
  if (auto fault = HitIo(failpoint)) {
    return ErrnoStatus("ftruncate", path, fault->err);
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("ftruncate", path, errno);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path,
                                      const char* failpoint) {
  if (auto fault = HitIo(failpoint)) {
    return ErrnoStatus("read", path, fault->err);
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("seek", path, err);
  }
  std::vector<uint8_t> data(static_cast<size_t>(end));
  size_t read_total = 0;
  while (read_total < data.size()) {
    const ssize_t n =
        ::pread(fd, data.data() + read_total, data.size() - read_total,
                static_cast<off_t>(read_total));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("read", path, err);
    }
    if (n == 0) break;  // file shrank under us
    read_total += static_cast<size_t>(n);
  }
  ::close(fd);
  if (read_total != data.size()) {
    return Status::IOError("short read: " + path + " (" +
                           std::to_string(read_total) + " of " +
                           std::to_string(data.size()) + " bytes)");
  }
  return data;
}

Result<std::vector<uint8_t>> ReadAt(const std::string& path,
                                    uint64_t offset, uint64_t length,
                                    const char* failpoint) {
  if (auto fault = HitIo(failpoint)) {
    return ErrnoStatus("read", path, fault->err);
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  std::vector<uint8_t> data(static_cast<size_t>(length));
  size_t read_total = 0;
  while (read_total < data.size()) {
    const ssize_t n =
        ::pread(fd, data.data() + read_total, data.size() - read_total,
                static_cast<off_t>(offset + read_total));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("read", path, err);
    }
    if (n == 0) break;
    read_total += static_cast<size_t>(n);
  }
  ::close(fd);
  if (read_total != data.size()) {
    return Status::IOError("short read: " + path + " at offset " +
                           std::to_string(offset) + " (" +
                           std::to_string(read_total) + " of " +
                           std::to_string(length) + " bytes)");
  }
  return data;
}

}  // namespace io
}  // namespace kamel
