#include "common/fault_injection.h"

#include <cerrno>

namespace kamel {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& name, int skip, int count,
                        StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = armed_.insert_or_assign(
      name, Armed{skip, count < 0 ? -1 : count, code});
  (void)it;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_release);
}

void FaultInjector::ArmErrno(const std::string& name, int err, int skip,
                             int count, bool short_write) {
  // ENOSPC/EDQUOT are disk pressure (governors shed or GC); everything
  // else is a plain IO failure. Mirrors io::ErrnoStatus so Hit() and
  // HitIo() callers see consistent codes from one arming.
  const StatusCode code = (err == ENOSPC || err == EDQUOT)
                              ? StatusCode::kResourceExhausted
                              : StatusCode::kIOError;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = armed_.insert_or_assign(
      name, Armed{skip, count < 0 ? -1 : count, code, err, short_write});
  (void)it;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_release);
}

void FaultInjector::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_.erase(name) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_release);
  }
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  hits_.clear();
  armed_count_.store(0, std::memory_order_release);
}

const FaultInjector::Armed* FaultInjector::FireLocked(
    const std::string& name) {
  // Re-validate under the lock: a Reset() that raced the fast-path load
  // has already cleared the counters, and recording this hit against the
  // fresh epoch would let it be observed without the arming it belongs
  // to. The count and the armed-state decrement below form one critical
  // section — a hit either lands entirely before a concurrent Reset()
  // (counted, and fired if armed) or entirely after it (neither).
  if (armed_count_.load(std::memory_order_relaxed) == 0) return nullptr;
  ++hits_[name];
  auto it = armed_.find(name);
  if (it == armed_.end()) return nullptr;
  Armed& armed = it->second;
  if (armed.skip > 0) {
    --armed.skip;
    return nullptr;
  }
  if (armed.remaining == 0) return nullptr;
  if (armed.remaining > 0) --armed.remaining;
  return &armed;
}

Status FaultInjector::Hit(const std::string& name) {
  // Fast path: nothing armed anywhere, skip the lock and the counter (the
  // counter is only meaningful during fault-injection runs).
  if (armed_count_.load(std::memory_order_acquire) == 0) return Status::OK();

  std::lock_guard<std::mutex> lock(mu_);
  const Armed* armed = FireLocked(name);
  if (armed == nullptr) return Status::OK();
  return Status(armed->code, "injected fault at failpoint '" + name + "'");
}

std::optional<IoFaultSpec> FaultInjector::HitIo(const std::string& name) {
  if (armed_count_.load(std::memory_order_acquire) == 0) return std::nullopt;

  std::lock_guard<std::mutex> lock(mu_);
  const Armed* armed = FireLocked(name);
  if (armed == nullptr) return std::nullopt;
  // A plain Arm() reaching an errno seam simulates a generic IO error.
  return IoFaultSpec{armed->err != 0 ? armed->err : EIO,
                     armed->short_write};
}

int64_t FaultInjector::HitCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(name);
  return it == hits_.end() ? 0 : it->second;
}

FaultInjectingReader& FaultInjectingReader::TruncateAt(size_t offset) {
  if (offset < data_.size()) data_.resize(offset);
  return *this;
}

FaultInjectingReader& FaultInjectingReader::FlipBit(size_t offset, int bit) {
  if (offset < data_.size() && bit >= 0 && bit < 8) {
    data_[offset] ^= static_cast<uint8_t>(1u << bit);
  }
  return *this;
}

FaultInjectingReader& FaultInjectingReader::FlipByte(size_t offset) {
  if (offset < data_.size()) data_[offset] ^= 0xFFu;
  return *this;
}

}  // namespace kamel
