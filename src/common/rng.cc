#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace kamel {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: expands one seed word into the four xoshiro state words.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  KAMEL_CHECK(bound > 0, "NextUint64 bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  KAMEL_CHECK(lo <= hi, "NextInt requires lo <= hi");
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller on two uniforms; cache the second deviate.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace kamel
