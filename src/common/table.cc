#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace kamel {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  KAMEL_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::AddRow(std::vector<std::string> cells) {
  KAMEL_CHECK(cells.size() <= headers_.size(),
              "row has more cells than headers in table " + title_);
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = "== " + title_ + " ==\n";
  out += render_row(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 < headers_.size()) rule.append(2, ' ');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::ToCsv() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out += ',';
      out += CsvEscape(cells[c]);
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << ToCsv();
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

}  // namespace kamel
