#ifndef KAMEL_COMMON_TABLE_H_
#define KAMEL_COMMON_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"

namespace kamel {

/// Row/column table used by the benchmark harnesses to print the series of
/// each paper figure and to dump them as CSV for plotting.
class Table {
 public:
  /// Creates a table with the given title and column headers.
  Table(std::string title, std::vector<std::string> headers);

  /// Appends a row of already-formatted cells. Short rows are padded with
  /// empty cells; long rows are a programming error.
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with the given precision (helper for AddRow).
  static std::string Num(double v, int precision = 3);

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string ToCsv() const;

  /// Prints ToString() to stdout.
  void Print() const;

  /// Writes ToCsv() to a file.
  Status WriteCsv(const std::string& path) const;

  const std::string& title() const { return title_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return headers_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kamel

#endif  // KAMEL_COMMON_TABLE_H_
