#ifndef KAMEL_COMMON_BACKOFF_H_
#define KAMEL_COMMON_BACKOFF_H_

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/status.h"

namespace kamel {

/// Tuning of one retry loop: jittered exponential backoff with an
/// optional overall wall-clock deadline. This is THE retry policy of
/// the codebase — model demand loads (and any IO path that retries)
/// go through RetryWithBackoff below, so there is exactly one backoff
/// implementation to reason about and to tune.
struct RetryPolicy {
  /// Retries after the first failed attempt (total attempts = 1 + this).
  int max_retries = 2;
  /// Full (pre-jitter) delay before the first retry, milliseconds;
  /// doubles per retry. <= 0 retries immediately, consuming no jitter.
  double base_backoff_ms = 1.0;
  /// Ceiling on the full (pre-jitter) delay, milliseconds; <= 0 = none.
  double max_backoff_ms = 1000.0;
  /// Jitter band: the slept delay is uniform in
  /// [jitter_lo, jitter_hi) * full delay, so concurrent retry
  /// sequences against one struggling disk desynchronize.
  double jitter_lo = 0.5;
  double jitter_hi = 1.0;
  /// Overall wall-clock budget across all attempts and sleeps, seconds.
  /// Once exceeded the loop stops retrying even with retries left
  /// (deadline-aware: a caller with a latency bound never waits out the
  /// whole schedule). <= 0: no deadline.
  double deadline_s = 0.0;
};

/// The delay schedule of one retry sequence. Deterministic per seed:
/// equal seeds yield equal schedules (reproducible backoff under test),
/// distinct seeds decorrelate (no thundering herd in production).
class Backoff {
 public:
  Backoff(const RetryPolicy& policy, uint64_t jitter_seed);

  /// Jittered delay before retry `retry` (1-based), milliseconds.
  /// Advances the jitter stream; returns 0 without consuming jitter
  /// when the policy retries immediately.
  double NextDelayMs(int retry);

 private:
  RetryPolicy policy_;
  Rng jitter_;
};

/// Runs `op` up to 1 + policy.max_retries times, sleeping a jittered
/// exponential delay between attempts and honoring policy.deadline_s.
/// Returns OK on the first success; otherwise the last error, annotated
/// with the attempt count.
Status RetryWithBackoff(const RetryPolicy& policy, uint64_t jitter_seed,
                        const std::function<Status()>& op);

}  // namespace kamel

#endif  // KAMEL_COMMON_BACKOFF_H_
