#include "common/crc32c.h"

#include <array>

namespace kamel {

namespace {

constexpr uint32_t kPolynomial = 0x82F63B78u;  // 0x1EDC6F41 reflected

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32cExtend(uint32_t seed, const void* data, size_t length) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < length; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t length) {
  return Crc32cExtend(0, data, length);
}

}  // namespace kamel
