#ifndef KAMEL_COMMON_CHECK_H_
#define KAMEL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace kamel::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "KAMEL_CHECK failed at %s:%d: (%s) %s\n", file, line,
               expr, message.c_str());
  std::abort();
}

}  // namespace kamel::internal_check

/// Aborts with a diagnostic when `cond` is false. For programming errors
/// (broken invariants), not for recoverable conditions — those return
/// Status. Enabled in all build types: invariant violations in a database
/// engine must never be silently ignored.
#define KAMEL_CHECK(cond, ...)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::kamel::internal_check::CheckFailed(__FILE__, __LINE__, #cond, \
                                           std::string(__VA_ARGS__)); \
    }                                                                 \
  } while (false)

/// Debug-only variant for hot paths.
#ifdef NDEBUG
#define KAMEL_DCHECK(cond, ...) \
  do {                          \
  } while (false)
#else
#define KAMEL_DCHECK(cond, ...) KAMEL_CHECK(cond, ##__VA_ARGS__)
#endif

#endif  // KAMEL_COMMON_CHECK_H_
