#ifndef KAMEL_COMMON_FAULT_INJECTION_H_
#define KAMEL_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace kamel {

/// Registry of named failpoints compiled into the production code so tests
/// and benchmarks can exercise failure paths deterministically (the fault
/// injection half of the crash-safety story: every recovery branch must be
/// reachable on demand).
///
/// Failpoints currently wired in:
///   snapshot.write          Kamel::SaveToFile, before the atomic rename
///   snapshot.read.section   BinaryReader::EnterSection (forces a bad frame)
///   bert.forward            TrajBert::PredictMasked (yields no candidates,
///                           which drives the linear-fallback failure path)
///   store.append            TrajectoryStore::Append
///   repo.model.load         ShardedModelCache demand load (each disk
///                           attempt, including retries — drives the
///                           retry/backoff path and the circuit breaker)
///   wal.append              WriteAheadLog::Append, before any byte hits
///                           the segment
///   wal.append.torn         WriteAheadLog::Append: writes half a frame
///                           then fails and poisons the log (simulates a
///                           crash mid-write; reopen truncates the tear)
///   wal.fsync               WriteAheadLog durability step (Sync/policy)
///   wal.rotate              WriteAheadLog segment rollover
///   wal.checkpoint          WriteAheadLog::Checkpoint, between the
///                           checkpoint record and segment deletion
///
/// When nothing is armed, Hit() is a single relaxed atomic load — cheap
/// enough to leave in serving paths.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms `name` to fail with `code` on its next hits: the first `skip`
  /// hits pass, then `count` hits fail (count < 0 = fail forever).
  void Arm(const std::string& name, int skip = 0, int count = 1,
           StatusCode code = StatusCode::kIOError);

  void Disarm(const std::string& name);

  /// Disarms every failpoint and resets all hit counters.
  void Reset();

  /// Called at the failpoint. Returns non-OK when the armed fault fires.
  Status Hit(const std::string& name);

  /// Times the failpoint was reached (armed or not) since the last Reset.
  int64_t HitCount(const std::string& name) const;

 private:
  struct Armed {
    int skip = 0;
    int remaining = 0;  // < 0 = unlimited
    StatusCode code = StatusCode::kIOError;
  };

  FaultInjector() = default;

  std::atomic<int> armed_count_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, Armed> armed_;
  std::unordered_map<std::string, int64_t> hits_;
};

/// Arms one failpoint for the lifetime of a scope and disarms it on
/// destruction, so an early return — or a test assertion failure — can
/// never leak an armed fault into unrelated code that runs later. Tests
/// should prefer this over raw Arm()/Reset() pairs.
class ScopedFault {
 public:
  explicit ScopedFault(std::string name, int skip = 0, int count = 1,
                       StatusCode code = StatusCode::kIOError)
      : name_(std::move(name)) {
    FaultInjector::Instance().Arm(name_, skip, count, code);
  }
  ~ScopedFault() { FaultInjector::Instance().Disarm(name_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// Byte-level corruption harness for snapshot robustness tests: applies
/// truncations and bit flips to a serialized buffer, modelling torn writes
/// and media rot at precise offsets.
class FaultInjectingReader {
 public:
  explicit FaultInjectingReader(std::vector<uint8_t> data)
      : data_(std::move(data)) {}

  /// Drops every byte at and after `offset` (torn write).
  FaultInjectingReader& TruncateAt(size_t offset);

  /// Flips one bit (`bit` in [0,7]) of the byte at `offset`.
  FaultInjectingReader& FlipBit(size_t offset, int bit);

  /// Inverts the whole byte at `offset`.
  FaultInjectingReader& FlipByte(size_t offset);

  const std::vector<uint8_t>& bytes() const { return data_; }

  /// Moves the (mutated) buffer out; the reader is spent afterwards.
  std::vector<uint8_t> TakeBytes() { return std::move(data_); }

 private:
  std::vector<uint8_t> data_;
};

}  // namespace kamel

#endif  // KAMEL_COMMON_FAULT_INJECTION_H_
