#ifndef KAMEL_COMMON_FAULT_INJECTION_H_
#define KAMEL_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace kamel {

/// One errno-level fault to simulate at an IO seam (common/io_env.h).
/// `err` is the errno the seam reports (ENOSPC, EIO, EMFILE, ...);
/// `short_write` asks a write seam to land a partial prefix of the
/// buffer on disk before failing — the torn shape a real disk-full
/// produces, which is what forces callers to prove their torn-tail
/// recovery instead of assuming all-or-nothing writes.
struct IoFaultSpec {
  int err = 0;
  bool short_write = false;
};

/// Registry of named failpoints compiled into the production code so tests
/// and benchmarks can exercise failure paths deterministically (the fault
/// injection half of the crash-safety story: every recovery branch must be
/// reachable on demand).
///
/// Failpoints currently wired in:
///   snapshot.write          Kamel::SaveToFile, before the atomic rename
///   snapshot.read.section   BinaryReader::EnterSection (forces a bad frame)
///   bert.forward            TrajBert::PredictMasked (yields no candidates,
///                           which drives the linear-fallback failure path)
///   store.append            TrajectoryStore::Append
///   repo.model.load         ShardedModelCache demand load (each disk
///                           attempt, including retries — drives the
///                           retry/backoff path and the circuit breaker)
///   wal.append              WriteAheadLog::Append, before any byte hits
///                           the segment
///   wal.append.torn         WriteAheadLog::Append: writes half a frame
///                           then fails and poisons the log (simulates a
///                           crash mid-write; reopen truncates the tear)
///   wal.fsync               WriteAheadLog durability step (Sync/policy)
///   wal.rotate              WriteAheadLog segment rollover
///   wal.checkpoint          WriteAheadLog::Checkpoint, between the
///                           checkpoint record and segment deletion
///   model.load.slow         ShardedModelCache demand load: the load
///                           succeeds but sleeps past its stall budget
///                           (drives the slow-IO-trips-the-breaker path)
///   net.connect             net::ConnectTcp refuses before any syscall
///                           (a dead or unreachable worker)
///   net.send                net::SendFrame fails without writing (the
///                           connection is broken mid-call)
///   net.send.drop           net::SendFrame swallows the frame but
///                           reports success — the peer never sees it,
///                           so the receiver runs into its deadline
///   net.frame.truncate      net::SendFrame writes a torn frame (header
///                           promises the full payload, half arrives);
///                           the receiver stalls into kDeadlineExceeded
///   net.recv.delay          net::RecvFrame sleeps kInjectedDelaySeconds
///                           before reading (a straggling worker —
///                           drives the router's hedging budget)
///
/// Errno-level IO failpoints (fired through HitIo by common/io_env.h;
/// armed with ArmErrno to pick the errno and an optional short write):
///   wal.io.open / wal.io.write / wal.io.fsync / wal.io.read /
///   wal.io.unlink / wal.io.truncate / wal.io.dirsync
///                           every syscall the WAL makes (segment
///                           create/append/fsync, recovery reads, torn
///                           truncation, checkpoint GC, dir durability)
///   snapshot.io.open / snapshot.io.write / snapshot.io.fsync /
///   snapshot.io.rename / snapshot.io.dirsync / snapshot.io.read
///                           the atomic snapshot save pipeline and the
///                           whole-file snapshot load
///   model.io.read           lazy model section read (pread path)
///   replica.io.open / replica.io.write / replica.io.fsync /
///   replica.io.read / replica.io.unlink / replica.io.truncate /
///   replica.io.dirsync
///                           every syscall WalReplicaApplier makes
///                           (chunk append/fsync, torn-tail truncate,
///                           reset wipe, recovery scan) — distinct from
///                           wal.io.* so a test can tear the standby's
///                           tail without touching the primary
///   epoch.io.open / epoch.io.write / epoch.io.fsync /
///   epoch.io.rename / epoch.io.dirsync / epoch.io.read
///                           the atomic fencing-epoch store
///
/// When nothing is armed, Hit() is a single relaxed atomic load — cheap
/// enough to leave in serving paths.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms `name` to fail with `code` on its next hits: the first `skip`
  /// hits pass, then `count` hits fail (count < 0 = fail forever).
  void Arm(const std::string& name, int skip = 0, int count = 1,
           StatusCode code = StatusCode::kIOError);

  /// Arms `name` as an errno-level fault for IO seams: the first `skip`
  /// hits pass, then `count` hits fire (count < 0 = forever) with the
  /// given errno; `short_write` additionally lands half the buffer
  /// before failing (write seams only). A fault armed this way also
  /// fires through Hit() (as kResourceExhausted for ENOSPC/EDQUOT,
  /// kIOError otherwise), so one arming covers both seam styles.
  void ArmErrno(const std::string& name, int err, int skip = 0,
                int count = 1, bool short_write = false);

  void Disarm(const std::string& name);

  /// Disarms every failpoint and resets all hit counters.
  void Reset();

  /// Called at the failpoint. Returns non-OK when the armed fault fires.
  Status Hit(const std::string& name);

  /// Errno-seam variant of Hit(): returns the fault to simulate when it
  /// fires, nullopt otherwise. A failpoint armed with plain Arm() fires
  /// here too (as EIO), so either arming style reaches either seam.
  std::optional<IoFaultSpec> HitIo(const std::string& name);

  /// Times the failpoint was reached (armed or not) since the last Reset.
  int64_t HitCount(const std::string& name) const;

 private:
  struct Armed {
    int skip = 0;
    int remaining = 0;  // < 0 = unlimited
    StatusCode code = StatusCode::kIOError;
    int err = 0;  // errno for IO seams; 0 = not errno-armed (EIO there)
    bool short_write = false;
  };

  /// Shared skip/count bookkeeping of Hit/HitIo; mu_ must be held.
  /// Returns the armed record when the fault fires this hit.
  const Armed* FireLocked(const std::string& name);

  FaultInjector() = default;

  std::atomic<int> armed_count_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, Armed> armed_;
  std::unordered_map<std::string, int64_t> hits_;
};

/// ScopedFault for errno-level faults: arms through ArmErrno and
/// disarms on destruction.
class ScopedIoFault {
 public:
  explicit ScopedIoFault(std::string name, int err, int skip = 0,
                         int count = 1, bool short_write = false)
      : name_(std::move(name)) {
    FaultInjector::Instance().ArmErrno(name_, err, skip, count, short_write);
  }
  ~ScopedIoFault() { FaultInjector::Instance().Disarm(name_); }

  ScopedIoFault(const ScopedIoFault&) = delete;
  ScopedIoFault& operator=(const ScopedIoFault&) = delete;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// Arms one failpoint for the lifetime of a scope and disarms it on
/// destruction, so an early return — or a test assertion failure — can
/// never leak an armed fault into unrelated code that runs later. Tests
/// should prefer this over raw Arm()/Reset() pairs.
class ScopedFault {
 public:
  explicit ScopedFault(std::string name, int skip = 0, int count = 1,
                       StatusCode code = StatusCode::kIOError)
      : name_(std::move(name)) {
    FaultInjector::Instance().Arm(name_, skip, count, code);
  }
  ~ScopedFault() { FaultInjector::Instance().Disarm(name_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// Byte-level corruption harness for snapshot robustness tests: applies
/// truncations and bit flips to a serialized buffer, modelling torn writes
/// and media rot at precise offsets.
class FaultInjectingReader {
 public:
  explicit FaultInjectingReader(std::vector<uint8_t> data)
      : data_(std::move(data)) {}

  /// Drops every byte at and after `offset` (torn write).
  FaultInjectingReader& TruncateAt(size_t offset);

  /// Flips one bit (`bit` in [0,7]) of the byte at `offset`.
  FaultInjectingReader& FlipBit(size_t offset, int bit);

  /// Inverts the whole byte at `offset`.
  FaultInjectingReader& FlipByte(size_t offset);

  const std::vector<uint8_t>& bytes() const { return data_; }

  /// Moves the (mutated) buffer out; the reader is spent afterwards.
  std::vector<uint8_t> TakeBytes() { return std::move(data_); }

 private:
  std::vector<uint8_t> data_;
};

}  // namespace kamel

#endif  // KAMEL_COMMON_FAULT_INJECTION_H_
