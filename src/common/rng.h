#ifndef KAMEL_COMMON_RNG_H_
#define KAMEL_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kamel {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in KAMEL (simulator, MLM masking, DBSCAN
/// sampling, weight init) takes an explicit Rng so experiments are exactly
/// reproducible from a seed. Not cryptographically secure; not thread-safe —
/// use one instance per thread.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). Requires bound > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = NextUint64(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator; used to give each component
  /// its own stream without coupling their consumption patterns.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace kamel

#endif  // KAMEL_COMMON_RNG_H_
