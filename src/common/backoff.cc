#include "common/backoff.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

namespace kamel {

Backoff::Backoff(const RetryPolicy& policy, uint64_t jitter_seed)
    : policy_(policy), jitter_(jitter_seed) {}

double Backoff::NextDelayMs(int retry) {
  if (policy_.base_backoff_ms <= 0.0 || retry < 1) return 0.0;
  // Cap the shift: past ~2^52 doublings the delay is astronomically
  // beyond any max_backoff_ms anyway and the shift would overflow.
  const int doublings = std::min(retry - 1, 52);
  double full_ms =
      policy_.base_backoff_ms * static_cast<double>(1ull << doublings);
  if (policy_.max_backoff_ms > 0.0) {
    full_ms = std::min(full_ms, policy_.max_backoff_ms);
  }
  return full_ms * jitter_.NextDouble(policy_.jitter_lo, policy_.jitter_hi);
}

Status RetryWithBackoff(const RetryPolicy& policy, uint64_t jitter_seed,
                        const std::function<Status()>& op) {
  const int attempts = 1 + std::max(0, policy.max_retries);
  Backoff backoff(policy, jitter_seed);
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_s = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  Status last = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      const double delay_ms = backoff.NextDelayMs(attempt);
      if (delay_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
    }
    last = op();
    if (last.ok()) return last;
    if (policy.deadline_s > 0.0 && elapsed_s() >= policy.deadline_s) {
      return Status(last.code(),
                    last.message() + " (deadline exceeded after " +
                        std::to_string(attempt + 1) + " attempts)");
    }
  }
  return Status(last.code(), last.message() + " (after " +
                                 std::to_string(attempts) + " attempts)");
}

}  // namespace kamel
