#ifndef KAMEL_COMMON_IO_ENV_H_
#define KAMEL_COMMON_IO_ENV_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace kamel {
namespace io {

/// Errno-level IO seam: every syscall the durability stack makes (WAL
/// appends and fsyncs, atomic snapshot saves, lazy model reads) goes
/// through these wrappers instead of raw ::write/::fsync/::rename, so
/// a test can inject ENOSPC, EIO, EMFILE, or a short write at any
/// named call site (FaultInjector::ArmErrno + the failpoint names in
/// common/fault_injection.h) and prove the caller returns a clean
/// Status instead of corrupting state or crashing.
///
/// Real failures and injected ones take the same return path: callers
/// cannot tell them apart, which is the point.

/// Maps a failed syscall to the Status the IO layer reports: ENOSPC and
/// EDQUOT become kResourceExhausted (disk pressure — the budget governor
/// and ingestion shed path treat them as backpressure, not breakage),
/// everything else kIOError. The message carries strerror(err).
Status ErrnoStatus(const std::string& what, const std::string& path,
                   int err);

/// ::open. `failpoint` fires before the syscall; an injected fault
/// (e.g. EMFILE) fails the open without touching the filesystem.
Result<int> OpenFd(const std::string& path, int flags, unsigned mode,
                   const char* failpoint);

/// Writes all of `data`, retrying real short writes and EINTR. An
/// injected short-write fault lands the first half of the buffer on
/// disk for real, then fails with the armed errno — the torn prefix a
/// disk filling up mid-write leaves behind. `bytes_written` (optional)
/// reports how much reached the fd either way, so callers can tell
/// "nothing happened" from "the tail is torn".
Status WriteAll(int fd, const uint8_t* data, size_t size,
                const std::string& path, const char* failpoint,
                size_t* bytes_written = nullptr);

/// ::fsync.
Status Fsync(int fd, const std::string& path, const char* failpoint);

/// Opens `dir` and fsyncs it, making preceding renames/creates/unlinks
/// of its entries durable. A real fsync refusal is tolerated (some
/// filesystems reject directory fsync); failure to open the directory,
/// or an injected fault, is an error.
Status FsyncDir(const std::string& dir, const char* failpoint);

/// ::rename.
Status Rename(const std::string& from, const std::string& to,
              const char* failpoint);

/// ::unlink.
Status Unlink(const std::string& path, const char* failpoint);

/// ::ftruncate.
Status Ftruncate(int fd, uint64_t size, const std::string& path,
                 const char* failpoint);

/// Reads the whole file.
Result<std::vector<uint8_t>> ReadFile(const std::string& path,
                                      const char* failpoint);

/// Reads exactly `length` bytes at `offset` (pread loop).
Result<std::vector<uint8_t>> ReadAt(const std::string& path,
                                    uint64_t offset, uint64_t length,
                                    const char* failpoint);

}  // namespace io
}  // namespace kamel

#endif  // KAMEL_COMMON_IO_ENV_H_
