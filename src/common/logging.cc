#include "common/logging.h"

#include <cstdio>

namespace kamel {

namespace {
LogLevel g_min_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

namespace internal_logging {

void Emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[kamel %s] %s\n", LevelTag(level), message.c_str());
}

LogMessage::LogMessage(LogLevel level, const char* /*file*/, int /*line*/)
    : level_(level), enabled_(level >= GetLogLevel()) {}

LogMessage::~LogMessage() {
  if (enabled_) Emit(level_, stream_.str());
}

}  // namespace internal_logging
}  // namespace kamel
