#ifndef KAMEL_COMMON_CRC32C_H_
#define KAMEL_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace kamel {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) — the checksum
/// used by the snapshot format to detect torn writes and bit rot. Software
/// table-driven implementation; snapshot sections are cold-path data so no
/// hardware acceleration is needed.
uint32_t Crc32c(const void* data, size_t length);

/// Incremental form: extends `seed` (a previous Crc32c result) with more
/// bytes, as if the two buffers had been checksummed in one call.
uint32_t Crc32cExtend(uint32_t seed, const void* data, size_t length);

}  // namespace kamel

#endif  // KAMEL_COMMON_CRC32C_H_
