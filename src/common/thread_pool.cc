#include "common/thread_pool.h"

#include "common/check.h"

namespace kamel {

int ThreadPool::NumDefaultThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = NumDefaultThreads();
  queues_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stopping_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  KAMEL_CHECK(task != nullptr, "ThreadPool::Schedule on empty task");
  size_t index = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                 queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[index]->mu);
    queues_[index]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // The empty critical section fences against the lost-wakeup race: a worker
  // that read pending_ == 0 under wake_mu_ is guaranteed to reach wait()
  // before this notify, or to re-read pending_ > 0 and skip the wait.
  { std::lock_guard<std::mutex> lock(wake_mu_); }
  wake_cv_.notify_one();
}

bool ThreadPool::TryPopLocal(int index, std::function<void()>* task) {
  WorkerQueue& q = *queues_[index];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  *task = std::move(q.tasks.back());  // LIFO on the owner side: cache-warm.
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::TrySteal(int thief, std::function<void()>* task) {
  const int n = static_cast<int>(queues_.size());
  for (int offset = 1; offset < n; ++offset) {
    WorkerQueue& victim = *queues_[(thief + offset) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.tasks.empty()) continue;
    *task = std::move(victim.tasks.front());  // FIFO on the thief side.
    victim.tasks.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(int index) {
  std::function<void()> task;
  for (;;) {
    if (TryPopLocal(index, &task) || TrySteal(index, &task)) {
      // pending_ counts *queued* tasks, decremented at dequeue, so idle
      // workers sleep instead of spinning while a long task runs elsewhere.
      pending_.fetch_sub(1, std::memory_order_release);
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    // Drain-before-exit: only stop once every queue is empty so futures
    // handed out by Submit() are always fulfilled.
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) <= 0) {
      return;
    }
    if (pending_.load(std::memory_order_acquire) > 0) continue;  // retry pop
    wake_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) > 0 ||
             stopping_.load(std::memory_order_acquire);
    });
  }
}

}  // namespace kamel
