#ifndef KAMEL_COMMON_LOGGING_H_
#define KAMEL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace kamel {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo. Not synchronized — set it once at startup.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

void Emit(LogLevel level, const std::string& message);

/// Stream-style collector that emits on destruction (LOG(INFO) << ... idiom).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace kamel

#define KAMEL_LOG(level)                                      \
  ::kamel::internal_logging::LogMessage(                      \
      ::kamel::LogLevel::k##level, __FILE__, __LINE__)

#endif  // KAMEL_COMMON_LOGGING_H_
