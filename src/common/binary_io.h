#ifndef KAMEL_COMMON_BINARY_IO_H_
#define KAMEL_COMMON_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace kamel {

/// Little-endian binary serializer used for model files (the disk-based
/// model repository of Section 4 stores BERT weights and detokenizer
/// cluster metadata through this writer).
class BinaryWriter {
 public:
  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteF32Array(const float* data, size_t count);

  const std::vector<uint8_t>& buffer() const { return buffer_; }

  /// Writes the accumulated buffer to a file, replacing its contents.
  Status FlushToFile(const std::string& path) const;

 private:
  std::vector<uint8_t> buffer_;
};

/// Reader counterpart of BinaryWriter. All reads are bounds-checked and
/// return Status on truncated input (a corrupt model file must not crash
/// the serving path).
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<uint8_t> data)
      : data_(std::move(data)) {}

  /// Loads the whole file into memory.
  static Result<BinaryReader> FromFile(const std::string& path);

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<int64_t> ReadI64();
  Result<float> ReadF32();
  Result<double> ReadF64();
  Result<std::string> ReadString();
  Status ReadF32Array(float* out, size_t count);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Require(size_t bytes);

  std::vector<uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace kamel

#endif  // KAMEL_COMMON_BINARY_IO_H_
