#ifndef KAMEL_COMMON_BINARY_IO_H_
#define KAMEL_COMMON_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace kamel {

/// Snapshot file header: 4 magic bytes + a format version. Version 2
/// introduced per-section framing with CRC32C checksums; version-1 files
/// (no header, no checksums) are detected and rejected with a descriptive
/// error.
inline constexpr uint32_t kSnapshotMagic = 0x4B4D534Eu;  // "KMSN"
inline constexpr uint32_t kSnapshotVersion = 2;
/// Version 3 adds block-quantized serving weight sections (q8_0/q4_0).
/// Snapshots holding only fp32 weights are still written as version 2,
/// so files from builds that never quantize stay byte-identical.
inline constexpr uint32_t kSnapshotVersionQuant = 3;

/// Little-endian binary serializer used for model files (the disk-based
/// model repository of Section 4 stores BERT weights and detokenizer
/// cluster metadata through this writer).
///
/// Section framing: BeginSection(name)/EndSection() wrap a byte range in a
/// self-describing frame `name, u64 payload_length, u32 crc32c, payload`.
/// Frames let a reader CRC-verify each section independently and skip past
/// a corrupt one, which is what makes partial (quarantining) snapshot
/// loads possible. Sections may nest.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  /// Length-prefixed (u64) opaque byte blob — WAL chunk payloads and the
  /// like, where the bytes are a foreign format, not this codec's.
  void WriteBytes(const std::vector<uint8_t>& bytes);
  void WriteF32Array(const float* data, size_t count);

  /// Writes the snapshot magic + format version (call first).
  void WriteMagicHeader(uint32_t version = kSnapshotVersion);

  /// Opens a framed section; every byte written until the matching
  /// EndSection() is covered by the section's CRC.
  void BeginSection(std::string_view name);

  /// Closes the innermost open section, patching its length and CRC.
  void EndSection();

  const std::vector<uint8_t>& buffer() const { return buffer_; }

  /// Writes the accumulated buffer to a file, replacing its contents.
  Status FlushToFile(const std::string& path) const;

  /// Crash-safe variant: writes to a temporary sibling file, fsyncs it,
  /// then atomically renames over `path` (and fsyncs the directory), so a
  /// crash mid-save never leaves a torn snapshot at `path`.
  Status FlushToFileAtomic(const std::string& path) const;

 private:
  std::vector<uint8_t> buffer_;
  std::vector<size_t> open_sections_;  // offsets of the length fields
};

/// Describes one framed section encountered by BinaryReader::EnterSection.
struct SectionInfo {
  std::string name;
  size_t payload_offset = 0;  // absolute offset of the payload
  uint64_t length = 0;        // payload bytes
  uint32_t stored_crc = 0;
  bool crc_ok = false;
};

/// Reader counterpart of BinaryWriter. All reads are bounds-checked and
/// return Status on truncated input (a corrupt model file must not crash
/// the serving path).
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<uint8_t> data)
      : data_(std::move(data)) {}

  /// Loads the whole file into memory.
  static Result<BinaryReader> FromFile(const std::string& path);

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<int64_t> ReadI64();
  Result<float> ReadF32();
  Result<double> ReadF64();
  Result<std::string> ReadString();
  Result<std::vector<uint8_t>> ReadBytes();
  Status ReadF32Array(float* out, size_t count);

  /// Verifies the snapshot magic and that the version is supported;
  /// returns the version read. Detects headerless legacy (v1) files.
  Result<uint32_t> ReadMagicHeader();

  /// Reads one section frame at the cursor and CRC-checks its payload.
  /// On success the cursor is at the payload start and the section is
  /// "entered" (LeaveSection jumps past it). `info.crc_ok` is false on a
  /// checksum mismatch — the frame itself was readable, so the caller can
  /// still LeaveSection to skip the damaged payload and continue.
  /// A non-OK status means the frame is unreadable (truncated or insane
  /// length); recovery within the stream is not possible past it.
  Result<SectionInfo> EnterSection();

  /// Convenience: EnterSection + name and CRC verification.
  Status EnterSection(std::string_view expected_name);

  /// Jumps to the end of the innermost entered section.
  Status LeaveSection();

  size_t Tell() const { return pos_; }
  Status Seek(size_t pos);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Require(size_t bytes);

  std::vector<uint8_t> data_;
  size_t pos_ = 0;
  std::vector<size_t> section_ends_;  // innermost entered section last
};

}  // namespace kamel

#endif  // KAMEL_COMMON_BINARY_IO_H_
