#ifndef KAMEL_COMMON_THREAD_POOL_H_
#define KAMEL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace kamel {

/// Work-stealing thread pool for CPU-bound serving work (one imputation per
/// task). Each worker owns a deque: it pushes and pops its own work LIFO
/// (cache-warm), and steals FIFO from the other end of a victim's deque when
/// its own runs dry, so a burst of submissions spreads across cores without
/// a single contended queue.
///
/// Tasks must not block waiting on other tasks in the same pool (no nested
/// fan-out); serving imputations are independent, so this never arises.
/// Destruction drains every queued task before joining, so futures obtained
/// from Submit() are always fulfilled.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means NumDefaultThreads().
  explicit ThreadPool(int num_threads = 0);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues fire-and-forget work. Thread-safe.
  void Schedule(std::function<void()> task);

  /// Enqueues `fn` and returns a future for its result. Thread-safe.
  /// The future is fulfilled even if the pool is destroyed first (the
  /// destructor drains). Exceptions propagate through the future.
  template <typename F>
  auto Submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    Schedule([task]() { (*task)(); });
    return future;
  }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int NumDefaultThreads();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int index);
  bool TryPopLocal(int index, std::function<void()>* task);
  bool TrySteal(int thief, std::function<void()>* task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Submission round-robin cursor and sleep/wake machinery.
  std::atomic<uint64_t> next_queue_{0};
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> stopping_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
};

}  // namespace kamel

#endif  // KAMEL_COMMON_THREAD_POOL_H_
