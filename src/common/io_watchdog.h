#ifndef KAMEL_COMMON_IO_WATCHDOG_H_
#define KAMEL_COMMON_IO_WATCHDOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace kamel {

/// Stuck-IO watchdog: every blocking disk operation of consequence (WAL
/// fsync, snapshot save, model demand load) registers itself with a
/// wall-clock budget for its expected duration; any thread can then ask
/// "is an IO operation hanging right now?" without a dedicated monitor
/// thread. A kernel-level hang (dying disk, NFS stall) never returns to
/// the caller, so detection must happen from OUTSIDE the stalled call:
/// the serving engine's health probe calls stuck_now() and reports
/// RESOURCE_PRESSURE / DEGRADED while anything is past its budget.
///
/// Two signals:
///   stuck_now()     in-flight operations currently past their budget —
///                   the live hang detector.
///   stall_events()  total operations ever observed past their budget
///                   (counted once per operation, whether caught
///                   in-flight or at completion) — the monotonic
///                   counter surfaced in EngineStats.
///
/// Thread-safe; one process-wide instance so call sites deep in the IO
/// stack need no plumbing. Watching is cheap (one mutex + map insert
/// per operation) relative to the disk work it brackets.
class IoWatchdog {
 public:
  static IoWatchdog& Instance();

  /// RAII registration of one blocking operation. A budget <= 0
  /// disables watching (the scope is a no-op).
  class Scope {
   public:
    Scope(IoWatchdog* watchdog, const char* name, double budget_s);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope(Scope&& other) noexcept;

    /// Seconds since this scope began.
    double elapsed_s() const;
    /// True once the operation has run past its budget.
    bool stalled() const;

   private:
    IoWatchdog* watchdog_ = nullptr;
    uint64_t id_ = 0;  // 0 = unwatched
    double start_s_ = 0.0;
    double budget_s_ = 0.0;
  };

  Scope Watch(const char* name, double budget_s) {
    return Scope(this, name, budget_s);
  }

  /// In-flight operations currently past their budget. Scanning also
  /// folds newly-observed stalls into stall_events().
  int stuck_now();

  /// Names of the in-flight operations past their budget (diagnostics).
  std::vector<std::string> StuckOps();

  /// Operations ever observed past their budget, once each.
  int64_t stall_events() const;

  /// Test hook: clears the stall counter (in-flight scopes keep their
  /// registrations, but their prior stall observations are forgotten).
  void ResetCounters();

  /// Steady-clock seconds since an arbitrary epoch.
  static double NowSeconds();

 private:
  friend class Scope;
  struct Op {
    std::string name;
    double deadline_s = 0.0;
    bool reported = false;  // already counted in stall_events_
  };

  IoWatchdog() = default;

  uint64_t Begin(const char* name, double deadline_s);
  void End(uint64_t id, bool stalled);

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Op> active_;
  uint64_t next_id_ = 1;
  int64_t stall_events_ = 0;
};

}  // namespace kamel

#endif  // KAMEL_COMMON_IO_WATCHDOG_H_
