#include "common/binary_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/crc32c.h"
#include "common/fault_injection.h"
#include "common/io_env.h"
#include "common/io_watchdog.h"

namespace kamel {

namespace {

std::string ErrnoString() {
  const int err = errno;
  return err != 0 ? std::string(": ") + std::strerror(err) : std::string();
}

// A snapshot save stalled past this is counted as an IoWatchdog stall and
// surfaces as resource pressure while in flight.
constexpr double kSnapshotStallBudgetS = 30.0;

template <typename T>
void AppendRaw(std::vector<uint8_t>* buffer, T value) {
  // Host is little-endian on all supported platforms; memcpy keeps this
  // free of strict-aliasing issues.
  uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  buffer->insert(buffer->end(), bytes, bytes + sizeof(T));
}

template <typename T>
void PatchRaw(std::vector<uint8_t>* buffer, size_t offset, T value) {
  std::memcpy(buffer->data() + offset, &value, sizeof(T));
}

}  // namespace

void BinaryWriter::WriteU8(uint8_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteU32(uint32_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteU64(uint64_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteI32(int32_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteI64(int64_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteF32(float v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteF64(double v) { AppendRaw(&buffer_, v); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void BinaryWriter::WriteBytes(const std::vector<uint8_t>& bytes) {
  WriteU64(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void BinaryWriter::WriteF32Array(const float* data, size_t count) {
  WriteU64(count);
  const auto* bytes = reinterpret_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + count * sizeof(float));
}

void BinaryWriter::WriteMagicHeader(uint32_t version) {
  WriteU32(kSnapshotMagic);
  WriteU32(version);
}

void BinaryWriter::BeginSection(std::string_view name) {
  WriteString(std::string(name));
  open_sections_.push_back(buffer_.size());
  WriteU64(0);  // payload length, patched by EndSection
  WriteU32(0);  // payload crc32c, patched by EndSection
}

void BinaryWriter::EndSection() {
  KAMEL_CHECK(!open_sections_.empty(),
              "EndSection without matching BeginSection");
  const size_t length_offset = open_sections_.back();
  open_sections_.pop_back();
  const size_t payload_offset = length_offset + sizeof(uint64_t) +
                                sizeof(uint32_t);
  const uint64_t payload_length = buffer_.size() - payload_offset;
  const uint32_t crc =
      Crc32c(buffer_.data() + payload_offset, payload_length);
  PatchRaw(&buffer_, length_offset, payload_length);
  PatchRaw(&buffer_, length_offset + sizeof(uint64_t), crc);
}

Status BinaryWriter::FlushToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path +
                           ErrnoString());
  }
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
  if (!out) return Status::IOError("short write: " + path + ErrnoString());
  return Status::OK();
}

Status BinaryWriter::FlushToFileAtomic(const std::string& path) const {
  auto watch =
      IoWatchdog::Instance().Watch("snapshot.save", kSnapshotStallBudgetS);
  const std::string tmp_path =
      path + ".tmp." + std::to_string(::getpid());
  auto opened = io::OpenFd(tmp_path, O_WRONLY | O_CREAT | O_TRUNC, 0644,
                           "snapshot.io.open");
  if (!opened.ok()) return opened.status();
  const int fd = *opened;
  Status status = io::WriteAll(fd, buffer_.data(), buffer_.size(),
                               tmp_path, "snapshot.io.write");
  if (status.ok()) {
    status = io::Fsync(fd, tmp_path, "snapshot.io.fsync");
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::IOError("close failed: " + tmp_path + ErrnoString());
  }
  if (status.ok()) {
    status = FaultInjector::Instance().Hit("snapshot.write");
  }
  if (status.ok()) {
    status = io::Rename(tmp_path, path, "snapshot.io.rename");
  }
  if (!status.ok()) {
    ::unlink(tmp_path.c_str());  // never leave a torn temp file behind
    return status;
  }
  // Persist the rename itself: fsync the containing directory, or a
  // crash after "save succeeded" can roll the file back to its previous
  // contents (losing the renamed snapshot entirely on a fresh save).
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  return io::FsyncDir(dir, "snapshot.io.dirsync");
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  KAMEL_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                         io::ReadFile(path, "snapshot.io.read"));
  return BinaryReader(std::move(data));
}

Status BinaryReader::Require(size_t bytes) {
  if (bytes > data_.size() - pos_) {
    return Status::IOError("truncated input: need " + std::to_string(bytes) +
                           " bytes at offset " + std::to_string(pos_) +
                           " of " + std::to_string(data_.size()));
  }
  return Status::OK();
}

namespace {

template <typename T>
Result<T> ReadRaw(const std::vector<uint8_t>& data, size_t* pos,
                  Status bounds) {
  if (!bounds.ok()) return bounds;
  T value;
  std::memcpy(&value, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return value;
}

}  // namespace

Result<uint8_t> BinaryReader::ReadU8() {
  return ReadRaw<uint8_t>(data_, &pos_, Require(sizeof(uint8_t)));
}
Result<uint32_t> BinaryReader::ReadU32() {
  return ReadRaw<uint32_t>(data_, &pos_, Require(sizeof(uint32_t)));
}
Result<uint64_t> BinaryReader::ReadU64() {
  return ReadRaw<uint64_t>(data_, &pos_, Require(sizeof(uint64_t)));
}
Result<int32_t> BinaryReader::ReadI32() {
  return ReadRaw<int32_t>(data_, &pos_, Require(sizeof(int32_t)));
}
Result<int64_t> BinaryReader::ReadI64() {
  return ReadRaw<int64_t>(data_, &pos_, Require(sizeof(int64_t)));
}
Result<float> BinaryReader::ReadF32() {
  return ReadRaw<float>(data_, &pos_, Require(sizeof(float)));
}
Result<double> BinaryReader::ReadF64() {
  return ReadRaw<double>(data_, &pos_, Require(sizeof(double)));
}

Result<std::string> BinaryReader::ReadString() {
  KAMEL_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  KAMEL_RETURN_NOT_OK(Require(len));
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

Result<std::vector<uint8_t>> BinaryReader::ReadBytes() {
  KAMEL_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  KAMEL_RETURN_NOT_OK(Require(len));
  std::vector<uint8_t> bytes(data_.begin() + static_cast<ptrdiff_t>(pos_),
                             data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
  pos_ += len;
  return bytes;
}

Status BinaryReader::ReadF32Array(float* out, size_t count) {
  KAMEL_ASSIGN_OR_RETURN(uint64_t stored, ReadU64());
  if (stored != count) {
    return Status::IOError("array length mismatch: stored " +
                           std::to_string(stored) + ", expected " +
                           std::to_string(count));
  }
  KAMEL_RETURN_NOT_OK(Require(count * sizeof(float)));
  std::memcpy(out, data_.data() + pos_, count * sizeof(float));
  pos_ += count * sizeof(float);
  return Status::OK();
}

Result<uint32_t> BinaryReader::ReadMagicHeader() {
  KAMEL_ASSIGN_OR_RETURN(uint32_t magic, ReadU32());
  if (magic != kSnapshotMagic) {
    // A version-1 snapshot opened with a length-prefixed magic string
    // ("kamel-system-v1" and friends); its first u32 is a small length.
    if (magic < 64) {
      return Status::IOError(
          "unsupported legacy (pre-checksum v1) snapshot; re-train and "
          "re-save with this version");
    }
    return Status::IOError("bad snapshot magic: 0x" + [magic] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08X", magic);
      return std::string(buf);
    }());
  }
  KAMEL_ASSIGN_OR_RETURN(uint32_t version, ReadU32());
  if (version != kSnapshotVersion && version != kSnapshotVersionQuant) {
    return Status::IOError("unsupported snapshot version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kSnapshotVersion) + " or " +
                           std::to_string(kSnapshotVersionQuant) + ")");
  }
  return version;
}

Result<SectionInfo> BinaryReader::EnterSection() {
  KAMEL_RETURN_NOT_OK(FaultInjector::Instance().Hit("snapshot.read.section"));
  SectionInfo info;
  KAMEL_ASSIGN_OR_RETURN(info.name, ReadString());
  KAMEL_ASSIGN_OR_RETURN(info.length, ReadU64());
  KAMEL_ASSIGN_OR_RETURN(info.stored_crc, ReadU32());
  // A corrupt length field must not send the cursor out of bounds (or
  // trigger a giant allocation downstream).
  KAMEL_RETURN_NOT_OK(Require(info.length));
  info.payload_offset = pos_;
  info.crc_ok =
      Crc32c(data_.data() + pos_, info.length) == info.stored_crc;
  section_ends_.push_back(pos_ + info.length);
  return info;
}

Status BinaryReader::EnterSection(std::string_view expected_name) {
  KAMEL_ASSIGN_OR_RETURN(SectionInfo info, EnterSection());
  if (info.name != expected_name) {
    LeaveSection();
    return Status::IOError("expected section '" +
                           std::string(expected_name) + "', found '" +
                           info.name + "'");
  }
  if (!info.crc_ok) {
    LeaveSection();
    return Status::IOError("checksum mismatch in section '" + info.name +
                           "' (" + std::to_string(info.length) +
                           " bytes at offset " +
                           std::to_string(info.payload_offset) + ")");
  }
  return Status::OK();
}

Status BinaryReader::LeaveSection() {
  if (section_ends_.empty()) {
    return Status::FailedPrecondition(
        "LeaveSection without matching EnterSection");
  }
  pos_ = section_ends_.back();
  section_ends_.pop_back();
  return Status::OK();
}

Status BinaryReader::Seek(size_t pos) {
  if (pos > data_.size()) {
    return Status::OutOfRange("seek to " + std::to_string(pos) +
                              " beyond input of " +
                              std::to_string(data_.size()) + " bytes");
  }
  pos_ = pos;
  return Status::OK();
}

}  // namespace kamel
