#include "common/binary_io.h"

#include <cstring>
#include <fstream>

namespace kamel {

namespace {

template <typename T>
void AppendRaw(std::vector<uint8_t>* buffer, T value) {
  // Host is little-endian on all supported platforms; memcpy keeps this
  // free of strict-aliasing issues.
  uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  buffer->insert(buffer->end(), bytes, bytes + sizeof(T));
}

}  // namespace

void BinaryWriter::WriteU8(uint8_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteU32(uint32_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteU64(uint64_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteI32(int32_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteI64(int64_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteF32(float v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteF64(double v) { AppendRaw(&buffer_, v); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void BinaryWriter::WriteF32Array(const float* data, size_t count) {
  WriteU64(count);
  const auto* bytes = reinterpret_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + count * sizeof(float));
}

Status BinaryWriter::FlushToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> data(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(data.data()), size)) {
    return Status::IOError("short read: " + path);
  }
  return BinaryReader(std::move(data));
}

Status BinaryReader::Require(size_t bytes) {
  if (pos_ + bytes > data_.size()) {
    return Status::IOError("truncated input: need " + std::to_string(bytes) +
                           " bytes at offset " + std::to_string(pos_) +
                           " of " + std::to_string(data_.size()));
  }
  return Status::OK();
}

namespace {

template <typename T>
Result<T> ReadRaw(const std::vector<uint8_t>& data, size_t* pos,
                  Status bounds) {
  if (!bounds.ok()) return bounds;
  T value;
  std::memcpy(&value, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return value;
}

}  // namespace

Result<uint8_t> BinaryReader::ReadU8() {
  return ReadRaw<uint8_t>(data_, &pos_, Require(sizeof(uint8_t)));
}
Result<uint32_t> BinaryReader::ReadU32() {
  return ReadRaw<uint32_t>(data_, &pos_, Require(sizeof(uint32_t)));
}
Result<uint64_t> BinaryReader::ReadU64() {
  return ReadRaw<uint64_t>(data_, &pos_, Require(sizeof(uint64_t)));
}
Result<int32_t> BinaryReader::ReadI32() {
  return ReadRaw<int32_t>(data_, &pos_, Require(sizeof(int32_t)));
}
Result<int64_t> BinaryReader::ReadI64() {
  return ReadRaw<int64_t>(data_, &pos_, Require(sizeof(int64_t)));
}
Result<float> BinaryReader::ReadF32() {
  return ReadRaw<float>(data_, &pos_, Require(sizeof(float)));
}
Result<double> BinaryReader::ReadF64() {
  return ReadRaw<double>(data_, &pos_, Require(sizeof(double)));
}

Result<std::string> BinaryReader::ReadString() {
  KAMEL_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  KAMEL_RETURN_NOT_OK(Require(len));
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

Status BinaryReader::ReadF32Array(float* out, size_t count) {
  KAMEL_ASSIGN_OR_RETURN(uint64_t stored, ReadU64());
  if (stored != count) {
    return Status::IOError("array length mismatch: stored " +
                           std::to_string(stored) + ", expected " +
                           std::to_string(count));
  }
  KAMEL_RETURN_NOT_OK(Require(count * sizeof(float)));
  std::memcpy(out, data_.data() + pos_, count * sizeof(float));
  pos_ += count * sizeof(float);
  return Status::OK();
}

}  // namespace kamel
