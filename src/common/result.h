#ifndef KAMEL_COMMON_RESULT_H_
#define KAMEL_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace kamel {

/// Value-or-Status, the return type of fallible producing operations
/// (Arrow's arrow::Result idiom).
///
/// A Result is either a value of type T or a non-OK Status; it is never
/// both and never an OK Status without a value. Accessing the value of an
/// errored Result aborts (programming error).
///
/// Return conventions (project-wide, including the concurrent serving
/// API):
///  - An operation that produces a value returns Result<T>; one that only
///    succeeds or fails returns Status. Exceptions are never thrown
///    across public boundaries, and fallibility is never signalled with
///    sentinel values, bool + out-param, or errno.
///  - Asynchronous calls wrap the same types: ServingEngine::ImputeAsync
///    returns std::future<Result<ImputedTrajectory>> — the future is
///    always satisfied (never an exception), and the Result inside
///    carries success or failure exactly as the synchronous call would.
///  - Callback receivers (ImputedSink) get the value on success
///    (OnImputed) and the Status on failure (OnImputeError); errors are
///    delivered, not dropped, even on pool threads.
///  - Batch calls (ServingEngine::ImputeBatch) return the Status of the
///    lowest-index failing element, deterministically, regardless of the
///    order in which parallel elements actually failed.
///  - Propagate with KAMEL_ASSIGN_OR_RETURN / KAMEL_RETURN_NOT_OK below;
///    KAMEL_CHECK is reserved for programming errors.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit so
  /// `return Status::NotFound(...)` works). Aborts if the status is OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    KAMEL_CHECK(!std::get<Status>(repr_).ok(),
                "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Borrows the held value. Requires ok().
  const T& value() const& {
    KAMEL_CHECK(ok(), "Result::value() on error: " + status().ToString());
    return std::get<T>(repr_);
  }
  T& value() & {
    KAMEL_CHECK(ok(), "Result::value() on error: " + status().ToString());
    return std::get<T>(repr_);
  }

  /// Moves the held value out. Requires ok().
  T&& value() && {
    KAMEL_CHECK(ok(), "Result::value() on error: " + status().ToString());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace kamel

/// Unwraps a Result into `lhs`, propagating errors to the caller.
#define KAMEL_ASSIGN_OR_RETURN(lhs, expr)               \
  KAMEL_ASSIGN_OR_RETURN_IMPL(                          \
      KAMEL_CONCAT_NAME(_result_, __LINE__), lhs, expr)

#define KAMEL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define KAMEL_CONCAT_NAME(x, y) KAMEL_CONCAT_NAME_INNER(x, y)
#define KAMEL_CONCAT_NAME_INNER(x, y) x##y

#endif  // KAMEL_COMMON_RESULT_H_
