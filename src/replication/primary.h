#ifndef KAMEL_REPLICATION_PRIMARY_H_
#define KAMEL_REPLICATION_PRIMARY_H_

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/wal.h"
#include "replication/replication.h"

namespace kamel::replication {

/// The primary's half of WAL shipping: owns the ingest WAL, serves
/// kMethodWalPull (TailChunk under one lock with the appends), tracks
/// each standby's acked watermark for semi-sync Submit, and self-fences
/// the moment any pull proves a higher epoch exists.
///
/// Thread-safe: appends come from the Submit handler, pulls from one
/// connection thread per standby, stats probes from anywhere.
class PrimaryReplication {
 public:
  /// One standby as the primary last saw it (for stats and tests).
  struct StandbyView {
    std::string id;
    uint64_t acked_lsn = 0;
    double age_s = 0.0;  ///< seconds since its last pull
  };

  /// Takes ownership of an opened WAL. `epoch` is the fencing epoch this
  /// primary serves at (persist it with StoreEpoch before constructing).
  PrimaryReplication(std::unique_ptr<WriteAheadLog> wal, uint64_t epoch,
                     ReplicationOptions options);

  PrimaryReplication(const PrimaryReplication&) = delete;
  PrimaryReplication& operator=(const PrimaryReplication&) = delete;

  /// Appends one record, forces it durable (Submit acks ride on this),
  /// wakes parked pulls, and returns its LSN. kFailedPrecondition once
  /// fenced.
  Result<uint64_t> Append(WalRecordType type,
                          const std::vector<uint8_t>& payload);

  /// Blocks until `min_sync_standbys` standbys have acked `lsn`, the ack
  /// timeout elapses (kUnavailable — replication cover is gone), or the
  /// primary fences. Immediate OK when min_sync_standbys == 0.
  Status WaitReplicated(uint64_t lsn);

  /// Serves one kMethodWalPull. Fencing happens here: a request carrying
  /// a higher epoch fences this primary permanently; a lower-epoch
  /// request is answered with kReset + our epoch so the stale follower
  /// wipes and adopts. Caught-up equal-epoch pulls park up to
  /// `pull_long_poll_s` waiting for fresh bytes.
  Result<PullResponse> HandlePull(const PullRequest& request);

  uint64_t epoch() const { return epoch_; }
  bool fenced() const;
  uint64_t durable_lsn() const;
  std::vector<StandbyView> standbys() const;
  const ReplicationOptions& options() const { return options_; }

 private:
  struct StandbyState {
    uint64_t acked_lsn = 0;
    std::chrono::steady_clock::time_point last_seen;
  };

  const uint64_t epoch_;
  const ReplicationOptions options_;
  mutable std::mutex mu_;
  std::condition_variable ack_cv_;   ///< WaitReplicated sleeps here
  std::condition_variable data_cv_;  ///< parked long-poll pulls sleep here
  std::unique_ptr<WriteAheadLog> wal_;
  bool fenced_ = false;
  std::map<std::string, StandbyState> standbys_;
};

}  // namespace kamel::replication

#endif  // KAMEL_REPLICATION_PRIMARY_H_
