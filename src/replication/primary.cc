#include "replication/primary.h"

#include <algorithm>
#include <utility>

namespace kamel::replication {

PrimaryReplication::PrimaryReplication(std::unique_ptr<WriteAheadLog> wal,
                                       uint64_t epoch,
                                       ReplicationOptions options)
    : epoch_(epoch), options_(options), wal_(std::move(wal)) {}

Result<uint64_t> PrimaryReplication::Append(
    WalRecordType type, const std::vector<uint8_t>& payload) {
  std::unique_lock<std::mutex> lock(mu_);
  if (fenced_) {
    return Status::FailedPrecondition(
        "primary fenced at epoch " + std::to_string(epoch_) +
        ": a newer primary exists");
  }
  KAMEL_ASSIGN_OR_RETURN(const uint64_t lsn, wal_->Append(type, payload));
  if (wal_->durable_lsn() < lsn) {
    // The fsync policy may batch; a replicated ack must not.
    KAMEL_RETURN_NOT_OK(wal_->Sync());
  }
  lock.unlock();
  data_cv_.notify_all();
  return lsn;
}

Status PrimaryReplication::WaitReplicated(uint64_t lsn) {
  if (options_.min_sync_standbys <= 0) return Status::OK();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.ack_timeout_s));
  std::unique_lock<std::mutex> lock(mu_);
  const auto acked = [&] {
    int count = 0;
    for (const auto& [id, state] : standbys_) {
      (void)id;
      if (state.acked_lsn >= lsn) ++count;
    }
    return count >= options_.min_sync_standbys;
  };
  while (!acked()) {
    if (fenced_) {
      return Status::FailedPrecondition(
          "primary fenced while waiting for replication acks");
    }
    if (ack_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (acked()) break;
      return Status::Unavailable(
          "replication ack timeout: fewer than " +
          std::to_string(options_.min_sync_standbys) +
          " standbys caught up to lsn " + std::to_string(lsn));
    }
  }
  return Status::OK();
}

Result<PullResponse> PrimaryReplication::HandlePull(
    const PullRequest& request) {
  std::unique_lock<std::mutex> lock(mu_);
  if (request.epoch > epoch_) {
    // Proof a newer primary was promoted while we were alive (or we are
    // the resurrected old primary): fence permanently. Submits start
    // refusing; the router's Role probe sees FENCED and stops routing.
    fenced_ = true;
    lock.unlock();
    ack_cv_.notify_all();
    data_cv_.notify_all();
    return Status::FailedPrecondition(
        "fenced: pull carried epoch " + std::to_string(request.epoch) +
        " > local epoch " + std::to_string(epoch_));
  }
  if (fenced_) {
    return Status::FailedPrecondition("primary is fenced");
  }
  PullResponse response;
  response.epoch = epoch_;
  if (request.epoch < epoch_) {
    // A follower from an older epoch: its history may contain records
    // ours never acked. Answer kReset + our epoch; it wipes, adopts,
    // and resyncs from our earliest segment (TailChunk at base 0 is
    // always a kReset — no segment has base 0).
    KAMEL_ASSIGN_OR_RETURN(response.chunk, wal_->TailChunk(0, 0, 0));
    return response;
  }
  auto& standby = standbys_[request.standby_id];
  standby.acked_lsn = std::max(standby.acked_lsn, request.applied_lsn);
  standby.last_seen = std::chrono::steady_clock::now();
  lock.unlock();
  ack_cv_.notify_all();
  lock.lock();

  const uint64_t max_bytes = request.max_bytes == 0
                                 ? options_.pull_chunk_bytes
                                 : std::min(request.max_bytes,
                                            options_.pull_chunk_bytes);
  KAMEL_ASSIGN_OR_RETURN(
      response.chunk,
      wal_->TailChunk(request.segment_base, request.offset, max_bytes));
  if (response.chunk.kind == WalShipChunk::Kind::kData &&
      response.chunk.bytes.empty() && options_.pull_long_poll_s > 0) {
    // Caught up: park until an append lands or the long-poll budget
    // runs out, then re-read once. Turns the pull loop into push-like
    // shipping without a second protocol.
    data_cv_.wait_for(
        lock, std::chrono::duration<double>(options_.pull_long_poll_s),
        [&] { return fenced_ || wal_->durable_lsn() > request.applied_lsn; });
    if (fenced_) return Status::FailedPrecondition("primary is fenced");
    KAMEL_ASSIGN_OR_RETURN(
        response.chunk,
        wal_->TailChunk(request.segment_base, request.offset, max_bytes));
  }
  response.chunk.durable_lsn = wal_->durable_lsn();
  return response;
}

bool PrimaryReplication::fenced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fenced_;
}

uint64_t PrimaryReplication::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_->durable_lsn();
}

std::vector<PrimaryReplication::StandbyView> PrimaryReplication::standbys()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StandbyView> views;
  views.reserve(standbys_.size());
  const auto now = std::chrono::steady_clock::now();
  for (const auto& [id, state] : standbys_) {
    StandbyView view;
    view.id = id;
    view.acked_lsn = state.acked_lsn;
    view.age_s =
        std::chrono::duration<double>(now - state.last_seen).count();
    views.push_back(std::move(view));
  }
  return views;
}

}  // namespace kamel::replication
