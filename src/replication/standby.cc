#include "replication/standby.h"

#include <algorithm>
#include <utility>

namespace kamel::replication {

Result<std::unique_ptr<StandbyReplication>> StandbyReplication::Start(
    Options options) {
  if (options.wal_dir.empty()) {
    return Status::InvalidArgument("standby wal_dir must be set");
  }
  if (options.primary_port == 0) {
    return Status::InvalidArgument("standby primary_port must be set");
  }
  auto standby =
      std::unique_ptr<StandbyReplication>(new StandbyReplication(options));
  KAMEL_ASSIGN_OR_RETURN(standby->applier_,
                         WalReplicaApplier::Open(options.wal_dir));
  KAMEL_ASSIGN_OR_RETURN(standby->epoch_, LoadEpoch(options.wal_dir));
  net::RpcClientOptions client_options;
  client_options.call_deadline_s = options.pull_deadline_s;
  client_options.jitter_seed = options.jitter_seed;
  // The loop is its own retry schedule; don't stack connect retries
  // under it or a dead primary stalls each pull for the full ladder.
  client_options.connect_retry.max_retries = 0;
  standby->client_ = std::make_unique<net::RpcClient>(
      options.primary_host, options.primary_port, client_options);
  standby->puller_ = std::thread([s = standby.get()] { s->PullLoop(); });
  return standby;
}

StandbyReplication::~StandbyReplication() { Stop(); }

void StandbyReplication::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already stopped (StopForPromotion ran); the thread is joined.
      return;
    }
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (puller_.joinable()) puller_.join();
}

uint64_t StandbyReplication::StopForPromotion() {
  Stop();
  std::lock_guard<std::mutex> lock(mu_);
  return applier_->applied_lsn();
}

void StandbyReplication::InterruptibleSleep(double seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                    [&] { return stopping_; });
}

void StandbyReplication::PullLoop() {
  while (true) {
    PullRequest request;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      request.standby_id = options_.standby_id;
      request.epoch = epoch_;
      request.applied_lsn = applier_->applied_lsn();
      request.segment_base = applier_->segment_base();
      request.offset = applier_->offset();
      request.max_bytes = options_.replication.pull_chunk_bytes;
    }
    auto wire = client_->Call(kMethodWalPull, EncodePullRequest(request),
                              options_.pull_deadline_s);
    if (!wire.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      connected_ = false;
      last_error_ = wire.status().ToString();
      // Fall through to the sleep below; the primary may be restarting.
    } else {
      auto decoded = DecodePullResponse(*wire);
      std::unique_lock<std::mutex> lock(mu_);
      ++pulls_;
      if (!decoded.ok()) {
        connected_ = false;
        last_error_ = decoded.status().ToString();
      } else if (decoded->epoch < epoch_) {
        // THE fence: whoever answered is a primary from a deposed
        // epoch. Refuse its bytes — applying them could fork history —
        // and keep trying; the router will point us elsewhere or this
        // process gets promoted itself.
        connected_ = false;
        ++stale_primary_refusals_;
        last_error_ = "refused pull from stale primary epoch " +
                      std::to_string(decoded->epoch) + " < local epoch " +
                      std::to_string(epoch_);
      } else {
        if (decoded->epoch > epoch_) {
          // Persist before following: crash-then-reopen must never fall
          // back to trusting the old epoch.
          Status stored = StoreEpoch(options_.wal_dir, decoded->epoch);
          if (!stored.ok()) {
            last_error_ = stored.ToString();
            lock.unlock();
            InterruptibleSleep(options_.replication.pull_poll_interval_s);
            continue;
          }
          epoch_ = decoded->epoch;
        }
        Status applied = applier_->Apply(decoded->chunk);
        if (!applied.ok()) {
          last_error_ = applied.ToString();
          if (applied.code() == StatusCode::kFailedPrecondition) {
            // Poisoned by a torn local write: reopen truncates the tail
            // and recovers the position; the stream resumes from there.
            auto reopened = WalReplicaApplier::Open(options_.wal_dir);
            if (reopened.ok()) applier_ = std::move(*reopened);
          } else {
            // Stream desync or corrupt bytes: wipe and resync from the
            // primary's earliest segment. Replica state is disposable —
            // correctness lives on the primary.
            (void)applier_->Reset();
          }
        } else {
          connected_ = true;
          primary_durable_lsn_ =
              std::max(primary_durable_lsn_, decoded->chunk.durable_lsn);
          const bool caught_up =
              decoded->chunk.kind == WalShipChunk::Kind::kData &&
              decoded->chunk.bytes.empty();
          if (!caught_up) continue;  // more to pull, no sleep
        }
      }
    }
    InterruptibleSleep(options_.replication.pull_poll_interval_s);
  }
}

StandbyReplication::StatusView StandbyReplication::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatusView view;
  view.epoch = epoch_;
  view.applied_lsn = applier_->applied_lsn();
  view.primary_durable_lsn = primary_durable_lsn_;
  view.lag = view.primary_durable_lsn > view.applied_lsn
                 ? view.primary_durable_lsn - view.applied_lsn
                 : 0;
  view.connected = connected_;
  view.pulls = pulls_;
  view.stale_primary_refusals = stale_primary_refusals_;
  view.last_error = last_error_;
  return view;
}

}  // namespace kamel::replication
