#ifndef KAMEL_REPLICATION_STANDBY_H_
#define KAMEL_REPLICATION_STANDBY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "io/wal.h"
#include "net/rpc.h"
#include "replication/replication.h"

namespace kamel::replication {

/// The standby's half of WAL shipping: a pull thread that streams chunks
/// from the primary into a WalReplicaApplier, persisting the fencing
/// epoch it follows. Byte-identical replica segments by construction —
/// the stream ships raw durable segment bytes, never re-encoded records.
///
/// Self-healing: a torn local tail (crash mid-apply) is truncated on
/// reopen; an out-of-sync stream resets and resyncs; a poisoned applier
/// (failed write/fsync) is reopened in place. A response from a LOWER
/// epoch than ours is refused and counted — that is the stale-primary
/// fence. A HIGHER epoch is adopted (persisted first), and the primary's
/// accompanying kReset wipes any divergent local history.
class StandbyReplication {
 public:
  struct Options {
    std::string wal_dir;      ///< replica segment directory
    std::string standby_id;   ///< name reported to the primary
    std::string primary_host = "127.0.0.1";
    uint16_t primary_port = 0;
    ReplicationOptions replication;
    /// Per-pull RPC deadline, seconds; must exceed pull_long_poll_s.
    double pull_deadline_s = 2.0;
    uint64_t jitter_seed = 0;
  };

  struct StatusView {
    uint64_t epoch = 0;
    uint64_t applied_lsn = 0;
    /// The primary's durable watermark as of the last good pull.
    uint64_t primary_durable_lsn = 0;
    /// max(primary_durable_lsn - applied_lsn, 0) — records behind.
    uint64_t lag = 0;
    bool connected = false;
    uint64_t pulls = 0;
    uint64_t stale_primary_refusals = 0;
    std::string last_error;
  };

  /// Opens the replica WAL dir (recovering any torn tail), loads the
  /// persisted epoch, and starts the pull thread.
  static Result<std::unique_ptr<StandbyReplication>> Start(Options options);

  ~StandbyReplication();

  StandbyReplication(const StandbyReplication&) = delete;
  StandbyReplication& operator=(const StandbyReplication&) = delete;

  StatusView status() const;
  const std::string& wal_dir() const { return options_.wal_dir; }

  /// Stops the pull thread and returns the final applied watermark. The
  /// caller (promotion) then reopens the directory as a WriteAheadLog —
  /// the replica segments ARE a valid log — and serves as primary.
  uint64_t StopForPromotion();

 private:
  explicit StandbyReplication(Options options)
      : options_(std::move(options)) {}

  void PullLoop();
  /// Sleeps up to `seconds` but wakes immediately on Stop.
  void InterruptibleSleep(double seconds);
  void Stop();

  const Options options_;
  std::unique_ptr<net::RpcClient> client_;
  std::thread puller_;

  mutable std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::unique_ptr<WalReplicaApplier> applier_;
  uint64_t epoch_ = 0;
  uint64_t primary_durable_lsn_ = 0;
  bool connected_ = false;
  uint64_t pulls_ = 0;
  uint64_t stale_primary_refusals_ = 0;
  std::string last_error_;
};

}  // namespace kamel::replication

#endif  // KAMEL_REPLICATION_STANDBY_H_
