#ifndef KAMEL_REPLICATION_REPLICATION_H_
#define KAMEL_REPLICATION_REPLICATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/wal.h"
#include "net/rpc.h"

namespace kamel::replication {

/// What a worker is, replication-wise. The router's prober reads this
/// from kMethodRole and gates routing on it: reads go to kPrimary and
/// caught-up kStandby replicas, never kCatchingUp or kFenced; writes
/// (Submit) go only to kPrimary.
enum class ReplicaRole : uint8_t {
  kNone = 0,        ///< replication not configured (plain PR-6 worker)
  kPrimary = 1,     ///< owns the ingest WAL, serves Submit, ships chunks
  kStandby = 2,     ///< warm replica within the configured lag bound
  kCatchingUp = 3,  ///< replica replaying history; lag above the bound
  kFenced = 4,      ///< ex-primary that saw a higher epoch; refuses writes
};

const char* ToString(ReplicaRole role);

/// Tuning for the primary→standby WAL stream and the semi-sync ack.
struct ReplicationOptions {
  /// Max bytes of WAL shipped per pull response.
  uint64_t pull_chunk_bytes = 256 * 1024;
  /// Standby sleep between pulls once caught up (the long poll below
  /// usually answers sooner).
  double pull_poll_interval_s = 0.05;
  /// How long a caught-up pull parks server-side waiting for new data
  /// before answering "empty" — turns polling into near-push shipping.
  double pull_long_poll_s = 0.2;
  /// A standby whose applied watermark trails the primary's durable LSN
  /// by more than this reports kCatchingUp and is excluded from reads.
  uint64_t max_lag_records = 64;
  /// How long Submit waits for standby acks before refusing with
  /// kUnavailable (the submit is durable locally either way; the refusal
  /// tells the client replication cover is gone).
  double ack_timeout_s = 2.0;
  /// Standbys that must have acked a record before its Submit returns.
  /// 0 = asynchronous replication (ack on local fsync alone).
  int min_sync_standbys = 0;
};

/// WAL-pull RPC, served by primaries. Defined here rather than in
/// shard/wire.h because the standby side links replication without the
/// shard layer. Ids continue the sequence from shard/wire.h (1..4).
inline constexpr net::MethodId kMethodWalPull = 5;

/// The fencing epoch, persisted as a tiny sidecar file (`EPOCH`) next to
/// the WAL segments via the same atomic tmp+fsync+rename discipline as
/// snapshots. Monotonic: every promotion bumps it, and every pull frame
/// carries it, so a resurrected old primary is refused by anyone who has
/// seen the newer epoch. LoadEpoch returns 0 when no file exists yet.
Result<uint64_t> LoadEpoch(const std::string& dir);
Status StoreEpoch(const std::string& dir, uint64_t epoch);

/// kMethodWalPull request: the standby names itself, proves its epoch,
/// and states its local stream position. `applied_lsn` doubles as the
/// replication ack the primary's semi-sync Submit waits on.
struct PullRequest {
  std::string standby_id;
  uint64_t epoch = 0;
  uint64_t applied_lsn = 0;
  uint64_t segment_base = 0;
  uint64_t offset = 0;
  uint64_t max_bytes = 0;
};

/// kMethodWalPull response: the primary's epoch plus one chunk of the
/// stream (data / rotate / truncate / reset — see WalShipChunk).
struct PullResponse {
  uint64_t epoch = 0;
  WalShipChunk chunk;
};

std::vector<uint8_t> EncodePullRequest(const PullRequest& request);
Result<PullRequest> DecodePullRequest(const std::vector<uint8_t>& body);

std::vector<uint8_t> EncodePullResponse(const PullResponse& response);
Result<PullResponse> DecodePullResponse(const std::vector<uint8_t>& body);

}  // namespace kamel::replication

#endif  // KAMEL_REPLICATION_REPLICATION_H_
