#include "replication/replication.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/binary_io.h"
#include "common/io_env.h"

namespace kamel::replication {

const char* ToString(ReplicaRole role) {
  switch (role) {
    case ReplicaRole::kNone:
      return "NONE";
    case ReplicaRole::kPrimary:
      return "PRIMARY";
    case ReplicaRole::kStandby:
      return "STANDBY";
    case ReplicaRole::kCatchingUp:
      return "CATCHING_UP";
    case ReplicaRole::kFenced:
      return "FENCED";
  }
  return "UNKNOWN";
}

namespace {
constexpr char kEpochFile[] = "EPOCH";
constexpr uint32_t kEpochMagic = 0x4B4D4550;  // "KMEP"
}  // namespace

Result<uint64_t> LoadEpoch(const std::string& dir) {
  const std::string path = dir + "/" + kEpochFile;
  if (::access(path.c_str(), F_OK) != 0) return 0;
  KAMEL_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                         io::ReadFile(path, "epoch.io.read"));
  BinaryReader reader(std::move(data));
  KAMEL_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kEpochMagic) {
    return Status::IOError("epoch file " + path + " has a bad magic");
  }
  KAMEL_ASSIGN_OR_RETURN(uint64_t epoch, reader.ReadU64());
  return epoch;
}

Status StoreEpoch(const std::string& dir, uint64_t epoch) {
  BinaryWriter writer;
  writer.WriteU32(kEpochMagic);
  writer.WriteU64(epoch);
  const std::string path = dir + "/" + kEpochFile;
  const std::string tmp = path + ".tmp";
  KAMEL_ASSIGN_OR_RETURN(
      const int fd,
      io::OpenFd(tmp, O_WRONLY | O_CREAT | O_TRUNC, 0644, "epoch.io.open"));
  Status status = io::WriteAll(fd, writer.buffer().data(),
                               writer.buffer().size(), tmp, "epoch.io.write");
  if (status.ok()) status = io::Fsync(fd, tmp, "epoch.io.fsync");
  ::close(fd);
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  // Rename-over is what makes a crash leave either the old epoch or the
  // new one, never a torn file — fencing depends on that.
  KAMEL_RETURN_NOT_OK(io::Rename(tmp, path, "epoch.io.rename"));
  return io::FsyncDir(dir, "epoch.io.dirsync");
}

namespace {

void WriteChunk(BinaryWriter* writer, const WalShipChunk& chunk) {
  writer->WriteU8(static_cast<uint8_t>(chunk.kind));
  writer->WriteU64(chunk.segment_base);
  writer->WriteU64(chunk.offset);
  writer->WriteU64(chunk.next_segment_base);
  writer->WriteU64(chunk.truncate_to);
  writer->WriteU64(chunk.durable_lsn);
  writer->WriteBytes(chunk.bytes);
}

Result<WalShipChunk> ReadChunk(BinaryReader* reader) {
  WalShipChunk chunk;
  KAMEL_ASSIGN_OR_RETURN(uint8_t kind, reader->ReadU8());
  if (kind < static_cast<uint8_t>(WalShipChunk::Kind::kData) ||
      kind > static_cast<uint8_t>(WalShipChunk::Kind::kReset)) {
    return Status::IOError("replication wire: unknown chunk kind " +
                           std::to_string(kind));
  }
  chunk.kind = static_cast<WalShipChunk::Kind>(kind);
  KAMEL_ASSIGN_OR_RETURN(chunk.segment_base, reader->ReadU64());
  KAMEL_ASSIGN_OR_RETURN(chunk.offset, reader->ReadU64());
  KAMEL_ASSIGN_OR_RETURN(chunk.next_segment_base, reader->ReadU64());
  KAMEL_ASSIGN_OR_RETURN(chunk.truncate_to, reader->ReadU64());
  KAMEL_ASSIGN_OR_RETURN(chunk.durable_lsn, reader->ReadU64());
  KAMEL_ASSIGN_OR_RETURN(chunk.bytes, reader->ReadBytes());
  return chunk;
}

}  // namespace

std::vector<uint8_t> EncodePullRequest(const PullRequest& request) {
  BinaryWriter writer;
  writer.WriteString(request.standby_id);
  writer.WriteU64(request.epoch);
  writer.WriteU64(request.applied_lsn);
  writer.WriteU64(request.segment_base);
  writer.WriteU64(request.offset);
  writer.WriteU64(request.max_bytes);
  return writer.buffer();
}

Result<PullRequest> DecodePullRequest(const std::vector<uint8_t>& body) {
  BinaryReader reader(body);
  PullRequest request;
  KAMEL_ASSIGN_OR_RETURN(request.standby_id, reader.ReadString());
  KAMEL_ASSIGN_OR_RETURN(request.epoch, reader.ReadU64());
  KAMEL_ASSIGN_OR_RETURN(request.applied_lsn, reader.ReadU64());
  KAMEL_ASSIGN_OR_RETURN(request.segment_base, reader.ReadU64());
  KAMEL_ASSIGN_OR_RETURN(request.offset, reader.ReadU64());
  KAMEL_ASSIGN_OR_RETURN(request.max_bytes, reader.ReadU64());
  return request;
}

std::vector<uint8_t> EncodePullResponse(const PullResponse& response) {
  BinaryWriter writer;
  writer.WriteU64(response.epoch);
  WriteChunk(&writer, response.chunk);
  return writer.buffer();
}

Result<PullResponse> DecodePullResponse(const std::vector<uint8_t>& body) {
  BinaryReader reader(body);
  PullResponse response;
  KAMEL_ASSIGN_OR_RETURN(response.epoch, reader.ReadU64());
  KAMEL_ASSIGN_OR_RETURN(response.chunk, ReadChunk(&reader));
  return response;
}

}  // namespace kamel::replication
