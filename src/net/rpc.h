#ifndef KAMEL_NET_RPC_H_
#define KAMEL_NET_RPC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/backoff.h"
#include "common/result.h"
#include "net/frame.h"

namespace kamel::net {

/// Method selector carried in every request frame. Ids are allocated by
/// the application (src/shard/wire.h defines the worker protocol).
using MethodId = uint32_t;

/// Request payload: `u32 method | body bytes`.
/// Response payload: `u32 status_code | u32 message_length | message |
/// body bytes` — a handler error travels as a first-class Status, so the
/// caller can tell "the shard shed" (kResourceExhausted) from "the wire
/// broke" (kUnavailable / kIOError / kDeadlineExceeded).
///
/// One connection carries one call at a time (synchronous
/// request/response); concurrency comes from multiple connections.
class RpcServer {
 public:
  using Handler = std::function<Result<std::vector<uint8_t>>(
      const std::vector<uint8_t>& body)>;

  explicit RpcServer(std::string host = "127.0.0.1");
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Registers the handler for `method`; must precede Start().
  void Register(MethodId method, Handler handler);

  /// Binds (port 0 picks a free port) and spawns the accept loop.
  Status Start(uint16_t port);

  /// Stops accepting, closes the listener, and joins every connection
  /// thread. Idempotent; also run by the destructor.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void Serve(Socket conn);

  const std::string host_;
  std::unordered_map<MethodId, Handler> handlers_;
  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  // serializes Stop() so joins never race
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
};

/// Client-side connection tuning.
struct RpcClientOptions {
  /// Budget for one connection attempt, seconds.
  double connect_timeout_s = 1.0;
  /// Default per-call deadline, seconds (Call's argument overrides).
  double call_deadline_s = 2.0;
  /// Retry schedule for establishing a connection (jittered exponential
  /// via the shared common/backoff policy). Calls themselves are NOT
  /// retried here — idempotency is the caller's knowledge, so retry
  /// loops over Call live in the router.
  RetryPolicy connect_retry{.max_retries = 2,
                            .base_backoff_ms = 5.0,
                            .max_backoff_ms = 200.0};
  /// Seed for the connect-retry jitter stream.
  uint64_t jitter_seed = 0;
};

/// One synchronous RPC connection. Call() lazily (re)connects with
/// jittered-backoff retries, sends the request frame, and waits for the
/// response frame within the per-call deadline. Any transport error
/// poisons the connection — the next Call() reconnects from scratch, so
/// a response to an abandoned (hedged / timed-out) call can never be
/// mistaken for the reply to a new one.
///
/// Thread model: calls are serialized on an internal mutex (one frame in
/// flight per connection). For parallel calls, use parallel clients.
class RpcClient {
 public:
  RpcClient(std::string host, uint16_t port, RpcClientOptions options = {});

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Calls `method` with `body`; `deadline_s` <= 0 uses the option
  /// default. kDeadlineExceeded when the budget elapses first;
  /// kUnavailable when the peer is unreachable or hung up; the handler's
  /// own Status (e.g. kResourceExhausted) when the call reached the
  /// server and was refused there.
  Result<std::vector<uint8_t>> Call(MethodId method,
                                    const std::vector<uint8_t>& body,
                                    double deadline_s = 0.0);

  /// Drops the current connection (the next Call reconnects).
  void Disconnect();

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  Status EnsureConnected(double deadline_s);

  const std::string host_;
  const uint16_t port_;
  const RpcClientOptions options_;
  std::mutex mu_;
  Socket conn_;
};

}  // namespace kamel::net

#endif  // KAMEL_NET_RPC_H_
