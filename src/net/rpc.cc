#include "net/rpc.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace kamel::net {

namespace {

/// How long a blocked server read waits before re-checking the stop flag.
constexpr double kServeSliceSeconds = 0.2;
/// Budget for writing one response frame back to a live client.
constexpr double kResponseSendSeconds = 5.0;

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t ReadU32At(const std::vector<uint8_t>& data, size_t offset) {
  return static_cast<uint32_t>(data[offset]) |
         (static_cast<uint32_t>(data[offset + 1]) << 8) |
         (static_cast<uint32_t>(data[offset + 2]) << 16) |
         (static_cast<uint32_t>(data[offset + 3]) << 24);
}

std::vector<uint8_t> EncodeResponse(const Status& status,
                                    const std::vector<uint8_t>& body) {
  std::vector<uint8_t> out;
  out.reserve(8 + status.message().size() + body.size());
  AppendU32(&out, static_cast<uint32_t>(status.code()));
  AppendU32(&out, static_cast<uint32_t>(status.message().size()));
  out.insert(out.end(), status.message().begin(), status.message().end());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Result<std::vector<uint8_t>> DecodeResponse(std::vector<uint8_t> payload) {
  if (payload.size() < 8) {
    return Status::IOError("rpc: short response payload");
  }
  const uint32_t code = ReadU32At(payload, 0);
  const uint32_t msg_len = ReadU32At(payload, 4);
  if (payload.size() < 8 + static_cast<size_t>(msg_len)) {
    return Status::IOError("rpc: truncated response message");
  }
  if (code != static_cast<uint32_t>(StatusCode::kOk)) {
    return Status(static_cast<StatusCode>(code),
                  std::string(payload.begin() + 8,
                              payload.begin() + 8 + msg_len));
  }
  return std::vector<uint8_t>(payload.begin() + 8 + msg_len, payload.end());
}

}  // namespace

// ---------------------------------------------------------------------------
// RpcServer
// ---------------------------------------------------------------------------

RpcServer::RpcServer(std::string host) : host_(std::move(host)) {}

RpcServer::~RpcServer() { Stop(); }

void RpcServer::Register(MethodId method, Handler handler) {
  handlers_[method] = std::move(handler);
}

Status RpcServer::Start(uint16_t port) {
  KAMEL_ASSIGN_OR_RETURN(listener_, ListenTcp(host_, port, &port_));
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RpcServer::Stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> conn_lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
}

void RpcServer::AcceptLoop() {
  while (!stopping_.load()) {
    auto conn = Accept(listener_, NowSeconds() + kServeSliceSeconds);
    if (!conn.ok()) continue;  // timeout slice or transient error
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace_back(
        [this, socket = std::move(*conn)]() mutable {
          Serve(std::move(socket));
        });
  }
}

void RpcServer::Serve(Socket conn) {
  while (!stopping_.load()) {
    auto request = RecvFrame(conn, NowSeconds() + kServeSliceSeconds);
    if (!request.ok()) {
      if (request.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // idle slice: re-check the stop flag
      }
      return;  // peer hung up or the stream is corrupt
    }
    if (request->size() < 4) return;  // protocol violation
    const MethodId method = ReadU32At(*request, 0);
    const std::vector<uint8_t> body(request->begin() + 4, request->end());

    Status status;
    std::vector<uint8_t> response_body;
    const auto handler = handlers_.find(method);
    if (handler == handlers_.end()) {
      status = Status::Unimplemented("rpc: unknown method " +
                                     std::to_string(method));
    } else {
      auto result = handler->second(body);
      if (result.ok()) {
        response_body = std::move(*result);
      } else {
        status = result.status();
      }
    }
    if (!SendFrame(conn, EncodeResponse(status, response_body),
                   NowSeconds() + kResponseSendSeconds)
             .ok()) {
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// RpcClient
// ---------------------------------------------------------------------------

RpcClient::RpcClient(std::string host, uint16_t port,
                     RpcClientOptions options)
    : host_(std::move(host)), port_(port), options_(std::move(options)) {}

void RpcClient::Disconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  conn_.Close();
}

Status RpcClient::EnsureConnected(double deadline_s) {
  if (conn_.valid()) return Status::OK();
  // Connection attempts retry on the shared jittered-backoff policy, but
  // never past the caller's deadline: the policy's own deadline is set to
  // the remaining call budget so the retry loop exits in time.
  RetryPolicy policy = options_.connect_retry;
  policy.deadline_s = deadline_s - NowSeconds();
  if (policy.deadline_s <= 0.0) {
    return Status::DeadlineExceeded("rpc: no budget left to connect");
  }
  return RetryWithBackoff(policy, options_.jitter_seed, [&]() -> Status {
    const double attempt_deadline =
        std::min(deadline_s, NowSeconds() + options_.connect_timeout_s);
    auto socket = ConnectTcp(host_, port_, attempt_deadline);
    if (!socket.ok()) return socket.status();
    conn_ = std::move(*socket);
    return Status::OK();
  });
}

Result<std::vector<uint8_t>> RpcClient::Call(
    MethodId method, const std::vector<uint8_t>& body, double deadline_s) {
  const double deadline =
      NowSeconds() +
      (deadline_s > 0.0 ? deadline_s : options_.call_deadline_s);
  std::lock_guard<std::mutex> lock(mu_);
  KAMEL_RETURN_NOT_OK(EnsureConnected(deadline));

  std::vector<uint8_t> request;
  request.reserve(4 + body.size());
  AppendU32(&request, method);
  request.insert(request.end(), body.begin(), body.end());

  const Status sent = SendFrame(conn_, request, deadline);
  if (!sent.ok()) {
    conn_.Close();
    return sent;
  }
  auto response = RecvFrame(conn_, deadline);
  if (!response.ok()) {
    // Any receive failure poisons the connection: a late response to
    // this call must never be read as the reply to the next one.
    conn_.Close();
    return response.status();
  }
  return DecodeResponse(std::move(*response));
}

}  // namespace kamel::net
