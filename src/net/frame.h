#ifndef KAMEL_NET_FRAME_H_
#define KAMEL_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace kamel::net {

/// Wire frame: `magic u32 | payload_length u32 | crc32c u32 | payload`,
/// little-endian — the same self-describing CRC-framed shape the snapshot
/// format uses (common/binary_io), flattened to one frame per message.
/// A receiver detects truncation (short read before `payload_length`
/// bytes arrive -> deadline), corruption (CRC mismatch), and protocol
/// confusion (bad magic) independently, so no network fault is ever
/// mistaken for a well-formed message.
inline constexpr uint32_t kFrameMagic = 0x4B4D5246u;  // "KMRF"
inline constexpr size_t kFrameHeaderBytes = 12;
/// Upper bound on one frame's payload; a length field beyond it is
/// treated as corruption rather than an allocation request.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;
/// Sleep injected by the `net.recv.delay` failpoint, seconds — long
/// enough to trip a hedging budget, short enough to keep tests fast.
inline constexpr double kInjectedDelaySeconds = 0.1;

/// Steady-clock seconds since an arbitrary epoch; deadlines below are
/// absolute values on this clock (<= 0 means "no deadline").
double NowSeconds();

/// Movable RAII wrapper over one socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Connects to host:port (TCP, non-blocking connect bounded by
/// `deadline_s` on the NowSeconds clock). kDeadlineExceeded when the
/// deadline elapses first, kUnavailable when the peer refuses.
/// Failpoint `net.connect` refuses before any syscall.
Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                          double deadline_s);

/// Binds and listens on host:port; port 0 picks a free port. The bound
/// port is reported through `bound_port` (may be null). SO_REUSEADDR is
/// set so a restarted worker can re-bind its advertised port at once.
Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         uint16_t* bound_port);

/// Accepts one connection, waiting until `deadline_s` (<= 0: wait
/// "forever" in 100ms slices — callers poll a stop flag between calls).
/// kDeadlineExceeded when the deadline elapses with nothing to accept.
Result<Socket> Accept(const Socket& listener, double deadline_s);

/// Writes one frame around `payload`, finishing before `deadline_s`.
/// Failpoints: `net.send` fails without writing (the connection should
/// be considered broken), `net.send.drop` swallows the frame but reports
/// success (the peer never sees it — drives receiver timeouts), and
/// `net.frame.truncate` writes a frame whose header promises the full
/// payload but carries only half of it (a torn write; the receiver
/// stalls into its deadline and the connection is poisoned).
Status SendFrame(const Socket& socket, const std::vector<uint8_t>& payload,
                 double deadline_s);

/// Reads one frame, finishing before `deadline_s`. kDeadlineExceeded on
/// timeout, kUnavailable when the peer closed cleanly between frames,
/// kIOError on bad magic / insane length / CRC mismatch (the connection
/// can no longer be trusted). Failpoint `net.recv.delay` sleeps
/// kInjectedDelaySeconds before reading (drives hedging).
Result<std::vector<uint8_t>> RecvFrame(const Socket& socket,
                                       double deadline_s);

}  // namespace kamel::net

#endif  // KAMEL_NET_FRAME_H_
