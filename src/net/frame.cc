#include "net/frame.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "common/crc32c.h"
#include "common/fault_injection.h"

namespace kamel::net {

namespace {

void PutU32(uint8_t* out, uint32_t v) {
  out[0] = static_cast<uint8_t>(v);
  out[1] = static_cast<uint8_t>(v >> 8);
  out[2] = static_cast<uint8_t>(v >> 16);
  out[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetU32(const uint8_t* in) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

/// Remaining poll budget in whole milliseconds (>= 1 while any budget is
/// left, so a sub-millisecond remainder still gets one poll).
int PollTimeoutMs(double deadline_s) {
  if (deadline_s <= 0.0) return 100;  // no deadline: wait in slices
  const double remaining = deadline_s - NowSeconds();
  if (remaining <= 0.0) return 0;
  const double ms = remaining * 1000.0;
  return ms < 1.0 ? 1 : (ms > 100.0 ? 100 : static_cast<int>(ms));
}

bool DeadlineExpired(double deadline_s) {
  return deadline_s > 0.0 && NowSeconds() >= deadline_s;
}

/// Waits until `fd` is ready for `events` or the deadline elapses.
Status WaitReady(int fd, short events, double deadline_s, const char* what) {
  for (;;) {
    if (DeadlineExpired(deadline_s)) {
      return Status::DeadlineExceeded(std::string("net: ") + what +
                                      " deadline exceeded");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, PollTimeoutMs(deadline_s));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("net: poll: ") + strerror(errno));
    }
    if (rc > 0) return Status::OK();
    if (deadline_s <= 0.0) continue;  // sliced "forever" wait
  }
}

Status WriteAll(const Socket& socket, const uint8_t* data, size_t size,
                double deadline_s) {
  size_t sent = 0;
  while (sent < size) {
    KAMEL_RETURN_NOT_OK(WaitReady(socket.fd(), POLLOUT, deadline_s, "send"));
    const ssize_t n =
        send(socket.fd(), data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::Unavailable(std::string("net: send: ") +
                                 strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(const Socket& socket, uint8_t* data, size_t size,
               double deadline_s) {
  size_t received = 0;
  while (received < size) {
    KAMEL_RETURN_NOT_OK(WaitReady(socket.fd(), POLLIN, deadline_s, "recv"));
    const ssize_t n = recv(socket.fd(), data + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::Unavailable(std::string("net: recv: ") +
                                 strerror(errno));
    }
    if (n == 0) {
      return Status::Unavailable("net: connection closed by peer");
    }
    received += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("net: fcntl: ") + strerror(errno));
  }
  return Status::OK();
}

Result<struct sockaddr_in> ResolveV4(const std::string& host,
                                     uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("net: not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                          double deadline_s) {
  // Injected refusals surface exactly like a dead peer, whatever code the
  // failpoint was armed with — callers must not tell them apart.
  if (!FaultInjector::Instance().Hit("net.connect").ok()) {
    return Status::Unavailable("net: connect to " + host + ":" +
                               std::to_string(port) + " refused (injected)");
  }
  KAMEL_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveV4(host, port));
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) {
    return Status::IOError(std::string("net: socket: ") + strerror(errno));
  }
  KAMEL_RETURN_NOT_OK(SetNonBlocking(socket.fd()));
  const int one = 1;
  setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (connect(socket.fd(), reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) == 0) {
    return socket;
  }
  if (errno != EINPROGRESS) {
    return Status::Unavailable(std::string("net: connect ") + host + ":" +
                               std::to_string(port) + ": " +
                               strerror(errno));
  }
  KAMEL_RETURN_NOT_OK(
      WaitReady(socket.fd(), POLLOUT, deadline_s, "connect"));
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
      err != 0) {
    return Status::Unavailable(std::string("net: connect ") + host + ":" +
                               std::to_string(port) + ": " +
                               strerror(err != 0 ? err : errno));
  }
  return socket;
}

Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         uint16_t* bound_port) {
  KAMEL_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveV4(host, port));
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) {
    return Status::IOError(std::string("net: socket: ") + strerror(errno));
  }
  const int one = 1;
  setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(socket.fd(), reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    return Status::Unavailable(std::string("net: bind ") + host + ":" +
                               std::to_string(port) + ": " +
                               strerror(errno));
  }
  if (listen(socket.fd(), 64) < 0) {
    return Status::IOError(std::string("net: listen: ") + strerror(errno));
  }
  KAMEL_RETURN_NOT_OK(SetNonBlocking(socket.fd()));
  if (bound_port != nullptr) {
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (getsockname(socket.fd(), reinterpret_cast<struct sockaddr*>(&bound),
                    &len) < 0) {
      return Status::IOError(std::string("net: getsockname: ") +
                             strerror(errno));
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return socket;
}

Result<Socket> Accept(const Socket& listener, double deadline_s) {
  for (;;) {
    KAMEL_RETURN_NOT_OK(
        WaitReady(listener.fd(), POLLIN, deadline_s, "accept"));
    const int fd = accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      KAMEL_RETURN_NOT_OK(SetNonBlocking(conn.fd()));
      const int one = 1;
      setsockopt(conn.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return conn;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::IOError(std::string("net: accept: ") + strerror(errno));
  }
}

Status SendFrame(const Socket& socket, const std::vector<uint8_t>& payload,
                 double deadline_s) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("net: frame payload too large");
  }
  KAMEL_RETURN_NOT_OK(FaultInjector::Instance().Hit("net.send"));
  if (!FaultInjector::Instance().Hit("net.send.drop").ok()) {
    return Status::OK();  // injected drop: the peer never sees the frame
  }
  const bool truncate =
      !FaultInjector::Instance().Hit("net.frame.truncate").ok();
  uint8_t header[kFrameHeaderBytes];
  PutU32(header, kFrameMagic);
  PutU32(header + 4, static_cast<uint32_t>(payload.size()));
  PutU32(header + 8,
         payload.empty() ? 0 : Crc32c(payload.data(), payload.size()));
  KAMEL_RETURN_NOT_OK(
      WriteAll(socket, header, kFrameHeaderBytes, deadline_s));
  const size_t body = truncate ? payload.size() / 2 : payload.size();
  if (body > 0) {
    KAMEL_RETURN_NOT_OK(WriteAll(socket, payload.data(), body, deadline_s));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> RecvFrame(const Socket& socket,
                                       double deadline_s) {
  if (!FaultInjector::Instance().Hit("net.recv.delay").ok()) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kInjectedDelaySeconds));
  }
  uint8_t header[kFrameHeaderBytes];
  KAMEL_RETURN_NOT_OK(
      ReadAll(socket, header, kFrameHeaderBytes, deadline_s));
  if (GetU32(header) != kFrameMagic) {
    return Status::IOError("net: bad frame magic");
  }
  const uint32_t length = GetU32(header + 4);
  const uint32_t stored_crc = GetU32(header + 8);
  if (length > kMaxFramePayload) {
    return Status::IOError("net: frame length " + std::to_string(length) +
                           " exceeds the protocol bound");
  }
  std::vector<uint8_t> payload(length);
  if (length > 0) {
    KAMEL_RETURN_NOT_OK(
        ReadAll(socket, payload.data(), length, deadline_s));
  }
  const uint32_t crc =
      payload.empty() ? 0 : Crc32c(payload.data(), payload.size());
  if (crc != stored_crc) {
    return Status::IOError("net: frame CRC mismatch");
  }
  return payload;
}

}  // namespace kamel::net
