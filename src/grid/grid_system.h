#ifndef KAMEL_GRID_GRID_SYSTEM_H_
#define KAMEL_GRID_GRID_SYSTEM_H_

#include <string>
#include <vector>

#include "geo/latlng.h"
#include "grid/cell_id.h"

namespace kamel {

/// Space tessellation used by the Tokenization module (Section 3).
///
/// A GridSystem partitions the local plane into non-overlapping congruent
/// cells; each cell id is a token. KAMEL ships a hexagonal grid (the
/// H3-style default, Section 3.1) and a square grid (the S2-style
/// alternative compared in Section 8.5). Implementations are immutable and
/// thread-compatible.
class GridSystem {
 public:
  virtual ~GridSystem() = default;

  /// Grid family name, e.g. "hex" or "square".
  virtual std::string name() const = 0;

  /// Cell containing `p`. Constant time (paper Section 3.1).
  virtual CellId CellOf(const Vec2& p) const = 0;

  /// Centroid of the cell in the local frame.
  virtual Vec2 Centroid(CellId id) const = 0;

  /// Ids of the cells sharing an edge with `id` (6 for hexes, 4 for
  /// squares), in a fixed deterministic order.
  virtual std::vector<CellId> EdgeNeighbors(CellId id) const = 0;

  /// Minimum number of edge-neighbor steps between two cells.
  virtual int GridDistance(CellId a, CellId b) const = 0;

  /// Cell area in square meters (identical for all cells).
  virtual double CellAreaM2() const = 0;

  /// Distance in meters between centroids of edge-adjacent cells. For the
  /// hexagonal grid this is the same for all 6 neighbors — the uniformity
  /// property the paper credits for better learnability (Section 3.1).
  virtual double NeighborSpacingMeters() const = 0;

  /// All cells whose grid distance from `center` is at most `k`
  /// (the filled disk, including `center` itself).
  std::vector<CellId> Disk(CellId center, int k) const;
};

}  // namespace kamel

#endif  // KAMEL_GRID_GRID_SYSTEM_H_
