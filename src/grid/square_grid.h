#ifndef KAMEL_GRID_SQUARE_GRID_H_
#define KAMEL_GRID_SQUARE_GRID_H_

#include <string>
#include <vector>

#include "grid/grid_system.h"

namespace kamel {

/// Square tessellation with cells of edge length E, the S2-style
/// alternative tokenization compared against hexagons in Section 8.5.
///
/// Neighbor properties are intentionally non-uniform (4 edge neighbors at
/// distance E, 4 corner neighbors at distance E*sqrt(2)) — this is exactly
/// the asymmetry the paper argues makes squares harder for BERT to learn.
class SquareGrid final : public GridSystem {
 public:
  /// Creates a grid with square edge `edge_meters`. Requires > 0.
  explicit SquareGrid(double edge_meters);

  /// Edge length that gives squares the same area as hexagons of edge
  /// `hex_edge_meters` — the paper's matched-coverage setting (75 m hexes
  /// vs ~120 m squares, Section 8.5).
  static double EdgeForEqualHexArea(double hex_edge_meters);

  std::string name() const override { return "square"; }
  CellId CellOf(const Vec2& p) const override;
  Vec2 Centroid(CellId id) const override;
  std::vector<CellId> EdgeNeighbors(CellId id) const override;
  int GridDistance(CellId a, CellId b) const override;
  double CellAreaM2() const override;
  double NeighborSpacingMeters() const override;

  double edge_meters() const { return edge_; }

 private:
  double edge_;
};

}  // namespace kamel

#endif  // KAMEL_GRID_SQUARE_GRID_H_
