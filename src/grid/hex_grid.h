#ifndef KAMEL_GRID_HEX_GRID_H_
#define KAMEL_GRID_HEX_GRID_H_

#include <string>
#include <vector>

#include "grid/grid_system.h"

namespace kamel {

/// Flat hexagonal tessellation with pointy-top hexagons of edge length H,
/// addressed by axial coordinates (q, r) packed into the CellId.
///
/// This is KAMEL's H3 substitute (see DESIGN.md): it keeps the three
/// properties the paper relies on — congruent non-overlapping hexes,
/// constant-time point<->cell conversion, and six edge neighbors all at the
/// same centroid distance sqrt(3)*H with equal shared-border length.
/// Unlike H3 it tessellates a local plane rather than the sphere, which is
/// exact at city scale where KAMEL operates.
class HexGrid final : public GridSystem {
 public:
  /// Creates a grid with hexagon edge length `edge_meters` (the paper's H;
  /// default 75 m, Section 8). Requires edge_meters > 0.
  explicit HexGrid(double edge_meters);

  std::string name() const override { return "hex"; }
  CellId CellOf(const Vec2& p) const override;
  Vec2 Centroid(CellId id) const override;
  std::vector<CellId> EdgeNeighbors(CellId id) const override;
  int GridDistance(CellId a, CellId b) const override;
  double CellAreaM2() const override;
  double NeighborSpacingMeters() const override;

  double edge_meters() const { return edge_; }

  /// The six vertices of a cell, counter-clockwise (for visualization and
  /// containment tests).
  std::vector<Vec2> CellBoundary(CellId id) const;

 private:
  double edge_;
};

}  // namespace kamel

#endif  // KAMEL_GRID_HEX_GRID_H_
