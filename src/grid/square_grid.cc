#include "grid/square_grid.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace kamel {

SquareGrid::SquareGrid(double edge_meters) : edge_(edge_meters) {
  KAMEL_CHECK(edge_ > 0.0, "square edge length must be positive");
}

double SquareGrid::EdgeForEqualHexArea(double hex_edge_meters) {
  // Hex area = 3*sqrt(3)/2 * H^2; set E^2 equal to it.
  return std::sqrt(3.0 * std::sqrt(3.0) / 2.0) * hex_edge_meters;
}

CellId SquareGrid::CellOf(const Vec2& p) const {
  const auto ix = static_cast<int32_t>(std::floor(p.x / edge_));
  const auto iy = static_cast<int32_t>(std::floor(p.y / edge_));
  return PackCellId(ix, iy);
}

Vec2 SquareGrid::Centroid(CellId id) const {
  const double ix = CellIdHigh(id);
  const double iy = CellIdLow(id);
  return {(ix + 0.5) * edge_, (iy + 0.5) * edge_};
}

std::vector<CellId> SquareGrid::EdgeNeighbors(CellId id) const {
  const int32_t ix = CellIdHigh(id);
  const int32_t iy = CellIdLow(id);
  return {
      PackCellId(ix + 1, iy),
      PackCellId(ix, iy + 1),
      PackCellId(ix - 1, iy),
      PackCellId(ix, iy - 1),
  };
}

int SquareGrid::GridDistance(CellId a, CellId b) const {
  // Edge-neighbor steps only (4-connectivity) -> Manhattan distance,
  // matching the BFS semantics of GridSystem::Disk.
  const int64_t dx = static_cast<int64_t>(CellIdHigh(a)) - CellIdHigh(b);
  const int64_t dy = static_cast<int64_t>(CellIdLow(a)) - CellIdLow(b);
  return static_cast<int>(std::llabs(dx) + std::llabs(dy));
}

double SquareGrid::CellAreaM2() const { return edge_ * edge_; }

double SquareGrid::NeighborSpacingMeters() const { return edge_; }

}  // namespace kamel
