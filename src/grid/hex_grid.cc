#include "grid/hex_grid.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace kamel {

namespace {

// Axial offsets of the six edge neighbors, counter-clockwise from east.
constexpr int kHexDirections[6][2] = {
    {1, 0}, {0, 1}, {-1, 1}, {-1, 0}, {0, -1}, {1, -1},
};

}  // namespace

HexGrid::HexGrid(double edge_meters) : edge_(edge_meters) {
  KAMEL_CHECK(edge_ > 0.0, "hex edge length must be positive");
}

CellId HexGrid::CellOf(const Vec2& p) const {
  // Pointy-top axial transform (Red Blob Games convention), then cube
  // rounding to the nearest hex center.
  const double qf = (std::sqrt(3.0) / 3.0 * p.x - 1.0 / 3.0 * p.y) / edge_;
  const double rf = (2.0 / 3.0 * p.y) / edge_;
  const double sf = -qf - rf;

  double q = std::round(qf);
  double r = std::round(rf);
  double s = std::round(sf);
  const double dq = std::fabs(q - qf);
  const double dr = std::fabs(r - rf);
  const double ds = std::fabs(s - sf);
  if (dq > dr && dq > ds) {
    q = -r - s;
  } else if (dr > ds) {
    r = -q - s;
  }
  return PackCellId(static_cast<int32_t>(q), static_cast<int32_t>(r));
}

Vec2 HexGrid::Centroid(CellId id) const {
  const double q = CellIdHigh(id);
  const double r = CellIdLow(id);
  return {edge_ * std::sqrt(3.0) * (q + r / 2.0), edge_ * 1.5 * r};
}

std::vector<CellId> HexGrid::EdgeNeighbors(CellId id) const {
  const int32_t q = CellIdHigh(id);
  const int32_t r = CellIdLow(id);
  std::vector<CellId> out;
  out.reserve(6);
  for (const auto& d : kHexDirections) {
    out.push_back(PackCellId(q + d[0], r + d[1]));
  }
  return out;
}

int HexGrid::GridDistance(CellId a, CellId b) const {
  const int64_t dq = static_cast<int64_t>(CellIdHigh(a)) - CellIdHigh(b);
  const int64_t dr = static_cast<int64_t>(CellIdLow(a)) - CellIdLow(b);
  return static_cast<int>(
      (std::llabs(dq) + std::llabs(dr) + std::llabs(dq + dr)) / 2);
}

double HexGrid::CellAreaM2() const {
  return 3.0 * std::sqrt(3.0) / 2.0 * edge_ * edge_;
}

double HexGrid::NeighborSpacingMeters() const {
  return std::sqrt(3.0) * edge_;
}

std::vector<Vec2> HexGrid::CellBoundary(CellId id) const {
  const Vec2 c = Centroid(id);
  std::vector<Vec2> verts;
  verts.reserve(6);
  for (int i = 0; i < 6; ++i) {
    // Pointy-top vertices start at 30 degrees.
    const double angle = M_PI / 180.0 * (60.0 * i + 30.0);
    verts.push_back({c.x + edge_ * std::cos(angle),
                     c.y + edge_ * std::sin(angle)});
  }
  return verts;
}

}  // namespace kamel
