#include "grid/grid_system.h"

#include <unordered_set>

namespace kamel {

std::vector<CellId> GridSystem::Disk(CellId center, int k) const {
  // Breadth-first expansion over edge neighbors; exact for any grid whose
  // GridDistance equals BFS hop count (true for both shipped grids).
  std::vector<CellId> frontier = {center};
  std::unordered_set<CellId> seen = {center};
  std::vector<CellId> out = {center};
  for (int step = 0; step < k; ++step) {
    std::vector<CellId> next;
    for (CellId id : frontier) {
      for (CellId nb : EdgeNeighbors(id)) {
        if (seen.insert(nb).second) {
          next.push_back(nb);
          out.push_back(nb);
        }
      }
    }
    frontier = std::move(next);
  }
  return out;
}

}  // namespace kamel
