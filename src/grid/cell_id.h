#ifndef KAMEL_GRID_CELL_ID_H_
#define KAMEL_GRID_CELL_ID_H_

#include <cstdint>

namespace kamel {

/// Opaque 64-bit identifier of one grid cell (a "token" in KAMEL's
/// language analogy). Cell ids are only meaningful relative to the
/// GridSystem that produced them.
using CellId = uint64_t;

/// Sentinel for "no cell".
inline constexpr CellId kInvalidCellId = ~static_cast<CellId>(0);

/// Packs two signed 32-bit grid coordinates into a CellId.
inline constexpr CellId PackCellId(int32_t a, int32_t b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}

/// First packed coordinate.
inline constexpr int32_t CellIdHigh(CellId id) {
  return static_cast<int32_t>(static_cast<uint32_t>(id >> 32));
}

/// Second packed coordinate.
inline constexpr int32_t CellIdLow(CellId id) {
  return static_cast<int32_t>(static_cast<uint32_t>(id & 0xFFFFFFFFULL));
}

}  // namespace kamel

#endif  // KAMEL_GRID_CELL_ID_H_
