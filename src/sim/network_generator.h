#ifndef KAMEL_SIM_NETWORK_GENERATOR_H_
#define KAMEL_SIM_NETWORK_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "sim/road_network.h"

namespace kamel {

/// Synthetic city parameters. The generated city mixes the road shapes the
/// paper's evaluation stresses (Figures 5 and 12): a straight grid,
/// diagonal avenues, a curved ring road, winding roads, and
/// grade-separated crossings (special roads cross grid streets without
/// shared nodes except at their marked junctions — natural overpasses).
struct NetworkGenConfig {
  double width_m = 3000.0;
  double height_m = 3000.0;
  /// Grid street spacing.
  double block_m = 350.0;
  /// Fraction of grid streets randomly removed (keeps connectivity).
  double drop_fraction = 0.12;
  /// Number of diagonal avenues.
  int num_diagonals = 2;
  /// Add a circular ring road (curved segments).
  bool ring_road = true;
  /// Number of sine-wave "winding" roads (strongly curved).
  int num_winding_roads = 1;
  /// Special roads connect to the grid every this many vertices.
  int junction_stride = 6;
  double grid_speed_mps = 13.9;      // ~50 km/h
  double avenue_speed_mps = 16.7;    // ~60 km/h
  uint64_t seed = 1;
};

/// Generates a connected synthetic road network per the config.
RoadNetwork GenerateNetwork(const NetworkGenConfig& config);

}  // namespace kamel

#endif  // KAMEL_SIM_NETWORK_GENERATOR_H_
