#ifndef KAMEL_SIM_ROUTE_PLANNER_H_
#define KAMEL_SIM_ROUTE_PLANNER_H_

#include <vector>

#include "sim/road_network.h"

namespace kamel {

/// Dijkstra shortest paths over a road network, by distance or travel
/// time. Used by the trip simulator (vehicles follow shortest routes) and
/// by the map-matching baseline's gap filling.
class RoutePlanner {
 public:
  enum class Cost { kDistance, kTravelTime };

  /// `network` is borrowed and must outlive the planner.
  explicit RoutePlanner(const RoadNetwork* network,
                        Cost cost = Cost::kDistance);

  /// Node sequence from `from` to `to` (inclusive); empty when
  /// unreachable.
  std::vector<int> ShortestPath(int from, int to) const;

  /// Shortest-path length in meters; +infinity when unreachable.
  double PathDistance(int from, int to) const;

  /// Costs from `from` to every node (full Dijkstra, no early exit).
  /// Callers that query many targets per source should cache this.
  std::vector<double> AllDistances(int from) const;

  /// Node positions of a path.
  std::vector<Vec2> PathPolyline(const std::vector<int>& path) const;

 private:
  struct SearchResult {
    std::vector<double> dist;
    std::vector<int> prev_edge;
  };
  SearchResult Search(int from, int to) const;

  const RoadNetwork* network_;
  Cost cost_;
};

}  // namespace kamel

#endif  // KAMEL_SIM_ROUTE_PLANNER_H_
