#ifndef KAMEL_SIM_ROAD_NETWORK_H_
#define KAMEL_SIM_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "geo/bbox.h"
#include "geo/latlng.h"

namespace kamel {

/// One directed road edge.
struct RoadEdge {
  int from = 0;
  int to = 0;
  double length = 0.0;     // meters
  double speed_mps = 13.9; // free-flow speed
};

/// A road network in the local metric frame: nodes with positions and
/// directed edges (every road is added in both directions).
///
/// This substrate exists only inside the simulator and the map-matching
/// reference baseline — KAMEL itself never sees it (the paper's whole
/// premise, Section 1).
class RoadNetwork {
 public:
  /// Adds a node; returns its id.
  int AddNode(const Vec2& position);

  /// Adds a bidirectional road between existing nodes.
  void AddRoad(int a, int b, double speed_mps);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  size_t num_edges() const { return edges_.size(); }

  const Vec2& NodePosition(int node) const {
    return nodes_[static_cast<size_t>(node)];
  }
  const std::vector<RoadEdge>& edges() const { return edges_; }

  /// Outgoing edge indices of a node.
  const std::vector<int>& OutEdges(int node) const {
    return adjacency_[static_cast<size_t>(node)];
  }
  const RoadEdge& Edge(int index) const {
    return edges_[static_cast<size_t>(index)];
  }

  /// Total directed edge length / 2 (roads counted once), meters.
  double TotalRoadLength() const;

  /// Bounding box of all nodes.
  BBox Bounds() const;

  /// Nearest node to `p` (linear scan; the generator-scale networks are
  /// small). Returns -1 on an empty network.
  int NearestNode(const Vec2& p) const;

  /// Distance from `p` to the closest point of any edge, plus that edge's
  /// index. Used by the map-matching baseline's emission model.
  struct EdgeProjection {
    int edge = -1;
    double distance = 0.0;
    Vec2 point;      // closest point on the edge
    double offset = 0.0;  // meters from edge start
  };
  EdgeProjection ProjectToNetwork(const Vec2& p) const;

 private:
  std::vector<Vec2> nodes_;
  std::vector<RoadEdge> edges_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace kamel

#endif  // KAMEL_SIM_ROAD_NETWORK_H_
