#include "sim/network_generator.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"

namespace kamel {

namespace {

// True when the undirected edge list connects all nodes.
bool IsConnected(int num_nodes, const std::vector<std::pair<int, int>>& edges) {
  if (num_nodes == 0) return true;
  std::vector<std::vector<int>> adj(static_cast<size_t>(num_nodes));
  for (const auto& [a, b] : edges) {
    adj[static_cast<size_t>(a)].push_back(b);
    adj[static_cast<size_t>(b)].push_back(a);
  }
  std::vector<bool> seen(static_cast<size_t>(num_nodes), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int count = 1;
  while (!stack.empty()) {
    const int n = stack.back();
    stack.pop_back();
    for (int m : adj[static_cast<size_t>(n)]) {
      if (!seen[static_cast<size_t>(m)]) {
        seen[static_cast<size_t>(m)] = true;
        ++count;
        stack.push_back(m);
      }
    }
  }
  return count == num_nodes;
}

// Nearest node among ids [0, limit).
int NearestNodeBelow(const RoadNetwork& net, const Vec2& p, int limit) {
  int best = -1;
  double best_d2 = 1e300;
  for (int i = 0; i < limit; ++i) {
    const double d2 = (net.NodePosition(i) - p).SquaredNorm();
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

// Adds a polyline road of `verts` at `speed`, connecting every
// `junction_stride`-th vertex (and both ends) to the nearest grid node.
// Crossings between the polyline and grid streets share no node —
// they behave as overpasses (Figure 5d).
void AddSpecialRoad(RoadNetwork* net, const std::vector<Vec2>& verts,
                    double speed, double connector_speed, int grid_nodes,
                    int junction_stride) {
  if (verts.size() < 2) return;
  std::vector<int> ids;
  ids.reserve(verts.size());
  for (const Vec2& v : verts) ids.push_back(net->AddNode(v));
  for (size_t k = 1; k < ids.size(); ++k) {
    net->AddRoad(ids[k - 1], ids[k], speed);
  }
  for (size_t k = 0; k < ids.size(); ++k) {
    const bool is_junction = k % static_cast<size_t>(junction_stride) == 0 ||
                             k + 1 == ids.size();
    if (!is_junction) continue;
    const int grid = NearestNodeBelow(*net, verts[k], grid_nodes);
    if (grid >= 0 && Distance(net->NodePosition(grid), verts[k]) > 1.0) {
      net->AddRoad(ids[k], grid, connector_speed);
    }
  }
}

}  // namespace

RoadNetwork GenerateNetwork(const NetworkGenConfig& config) {
  KAMEL_CHECK(config.block_m > 0.0 && config.width_m > 0.0 &&
                  config.height_m > 0.0,
              "network dimensions must be positive");
  Rng rng(config.seed);

  const int nx = std::max(2, static_cast<int>(
                                 std::round(config.width_m / config.block_m)));
  const int ny = std::max(2, static_cast<int>(std::round(
                                 config.height_m / config.block_m)));
  const double dx = config.width_m / nx;
  const double dy = config.height_m / ny;

  // Grid nodes and candidate streets.
  const int grid_nodes = (nx + 1) * (ny + 1);
  auto node_id = [nx](int i, int j) { return j * (nx + 1) + i; };
  std::vector<std::pair<int, int>> streets;
  for (int j = 0; j <= ny; ++j) {
    for (int i = 0; i <= nx; ++i) {
      if (i < nx) streets.push_back({node_id(i, j), node_id(i + 1, j)});
      if (j < ny) streets.push_back({node_id(i, j), node_id(i, j + 1)});
    }
  }

  // Randomly remove streets while preserving connectivity, making the
  // city irregular the way real grids are.
  const int to_drop =
      static_cast<int>(config.drop_fraction * streets.size());
  rng.Shuffle(&streets);
  std::vector<std::pair<int, int>> kept = streets;
  int dropped = 0;
  for (size_t i = 0; i < streets.size() && dropped < to_drop; ++i) {
    std::vector<std::pair<int, int>> attempt = kept;
    const auto target = streets[i];
    std::erase(attempt, target);
    if (IsConnected(grid_nodes, attempt)) {
      kept = std::move(attempt);
      ++dropped;
    }
  }

  RoadNetwork net;
  for (int j = 0; j <= ny; ++j) {
    for (int i = 0; i <= nx; ++i) {
      net.AddNode({i * dx, j * dy});
    }
  }
  for (const auto& [a, b] : kept) {
    net.AddRoad(a, b, config.grid_speed_mps);
  }

  // Diagonal avenues corner-to-corner, offset per index.
  for (int d = 0; d < config.num_diagonals; ++d) {
    const double offset =
        config.width_m * 0.25 * (d - (config.num_diagonals - 1) / 2.0);
    std::vector<Vec2> verts;
    const int steps = static_cast<int>(
        std::hypot(config.width_m, config.height_m) / 60.0);
    for (int k = 0; k <= steps; ++k) {
      const double t = static_cast<double>(k) / steps;
      Vec2 v{t * config.width_m + offset, t * config.height_m};
      if (v.x < 0.0 || v.x > config.width_m) continue;
      verts.push_back(v);
    }
    AddSpecialRoad(&net, verts, config.avenue_speed_mps,
                   config.grid_speed_mps, grid_nodes,
                   config.junction_stride);
  }

  // Curved ring road.
  if (config.ring_road) {
    const Vec2 center{config.width_m / 2.0, config.height_m / 2.0};
    const double radius =
        0.35 * std::min(config.width_m, config.height_m);
    std::vector<Vec2> verts;
    const int steps = 64;
    for (int k = 0; k <= steps; ++k) {
      const double a = 2.0 * M_PI * k / steps;
      verts.push_back(
          {center.x + radius * std::cos(a), center.y + radius * std::sin(a)});
    }
    AddSpecialRoad(&net, verts, config.avenue_speed_mps,
                   config.grid_speed_mps, grid_nodes,
                   config.junction_stride);
  }

  // Winding (sine) roads: strongly curved segments for Figure 12-II.
  for (int w = 0; w < config.num_winding_roads; ++w) {
    const double base_y =
        config.height_m * (0.25 + 0.5 * (w + 1.0) /
                                      (config.num_winding_roads + 1.0));
    const double amplitude = config.height_m * 0.08;
    const double wavelength = config.width_m / 3.0;
    std::vector<Vec2> verts;
    const int steps = static_cast<int>(config.width_m / 50.0);
    for (int k = 0; k <= steps; ++k) {
      const double x = config.width_m * k / steps;
      verts.push_back(
          {x, base_y + amplitude * std::sin(2.0 * M_PI * x / wavelength)});
    }
    AddSpecialRoad(&net, verts, config.grid_speed_mps,
                   config.grid_speed_mps, grid_nodes,
                   config.junction_stride);
  }

  return net;
}

}  // namespace kamel
