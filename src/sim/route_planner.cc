#include "sim/route_planner.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"

namespace kamel {

RoutePlanner::RoutePlanner(const RoadNetwork* network, Cost cost)
    : network_(network), cost_(cost) {
  KAMEL_CHECK(network != nullptr);
}

RoutePlanner::SearchResult RoutePlanner::Search(int from, int to) const {
  const int n = network_->num_nodes();
  SearchResult result;
  result.dist.assign(static_cast<size_t>(n),
                     std::numeric_limits<double>::infinity());
  result.prev_edge.assign(static_cast<size_t>(n), -1);
  if (from < 0 || from >= n) return result;

  using Item = std::pair<double, int>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  result.dist[static_cast<size_t>(from)] = 0.0;
  heap.push({0.0, from});
  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (d > result.dist[static_cast<size_t>(node)]) continue;
    if (node == to) break;  // early exit: target settled
    for (int edge_index : network_->OutEdges(node)) {
      const RoadEdge& e = network_->Edge(edge_index);
      const double w = cost_ == Cost::kDistance
                           ? e.length
                           : e.length / std::max(0.1, e.speed_mps);
      const double nd = d + w;
      if (nd < result.dist[static_cast<size_t>(e.to)]) {
        result.dist[static_cast<size_t>(e.to)] = nd;
        result.prev_edge[static_cast<size_t>(e.to)] = edge_index;
        heap.push({nd, e.to});
      }
    }
  }
  return result;
}

std::vector<int> RoutePlanner::ShortestPath(int from, int to) const {
  if (from == to) return {from};
  const SearchResult result = Search(from, to);
  if (to < 0 || to >= network_->num_nodes() ||
      result.prev_edge[static_cast<size_t>(to)] < 0) {
    return {};
  }
  std::vector<int> path;
  int cursor = to;
  while (cursor != from) {
    path.push_back(cursor);
    cursor = network_->Edge(result.prev_edge[static_cast<size_t>(cursor)]).from;
  }
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

double RoutePlanner::PathDistance(int from, int to) const {
  if (from == to) return 0.0;
  const SearchResult result = Search(from, to);
  if (to < 0 || to >= network_->num_nodes()) {
    return std::numeric_limits<double>::infinity();
  }
  return result.dist[static_cast<size_t>(to)];
}

std::vector<double> RoutePlanner::AllDistances(int from) const {
  return Search(from, /*to=*/-1).dist;
}

std::vector<Vec2> RoutePlanner::PathPolyline(
    const std::vector<int>& path) const {
  std::vector<Vec2> out;
  out.reserve(path.size());
  for (int node : path) out.push_back(network_->NodePosition(node));
  return out;
}

}  // namespace kamel
