#ifndef KAMEL_SIM_SPARSIFIER_H_
#define KAMEL_SIM_SPARSIFIER_H_

#include "geo/trajectory.h"

namespace kamel {

/// Imposes gaps on a dense trajectory exactly as the paper's evaluation
/// does (Section 8, "Datasets"): keep the first point, remove every point
/// within `sparse_distance_m` of it along the path, keep the next point,
/// and so on. The final point is always kept so the trajectory's extent
/// is preserved.
Trajectory Sparsify(const Trajectory& dense, double sparse_distance_m);

/// Applies Sparsify to every trajectory of the dataset.
TrajectoryDataset SparsifyDataset(const TrajectoryDataset& dense,
                                  double sparse_distance_m);

}  // namespace kamel

#endif  // KAMEL_SIM_SPARSIFIER_H_
