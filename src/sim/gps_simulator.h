#ifndef KAMEL_SIM_GPS_SIMULATOR_H_
#define KAMEL_SIM_GPS_SIMULATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "geo/projection.h"
#include "geo/trajectory.h"
#include "sim/road_network.h"
#include "sim/route_planner.h"

namespace kamel {

/// Trip generation parameters.
struct TripConfig {
  int num_trips = 500;
  /// GPS reading period in seconds (Porto ~15 s; Jakarta ~1 s; Section 8).
  double sampling_interval_s = 15.0;
  /// Standard deviation of isotropic Gaussian GPS noise, meters.
  double noise_stddev_m = 6.0;
  /// Reject trips whose route is shorter than this.
  double min_trip_m = 1200.0;
  /// Vehicles drive at speed_limit * Uniform(speed_factor_lo, hi).
  double speed_factor_lo = 0.6;
  double speed_factor_hi = 1.0;
  /// Random intermediate waypoints per trip; > 0 produces the long
  /// meandering trips of ride-sharing data (Jakarta-style trajectories
  /// average ~1000 points, Section 8.1).
  int num_waypoints = 0;
  uint64_t seed = 2;
};

/// Simulates GPS trips over a road network: random origin/destination
/// node pairs, shortest-path routes, constant-ish speed driving, periodic
/// noisy readings. This is the stand-in for the paper's Porto and Jakarta
/// GPS datasets (see DESIGN.md substitutions).
class GpsSimulator {
 public:
  /// Both pointers are borrowed and must outlive the simulator.
  GpsSimulator(const RoadNetwork* network, const LocalProjection* projection);

  /// Generates a dataset; trajectory ids are 0..n-1 offset by `id_offset`.
  TrajectoryDataset GenerateTrips(const TripConfig& config,
                                  int64_t id_offset = 0) const;

  /// Simulates one trip along `route` (node ids). Exposed for tests.
  Trajectory SimulateTrip(const std::vector<int>& route,
                          const TripConfig& config, int64_t id,
                          Rng* rng) const;

 private:
  const RoadNetwork* network_;
  const LocalProjection* projection_;
};

/// Resamples a trajectory to one point every `interval_s` seconds (keeps
/// first and last readings) — used by the training-density ablation
/// (Figure 12-V, 1/15/30/60 s variants).
Trajectory ResampleByInterval(const Trajectory& trajectory,
                              double interval_s);

/// Applies ResampleByInterval to a whole dataset.
TrajectoryDataset ResampleDataset(const TrajectoryDataset& data,
                                  double interval_s);

}  // namespace kamel

#endif  // KAMEL_SIM_GPS_SIMULATOR_H_
