#include "sim/gps_simulator.h"

#include <cmath>

#include "common/check.h"
#include "common/logging.h"
#include "geo/polyline.h"

namespace kamel {

GpsSimulator::GpsSimulator(const RoadNetwork* network,
                           const LocalProjection* projection)
    : network_(network), projection_(projection) {
  KAMEL_CHECK(network != nullptr && projection != nullptr);
}

Trajectory GpsSimulator::SimulateTrip(const std::vector<int>& route,
                                      const TripConfig& config, int64_t id,
                                      Rng* rng) const {
  Trajectory trajectory;
  trajectory.id = id;
  if (route.size() < 2) return trajectory;

  // Drive edge by edge; emit a reading whenever the clock crosses the next
  // sampling instant. One speed factor per trip models driver variance.
  const double speed_factor =
      rng->NextDouble(config.speed_factor_lo, config.speed_factor_hi);
  double clock = 0.0;
  double next_sample = 0.0;

  auto emit = [&](const Vec2& position, double time) {
    const Vec2 noisy{
        position.x + rng->NextGaussian(0.0, config.noise_stddev_m),
        position.y + rng->NextGaussian(0.0, config.noise_stddev_m)};
    trajectory.points.push_back({projection_->Unproject(noisy), time});
  };

  emit(network_->NodePosition(route.front()), 0.0);
  next_sample = config.sampling_interval_s;

  for (size_t leg = 1; leg < route.size(); ++leg) {
    const Vec2 a = network_->NodePosition(route[leg - 1]);
    const Vec2 b = network_->NodePosition(route[leg]);
    // Find this leg's speed from the connecting edge.
    double speed_limit = 13.9;
    for (int edge_index : network_->OutEdges(route[leg - 1])) {
      const RoadEdge& e = network_->Edge(edge_index);
      if (e.to == route[leg]) {
        speed_limit = e.speed_mps;
        break;
      }
    }
    const double speed = std::max(1.0, speed_limit * speed_factor);
    const double leg_len = Distance(a, b);
    const double leg_time = leg_len / speed;
    while (next_sample <= clock + leg_time) {
      const double t = (next_sample - clock) / leg_time;
      emit(a + (b - a) * t, next_sample);
      next_sample += config.sampling_interval_s;
    }
    clock += leg_time;
  }
  emit(network_->NodePosition(route.back()), clock);
  return trajectory;
}

TrajectoryDataset GpsSimulator::GenerateTrips(const TripConfig& config,
                                              int64_t id_offset) const {
  Rng rng(config.seed);
  RoutePlanner planner(network_, RoutePlanner::Cost::kTravelTime);
  TrajectoryDataset data;
  data.trajectories.reserve(static_cast<size_t>(config.num_trips));

  int generated = 0;
  int attempts = 0;
  const int max_attempts = config.num_trips * 50;
  while (generated < config.num_trips && attempts < max_attempts) {
    ++attempts;
    // Route through `num_waypoints` random intermediates (ride-sharing
    // style meandering trips) or straight origin->destination.
    std::vector<int> stops;
    stops.push_back(static_cast<int>(
        rng.NextUint64(static_cast<uint64_t>(network_->num_nodes()))));
    for (int w = 0; w <= config.num_waypoints; ++w) {
      stops.push_back(static_cast<int>(
          rng.NextUint64(static_cast<uint64_t>(network_->num_nodes()))));
    }
    std::vector<int> route;
    bool routable = true;
    for (size_t s = 1; s < stops.size(); ++s) {
      if (stops[s - 1] == stops[s]) {
        routable = false;
        break;
      }
      const std::vector<int> leg = planner.ShortestPath(stops[s - 1], stops[s]);
      if (leg.empty()) {
        routable = false;
        break;
      }
      if (route.empty()) {
        route = leg;
      } else {
        route.insert(route.end(), leg.begin() + 1, leg.end());
      }
    }
    if (!routable || route.size() < 2) continue;
    if (polyline::Length(planner.PathPolyline(route)) < config.min_trip_m) {
      continue;
    }
    Rng trip_rng = rng.Fork();
    Trajectory trip =
        SimulateTrip(route, config, id_offset + generated, &trip_rng);
    if (trip.points.size() < 3) continue;
    data.trajectories.push_back(std::move(trip));
    ++generated;
  }
  if (generated < config.num_trips) {
    KAMEL_LOG(Warning) << "trip generation exhausted attempts: "
                       << generated << "/" << config.num_trips;
  }
  return data;
}

Trajectory ResampleByInterval(const Trajectory& trajectory,
                              double interval_s) {
  KAMEL_CHECK(interval_s > 0.0, "resample interval must be positive");
  Trajectory out;
  out.id = trajectory.id;
  if (trajectory.points.empty()) return out;
  out.points.push_back(trajectory.points.front());
  for (size_t i = 1; i + 1 < trajectory.points.size(); ++i) {
    if (trajectory.points[i].time - out.points.back().time >=
        interval_s - 1e-9) {
      out.points.push_back(trajectory.points[i]);
    }
  }
  if (trajectory.points.size() > 1) {
    out.points.push_back(trajectory.points.back());
  }
  return out;
}

TrajectoryDataset ResampleDataset(const TrajectoryDataset& data,
                                  double interval_s) {
  TrajectoryDataset out;
  out.trajectories.reserve(data.trajectories.size());
  for (const auto& trajectory : data.trajectories) {
    out.trajectories.push_back(ResampleByInterval(trajectory, interval_s));
  }
  return out;
}

}  // namespace kamel
