#include "sim/road_network.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "geo/polyline.h"

namespace kamel {

int RoadNetwork::AddNode(const Vec2& position) {
  nodes_.push_back(position);
  adjacency_.emplace_back();
  return static_cast<int>(nodes_.size()) - 1;
}

void RoadNetwork::AddRoad(int a, int b, double speed_mps) {
  KAMEL_CHECK(a >= 0 && a < num_nodes() && b >= 0 && b < num_nodes(),
              "road endpoints must be existing nodes");
  KAMEL_CHECK(a != b, "self-loop roads are not allowed");
  const double length = Distance(nodes_[static_cast<size_t>(a)],
                                 nodes_[static_cast<size_t>(b)]);
  edges_.push_back({a, b, length, speed_mps});
  adjacency_[static_cast<size_t>(a)].push_back(
      static_cast<int>(edges_.size()) - 1);
  edges_.push_back({b, a, length, speed_mps});
  adjacency_[static_cast<size_t>(b)].push_back(
      static_cast<int>(edges_.size()) - 1);
}

double RoadNetwork::TotalRoadLength() const {
  double total = 0.0;
  for (const RoadEdge& e : edges_) total += e.length;
  return total / 2.0;
}

BBox RoadNetwork::Bounds() const {
  BBox box;
  for (const Vec2& node : nodes_) box.Extend(node);
  return box;
}

int RoadNetwork::NearestNode(const Vec2& p) const {
  int best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const double d2 = (nodes_[i] - p).SquaredNorm();
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<int>(i);
    }
  }
  return best;
}

RoadNetwork::EdgeProjection RoadNetwork::ProjectToNetwork(
    const Vec2& p) const {
  EdgeProjection best;
  best.distance = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < edges_.size(); i += 2) {  // one direction suffices
    const RoadEdge& e = edges_[i];
    const Vec2& a = nodes_[static_cast<size_t>(e.from)];
    const Vec2& b = nodes_[static_cast<size_t>(e.to)];
    const Vec2 ab = b - a;
    const double len2 = ab.SquaredNorm();
    double t = len2 > 0.0 ? (p - a).Dot(ab) / len2 : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    const Vec2 q = a + ab * t;
    const double d = Distance(p, q);
    if (d < best.distance) {
      best.distance = d;
      best.edge = static_cast<int>(i);
      best.point = q;
      best.offset = t * e.length;
    }
  }
  return best;
}

}  // namespace kamel
