#include "sim/sparsifier.h"

#include "common/check.h"

namespace kamel {

Trajectory Sparsify(const Trajectory& dense, double sparse_distance_m) {
  KAMEL_CHECK(sparse_distance_m > 0.0, "sparse distance must be positive");
  Trajectory out;
  out.id = dense.id;
  if (dense.points.empty()) return out;

  out.points.push_back(dense.points.front());
  double walked = 0.0;  // along-path distance since the last kept point
  for (size_t i = 1; i < dense.points.size(); ++i) {
    walked += HaversineMeters(dense.points[i - 1].pos, dense.points[i].pos);
    if (walked >= sparse_distance_m) {
      out.points.push_back(dense.points[i]);
      walked = 0.0;
    }
  }
  if (dense.points.size() > 1 &&
      !(out.points.back().time == dense.points.back().time)) {
    out.points.push_back(dense.points.back());
  }
  return out;
}

TrajectoryDataset SparsifyDataset(const TrajectoryDataset& dense,
                                  double sparse_distance_m) {
  TrajectoryDataset out;
  out.trajectories.reserve(dense.trajectories.size());
  for (const auto& trajectory : dense.trajectories) {
    out.trajectories.push_back(Sparsify(trajectory, sparse_distance_m));
  }
  return out;
}

}  // namespace kamel
