#include "sim/datasets.h"

#include "common/check.h"

namespace kamel {

SimScenario BuildScenario(const ScenarioSpec& spec) {
  KAMEL_CHECK(spec.train_fraction > 0.0 && spec.train_fraction < 1.0,
              "train fraction must be in (0, 1)");
  SimScenario scenario;
  scenario.name = spec.name;
  scenario.network =
      std::make_shared<RoadNetwork>(GenerateNetwork(spec.network));
  scenario.projection = std::make_shared<LocalProjection>(spec.origin);

  GpsSimulator simulator(scenario.network.get(), scenario.projection.get());
  TrajectoryDataset all = simulator.GenerateTrips(spec.trips);

  const size_t train_count = static_cast<size_t>(
      spec.train_fraction * static_cast<double>(all.trajectories.size()));
  for (size_t i = 0; i < all.trajectories.size(); ++i) {
    if (i < train_count) {
      scenario.train.trajectories.push_back(std::move(all.trajectories[i]));
    } else {
      scenario.test.trajectories.push_back(std::move(all.trajectories[i]));
    }
  }
  return scenario;
}

ScenarioSpec PortoLikeSpec(uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "porto-like";
  spec.origin = {41.15, -8.61};  // Porto, for flavor
  spec.network.width_m = 2600.0;
  spec.network.height_m = 2600.0;
  spec.network.block_m = 370.0;
  spec.network.drop_fraction = 0.12;
  spec.network.num_diagonals = 2;
  spec.network.ring_road = true;
  spec.network.num_winding_roads = 1;
  spec.network.seed = seed;

  spec.trips.num_trips = 1100;
  // The real Porto feed samples every 15 s; at these street speeds a 10 s
  // cadence yields the same one-cell-per-reading statement granularity on
  // our scaled-down grid (see DESIGN.md substitutions).
  spec.trips.sampling_interval_s = 10.0;
  spec.trips.noise_stddev_m = 6.0;
  spec.trips.min_trip_m = 1500.0;
  spec.trips.speed_factor_lo = 0.5;
  spec.trips.speed_factor_hi = 0.9;
  spec.trips.num_waypoints = 0;
  spec.trips.seed = seed * 7919 + 3;
  return spec;
}

ScenarioSpec JakartaLikeSpec(uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "jakarta-like";
  spec.origin = {-6.2, 106.82};  // Jakarta, for flavor
  spec.network.width_m = 3000.0;
  spec.network.height_m = 3000.0;
  spec.network.block_m = 430.0;
  spec.network.drop_fraction = 0.18;
  spec.network.num_diagonals = 1;
  spec.network.ring_road = true;
  spec.network.num_winding_roads = 2;
  spec.network.seed = seed;

  spec.trips.num_trips = 150;
  spec.trips.sampling_interval_s = 1.0;  // dense ride-sharing feed
  spec.trips.noise_stddev_m = 7.0;
  spec.trips.min_trip_m = 2500.0;
  spec.trips.speed_factor_lo = 0.5;
  spec.trips.speed_factor_hi = 0.9;
  spec.trips.num_waypoints = 3;  // long meandering trips, ~1000 readings
  spec.trips.seed = seed * 104729 + 5;
  return spec;
}

ScenarioSpec MiniSpec(uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "mini";
  spec.network.width_m = 1200.0;
  spec.network.height_m = 1200.0;
  spec.network.block_m = 300.0;
  spec.network.drop_fraction = 0.0;
  spec.network.num_diagonals = 0;
  spec.network.ring_road = false;
  spec.network.num_winding_roads = 0;
  spec.network.seed = seed;

  spec.trips.num_trips = 60;
  spec.trips.sampling_interval_s = 5.0;
  spec.trips.noise_stddev_m = 4.0;
  spec.trips.min_trip_m = 600.0;
  spec.trips.seed = seed + 1;
  return spec;
}

}  // namespace kamel
