#ifndef KAMEL_SIM_DATASETS_H_
#define KAMEL_SIM_DATASETS_H_

#include <memory>
#include <string>

#include "geo/projection.h"
#include "geo/trajectory.h"
#include "sim/gps_simulator.h"
#include "sim/network_generator.h"
#include "sim/road_network.h"

namespace kamel {

/// A fully materialized synthetic evaluation scenario: the hidden road
/// network, the projection anchoring it to geography, and an 80/20
/// train/test split of dense simulated trips (the paper's protocol,
/// Section 8: train on 80%, sparsify and impute the remaining 20%).
struct SimScenario {
  std::string name;
  std::shared_ptr<RoadNetwork> network;
  std::shared_ptr<LocalProjection> projection;
  TrajectoryDataset train;
  TrajectoryDataset test;
};

/// Recipe for a scenario.
struct ScenarioSpec {
  std::string name = "scenario";
  LatLng origin{45.0, -93.25};
  NetworkGenConfig network;
  TripConfig trips;
  double train_fraction = 0.8;
};

/// Generates network + trips and splits them.
SimScenario BuildScenario(const ScenarioSpec& spec);

/// Porto-style workload (Section 8 "Datasets"): a dense irregular city
/// grid with many *short* taxi trips at a coarse sampling rate. Scaled to
/// single-CPU trainability; the load shape (short statements, many trips)
/// matches the original.
ScenarioSpec PortoLikeSpec(uint64_t seed = 11);

/// Jakarta-style workload: a sparser road mesh with fewer but *long and
/// densely sampled* ride-sharing trips (the paper credits the long
/// statements for Jakarta's stronger results, Section 8.1).
ScenarioSpec JakartaLikeSpec(uint64_t seed = 13);

/// Tiny smoke-test scenario for unit tests: small grid, few trips,
/// seconds to build.
ScenarioSpec MiniSpec(uint64_t seed = 17);

}  // namespace kamel

#endif  // KAMEL_SIM_DATASETS_H_
