#include "bert/traj_bert.h"

#include <algorithm>

#include "common/check.h"
#include "common/fault_injection.h"

namespace kamel {

std::vector<int32_t> MakeStatement(const std::vector<CellId>& cells,
                                   const Vocab& vocab) {
  std::vector<int32_t> statement;
  statement.reserve(cells.size() + 2);
  statement.push_back(Vocab::kClsId);
  for (CellId cell : cells) statement.push_back(vocab.TokenOf(cell));
  statement.push_back(Vocab::kSepId);
  return statement;
}

Result<std::unique_ptr<TrajBert>> TrajBert::Train(
    const std::vector<std::vector<CellId>>& corpus,
    const TrajBertOptions& options, uint64_t seed) {
  if (corpus.empty()) {
    return Status::InvalidArgument("TrajBert training needs a corpus");
  }
  auto bert = std::unique_ptr<TrajBert>(new TrajBert());
  for (const auto& sequence : corpus) {
    for (CellId cell : sequence) bert->vocab_.AddCell(cell);
  }

  nn::BertConfig config = options.encoder;
  config.vocab_size = bert->vocab_.size();
  bert->model_ = std::make_unique<nn::BertModel>(config, seed);

  std::vector<std::vector<int32_t>> statements;
  statements.reserve(corpus.size());
  for (const auto& sequence : corpus) {
    if (sequence.empty()) continue;
    statements.push_back(MakeStatement(sequence, bert->vocab_));
  }
  if (statements.empty()) {
    return Status::InvalidArgument("corpus contains only empty sequences");
  }

  nn::MlmTokenLayout layout;
  layout.pad_id = Vocab::kPadId;
  layout.mask_id = Vocab::kMaskId;
  layout.first_content_id = Vocab::kFirstContentId;

  KAMEL_ASSIGN_OR_RETURN(
      bert->train_stats_,
      nn::TrainMlm(bert->model_.get(), statements, layout, options.train));
  return bert;
}

std::vector<Candidate> TrajBert::PredictMasked(
    const std::vector<CellId>& left, const std::vector<CellId>& right,
    int top_k) const {
  KAMEL_CHECK(top_k > 0, "top_k must be positive");
  num_predict_calls_.fetch_add(1, std::memory_order_relaxed);
  // An armed `bert.forward` fault yields no candidates, which the imputers
  // treat as a failed segment — exactly the linear-fallback path a real
  // inference outage should take.
  if (!FaultInjector::Instance().Hit("bert.forward").ok()) return {};

  // Assemble [CLS] left... [MASK] right... [SEP].
  std::vector<int32_t> ids;
  ids.reserve(left.size() + right.size() + 3);
  ids.push_back(Vocab::kClsId);
  for (CellId cell : left) ids.push_back(vocab_.TokenOf(cell));
  const int64_t mask_pos_full = static_cast<int64_t>(ids.size());
  ids.push_back(Vocab::kMaskId);
  for (CellId cell : right) ids.push_back(vocab_.TokenOf(cell));
  ids.push_back(Vocab::kSepId);

  // Crop a window around the mask when the statement is too long; the
  // nearest context dominates the prediction anyway.
  const int64_t max_len = model_->config().max_seq_len;
  int64_t begin = 0;
  if (static_cast<int64_t>(ids.size()) > max_len) {
    begin = mask_pos_full - max_len / 2;
    begin = std::clamp<int64_t>(begin, 0,
                                static_cast<int64_t>(ids.size()) - max_len);
    ids = std::vector<int32_t>(ids.begin() + begin,
                               ids.begin() + begin + max_len);
  }
  const int64_t mask_pos = mask_pos_full - begin;
  const int64_t seq_len = static_cast<int64_t>(ids.size());

  const std::vector<float> key_mask(static_cast<size_t>(seq_len), 1.0f);
  nn::Tensor logits =
      model_->ForwardInference(ids, key_mask, /*batch=*/1, seq_len);
  std::vector<float> probs = model_->PositionProbabilities(logits, mask_pos);

  // Keep content tokens only and renormalize.
  double content_mass = 0.0;
  for (int32_t tok = Vocab::kFirstContentId; tok < vocab_.size(); ++tok) {
    content_mass += probs[static_cast<size_t>(tok)];
  }
  if (content_mass <= 0.0) return {};

  std::vector<int32_t> order;
  order.reserve(static_cast<size_t>(vocab_.size() - Vocab::kFirstContentId));
  for (int32_t tok = Vocab::kFirstContentId; tok < vocab_.size(); ++tok) {
    order.push_back(tok);
  }
  const int keep = std::min<int>(top_k, static_cast<int>(order.size()));
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    [&probs](int32_t a, int32_t b) {
                      return probs[static_cast<size_t>(a)] >
                             probs[static_cast<size_t>(b)];
                    });
  std::vector<Candidate> out;
  out.reserve(static_cast<size_t>(keep));
  for (int i = 0; i < keep; ++i) {
    const int32_t tok = order[static_cast<size_t>(i)];
    out.push_back({vocab_.CellOf(tok),
                   probs[static_cast<size_t>(tok)] / content_mass});
  }
  return out;
}

Status TrajBert::Save(BinaryWriter* writer,
                      nn::WeightFormat format) const {
  writer->WriteString("kamel-trajbert-v1");
  vocab_.Save(writer);
  writer->WriteF64(train_stats_.seconds);
  writer->WriteF64(train_stats_.final_loss);
  writer->WriteI64(train_stats_.steps);
  return model_->Save(writer, format);
}

void TrajBert::Save(BinaryWriter* writer) const {
  const Status status = Save(writer, nn::WeightFormat::kF32);
  KAMEL_CHECK(status.ok(), status.ToString());
}

Result<std::unique_ptr<TrajBert>> TrajBert::Load(BinaryReader* reader) {
  KAMEL_ASSIGN_OR_RETURN(std::string magic, reader->ReadString());
  if (magic != "kamel-trajbert-v1") {
    return Status::IOError("bad trajbert magic: " + magic);
  }
  auto bert = std::unique_ptr<TrajBert>(new TrajBert());
  KAMEL_ASSIGN_OR_RETURN(bert->vocab_, Vocab::Load(reader));
  KAMEL_ASSIGN_OR_RETURN(bert->train_stats_.seconds, reader->ReadF64());
  KAMEL_ASSIGN_OR_RETURN(bert->train_stats_.final_loss, reader->ReadF64());
  KAMEL_ASSIGN_OR_RETURN(bert->train_stats_.steps, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(bert->model_, nn::BertModel::Load(reader));
  if (bert->model_->config().vocab_size != bert->vocab_.size()) {
    return Status::IOError("vocab/model size mismatch in trajbert file");
  }
  return bert;
}

}  // namespace kamel
