#ifndef KAMEL_BERT_VOCAB_H_
#define KAMEL_BERT_VOCAB_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "grid/cell_id.h"

namespace kamel {

/// Bidirectional mapping between grid cells (KAMEL's "words") and the
/// dense token indices the BERT encoder consumes.
///
/// Index layout: [PAD]=0, [UNK]=1, [CLS]=2, [SEP]=3, [MASK]=4, then one
/// index per distinct cell observed in the training data, in insertion
/// order. A cell never seen in training maps to [UNK] at inference time —
/// mirroring out-of-vocabulary words in NLP.
class Vocab {
 public:
  static constexpr int32_t kPadId = 0;
  static constexpr int32_t kUnkId = 1;
  static constexpr int32_t kClsId = 2;
  static constexpr int32_t kSepId = 3;
  static constexpr int32_t kMaskId = 4;
  static constexpr int32_t kFirstContentId = 5;

  Vocab() = default;

  /// Registers a cell (idempotent); returns its token index.
  int32_t AddCell(CellId cell);

  /// Token index of a cell, or kUnkId for unseen cells.
  int32_t TokenOf(CellId cell) const;

  /// Cell of a content token, or kInvalidCellId for special tokens.
  CellId CellOf(int32_t token) const;

  bool IsContentToken(int32_t token) const {
    return token >= kFirstContentId && token < size();
  }

  /// Total number of token indices (special + content).
  int32_t size() const {
    return kFirstContentId + static_cast<int32_t>(cells_.size());
  }

  /// Number of distinct cells.
  int32_t num_cells() const { return static_cast<int32_t>(cells_.size()); }

  void Save(BinaryWriter* writer) const;
  static Result<Vocab> Load(BinaryReader* reader);

 private:
  std::unordered_map<CellId, int32_t> cell_to_token_;
  std::vector<CellId> cells_;  // content index -> cell
};

}  // namespace kamel

#endif  // KAMEL_BERT_VOCAB_H_
