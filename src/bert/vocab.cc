#include "bert/vocab.h"

namespace kamel {

int32_t Vocab::AddCell(CellId cell) {
  auto [it, inserted] = cell_to_token_.try_emplace(
      cell, kFirstContentId + static_cast<int32_t>(cells_.size()));
  if (inserted) cells_.push_back(cell);
  return it->second;
}

int32_t Vocab::TokenOf(CellId cell) const {
  auto it = cell_to_token_.find(cell);
  return it == cell_to_token_.end() ? kUnkId : it->second;
}

CellId Vocab::CellOf(int32_t token) const {
  if (!IsContentToken(token)) return kInvalidCellId;
  return cells_[static_cast<size_t>(token - kFirstContentId)];
}

void Vocab::Save(BinaryWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(cells_.size()));
  for (CellId cell : cells_) writer->WriteU64(cell);
}

Result<Vocab> Vocab::Load(BinaryReader* reader) {
  KAMEL_ASSIGN_OR_RETURN(uint32_t count, reader->ReadU32());
  Vocab vocab;
  for (uint32_t i = 0; i < count; ++i) {
    KAMEL_ASSIGN_OR_RETURN(uint64_t cell, reader->ReadU64());
    vocab.AddCell(cell);
  }
  return vocab;
}

}  // namespace kamel
