#ifndef KAMEL_BERT_TRAJ_BERT_H_
#define KAMEL_BERT_TRAJ_BERT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bert/vocab.h"
#include "common/result.h"
#include "grid/cell_id.h"
#include "nn/mlm_trainer.h"
#include "nn/transformer.h"

namespace kamel {

/// One candidate imputed token with its model probability — the unit the
/// Partitioning module passes to Spatial Constraints (Figure 1).
struct Candidate {
  CellId cell = kInvalidCellId;
  double prob = 0.0;
};

/// The "BERT black box" interface of Figure 1: anything that can propose
/// top-k candidates for one [MASK] between two cell contexts. TrajBert is
/// the production implementation; tests plug in deterministic fakes.
///
/// PredictMasked is const and must be safe to call concurrently from many
/// threads: the serving engine shares one frozen model across its whole
/// pool. Fakes that keep call counters should mark them `mutable` (and make
/// them atomic if the test itself is multi-threaded).
class CandidateSource {
 public:
  virtual ~CandidateSource() = default;

  /// Candidates for [CLS] left... [MASK] right... [SEP], most probable
  /// first, at most `top_k` of them.
  virtual std::vector<Candidate> PredictMasked(
      const std::vector<CellId>& left, const std::vector<CellId>& right,
      int top_k) const = 0;
};

/// Hyperparameters for one trajectory-BERT model.
struct TrajBertOptions {
  /// Encoder shape; vocab_size is filled in from the corpus.
  nn::BertConfig encoder;
  /// Masked-LM training schedule.
  nn::MlmTrainOptions train;
};

/// A BERT model trained on trajectory statements (Section 1's language
/// analogy): each statement is [CLS] t1 t2 ... tn [SEP] where ti are cell
/// tokens. This class is the unit stored in the model repository — one
/// TrajBert per pyramid cell (single-cell model) or per cell pair
/// (neighbor-cells model).
class TrajBert final : public CandidateSource {
 public:
  /// Builds the vocabulary from `corpus` (sequences of cell ids with
  /// consecutive duplicates already collapsed by the Tokenization module)
  /// and trains the encoder with the masked-LM objective.
  /// Returns InvalidArgument on an empty corpus.
  static Result<std::unique_ptr<TrajBert>> Train(
      const std::vector<std::vector<CellId>>& corpus,
      const TrajBertOptions& options, uint64_t seed);

  /// Predicts candidates for one [MASK] inserted between `left` and
  /// `right` context cells: the statement is
  /// [CLS] left... [MASK] right... [SEP], cropped around the mask when it
  /// exceeds max_seq_len. Returns up to `top_k` content-token candidates
  /// with probabilities, most probable first. Probabilities are
  /// renormalized over content tokens only.
  std::vector<Candidate> PredictMasked(const std::vector<CellId>& left,
                                       const std::vector<CellId>& right,
                                       int top_k) const override;

  const Vocab& vocab() const { return vocab_; }
  const nn::BertConfig& config() const { return model_->config(); }
  const nn::MlmTrainStats& train_stats() const { return train_stats_; }

  /// Total BERT forward calls served since construction (paper's "number
  /// of BERT calls" accounting in Section 6).
  int64_t num_predict_calls() const {
    return num_predict_calls_.load(std::memory_order_relaxed);
  }

  /// Serving weight format (kF32 unless loaded from a quantized snapshot)
  /// and resident weight bytes in that storage.
  nn::WeightFormat weight_format() const { return model_->weight_format(); }
  int64_t WeightBytes() const { return model_->WeightBytes(); }

  /// Saves with the given serving weight format; kF32 keeps the
  /// historical byte layout. InvalidArgument on non-finite weights when
  /// quantizing.
  Status Save(BinaryWriter* writer, nn::WeightFormat format) const;
  /// fp32 save — cannot fail.
  void Save(BinaryWriter* writer) const;
  static Result<std::unique_ptr<TrajBert>> Load(BinaryReader* reader);

 private:
  TrajBert() = default;

  Vocab vocab_;
  std::unique_ptr<nn::BertModel> model_;
  nn::MlmTrainStats train_stats_;
  // Serving statistic, not model state: atomic so the const inference path
  // stays shareable across threads.
  mutable std::atomic<int64_t> num_predict_calls_{0};
};

/// Converts a cell sequence into a model statement:
/// [CLS] tokens [SEP], using the given vocabulary.
std::vector<int32_t> MakeStatement(const std::vector<CellId>& cells,
                                   const Vocab& vocab);

}  // namespace kamel

#endif  // KAMEL_BERT_TRAJ_BERT_H_
