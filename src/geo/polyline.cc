#include "geo/polyline.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace kamel::polyline {

double Length(const std::vector<Vec2>& line) {
  double total = 0.0;
  for (size_t i = 1; i < line.size(); ++i) {
    total += Distance(line[i - 1], line[i]);
  }
  return total;
}

double PointToSegmentDistance(const Vec2& p, const Vec2& a, const Vec2& b) {
  const Vec2 ab = b - a;
  const double len2 = ab.SquaredNorm();
  if (len2 == 0.0) return Distance(p, a);
  double t = (p - a).Dot(ab) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return Distance(p, a + ab * t);
}

double PointToPolylineDistance(const Vec2& p, const std::vector<Vec2>& line) {
  if (line.empty()) return std::numeric_limits<double>::infinity();
  if (line.size() == 1) return Distance(p, line[0]);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 1; i < line.size(); ++i) {
    best = std::min(best, PointToSegmentDistance(p, line[i - 1], line[i]));
  }
  return best;
}

std::vector<Vec2> ResampleEvery(const std::vector<Vec2>& line,
                                double spacing) {
  KAMEL_CHECK(spacing > 0.0, "resample spacing must be positive");
  if (line.empty()) return {};
  if (line.size() == 1) return {line[0]};
  std::vector<Vec2> out = {line[0]};
  double carried = 0.0;  // distance already walked inside the current step
  for (size_t i = 1; i < line.size(); ++i) {
    Vec2 prev = line[i - 1];
    const Vec2 next = line[i];
    double seg_len = Distance(prev, next);
    while (carried + seg_len >= spacing) {
      const double need = spacing - carried;
      const double t = need / seg_len;
      const Vec2 sample = prev + (next - prev) * t;
      out.push_back(sample);
      prev = sample;
      seg_len -= need;
      carried = 0.0;
    }
    carried += seg_len;
  }
  if (carried > 1e-9 || out.size() == 1) out.push_back(line.back());
  return out;
}

Vec2 Interpolate(const std::vector<Vec2>& line, double s) {
  KAMEL_CHECK(!line.empty(), "interpolate on empty polyline");
  if (s <= 0.0 || line.size() == 1) return line.front();
  for (size_t i = 1; i < line.size(); ++i) {
    const double seg = Distance(line[i - 1], line[i]);
    if (s <= seg) {
      if (seg == 0.0) return line[i];
      return line[i - 1] + (line[i] - line[i - 1]) * (s / seg);
    }
    s -= seg;
  }
  return line.back();
}

std::vector<Vec2> DropConsecutiveDuplicates(const std::vector<Vec2>& line) {
  std::vector<Vec2> out;
  out.reserve(line.size());
  for (const auto& p : line) {
    if (out.empty() || !(out.back() == p)) out.push_back(p);
  }
  return out;
}

}  // namespace kamel::polyline
