#ifndef KAMEL_GEO_PROJECTION_H_
#define KAMEL_GEO_PROJECTION_H_

#include "geo/latlng.h"

namespace kamel {

/// Equirectangular projection around a fixed origin.
///
/// At city scale (tens of kilometers) the distortion versus true
/// great-circle distances is far below the GPS noise floor, which is why
/// KAMEL performs all grid, constraint, and metric computations in this
/// local metric frame. The projection is exact-inverse: Unproject(Project(p))
/// round-trips to double precision.
class LocalProjection {
 public:
  /// Creates a projection centered at `origin` (maps to Vec2{0,0}).
  explicit LocalProjection(const LatLng& origin);

  /// Geographic -> local meters.
  Vec2 Project(const LatLng& p) const;

  /// Local meters -> geographic.
  LatLng Unproject(const Vec2& v) const;

  const LatLng& origin() const { return origin_; }

 private:
  LatLng origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lng_;
};

}  // namespace kamel

#endif  // KAMEL_GEO_PROJECTION_H_
