#ifndef KAMEL_GEO_POLYLINE_H_
#define KAMEL_GEO_POLYLINE_H_

#include <vector>

#include "geo/latlng.h"

namespace kamel {

/// Planar polyline utilities in the local metric frame.
///
/// These back the paper's evaluation metrics (Section 8): ground-truth and
/// imputed trajectories are discretized every max_gap meters and matched
/// within the accuracy threshold delta by point-to-polyline distance.
namespace polyline {

/// Along-path length in meters.
double Length(const std::vector<Vec2>& line);

/// Distance from `p` to the segment [a, b].
double PointToSegmentDistance(const Vec2& p, const Vec2& a, const Vec2& b);

/// Shortest distance from `p` to any segment of `line`. A single-vertex
/// line degenerates to point distance; an empty line yields +infinity.
double PointToPolylineDistance(const Vec2& p, const std::vector<Vec2>& line);

/// Resamples `line` with one point every `spacing` meters of arc length,
/// always including both endpoints. This is the paper's discretization
/// operator for recall/precision. Requires spacing > 0.
std::vector<Vec2> ResampleEvery(const std::vector<Vec2>& line,
                                double spacing);

/// Point at arc-length `s` along the line (clamped to the ends).
Vec2 Interpolate(const std::vector<Vec2>& line, double s);

/// Removes exact consecutive duplicates.
std::vector<Vec2> DropConsecutiveDuplicates(const std::vector<Vec2>& line);

}  // namespace polyline
}  // namespace kamel

#endif  // KAMEL_GEO_POLYLINE_H_
