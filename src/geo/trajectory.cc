#include "geo/trajectory.h"

namespace kamel {

double Trajectory::LengthMeters() const {
  double total = 0.0;
  for (size_t i = 1; i < points.size(); ++i) {
    total += HaversineMeters(points[i - 1].pos, points[i].pos);
  }
  return total;
}

double Trajectory::DurationSeconds() const {
  if (points.size() < 2) return 0.0;
  return points.back().time - points.front().time;
}

BBox Trajectory::Mbr(const LocalProjection& proj) const {
  BBox box;
  for (const auto& p : points) box.Extend(proj.Project(p.pos));
  return box;
}

std::vector<Vec2> Trajectory::ProjectedPoints(
    const LocalProjection& proj) const {
  std::vector<Vec2> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(proj.Project(p.pos));
  return out;
}

size_t TrajectoryDataset::TotalPoints() const {
  size_t n = 0;
  for (const auto& t : trajectories) n += t.size();
  return n;
}

BBox TrajectoryDataset::Mbr(const LocalProjection& proj) const {
  BBox box;
  for (const auto& t : trajectories) box.Extend(t.Mbr(proj));
  return box;
}

}  // namespace kamel
