#include "geo/trajectory.h"

#include <cmath>

namespace kamel {

double Trajectory::LengthMeters() const {
  double total = 0.0;
  for (size_t i = 1; i < points.size(); ++i) {
    total += HaversineMeters(points[i - 1].pos, points[i].pos);
  }
  return total;
}

double Trajectory::DurationSeconds() const {
  if (points.size() < 2) return 0.0;
  return points.back().time - points.front().time;
}

BBox Trajectory::Mbr(const LocalProjection& proj) const {
  BBox box;
  for (const auto& p : points) box.Extend(proj.Project(p.pos));
  return box;
}

std::vector<Vec2> Trajectory::ProjectedPoints(
    const LocalProjection& proj) const {
  std::vector<Vec2> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(proj.Project(p.pos));
  return out;
}

Status ValidateTrajectory(const Trajectory& trajectory) {
  const std::string label = "trajectory " + std::to_string(trajectory.id);
  for (size_t i = 0; i < trajectory.points.size(); ++i) {
    const TrajPoint& p = trajectory.points[i];
    const std::string at = label + " point " + std::to_string(i);
    if (!std::isfinite(p.pos.lat) || !std::isfinite(p.pos.lng)) {
      return Status::InvalidArgument(at + ": non-finite coordinates");
    }
    if (p.pos.lat < -90.0 || p.pos.lat > 90.0 || p.pos.lng < -180.0 ||
        p.pos.lng > 180.0) {
      return Status::InvalidArgument(
          at + ": coordinates out of range (" + std::to_string(p.pos.lat) +
          ", " + std::to_string(p.pos.lng) + ")");
    }
    if (!std::isfinite(p.time)) {
      return Status::InvalidArgument(at + ": non-finite timestamp");
    }
    if (i > 0 && p.time < trajectory.points[i - 1].time) {
      return Status::InvalidArgument(
          at + ": timestamps must be non-decreasing (" +
          std::to_string(trajectory.points[i - 1].time) + " -> " +
          std::to_string(p.time) + ")");
    }
  }
  return Status::OK();
}

size_t TrajectoryDataset::TotalPoints() const {
  size_t n = 0;
  for (const auto& t : trajectories) n += t.size();
  return n;
}

BBox TrajectoryDataset::Mbr(const LocalProjection& proj) const {
  BBox box;
  for (const auto& t : trajectories) box.Extend(t.Mbr(proj));
  return box;
}

}  // namespace kamel
