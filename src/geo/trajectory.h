#ifndef KAMEL_GEO_TRAJECTORY_H_
#define KAMEL_GEO_TRAJECTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/bbox.h"
#include "geo/latlng.h"
#include "geo/projection.h"

namespace kamel {

/// One GPS reading: geographic position plus a timestamp in seconds.
struct TrajPoint {
  LatLng pos;
  double time = 0.0;
};

/// An ordered sequence of GPS readings for one moving object.
///
/// KAMEL treats a trajectory as a "statement" whose "words" are the spatial
/// tokens of its points (Section 1 of the paper).
struct Trajectory {
  int64_t id = 0;
  std::vector<TrajPoint> points;

  size_t size() const { return points.size(); }
  bool empty() const { return points.empty(); }

  /// Total along-path length in meters (haversine between readings).
  double LengthMeters() const;

  /// Time span covered, seconds (0 for fewer than 2 points).
  double DurationSeconds() const;

  /// Minimum bounding rectangle in the given local frame.
  BBox Mbr(const LocalProjection& proj) const;

  /// The point positions projected into the local frame.
  std::vector<Vec2> ProjectedPoints(const LocalProjection& proj) const;
};

/// Ingest-boundary validation: every coordinate finite and within lat/lng
/// range, every timestamp finite and non-decreasing. Returns
/// InvalidArgument naming the first offending point; a malformed GPS feed
/// must degrade into a rejected request, never a serving-path abort.
Status ValidateTrajectory(const Trajectory& trajectory);

/// A set of trajectories plus the projection that anchors their local frame.
struct TrajectoryDataset {
  std::vector<Trajectory> trajectories;

  size_t TotalPoints() const;
  BBox Mbr(const LocalProjection& proj) const;
};

}  // namespace kamel

#endif  // KAMEL_GEO_TRAJECTORY_H_
