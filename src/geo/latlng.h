#ifndef KAMEL_GEO_LATLNG_H_
#define KAMEL_GEO_LATLNG_H_

#include <cmath>

namespace kamel {

/// Mean Earth radius in meters (spherical model; adequate at city scale).
inline constexpr double kEarthRadiusMeters = 6371008.8;

inline constexpr double DegToRad(double deg) { return deg * M_PI / 180.0; }
inline constexpr double RadToDeg(double rad) { return rad * 180.0 / M_PI; }

/// Geographic coordinate in degrees (WGS84 latitude/longitude, spherical
/// geometry).
struct LatLng {
  double lat = 0.0;
  double lng = 0.0;

  bool operator==(const LatLng& other) const = default;
};

/// Point in a local planar frame, meters east (x) and north (y) of a
/// projection origin.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  bool operator==(const Vec2& other) const = default;

  double Dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// 2D cross product (z-component); >0 when `o` is counter-clockwise.
  double Cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double Norm() const { return std::hypot(x, y); }
  double SquaredNorm() const { return x * x + y * y; }
};

/// Euclidean distance in the local frame.
inline double Distance(const Vec2& a, const Vec2& b) {
  return (a - b).Norm();
}

/// Great-circle distance in meters between two geographic points.
double HaversineMeters(const LatLng& a, const LatLng& b);

/// Heading of the displacement a->b, radians in (-pi, pi], measured
/// counter-clockwise from east (standard math convention in the local
/// frame). Returns 0 for coincident points.
double HeadingRadians(const Vec2& a, const Vec2& b);

/// Smallest absolute difference between two angles, in [0, pi].
double AngleDifference(double a, double b);

/// Normalizes an angle into (-pi, pi].
double NormalizeAngle(double a);

}  // namespace kamel

#endif  // KAMEL_GEO_LATLNG_H_
