#include "geo/latlng.h"

#include <algorithm>

namespace kamel {

double HaversineMeters(const LatLng& a, const LatLng& b) {
  const double lat1 = DegToRad(a.lat);
  const double lat2 = DegToRad(b.lat);
  const double dlat = lat2 - lat1;
  const double dlng = DegToRad(b.lng - a.lng);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlng / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters *
         std::asin(std::sqrt(std::min(1.0, h)));
}

double HeadingRadians(const Vec2& a, const Vec2& b) {
  const Vec2 d = b - a;
  if (d.x == 0.0 && d.y == 0.0) return 0.0;
  return std::atan2(d.y, d.x);
}

double AngleDifference(double a, double b) {
  double d = std::fabs(NormalizeAngle(a - b));
  return d;
}

double NormalizeAngle(double a) {
  while (a <= -M_PI) a += 2.0 * M_PI;
  while (a > M_PI) a -= 2.0 * M_PI;
  return a;
}

}  // namespace kamel
