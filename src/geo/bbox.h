#ifndef KAMEL_GEO_BBOX_H_
#define KAMEL_GEO_BBOX_H_

#include <algorithm>
#include <limits>

#include "geo/latlng.h"

namespace kamel {

/// Axis-aligned bounding box in the local metric frame.
///
/// Used for trajectory minimum bounding rectangles (Section 4.1: model
/// retrieval picks the smallest pyramid cell enclosing the trajectory MBR)
/// and for pyramid cell extents. A default-constructed box is empty.
struct BBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  static BBox FromCorners(Vec2 lo, Vec2 hi) {
    BBox b;
    b.min_x = std::min(lo.x, hi.x);
    b.min_y = std::min(lo.y, hi.y);
    b.max_x = std::max(lo.x, hi.x);
    b.max_y = std::max(lo.y, hi.y);
    return b;
  }

  bool Empty() const { return min_x > max_x || min_y > max_y; }

  void Extend(const Vec2& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  void Extend(const BBox& other) {
    if (other.Empty()) return;
    min_x = std::min(min_x, other.min_x);
    min_y = std::min(min_y, other.min_y);
    max_x = std::max(max_x, other.max_x);
    max_y = std::max(max_y, other.max_y);
  }

  bool Contains(const Vec2& p) const {
    return !Empty() && p.x >= min_x && p.x <= max_x && p.y >= min_y &&
           p.y <= max_y;
  }

  /// True when `other` lies entirely inside this box (boundaries count).
  bool Contains(const BBox& other) const {
    return !Empty() && !other.Empty() && other.min_x >= min_x &&
           other.max_x <= max_x && other.min_y >= min_y &&
           other.max_y <= max_y;
  }

  bool Intersects(const BBox& other) const {
    return !Empty() && !other.Empty() && other.min_x <= max_x &&
           other.max_x >= min_x && other.min_y <= max_y &&
           other.max_y >= min_y;
  }

  double Width() const { return Empty() ? 0.0 : max_x - min_x; }
  double Height() const { return Empty() ? 0.0 : max_y - min_y; }

  Vec2 Center() const {
    return {(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  /// Grows the box by `margin` meters on every side.
  BBox Expanded(double margin) const {
    BBox b = *this;
    if (b.Empty()) return b;
    b.min_x -= margin;
    b.min_y -= margin;
    b.max_x += margin;
    b.max_y += margin;
    return b;
  }
};

}  // namespace kamel

#endif  // KAMEL_GEO_BBOX_H_
