#include "geo/projection.h"

namespace kamel {

LocalProjection::LocalProjection(const LatLng& origin) : origin_(origin) {
  meters_per_deg_lat_ = DegToRad(1.0) * kEarthRadiusMeters;
  meters_per_deg_lng_ =
      DegToRad(1.0) * kEarthRadiusMeters * std::cos(DegToRad(origin.lat));
}

Vec2 LocalProjection::Project(const LatLng& p) const {
  return {(p.lng - origin_.lng) * meters_per_deg_lng_,
          (p.lat - origin_.lat) * meters_per_deg_lat_};
}

LatLng LocalProjection::Unproject(const Vec2& v) const {
  return {origin_.lat + v.y / meters_per_deg_lat_,
          origin_.lng + v.x / meters_per_deg_lng_};
}

}  // namespace kamel
