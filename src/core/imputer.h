#ifndef KAMEL_CORE_IMPUTER_H_
#define KAMEL_CORE_IMPUTER_H_

#include <vector>

#include "bert/traj_bert.h"
#include "core/options.h"
#include "core/spatial_constraints.h"
#include "grid/grid_system.h"

namespace kamel {

/// Result of imputing one trajectory segment (between two consecutive
/// sparse points). `cells` always starts at S and ends at D.
struct ImputedSegment {
  std::vector<CellId> cells;
  /// True when the imputation gave up and the segment must be drawn as a
  /// straight line — the paper's failure event (Sections 6 and 8).
  bool failed = false;
  /// Product of the chosen candidates' probabilities.
  double probability = 1.0;
  /// Length-normalized score P * |S|^alpha (Section 6.2); 0 when failed.
  double normalized_score = 0.0;
  /// BERT calls consumed by this segment.
  int bert_calls = 0;
};

/// Strategy interface of the Multipoint Imputation module (Section 6).
class Imputer {
 public:
  /// `grid` and `constraints` are borrowed and must outlive the imputer.
  Imputer(const GridSystem* grid, const SpatialConstraints* constraints,
          const KamelOptions& options);
  virtual ~Imputer() = default;

  /// Fills the gap described by `context` using `model`. Never returns an
  /// empty cell list: on failure, cells = {S, D} with failed = true.
  /// Const and stateless across calls: one imputer instance may be shared
  /// by every serving thread.
  virtual ImputedSegment Impute(const CandidateSource* model,
                                const SegmentContext& context) const = 0;

  /// Gap threshold in grid steps: consecutive output tokens must be within
  /// this many cells of each other. Derived from max_gap_m, but never
  /// below 1 cell (adjacent cells can be farther apart in meters than
  /// max_gap_m when the cell size is large).
  int max_gap_cells() const { return max_gap_cells_; }

  /// Index i of the first pair (cells[i], cells[i+1]) farther apart than
  /// the gap threshold; -1 when the segment is fully dense.
  int FindFirstGap(const std::vector<CellId>& cells) const;

  /// All such indices.
  std::vector<int> FindGaps(const std::vector<CellId>& cells) const;

 protected:
  const GridSystem* grid_;
  const SpatialConstraints* constraints_;
  KamelOptions options_;
  int max_gap_cells_;
};

/// Section 6.1: greedy iterative BERT calling (Algorithm 1). At each step
/// the top surviving candidate is inserted at the first remaining gap.
class IterativeBertImputer final : public Imputer {
 public:
  using Imputer::Imputer;
  ImputedSegment Impute(const CandidateSource* model,
                        const SegmentContext& context) const override;
};

/// Section 6.2: bidirectional beam search (Algorithm 2) with length
/// normalization P * |S|^alpha. Tracks the best completed segment and
/// prunes in-flight segments whose normalized score falls below it.
class BeamSearchImputer final : public Imputer {
 public:
  using Imputer::Imputer;
  ImputedSegment Impute(const CandidateSource* model,
                        const SegmentContext& context) const override;
};

/// Ablation "No Multi." (Section 8.7): one BERT call per gap, one imputed
/// token; the rest of the gap stays unfilled and the segment counts as
/// failed when a gap remains.
class SinglePointImputer final : public Imputer {
 public:
  using Imputer::Imputer;
  ImputedSegment Impute(const CandidateSource* model,
                        const SegmentContext& context) const override;
};

}  // namespace kamel

#endif  // KAMEL_CORE_IMPUTER_H_
