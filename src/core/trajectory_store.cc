#include "core/trajectory_store.h"

#include "common/binary_io.h"
#include "common/fault_injection.h"

namespace kamel {

size_t TrajectoryStore::Add(TokenizedTrajectory trajectory) {
  BBox mbr;
  for (const auto& token : trajectory) mbr.Extend(token.position);
  total_tokens_ += static_cast<int64_t>(trajectory.size());
  trajectories_.push_back(std::move(trajectory));
  mbrs_.push_back(mbr);
  return trajectories_.size() - 1;
}

Status TrajectoryStore::Append(TokenizedTrajectory trajectory,
                               size_t* index) {
  KAMEL_RETURN_NOT_OK(FaultInjector::Instance().Hit("store.append"));
  if (wal_ != nullptr) {
    // Write-ahead: the trajectory must be durable before it is applied
    // (and before the caller sees an acknowledgement).
    KAMEL_RETURN_NOT_OK(
        wal_->Append(WalRecordType::kStoreAppend, EncodeWalPayload(trajectory))
            .status());
  }
  const size_t added = Add(std::move(trajectory));
  if (index != nullptr) *index = added;
  return Status::OK();
}

Status TrajectoryStore::ReplayWal(const std::vector<WalRecord>& records) {
  for (const WalRecord& record : records) {
    if (record.type != WalRecordType::kStoreAppend) continue;
    KAMEL_ASSIGN_OR_RETURN(TokenizedTrajectory trajectory,
                           DecodeWalPayload(record.payload));
    Add(std::move(trajectory));
  }
  return Status::OK();
}

std::vector<uint8_t> TrajectoryStore::EncodeWalPayload(
    const TokenizedTrajectory& trajectory) {
  BinaryWriter writer;
  writer.WriteU32(static_cast<uint32_t>(trajectory.size()));
  for (const TokenPoint& token : trajectory) {
    writer.WriteU64(token.cell);
    writer.WriteF64(token.time);
    writer.WriteF64(token.position.x);
    writer.WriteF64(token.position.y);
    writer.WriteF64(token.heading);
  }
  return writer.buffer();
}

Result<TokenizedTrajectory> TrajectoryStore::DecodeWalPayload(
    const std::vector<uint8_t>& payload) {
  BinaryReader reader(payload);
  KAMEL_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  TokenizedTrajectory trajectory;
  trajectory.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TokenPoint token;
    KAMEL_ASSIGN_OR_RETURN(token.cell, reader.ReadU64());
    KAMEL_ASSIGN_OR_RETURN(token.time, reader.ReadF64());
    KAMEL_ASSIGN_OR_RETURN(token.position.x, reader.ReadF64());
    KAMEL_ASSIGN_OR_RETURN(token.position.y, reader.ReadF64());
    KAMEL_ASSIGN_OR_RETURN(token.heading, reader.ReadF64());
    trajectory.push_back(token);
  }
  if (!reader.AtEnd()) {
    return Status::IOError("trailing bytes after tokenized payload");
  }
  return trajectory;
}

std::vector<size_t> TrajectoryStore::FullyEnclosed(const BBox& bounds) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < trajectories_.size(); ++i) {
    if (bounds.Contains(mbrs_[i])) out.push_back(i);
  }
  return out;
}

int64_t TrajectoryStore::CountTokensIn(const BBox& bounds) const {
  int64_t count = 0;
  for (size_t i = 0; i < trajectories_.size(); ++i) {
    if (!bounds.Intersects(mbrs_[i])) continue;
    for (const auto& token : trajectories_[i]) {
      if (bounds.Contains(token.position)) ++count;
    }
  }
  return count;
}

std::vector<std::vector<CellId>> TrajectoryStore::Statements(
    const std::vector<size_t>& indices) const {
  std::vector<std::vector<CellId>> out;
  out.reserve(indices.size());
  for (size_t index : indices) {
    out.push_back(Tokenizer::Cells(trajectories_[index]));
  }
  return out;
}

}  // namespace kamel
