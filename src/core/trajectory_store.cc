#include "core/trajectory_store.h"

#include "common/fault_injection.h"

namespace kamel {

size_t TrajectoryStore::Add(TokenizedTrajectory trajectory) {
  BBox mbr;
  for (const auto& token : trajectory) mbr.Extend(token.position);
  total_tokens_ += static_cast<int64_t>(trajectory.size());
  trajectories_.push_back(std::move(trajectory));
  mbrs_.push_back(mbr);
  return trajectories_.size() - 1;
}

Status TrajectoryStore::Append(TokenizedTrajectory trajectory,
                               size_t* index) {
  KAMEL_RETURN_NOT_OK(FaultInjector::Instance().Hit("store.append"));
  const size_t added = Add(std::move(trajectory));
  if (index != nullptr) *index = added;
  return Status::OK();
}

std::vector<size_t> TrajectoryStore::FullyEnclosed(const BBox& bounds) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < trajectories_.size(); ++i) {
    if (bounds.Contains(mbrs_[i])) out.push_back(i);
  }
  return out;
}

int64_t TrajectoryStore::CountTokensIn(const BBox& bounds) const {
  int64_t count = 0;
  for (size_t i = 0; i < trajectories_.size(); ++i) {
    if (!bounds.Intersects(mbrs_[i])) continue;
    for (const auto& token : trajectories_[i]) {
      if (bounds.Contains(token.position)) ++count;
    }
  }
  return count;
}

std::vector<std::vector<CellId>> TrajectoryStore::Statements(
    const std::vector<size_t>& indices) const {
  std::vector<std::vector<CellId>> out;
  out.reserve(indices.size());
  for (size_t index : indices) {
    out.push_back(Tokenizer::Cells(trajectories_[index]));
  }
  return out;
}

}  // namespace kamel
