#ifndef KAMEL_CORE_SPATIAL_CONSTRAINTS_H_
#define KAMEL_CORE_SPATIAL_CONSTRAINTS_H_

#include <optional>
#include <vector>

#include "bert/traj_bert.h"
#include "core/options.h"
#include "core/tokenizer.h"
#include "grid/grid_system.h"

namespace kamel {

/// Everything the Spatial Constraints module needs to know about the
/// trajectory segment being imputed (Figure 5): the endpoint tokens S and
/// D with their observation times, plus the tokens just before S (t1) and
/// just after D (t2) when they exist.
struct SegmentContext {
  TokenPoint s;
  TokenPoint d;
  std::optional<TokenPoint> prev;  // t1, before S
  std::optional<TokenPoint> next;  // t2, after D
};

/// The Spatial Constraints module (Section 5): filters BERT candidate
/// tokens through the speed-ellipse and direction-cone rules, and detects
/// cycles in partially imputed segments.
///
/// With `enable_constraints` false (ablation "No Const.") Filter is a
/// pass-through.
class SpatialConstraints {
 public:
  /// `grid` is borrowed and must outlive this object.
  SpatialConstraints(const GridSystem* grid, const KamelOptions& options);

  /// Sets the maximum speed used by the ellipse; called by the facade once
  /// the speed has been inferred from training data (Section 5.1).
  void set_max_speed_mps(double mps) { max_speed_mps_ = mps; }
  double max_speed_mps() const { return max_speed_mps_; }

  /// Drops candidates violating the speed or direction constraints.
  /// Relative order is preserved.
  std::vector<Candidate> Filter(const SegmentContext& context,
                                const std::vector<Candidate>& candidates) const;

  /// Speed constraint only: the candidate centroid must lie inside the
  /// ellipse whose foci are S and D and whose focal-distance sum is
  /// max_speed * (d.time - s.time), padded by one cell spacing so the
  /// ellipse is never thinner than the tokenization resolution.
  bool SatisfiesSpeed(const SegmentContext& context, CellId candidate) const;

  /// Direction constraint only: the candidate must not fall within the
  /// cone of `direction_cone_deg` degrees from S towards t1, nor from D
  /// towards t2 (Figure 5's red tokens).
  bool SatisfiesDirection(const SegmentContext& context,
                          CellId candidate) const;

  /// True when the last tokens of `cells` repeat as a block of length x
  /// for any 1 <= x <= window — the paper's cycle rule (Section 5.2).
  /// A result > 0 is the detected cycle length; 0 means no cycle.
  static int DetectSuffixCycle(const std::vector<CellId>& cells, int window);

  /// Cycle test around an interior insertion point: looks for any adjacent
  /// repeated block of length <= window that covers position `pos`.
  /// Needed because iterative imputation inserts mid-segment.
  static int DetectCycleAround(const std::vector<CellId>& cells, size_t pos,
                               int window);

 private:
  const GridSystem* grid_;
  bool enabled_;
  double cone_rad_;
  double max_speed_mps_;
};

}  // namespace kamel

#endif  // KAMEL_CORE_SPATIAL_CONSTRAINTS_H_
