#include "core/detokenizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/dbscan.h"

namespace kamel {

Detokenizer::Detokenizer(const GridSystem* grid,
                         const DbscanOptions& options)
    : grid_(grid), options_(options) {
  KAMEL_CHECK(grid != nullptr);
}

void Detokenizer::AddObservations(const TokenizedTrajectory& tokens) {
  for (const TokenPoint& token : tokens) {
    observations_[token.cell].push_back({token.position, token.heading});
    ++num_observations_;
  }
}

namespace {

double CircularMeanHeading(const std::vector<double>& headings) {
  double s = 0.0;
  double c = 0.0;
  for (double h : headings) {
    s += std::sin(h);
    c += std::cos(h);
  }
  return std::atan2(s, c);
}

}  // namespace

void Detokenizer::Refit() {
  clusters_.clear();
  const double eps = DegToRad(options_.eps_heading_deg);
  for (const auto& [cell, points] : observations_) {
    const size_t n = points.size();
    // Heading-space DBSCAN: points driving the same direction cluster
    // together; opposite lanes and crossing roads separate (Figure 8a).
    std::vector<int> labels =
        Dbscan(n,
               [&points](size_t i, size_t j) {
                 return AngleDifference(points[i].heading,
                                        points[j].heading);
               },
               eps, options_.min_points);

    int num_clusters = 0;
    for (int label : labels) num_clusters = std::max(num_clusters, label + 1);

    std::vector<TokenCluster> cell_clusters;
    if (num_clusters == 0) {
      // Figure 8b: not enough data for distinct clusters -> all points as
      // one cluster around the data centroid.
      Vec2 centroid{0.0, 0.0};
      std::vector<double> headings;
      headings.reserve(n);
      for (const Observation& o : points) {
        centroid = centroid + o.position;
        headings.push_back(o.heading);
      }
      centroid = centroid * (1.0 / static_cast<double>(n));
      cell_clusters.push_back({centroid, CircularMeanHeading(headings),
                               static_cast<int32_t>(n)});
    } else {
      for (int cluster = 0; cluster < num_clusters; ++cluster) {
        Vec2 centroid{0.0, 0.0};
        std::vector<double> headings;
        for (size_t i = 0; i < n; ++i) {
          if (labels[i] != cluster) continue;
          centroid = centroid + points[i].position;
          headings.push_back(points[i].heading);
        }
        if (headings.empty()) continue;
        centroid = centroid * (1.0 / static_cast<double>(headings.size()));
        cell_clusters.push_back({centroid, CircularMeanHeading(headings),
                                 static_cast<int32_t>(headings.size())});
      }
    }
    clusters_[cell] = std::move(cell_clusters);
  }
}

const std::vector<TokenCluster>& Detokenizer::ClustersOf(CellId cell) const {
  static const std::vector<TokenCluster> kEmpty;
  auto it = clusters_.find(cell);
  return it == clusters_.end() ? kEmpty : it->second;
}

Vec2 Detokenizer::PointOf(CellId cell,
                          std::optional<double> direction) const {
  const std::vector<TokenCluster>& cell_clusters = ClustersOf(cell);
  if (cell_clusters.empty()) {
    // Figure 8c: nothing known about this token -> cell centroid.
    return grid_->Centroid(cell);
  }
  if (cell_clusters.size() == 1 || !direction.has_value()) {
    // Figure 8b, or no direction context: the densest cluster.
    const TokenCluster* best = &cell_clusters[0];
    for (const TokenCluster& c : cell_clusters) {
      if (c.count > best->count) best = &c;
    }
    return best->centroid;
  }
  // Figure 8a: the cluster whose heading best matches the local segment
  // direction.
  const TokenCluster* best = &cell_clusters[0];
  double best_diff = AngleDifference(best->heading, *direction);
  for (const TokenCluster& c : cell_clusters) {
    const double diff = AngleDifference(c.heading, *direction);
    if (diff < best_diff) {
      best_diff = diff;
      best = &c;
    }
  }
  return best->centroid;
}

std::vector<Vec2> Detokenizer::DetokenizeInterior(
    const std::vector<CellId>& cells, const Vec2& s_pos,
    const Vec2& d_pos) const {
  std::vector<Vec2> out;
  if (cells.size() <= 2) return out;

  // Anchor positions for direction estimation: raw endpoints plus cell
  // centroids for the interior.
  std::vector<Vec2> anchors(cells.size());
  anchors.front() = s_pos;
  anchors.back() = d_pos;
  for (size_t i = 1; i + 1 < cells.size(); ++i) {
    anchors[i] = grid_->Centroid(cells[i]);
  }

  out.reserve(cells.size() - 2);
  for (size_t i = 1; i + 1 < cells.size(); ++i) {
    // Token direction = average of the incoming and outgoing angles
    // (Section 7, online detokenization).
    const double incoming = HeadingRadians(anchors[i - 1], anchors[i]);
    const double outgoing = HeadingRadians(anchors[i], anchors[i + 1]);
    const double direction =
        std::atan2(std::sin(incoming) + std::sin(outgoing),
                   std::cos(incoming) + std::cos(outgoing));
    out.push_back(PointOf(cells[i], direction));
  }
  return out;
}

void Detokenizer::Save(BinaryWriter* writer) const {
  writer->WriteString("kamel-detok-v1");
  writer->WriteU64(num_observations_);
  writer->WriteU32(static_cast<uint32_t>(clusters_.size()));
  for (const auto& [cell, cell_clusters] : clusters_) {
    writer->WriteU64(cell);
    writer->WriteU32(static_cast<uint32_t>(cell_clusters.size()));
    for (const TokenCluster& c : cell_clusters) {
      writer->WriteF64(c.centroid.x);
      writer->WriteF64(c.centroid.y);
      writer->WriteF64(c.heading);
      writer->WriteI32(c.count);
    }
  }
}

Status Detokenizer::Load(BinaryReader* reader) {
  KAMEL_ASSIGN_OR_RETURN(std::string magic, reader->ReadString());
  if (magic != "kamel-detok-v1") {
    return Status::IOError("bad detokenizer magic: " + magic);
  }
  clusters_.clear();
  observations_.clear();
  KAMEL_ASSIGN_OR_RETURN(num_observations_, reader->ReadU64());
  KAMEL_ASSIGN_OR_RETURN(uint32_t num_cells, reader->ReadU32());
  for (uint32_t i = 0; i < num_cells; ++i) {
    KAMEL_ASSIGN_OR_RETURN(uint64_t cell, reader->ReadU64());
    KAMEL_ASSIGN_OR_RETURN(uint32_t count, reader->ReadU32());
    std::vector<TokenCluster> cell_clusters(count);
    for (uint32_t j = 0; j < count; ++j) {
      KAMEL_ASSIGN_OR_RETURN(cell_clusters[j].centroid.x, reader->ReadF64());
      KAMEL_ASSIGN_OR_RETURN(cell_clusters[j].centroid.y, reader->ReadF64());
      KAMEL_ASSIGN_OR_RETURN(cell_clusters[j].heading, reader->ReadF64());
      KAMEL_ASSIGN_OR_RETURN(cell_clusters[j].count, reader->ReadI32());
    }
    clusters_[cell] = std::move(cell_clusters);
  }
  return Status::OK();
}

}  // namespace kamel
