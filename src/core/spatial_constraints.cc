#include "core/spatial_constraints.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace kamel {

SpatialConstraints::SpatialConstraints(const GridSystem* grid,
                                       const KamelOptions& options)
    : grid_(grid),
      enabled_(options.enable_constraints),
      cone_rad_(DegToRad(options.direction_cone_deg)),
      max_speed_mps_(options.max_speed_mps) {
  KAMEL_CHECK(grid != nullptr);
}

bool SpatialConstraints::SatisfiesSpeed(const SegmentContext& context,
                                        CellId candidate) const {
  if (max_speed_mps_ <= 0.0) return true;  // speed unknown: no constraint
  const double dt = std::fabs(context.d.time - context.s.time);
  const Vec2 c = grid_->Centroid(candidate);
  // Ellipse slack: a candidate centroid can sit up to one cell spacing
  // away from the true path even for a perfect prediction.
  const double budget =
      max_speed_mps_ * dt + 2.0 * grid_->NeighborSpacingMeters();
  const double focal_sum =
      Distance(c, context.s.position) + Distance(c, context.d.position);
  return focal_sum <= budget;
}

namespace {

// True when `candidate` lies within `cone` radians of the ray from
// `apex` towards `towards`.
bool InCone(const Vec2& apex, const Vec2& towards, const Vec2& candidate,
            double cone) {
  const Vec2 axis = towards - apex;
  const Vec2 dir = candidate - apex;
  if (axis.Norm() < 1e-9 || dir.Norm() < 1e-9) return false;
  const double angle = AngleDifference(std::atan2(axis.y, axis.x),
                                       std::atan2(dir.y, dir.x));
  return angle <= cone;
}

}  // namespace

bool SpatialConstraints::SatisfiesDirection(const SegmentContext& context,
                                            CellId candidate) const {
  const Vec2 c = grid_->Centroid(candidate);
  const Vec2 s = context.s.position;
  const Vec2 d = context.d.position;

  // Backward cone at S: from S towards its previous token t1; when t1 is
  // unknown, the natural "backwards" is away from D.
  const Vec2 back_ref = context.prev.has_value()
                            ? context.prev->position
                            : s + (s - d);
  if (InCone(s, back_ref, c, cone_rad_)) return false;

  // Forward-overshoot cone at D: from D towards its next token t2; when t2
  // is unknown, overshoot means continuing past D away from S.
  const Vec2 ahead_ref = context.next.has_value()
                             ? context.next->position
                             : d + (d - s);
  if (InCone(d, ahead_ref, c, cone_rad_)) return false;
  return true;
}

std::vector<Candidate> SpatialConstraints::Filter(
    const SegmentContext& context,
    const std::vector<Candidate>& candidates) const {
  if (!enabled_) return candidates;
  std::vector<Candidate> out;
  out.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    if (!SatisfiesSpeed(context, candidate.cell)) continue;
    if (!SatisfiesDirection(context, candidate.cell)) continue;
    out.push_back(candidate);
  }
  return out;
}

int SpatialConstraints::DetectSuffixCycle(const std::vector<CellId>& cells,
                                          int window) {
  const size_t n = cells.size();
  for (int x = 1; x <= window; ++x) {
    const size_t len = static_cast<size_t>(x);
    if (n < 2 * len) break;
    bool repeated = true;
    for (size_t i = 0; i < len; ++i) {
      if (cells[n - len + i] != cells[n - 2 * len + i]) {
        repeated = false;
        break;
      }
    }
    if (repeated) return x;
  }
  return 0;
}

int SpatialConstraints::DetectCycleAround(const std::vector<CellId>& cells,
                                          size_t pos, int window) {
  const size_t n = cells.size();
  for (int x = 1; x <= window; ++x) {
    const size_t len = static_cast<size_t>(x);
    if (n < 2 * len) break;
    // Any adjacent repeat [j, j+len) == [j+len, j+2len) covering `pos`.
    const size_t j_min = pos >= 2 * len - 1 ? pos - (2 * len - 1) : 0;
    const size_t j_max = std::min(pos, n - 2 * len);
    for (size_t j = j_min; j <= j_max && j + 2 * len <= n; ++j) {
      bool repeated = true;
      for (size_t i = 0; i < len; ++i) {
        if (cells[j + i] != cells[j + len + i]) {
          repeated = false;
          break;
        }
      }
      if (repeated) return x;
    }
  }
  return 0;
}

}  // namespace kamel
