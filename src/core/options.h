#ifndef KAMEL_CORE_OPTIONS_H_
#define KAMEL_CORE_OPTIONS_H_

#include <cstdint>

#include "bert/traj_bert.h"

namespace kamel {

/// Grid family used by the Tokenization module (Section 8.5 compares both).
enum class GridType { kHex, kSquare };

/// Multipoint imputation strategy (Section 6).
enum class ImputeMethod { kIterativeBert, kBidirectionalBeam };

/// DBSCAN parameters for the Detokenization module (Section 7). Points in
/// one token are clustered by travel direction.
struct DbscanOptions {
  /// Neighborhood radius in heading space, degrees.
  double eps_heading_deg = 30.0;
  /// Minimum neighbors (incl. the point) to seed a cluster.
  int min_points = 5;
};

/// All tunables of a KAMEL instance. Defaults follow Section 8 of the
/// paper ("Default values and parameter tuning") except where the value is
/// scale-dependent — those are set per scenario (see src/eval/scenario.h).
struct KamelOptions {
  // -- Tokenization (Section 3) -------------------------------------------
  GridType grid_type = GridType::kHex;
  /// Hexagon edge length H in meters (paper default 75 m).
  double hex_edge_m = 75.0;
  /// Square edge in meters; <= 0 derives the equal-area edge from
  /// hex_edge_m (the paper's 120 m for 75 m hexes).
  double square_edge_m = 0.0;

  // -- Partitioning (Section 4) -------------------------------------------
  bool enable_partitioning = true;
  /// Pyramid height H: levels run 0 (root) .. H (leaves). Paper default 10;
  /// scenarios use smaller spaces and heights.
  int pyramid_height = 10;
  /// Number of lowest maintained levels L (paper default 3).
  int pyramid_levels = 3;
  /// Minimum token count k to build a model at a leaf cell (threshold at
  /// level l is k * 4^(H - l)); neighbor-cell models need double.
  /// Paper default 20,000.
  int64_t model_token_threshold = 20000;
  /// Residency cap for snapshot loading: > 0 keeps at most this many
  /// pyramid models in memory, demand-loading the rest from the snapshot
  /// file through a sharded-mutex LRU cache (serving memory stays bounded
  /// for city-scale pyramids); 0 loads every model eagerly.
  int max_resident_models = 0;
  /// Byte-accounted residency budget for the same demand-load cache:
  /// > 0 bounds the total bytes of cached model sections (a far better
  /// proxy for memory than a model count when cell corpora — and hence
  /// model sizes — vary by orders of magnitude). Eviction walks each
  /// shard's LRU tail but never drops a model pinned by an in-flight
  /// imputation (its bytes cannot be reclaimed while a handle holds it).
  /// A single model larger than the whole budget is served without being
  /// cached at all. 0 = no byte bound. Either budget (> 0 here or in
  /// max_resident_models) enables lazy loading.
  uint64_t max_resident_bytes = 0;
  /// Demand-load retries after the first failed attempt (IO error or CRC
  /// mismatch), each preceded by a jittered exponential backoff. Once
  /// 1 + model_load_retries attempts have failed, the model's circuit
  /// breaker opens and requests fall through the pyramid to an ancestor
  /// or neighbor model instead of touching the disk again.
  int model_load_retries = 2;
  /// Base delay of the jittered exponential backoff between demand-load
  /// retries, milliseconds (doubles per attempt; jitter keeps concurrent
  /// retries from synchronizing). <= 0 retries immediately.
  double model_load_backoff_ms = 1.0;
  /// Seconds an open circuit breaker waits before letting one half-open
  /// probe reattempt the load (success re-closes it; failure re-opens).
  double model_breaker_cooldown_s = 5.0;
  /// Stuck-IO budget for one demand load (all retries included), seconds.
  /// A load that completes past it counts an IoWatchdog stall and opens
  /// the model's breaker even if it eventually succeeded — slow IO is
  /// failed IO for a latency-bounded serving path. <= 0 disables.
  double model_load_stall_budget_s = 5.0;

  // -- Spatial constraints (Section 5) ------------------------------------
  bool enable_constraints = true;
  /// Maximum vehicle speed in m/s for the speed-ellipse; <= 0 infers it
  /// from the training data (paper: "fixed speed inferred from its
  /// training trajectory data").
  double max_speed_mps = 0.0;
  /// Safety multiplier applied to the inferred speed.
  double speed_slack_factor = 1.5;
  /// Direction-cone half-angle in degrees (paper default 45).
  double direction_cone_deg = 45.0;
  /// Cycle-detection window x (paper default 6).
  int cycle_window = 6;

  // -- Multipoint imputation (Section 6) ----------------------------------
  bool enable_multipoint = true;
  ImputeMethod method = ImputeMethod::kBidirectionalBeam;
  /// Maximum allowed gap between consecutive output tokens, meters
  /// (paper default 100 m; converted to a grid-distance threshold of at
  /// least one cell).
  double max_gap_m = 100.0;
  /// Candidates requested from BERT per call.
  int top_k = 10;
  /// Beam width B (paper default 10).
  int beam_size = 10;
  /// Length-normalization strength alpha in [0, 1] (paper default 1).
  double length_norm_alpha = 1.0;
  /// Hard budget of BERT calls per segment; exceeded -> declared failure
  /// and linear fallback (Section 6).
  int max_bert_calls_per_segment = 96;
  /// Per-call wall-clock deadline for Impute, seconds; <= 0 disables.
  /// Once the deadline is crossed mid-trajectory, every remaining gap
  /// takes the paper's linear-line failure path instead of calling BERT,
  /// so an overloaded server degrades accuracy rather than latency.
  double impute_deadline_seconds = 0.0;

  // -- BERT encoder and training ------------------------------------------
  TrajBertOptions bert;
  /// Serving weight format written by snapshot saves (`kamel train
  /// --quantize`). Training always runs fp32; with a quantized format the
  /// builder block-encodes every big weight matrix at save time, so the
  /// snapshot (and the demand-load cache bytes) shrink to ~28% (q8_0) or
  /// ~16% (q4_0) of fp32 while accuracy stays within the conformance
  /// tolerances. kF32 keeps the historical snapshot bytes exactly.
  nn::WeightFormat serving_weight_format = nn::WeightFormat::kF32;

  // -- Detokenization (Section 7) -----------------------------------------
  DbscanOptions dbscan;

  /// Master seed for weight init, masking, and every stochastic choice.
  uint64_t seed = 42;
};

}  // namespace kamel

#endif  // KAMEL_CORE_OPTIONS_H_
