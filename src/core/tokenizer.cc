#include "core/tokenizer.h"

#include "common/check.h"

namespace kamel {

Tokenizer::Tokenizer(const GridSystem* grid,
                     const LocalProjection* projection)
    : grid_(grid), projection_(projection) {
  KAMEL_CHECK(grid != nullptr && projection != nullptr);
}

namespace {

// Travel heading at each point: direction to the next point; the last
// point inherits its predecessor's heading.
std::vector<double> Headings(const std::vector<Vec2>& pts) {
  std::vector<double> headings(pts.size(), 0.0);
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    headings[i] = HeadingRadians(pts[i], pts[i + 1]);
  }
  if (pts.size() >= 2) headings.back() = headings[pts.size() - 2];
  return headings;
}

}  // namespace

TokenizedTrajectory Tokenizer::Tokenize(const Trajectory& trajectory) const {
  TokenizedTrajectory out;
  out.reserve(trajectory.points.size());
  const std::vector<Vec2> pts = trajectory.ProjectedPoints(*projection_);
  const std::vector<double> headings = Headings(pts);
  for (size_t i = 0; i < pts.size(); ++i) {
    const CellId cell = grid_->CellOf(pts[i]);
    if (!out.empty() && out.back().cell == cell) continue;
    out.push_back({cell, trajectory.points[i].time, pts[i], headings[i]});
  }
  return out;
}

TokenizedTrajectory Tokenizer::TokenizePerPoint(
    const Trajectory& trajectory) const {
  TokenizedTrajectory out;
  out.reserve(trajectory.points.size());
  const std::vector<Vec2> pts = trajectory.ProjectedPoints(*projection_);
  const std::vector<double> headings = Headings(pts);
  for (size_t i = 0; i < pts.size(); ++i) {
    out.push_back({grid_->CellOf(pts[i]), trajectory.points[i].time, pts[i],
                   headings[i]});
  }
  return out;
}

std::vector<CellId> Tokenizer::Cells(const TokenizedTrajectory& tokens) {
  std::vector<CellId> cells;
  cells.reserve(tokens.size());
  for (const auto& t : tokens) cells.push_back(t.cell);
  return cells;
}

}  // namespace kamel
