#include "core/maintenance.h"

#include "common/check.h"

namespace kamel {

MaintenanceScheduler::MaintenanceScheduler(Kamel* system,
                                           MaintenanceOptions options)
    : system_(system), options_(options) {
  KAMEL_CHECK(system != nullptr);
  KAMEL_CHECK(options.min_batch_trajectories > 0,
              "batch threshold must be positive");
}

Status MaintenanceScheduler::Submit(Trajectory trajectory) {
  pending_points_ += trajectory.points.size();
  pending_.trajectories.push_back(std::move(trajectory));
  if (pending_.trajectories.size() >= options_.min_batch_trajectories ||
      pending_points_ >= options_.min_batch_points) {
    return Flush();
  }
  return Status::OK();
}

Status MaintenanceScheduler::Flush() {
  if (pending_.trajectories.empty()) return Status::OK();
  TrajectoryDataset batch;
  batch.trajectories.swap(pending_.trajectories);
  pending_points_ = 0;
  KAMEL_RETURN_NOT_OK(system_->Train(batch));
  ++batches_trained_;
  return Status::OK();
}

}  // namespace kamel
