#include "core/maintenance.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/check.h"

namespace kamel {

MaintenanceScheduler::MaintenanceScheduler(Kamel* system,
                                           MaintenanceOptions options)
    : system_(system), options_(options) {
  KAMEL_CHECK(system != nullptr);
  KAMEL_CHECK(options.min_batch_trajectories > 0,
              "batch threshold must be positive");
}

void MaintenanceScheduler::AttachWal(WriteAheadLog* wal,
                                     std::string checkpoint_path) {
  wal_ = wal;
  checkpoint_path_ = std::move(checkpoint_path);
  system_->AttachWal(wal);
}

Status MaintenanceScheduler::Submit(Trajectory trajectory) {
  if (wal_ != nullptr) {
    const bool can_gc = !checkpoint_path_.empty();
    if (can_gc && wal_->under_pressure() &&
        !pending_.trajectories.empty()) {
      // Proactive GC at the high-water mark: checkpoint now, while the
      // budget still has headroom, so the log sheds fully-covered
      // segments before appends start being refused.
      ++pressure_flushes_;
      KAMEL_RETURN_NOT_OK(Flush());
    }
    // Write-ahead: the submit must be durable (per the log's fsync
    // policy) before it is buffered — an acknowledged trajectory that
    // only lives in the pending batch would otherwise die with the
    // process.
    const std::vector<uint8_t> payload =
        EncodeTrajectoryPayload(trajectory);
    Result<uint64_t> appended = wal_->Append(WalRecordType::kSubmit, payload);
    if (!appended.ok() &&
        appended.status().code() == StatusCode::kResourceExhausted &&
        can_gc && !pending_.trajectories.empty()) {
      // The budget refused the append cleanly (nothing written).
      // Emergency checkpoint: train + snapshot + GC reclaims every
      // fully-covered segment, then retry the append once.
      KAMEL_RETURN_NOT_OK(Flush());
      appended = wal_->Append(WalRecordType::kSubmit, payload);
    }
    if (!appended.ok()) {
      if (appended.status().code() == StatusCode::kResourceExhausted) {
        // Shed: the trajectory was never acknowledged and no byte of it
        // reached the log — the caller may retry later or drop it.
        ++shed_submits_;
      }
      return appended.status();
    }
    pending_max_lsn_ = std::max(pending_max_lsn_, *appended);
  }
  pending_points_ += trajectory.points.size();
  pending_.trajectories.push_back(std::move(trajectory));
  if (ThresholdMet()) return Flush();
  return Status::OK();
}

void MaintenanceScheduler::RestorePending(Trajectory trajectory,
                                          uint64_t lsn) {
  pending_max_lsn_ = std::max(pending_max_lsn_, lsn);
  pending_points_ += trajectory.points.size();
  pending_.trajectories.push_back(std::move(trajectory));
}

Status MaintenanceScheduler::TrainPending() {
  if (pending_.trajectories.empty()) return Status::OK();
  // Train on the batch while retaining it: a failure (storage fault,
  // invalid state) must leave the acknowledged trajectories queued for
  // retry, not drop them on the floor.
  KAMEL_RETURN_NOT_OK(system_->Train(pending_));
  pending_.trajectories.clear();
  pending_points_ = 0;
  ++batches_trained_;
  return Status::OK();
}

Status MaintenanceScheduler::Flush() {
  if (pending_.trajectories.empty()) return Status::OK();
  const uint64_t upto = pending_max_lsn_;
  KAMEL_RETURN_NOT_OK(TrainPending());
  pending_max_lsn_ = 0;
  if (wal_ == nullptr) return Status::OK();

  // The marker makes the batch boundary durable: recovery re-trains
  // exactly the submits up to `upto` when it sees one, instead of
  // guessing at thresholds.
  KAMEL_ASSIGN_OR_RETURN(
      const uint64_t marker_lsn,
      wal_->Append(WalRecordType::kBatchTrained, EncodeLsnPayload(upto)));
  KAMEL_RETURN_NOT_OK(wal_->Sync());
  if (checkpoint_path_.empty()) return Status::OK();

  // Checkpoint: once the snapshot (trained state + ingest log) is
  // durably on disk, every record at or below the marker is redundant
  // and the log can drop fully-covered segments.
  system_->set_wal_applied_lsn(marker_lsn);
  KAMEL_RETURN_NOT_OK(system_->SaveToFile(checkpoint_path_));
  // The snapshot shares the volume with the log: charge its size against
  // the same disk budget (replacing the previous checkpoint's charge).
  std::error_code size_ec;
  const auto snapshot_bytes =
      std::filesystem::file_size(checkpoint_path_, size_ec);
  if (!size_ec) wal_->AccountExternalBytes(snapshot_bytes);
  return wal_->Checkpoint(marker_lsn);
}

Status MaintenanceScheduler::FlushRecovered() {
  KAMEL_RETURN_NOT_OK(TrainPending());
  pending_max_lsn_ = 0;
  return Status::OK();
}

Result<std::unique_ptr<WriteAheadLog>> OpenDurableIngestion(
    Kamel* system, MaintenanceScheduler* scheduler,
    const WalOptions& wal_options, const std::string& checkpoint_path,
    IngestRecoveryReport* report) {
  KAMEL_CHECK(system != nullptr);
  KAMEL_CHECK(scheduler != nullptr);
  IngestRecoveryReport local_report;
  if (report == nullptr) report = &local_report;
  *report = IngestRecoveryReport{};

  std::error_code ec;
  if (!checkpoint_path.empty() &&
      std::filesystem::exists(checkpoint_path, ec)) {
    KAMEL_RETURN_NOT_OK(
        system->LoadFromFile(checkpoint_path, &report->snapshot));
    report->snapshot_loaded = true;
  }

  KAMEL_ASSIGN_OR_RETURN(std::unique_ptr<WriteAheadLog> wal,
                         WriteAheadLog::Open(wal_options, &report->wal));

  // Replay the suffix the snapshot does not cover, in LSN order, through
  // the NORMAL ingestion paths so the recovered in-memory state is the
  // state a never-crashed process would hold. The log stays detached
  // until the replay is done: re-executed training must not append fresh
  // records (or advance the checkpoint) while older records are still
  // unreplayed — a crash mid-recovery would then skip them forever.
  const uint64_t applied = system->wal_applied_lsn();
  for (const WalRecord& record : report->wal.records) {
    if (record.lsn <= applied) {
      ++report->records_skipped;
      continue;
    }
    switch (record.type) {
      case WalRecordType::kSubmit: {
        KAMEL_ASSIGN_OR_RETURN(Trajectory trajectory,
                               DecodeTrajectoryPayload(record.payload));
        scheduler->RestorePending(std::move(trajectory), record.lsn);
        ++report->submits_replayed;
        break;
      }
      case WalRecordType::kBatchTrained: {
        // The marker says every pending submit (all have lsn < marker)
        // was consumed by one successful Train. Re-execute it; per-cell
        // training is deterministically seeded, so the rebuilt models
        // match the lost ones byte for byte.
        if (scheduler->pending_trajectories() > 0) {
          KAMEL_RETURN_NOT_OK(scheduler->FlushRecovered());
          ++report->batches_retrained;
        }
        break;
      }
      case WalRecordType::kStoreAppend:
        // Regenerated by the re-executed Train calls above; replaying it
        // too would double-store. (Standalone stores that attach a WAL
        // directly replay these via TrajectoryStore::ReplayWal instead.)
        break;
      case WalRecordType::kCheckpoint:
        break;  // consumed by WriteAheadLog::Open as the GC watermark
    }
  }

  // Go live, then run the one deferred threshold check on the restored
  // tail. At this point every surviving record has been applied, so the
  // checkpoint a threshold-triggered Flush() takes is safe.
  scheduler->AttachWal(wal.get(), checkpoint_path);
  if (scheduler->ThresholdMet()) {
    KAMEL_RETURN_NOT_OK(scheduler->Flush());
  }
  return wal;
}

}  // namespace kamel
