#ifndef KAMEL_CORE_KAMEL_SNAPSHOT_H_
#define KAMEL_CORE_KAMEL_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/detokenizer.h"
#include "core/imputer.h"
#include "core/model_repository.h"
#include "core/options.h"
#include "core/tokenizer.h"
#include "core/trajectory_store.h"
#include "geo/trajectory.h"

namespace kamel {

/// Outcome of one imputed segment, keyed by its endpoint observation
/// times (the evaluation joins these with ground truth to compute per-
/// road-type failure rates, Figure 12-I/II).
struct SegmentOutcome {
  double s_time = 0.0;
  double d_time = 0.0;
  bool failed = false;
};

/// Per-trajectory imputation accounting (Section 8 metrics need the
/// failure rate and timing; Section 6 caps BERT calls).
///
/// The degradation-ladder counters classify every segment by the level of
/// service it got: full_model (the finest covering model served it),
/// ancestor (a finer model exists but could not be served — open breaker,
/// failed demand load — so a coarser pyramid ancestor stood in), and the
/// linear failure paths (no_model / deadline / overload, all subsets of
/// failed_segments). full_model_segments + ancestor_segments counts the
/// model-served attempts; segments - that sum took a straight line
/// without consulting any model.
struct ImputeStats {
  int segments = 0;          // sparse gaps that needed imputation
  int failed_segments = 0;   // drawn as straight lines
  int no_model_segments = 0; // failures caused by missing model coverage
  int deadline_segments = 0; // failures caused by the per-call deadline
  int overload_segments = 0; // forced linear by overload degrade/drain
  int full_model_segments = 0;  // served by the finest covering model
  int ancestor_segments = 0;    // served by a coarser pyramid ancestor
  int64_t bert_calls = 0;
  double seconds = 0.0;
  std::vector<SegmentOutcome> outcomes;  // one per imputed segment
};

/// The imputed dense trajectory plus its accounting.
struct ImputedTrajectory {
  Trajectory trajectory;
  ImputeStats stats;
};

/// One sparse gap found by PlanImpute: the segment context Algorithm 1
/// feeds the imputer, plus the index of the gap's start token (the gap
/// lies between tokens[token_index] and tokens[token_index + 1]).
struct GapPlanEntry {
  size_t token_index = 0;
  SegmentContext context;
};

/// The deterministic decomposition of one sparse trajectory: its token
/// walk and every gap that needs imputation, in token order. A plan is
/// pure geometry — no model was consulted to build it — so a router can
/// compute it, ship each gap to the shard owning its MBR, and reassemble
/// with AssemblePlan into exactly the bytes single-process Impute would
/// have produced.
struct ImputePlan {
  TokenizedTrajectory tokens;
  std::vector<GapPlanEntry> gaps;
};

/// Interior points (exclusive of both endpoint observations) and the
/// per-gap slice of the ladder accounting for one imputed gap.
struct ImputedGap {
  std::vector<TrajPoint> interior;
  ImputeStats stats;
};

/// The minimum bounding rectangle of a gap's endpoints — the key model
/// retrieval (Section 4.1) and shard routing are both driven by.
BBox GapMbr(const SegmentContext& context);

/// Sums the counters of a batch of imputation results by walking them in
/// index order. Because the inputs are positioned by trajectory index (not
/// by completion order), the aggregate — including `bert_calls` and
/// `seconds` — is identical no matter how many threads produced the batch
/// or in what order they finished. Per-segment `outcomes` are likewise
/// concatenated in index order.
ImputeStats AggregateBatchStats(const std::vector<ImputedTrajectory>& batch);

/// Service level requested from KamelSnapshot::Impute. kFull walks the
/// degradation ladder (finest model -> pyramid ancestor -> straight
/// line); kLinearOnly skips model selection entirely and imputes every
/// gap with the paper's linear failure path — the bottom rung, used by
/// the serving engine's degrade overload policy where bounded latency
/// outranks accuracy.
enum class ImputeMode { kFull, kLinearOnly };

/// An immutable, shareable serving snapshot of a trained KAMEL system:
/// projection, grid, pyramid, model repository, spatial constraints,
/// detokenizer, and the inferred speed bound, all frozen at the moment
/// KamelBuilder::Snapshot() was called.
///
/// Thread model: every public method is const and safe to call from any
/// number of threads concurrently — nothing here is mutated after
/// construction, model handles are shared immutable state, and the only
/// internal synchronization is the repository's sharded LRU cache for
/// demand-loaded models. Hold it by std::shared_ptr<const KamelSnapshot>;
/// the ServingEngine pins one per in-flight imputation so a concurrent
/// retrain + snapshot swap never changes results mid-trajectory.
class KamelSnapshot {
 public:
  KamelSnapshot(const KamelSnapshot&) = delete;
  KamelSnapshot& operator=(const KamelSnapshot&) = delete;

  /// Online imputation of one sparse trajectory. Const and concurrency-
  /// safe; deterministic for a given snapshot (same input -> same bytes).
  Result<ImputedTrajectory> Impute(const Trajectory& sparse) const {
    return Impute(sparse, ImputeMode::kFull);
  }

  /// Imputation at an explicit service level. kFull walks the degradation
  /// ladder per segment: the finest covering model first, a coarser
  /// pyramid ancestor when the finest one cannot be served (open circuit
  /// breaker, failed demand load), and the linear failure path last.
  /// kLinearOnly jumps straight to the bottom rung for every gap — the
  /// serving engine uses it to bound latency under overload. Which rung
  /// served each segment is recorded in the ImputeStats ladder counters.
  Result<ImputedTrajectory> Impute(const Trajectory& sparse,
                                   ImputeMode mode) const;

  /// Validates and tokenizes `sparse` and lists every gap that needs
  /// imputation (pure geometry, no model access). Impute() is exactly
  /// PlanImpute + ImputeGap per gap + AssemblePlan; the pieces are public
  /// so the shard router can run the same pipeline with the middle step
  /// remoted to workers and still produce byte-identical output.
  Result<ImputePlan> PlanImpute(const Trajectory& sparse) const;

  /// Imputes one gap through the degradation ladder (or straight to the
  /// linear rung under kLinearOnly), returning its interior points and
  /// per-gap accounting. `deadline_expired` forces the linear failure
  /// path without consulting any model (the per-call deadline rung).
  ImputedGap ImputeGap(const SegmentContext& context, ImputeMode mode,
                       bool deadline_expired = false) const;

  /// Stitches per-gap results back into the dense trajectory: emits the
  /// token walk, splices each gap's interior at its token_index, merges
  /// the per-gap counters in token order, and restores a collapsed final
  /// observation. `gaps` must be positioned like `plan.gaps`.
  ImputedTrajectory AssemblePlan(const Trajectory& sparse,
                                 const ImputePlan& plan,
                                 std::vector<ImputedGap> gaps) const;

  /// Persists this snapshot (projection anchor, world box, speed, models,
  /// clusters) exactly like KamelBuilder::SaveToFile. Safe to call while
  /// other threads impute from the same snapshot.
  Status SaveToFile(const std::string& path) const;

  const KamelOptions& options() const { return options_; }
  const GridSystem& grid() const { return *grid_; }
  const LocalProjection& projection() const { return *projection_; }
  const ModelRepository& repository() const { return *repository_; }
  const Detokenizer& detokenizer() const { return *detokenizer_; }
  const Tokenizer& tokenizer() const { return *tokenizer_; }

  /// Speed bound used by the ellipse constraint, m/s.
  double max_speed_mps() const { return constraints_->max_speed_mps(); }

  /// Cumulative offline training time at snapshot creation, seconds.
  double total_train_seconds() const { return total_train_seconds_; }

 private:
  friend class KamelBuilder;
  KamelSnapshot() = default;

  /// Imputes one gap; appends interior points (or a straight line on
  /// failure) to `out_points`. `deadline_expired` forces the linear
  /// failure path without consulting the model.
  void ImputeSegment(const CandidateSource* model,
                     const SegmentContext& context, bool deadline_expired,
                     std::vector<TrajPoint>* out_points,
                     ImputeStats* stats) const;

  void AppendLinearFallback(const SegmentContext& context,
                            std::vector<TrajPoint>* out_points) const;

  KamelOptions options_;
  double total_train_seconds_ = 0.0;
  double inferred_speed_mps_ = 0.0;

  // Shared with the builder (and any sibling snapshots): these are never
  // mutated after the builder constructs them.
  std::shared_ptr<const LocalProjection> projection_;
  std::shared_ptr<const GridSystem> grid_;
  std::shared_ptr<const Pyramid> pyramid_;

  // Owned copies pinned at snapshot time. The repository copy shares the
  // (immutable) trained models with the builder but owns its index, so a
  // later retrain in the builder cannot change what this snapshot serves.
  std::unique_ptr<const Tokenizer> tokenizer_;
  std::unique_ptr<const ModelRepository> repository_;
  std::unique_ptr<const SpatialConstraints> constraints_;
  std::unique_ptr<const Imputer> imputer_;
  std::unique_ptr<const Detokenizer> detokenizer_;
};

/// The offline side of the builder/snapshot split: owns the mutable
/// training state (trajectory store, repository under maintenance,
/// detokenizer observations) and mints immutable KamelSnapshots for
/// serving. Not thread-safe — train from one thread, then hand the
/// snapshot to any number of serving threads.
class KamelBuilder {
 public:
  explicit KamelBuilder(const KamelOptions& options);
  ~KamelBuilder();

  KamelBuilder(const KamelBuilder&) = delete;
  KamelBuilder& operator=(const KamelBuilder&) = delete;

  /// Offline training path of Figure 1: tokenize, store, infer the speed
  /// bound, maintain the model repository, refit the detokenizer.
  /// Later batches enrich the system (Section 4.2).
  Status Train(const TrajectoryDataset& data);

  /// Freezes the current trained state into an immutable serving
  /// snapshot. FailedPrecondition before the first successful Train() or
  /// LoadFromFile(). Cheap relative to training: models are shared, only
  /// the repository index and detokenizer clusters are copied.
  Result<std::shared_ptr<const KamelSnapshot>> Snapshot() const;

  bool trained() const { return trained_; }
  const KamelOptions& options() const { return options_; }
  const GridSystem& grid() const { return *grid_; }
  const LocalProjection& projection() const { return *projection_; }
  const ModelRepository& repository() const { return *repository_; }

  /// Mutable repository access for offline reshaping between
  /// LoadFromFile and Snapshot — a shard worker prunes the index down to
  /// its partition (ModelRepository::RetainModels) here. Null before the
  /// first Train()/LoadFromFile.
  ModelRepository* mutable_repository() { return repository_.get(); }
  const Detokenizer& detokenizer() const { return *detokenizer_; }
  const TrajectoryStore& store() const { return *store_; }
  const Tokenizer& tokenizer() const { return *tokenizer_; }

  /// Speed bound used by the ellipse constraint, m/s (inferred from
  /// training data unless fixed in the options).
  double max_speed_mps() const;

  /// Cumulative offline training time (tokenization + model building +
  /// clustering), seconds — Figure 11(a).
  double total_train_seconds() const { return total_train_seconds_; }

  /// Persists the trained state (projection anchor, world box, speed,
  /// models, clusters, raw ingest log). Options are not stored: load with
  /// a builder constructed from the same options.
  ///
  /// The snapshot is crash-safe: bytes go to a temporary sibling file
  /// which is fsynced and atomically renamed over `path`, and every
  /// section carries a CRC32C so a later load detects damage.
  ///
  /// Unlike KamelSnapshot::SaveToFile, the builder's save includes the
  /// "ingest" section — every raw trajectory behind the store — so a
  /// reloaded builder resumes training (and WAL recovery re-trains) from
  /// exactly the state a never-restarted process would have. This is the
  /// checkpoint half of the durability protocol: a snapshot save makes
  /// WAL records at or below wal_applied_lsn() deletable.
  Status SaveToFile(const std::string& path) const;

  /// Loads a snapshot. Corruption confined to one model (or to the
  /// detokenizer) is quarantined: the load succeeds, the damaged part is
  /// dropped, `report` (optional) says what was lost, and serving
  /// degrades to the linear-line fallback for uncovered segments.
  /// Damage to the header or geometry section fails the whole load with
  /// a descriptive Status — never an abort.
  ///
  /// With options.max_resident_models > 0, intact model sections are
  /// indexed but not parsed: weights are demand-loaded from `path`
  /// through a bounded sharded-LRU cache on first use.
  ///
  /// When the file carries an "ingest" section (builder saves do), the
  /// trajectory store and the detokenizer's observation history are
  /// rebuilt from it through the normal tokenization gateway, so training
  /// can continue exactly where the saved process left off. A damaged
  /// ingest section is quarantined like a model: serving is unaffected,
  /// the store stays empty, and the report says so.
  Status LoadFromFile(const std::string& path,
                      LoadReport* report = nullptr);

  /// Every raw trajectory that contributed to the store, in ingest order
  /// (what the "ingest" snapshot section persists).
  const std::vector<Trajectory>& ingested() const { return ingested_; }

  /// Durability watermark: the highest WAL LSN whose effects are included
  /// in the next SaveToFile. Set by the maintenance scheduler before each
  /// checkpoint save; restored by LoadFromFile.
  uint64_t wal_applied_lsn() const { return wal_applied_lsn_; }
  void set_wal_applied_lsn(uint64_t lsn) { wal_applied_lsn_ = lsn; }

  /// Attaches a write-ahead log (borrowed; null detaches) to the
  /// trajectory store, so every Train() append is logged before it is
  /// applied. Safe to call before the first Train(): the attachment is
  /// remembered and applied when the store is created.
  void AttachWal(WriteAheadLog* wal);

 private:
  /// Lazily builds projection, grid, pyramid, and all modules from the
  /// first training batch's extent.
  Status InitializeGeometry(const TrajectoryDataset& data);

  /// 95th-percentile consecutive-point speed of the batch, slack-scaled
  /// (Section 5.1: "fixed speed inferred from its training data").
  void UpdateSpeedBound(const TrajectoryDataset& data);

  KamelOptions options_;
  bool trained_ = false;
  double total_train_seconds_ = 0.0;
  double inferred_speed_mps_ = 0.0;
  uint64_t wal_applied_lsn_ = 0;
  WriteAheadLog* wal_ = nullptr;  // borrowed; forwarded to the store
  /// Raw trajectories behind the store, in store order (the durable
  /// ingest log persisted by SaveToFile).
  std::vector<Trajectory> ingested_;

  // shared_ptr so snapshots can outlive the builder while borrowing its
  // geometry objects.
  std::shared_ptr<const LocalProjection> projection_;
  std::shared_ptr<const GridSystem> grid_;
  std::shared_ptr<const Pyramid> pyramid_;
  std::shared_ptr<TrajectoryStore> store_;
  std::unique_ptr<Tokenizer> tokenizer_;
  std::unique_ptr<ModelRepository> repository_;
  std::unique_ptr<SpatialConstraints> constraints_;
  std::unique_ptr<Detokenizer> detokenizer_;
};

}  // namespace kamel

#endif  // KAMEL_CORE_KAMEL_SNAPSHOT_H_
