#ifndef KAMEL_CORE_DBSCAN_H_
#define KAMEL_CORE_DBSCAN_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace kamel {

/// Point label produced by Dbscan: >= 0 is a cluster index, kDbscanNoise
/// marks outliers.
inline constexpr int kDbscanNoise = -1;

/// Classical DBSCAN [21] over an abstract metric: `distance(i, j)` returns
/// the distance between points i and j. O(n^2) neighborhood queries —
/// KAMEL runs it per grid cell where n is small (Section 7).
///
/// Returns one label per point. `min_points` counts the point itself,
/// matching the original formulation.
std::vector<int> Dbscan(size_t n,
                        const std::function<double(size_t, size_t)>& distance,
                        double eps, int min_points);

}  // namespace kamel

#endif  // KAMEL_CORE_DBSCAN_H_
