#ifndef KAMEL_CORE_SERVING_ENGINE_H_
#define KAMEL_CORE_SERVING_ENGINE_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/kamel_snapshot.h"
#include "geo/trajectory.h"

namespace kamel {

/// What the engine does with new work once `max_pending` imputations are
/// already queued or running (admission control).
enum class OverloadPolicy {
  /// Callers block until a slot frees (backpressure propagates upstream).
  /// A Drain() wakes blocked callers with kUnavailable.
  kBlock,
  /// Refuse immediately with kResourceExhausted; pending never exceeds
  /// max_pending. The client owns the retry.
  kShed,
  /// Admit, but serve the trajectory at ImputeMode::kLinearOnly — the
  /// bottom rung of the degradation ladder. Latency stays bounded
  /// because no BERT work is queued; accuracy is what degrades. Pending
  /// may transiently exceed max_pending, but each excess admission is
  /// cheap straight-line work.
  kDegrade,
};

/// Coarse health of the serving engine, for load balancers and probes.
/// Order is severity: anything past kServing means clients are getting
/// less than full service.
enum class HealthState {
  kServing,   // full service
  kDegraded,  // serving, but a breaker is open or degrade-mode is active
  kShedding,  // at the admission bound with kShed: refusing new work
  kDraining,  // terminal: finishing in-flight work, admitting nothing
};

const char* ToString(HealthState state);

struct EngineStats;

/// Renders stats + health as one JSON object (single line, stable key
/// order) — the status schema shared by `kamel stats`, the shard
/// worker's Stats RPC, and the router's per-shard aggregation, so every
/// observer of an engine speaks the same dialect.
std::string EngineStatsJson(const EngineStats& stats, HealthState health);

/// Point-in-time admission counters. Monotonic counters never reset;
/// `pending`, `io_stuck`, `cache_resident_bytes`, and `resource_pressure`
/// are instantaneous.
struct EngineStats {
  int64_t admitted = 0;   // work items accepted (incl. degraded)
  int64_t shed = 0;       // refused with kResourceExhausted
  int64_t degraded = 0;   // admitted at kLinearOnly under kDegrade
  int pending = 0;        // queued or running right now
  int peak_pending = 0;   // high-water mark of pending

  // -- RESOURCE_PRESSURE signal (resource-exhaustion hardening) ----------
  /// Some resource governor is currently engaged: an IO operation is
  /// hung past its watchdog budget, or the model cache is pinned over
  /// its byte budget. health() reports kDegraded while this holds.
  bool resource_pressure = false;
  /// IO operations (WAL fsync, snapshot save, model load) ever observed
  /// past their stall budget (IoWatchdog::stall_events, process-wide).
  int64_t io_stalls = 0;
  /// In-flight IO operations hung past their budget right now.
  int io_stuck = 0;
  /// Bytes held by the demand-load model cache (0 when eager-loaded).
  uint64_t cache_resident_bytes = 0;

  // -- Compute backend & weight storage (instantaneous) -------------------
  /// Name of the process-wide NN compute backend ("scalar"/"optimized").
  std::string backend;
  /// Resident models serving block-quantized weights.
  int quantized_models = 0;
  /// Weight bytes of resident fp32 models vs. quantized models — the
  /// fp32-vs-quantized memory split `kamel stats` reports.
  int64_t model_bytes_f32 = 0;
  int64_t model_bytes_quant = 0;
};

/// One mutually consistent observation of an engine: the counters and
/// the health verdict are computed from the SAME locked read of the
/// admission state and the SAME gather of the resource signals, so a
/// probe can never see contradictory pairs (e.g. health SERVING next to
/// resource_pressure=true, or pending > 0 with zero admitted).
struct EngineStatus {
  EngineStats stats;
  HealthState health = HealthState::kServing;
};

/// Tunables of the concurrent serving engine.
struct ServingOptions {
  /// Worker threads in the imputation pool; 0 uses the hardware
  /// concurrency (ThreadPool::NumDefaultThreads()).
  int num_threads = 0;
  /// Admission bound: maximum imputations queued or running at once
  /// across ImputeAsync and ImputeBatch; 0 disables admission control
  /// (unbounded, the deterministic default — batch results are then
  /// independent of thread count and arrival order).
  int max_pending = 0;
  /// What to do with work arriving beyond max_pending.
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
};

/// Concurrent serving front-end over an immutable KamelSnapshot: a work-
/// stealing thread pool runs Impute across trajectories in parallel,
/// behind an admission gate that bounds queued work (ServingOptions::
/// max_pending) and applies the configured OverloadPolicy beyond it.
///
/// Return conventions (see common/result.h): every serving call yields a
/// Result<T> or Status; ImputeAsync wraps that Result in a future rather
/// than throwing from pool threads. kResourceExhausted means shed (back
/// off or shrink the request); kUnavailable means the engine is draining
/// (retry against a different replica).
///
/// Thread model: all public methods are thread-safe. Each in-flight
/// imputation pins the snapshot that was current when it started
/// (shared_ptr), so UpdateSnapshot — e.g. after an offline retrain —
/// never changes results mid-trajectory and never blocks serving.
class ServingEngine {
 public:
  explicit ServingEngine(std::shared_ptr<const KamelSnapshot> snapshot,
                         ServingOptions options = {});

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Imputes one trajectory synchronously on the calling thread (the pool
  /// is not involved: a caller that is itself a pool task must not wait
  /// on the pool). Exempt from the admission bound — it consumes the
  /// caller's thread, not a pool slot — but refused with kUnavailable
  /// once Drain() has been called.
  Result<ImputedTrajectory> Impute(const Trajectory& sparse) const;

  /// Dispatches one imputation to the pool; the future carries the
  /// Result. Safe to drop the future — the task still runs. Subject to
  /// admission control: beyond max_pending the call blocks, sheds
  /// (kResourceExhausted), or degrades per the overload policy, and a
  /// draining engine refuses with kUnavailable.
  std::future<Result<ImputedTrajectory>> ImputeAsync(Trajectory sparse);

  /// Imputes every trajectory of the batch across the pool. Results are
  /// positioned by input index regardless of completion order, so with
  /// admission control off (max_pending == 0) the output — and any
  /// aggregate over it (AggregateBatchStats) — is byte-identical whether
  /// the pool has 1 thread or 16. On failures the Status of the lowest-
  /// index failing trajectory is returned — including admission refusals
  /// (each trajectory is admitted individually; under kBlock the calling
  /// thread backpressures between submissions).
  Result<std::vector<ImputedTrajectory>> ImputeBatch(
      const TrajectoryDataset& batch);

  /// Gap-granular serving entry for the shard worker: the whole request
  /// passes the admission gate as ONE unit of work (a worker's unit is
  /// the per-shard slice of a trajectory, not a trajectory), every gap is
  /// imputed at the admitted mode on the calling thread, and the slot is
  /// released before returning. kResourceExhausted when shed — the
  /// router's cue to fail over — kUnavailable when draining; under
  /// kDegrade beyond the bound every gap runs at kLinearOnly, the same
  /// ladder rung a local caller would get.
  Result<std::vector<ImputedGap>> ImputeGaps(
      const std::vector<SegmentContext>& gaps);

  /// The snapshot new imputations will use.
  std::shared_ptr<const KamelSnapshot> snapshot() const;

  /// Atomically swaps the serving snapshot (hot model roll). In-flight
  /// imputations finish on the snapshot they started with.
  void UpdateSnapshot(std::shared_ptr<const KamelSnapshot> snapshot);

  /// Coarse health for load balancers: kDraining after Drain();
  /// kShedding at the admission bound under kShed; kDegraded while the
  /// snapshot's model-load breakers are open, degrade-mode is active, or
  /// resource pressure holds (model cache pinned over its byte budget,
  /// or an IO operation hung past its watchdog budget); kServing
  /// otherwise. Recovers to kServing on its own once breakers re-close,
  /// pressure lifts, and the queue drains (except kDraining, terminal).
  /// Equivalent to status().health.
  HealthState health() const;

  /// Admission counters; `pending`/`peak_pending` cover pool-dispatched
  /// work (ImputeAsync, ImputeBatch). Equivalent to status().stats;
  /// callers that also want health should take one status() snapshot
  /// instead of separate stats()+health() calls, which can disagree.
  EngineStats stats() const;

  /// Counters + health as ONE consistent snapshot (one hold of the
  /// admission lock, one gather of the resource signals). This is what
  /// the Stats RPC, `kamel stats`, and the router's prober report.
  EngineStatus status() const;

  /// Stops admitting work (terminal) and blocks until every pending
  /// imputation has finished. Blocked kBlock callers wake with
  /// kUnavailable; subsequent calls to any Impute* return kUnavailable.
  /// Idempotent and safe to call from multiple threads.
  void Drain();

  bool draining() const;

  /// Service level for work that bypasses the admission gate (the
  /// streaming front-end): kLinearOnly while draining or past the
  /// admission bound under kDegrade, kFull otherwise.
  ImputeMode BypassMode() const;

  /// The pool is exposed for components that manage their own lifecycle
  /// on it (StreamingSession bounds and drains its dispatches itself, so
  /// its Emit path bypasses the engine's admission gate by design).
  ThreadPool* pool() { return &pool_; }
  int num_threads() const { return pool_.num_threads(); }
  const ServingOptions& serving_options() const { return options_; }

 private:
  /// Admission decision for one unit of pool work: the ImputeMode to run
  /// it at, kResourceExhausted when shed, kUnavailable when draining.
  /// Blocks under kBlock. On success the caller owes one ReleaseOne().
  Result<ImputeMode> AdmitOne();
  void ReleaseOne();

  ServingOptions options_;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const KamelSnapshot> snapshot_;

  mutable std::mutex admit_mu_;
  std::condition_variable admit_cv_;  // slot freed or draining began
  bool draining_ = false;
  int pending_ = 0;
  int peak_pending_ = 0;
  int64_t admitted_ = 0;
  int64_t shed_ = 0;
  int64_t degraded_ = 0;

  ThreadPool pool_;  // last member: destroyed (joined) first
};

/// Receiver of streaming imputation results. Methods are invoked from
/// serving-pool threads, possibly concurrently — implementations must be
/// thread-safe (or serialize internally like FunctionSink).
class ImputedSink {
 public:
  virtual ~ImputedSink() = default;

  /// One closed trajectory, imputed.
  virtual void OnImputed(int64_t object_id, ImputedTrajectory imputed) = 0;

  /// Imputation of a closed trajectory failed; default drops the error.
  virtual void OnImputeError(int64_t object_id, const Status& status) {
    (void)object_id;
    (void)status;
  }
};

/// Adapts a plain callback into an ImputedSink, serializing invocations
/// with a mutex so the callback itself need not be thread-safe.
class FunctionSink final : public ImputedSink {
 public:
  using Callback = std::function<void(int64_t object_id, ImputedTrajectory)>;

  explicit FunctionSink(Callback callback)
      : callback_(std::move(callback)) {}

  void OnImputed(int64_t object_id, ImputedTrajectory imputed) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (callback_) callback_(object_id, std::move(imputed));
  }

 private:
  std::mutex mu_;
  Callback callback_;
};

/// Resource limits for the streaming front-end. A public GPS feed is
/// adversarial: objects that never close, bursts of new object ids, and
/// garbage points must all degrade gracefully instead of growing buffers
/// without bound or aborting the server.
struct StreamingOptions {
  /// A reading gap beyond this closes the object's trip (seconds).
  double session_timeout_seconds = 300.0;
  /// Per-object buffered-point cap; a Push beyond it is refused with
  /// ResourceExhausted (backpressure: callers should EndTrajectory).
  size_t max_points_per_object = 100000;
  /// Total buffered-point cap across all objects; crossing it force-
  /// closes (imputes and emits) least-recently-active objects first.
  size_t max_total_points = 1000000;
  /// Open-object cap; a new object beyond it evicts the least-recently-
  /// active open object (its trajectory is imputed and emitted, not lost).
  size_t max_open_objects = 10000;
};

/// Online streaming front-end (Figure 1's "Batch/Online Stream" input):
/// GPS readings arrive one at a time per moving object; a trajectory is
/// closed when EndTrajectory is called or when a reading gap exceeds the
/// session timeout, and its imputation is dispatched to the engine's
/// thread pool — Push never blocks on BERT inference.
///
/// Hardened for untrusted feeds: every reading is validated (finite,
/// in-range coordinates), buffers are bounded (see StreamingOptions), and
/// overload evicts sessions in LRU order rather than failing the feed.
///
/// Thread model: Push/EndTrajectory/Flush are thread-safe (one internal
/// mutex over the buffers). Results reach `sink` from pool threads, in
/// completion order; sink == nullptr discards imputations (useful when
/// only the Status-returning control path is under test). The destructor
/// drains outstanding imputations, so the sink must outlive the session.
///
/// Overload: the session enforces its own bounds (StreamingOptions) and
/// dispatches straight to the engine's pool, bypassing the engine's
/// admission gate — its backpressure unit is buffered points, not queued
/// imputations. It does honor the ladder: trajectories emitted while the
/// engine is draining, or past its admission bound under kDegrade, run at
/// ImputeMode::kLinearOnly (see ServingEngine::BypassMode).
class StreamingSession {
 public:
  /// `engine` and `sink` are borrowed and must outlive the session; the
  /// engine's snapshot must come from a trained system.
  StreamingSession(ServingEngine* engine, ImputedSink* sink,
                   StreamingOptions options = {});
  ~StreamingSession();

  StreamingSession(const StreamingSession&) = delete;
  StreamingSession& operator=(const StreamingSession&) = delete;

  /// Feeds one reading; may trigger imputation of a timed-out trajectory
  /// or LRU eviction of other objects (dispatched, not awaited).
  /// InvalidArgument on malformed readings, ResourceExhausted when this
  /// object's buffer is full.
  Status Push(int64_t object_id, const TrajPoint& point);

  /// Closes one object's trajectory and dispatches its imputation.
  Status EndTrajectory(int64_t object_id);

  /// Closes all open trajectories (dispatched, not awaited).
  Status Flush();

  /// Blocks until every dispatched imputation has been delivered to the
  /// sink. Flush() + Drain() is the deterministic shutdown sequence.
  void Drain();

  size_t open_trajectories() const;
  size_t total_buffered_points() const;
  /// Objects force-closed by LRU eviction since construction.
  int64_t evictions() const;

 private:
  struct Buffer {
    Trajectory trajectory;
    std::list<int64_t>::iterator lru_it;  // position in lru_ (front = LRU)
  };

  /// Push body; `mu_` must be held (separate so the timeout path can
  /// re-enter without recursive locking).
  Status PushLocked(int64_t object_id, const TrajPoint& point);

  /// Hands the closed trajectory to the pool; requires `mu_` held.
  void Emit(int64_t object_id, Trajectory trajectory);

  /// Moves `object_id` to the most-recently-active end of the LRU list.
  void Touch(Buffer* buffer);

  /// Force-closes the least-recently-active object (skipping `protect`).
  Status EvictOne(int64_t protect);

  /// Removes the buffer and its LRU entry, returning the trajectory.
  Trajectory Detach(std::unordered_map<int64_t, Buffer>::iterator it);

  ServingEngine* engine_;
  ImputedSink* sink_;
  StreamingOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<int64_t, Buffer> buffers_;
  std::list<int64_t> lru_;  // front = least recently active
  size_t total_points_ = 0;
  int64_t evictions_ = 0;

  // Outstanding pool dispatches, for Drain()/destruction.
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  int64_t pending_emits_ = 0;
};

}  // namespace kamel

#endif  // KAMEL_CORE_SERVING_ENGINE_H_
