#include "core/imputer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"

namespace kamel {

Imputer::Imputer(const GridSystem* grid,
                 const SpatialConstraints* constraints,
                 const KamelOptions& options)
    : grid_(grid), constraints_(constraints), options_(options) {
  KAMEL_CHECK(grid != nullptr && constraints != nullptr);
  max_gap_cells_ = std::max(
      1, static_cast<int>(
             std::floor(options.max_gap_m / grid->NeighborSpacingMeters())));
}

int Imputer::FindFirstGap(const std::vector<CellId>& cells) const {
  for (size_t i = 0; i + 1 < cells.size(); ++i) {
    if (grid_->GridDistance(cells[i], cells[i + 1]) > max_gap_cells_) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<int> Imputer::FindGaps(const std::vector<CellId>& cells) const {
  std::vector<int> out;
  for (size_t i = 0; i + 1 < cells.size(); ++i) {
    if (grid_->GridDistance(cells[i], cells[i + 1]) > max_gap_cells_) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

namespace {

ImputedSegment Failure(const SegmentContext& context, int bert_calls) {
  ImputedSegment out;
  out.cells = {context.s.cell, context.d.cell};
  out.failed = true;
  out.probability = 0.0;
  out.normalized_score = 0.0;
  out.bert_calls = bert_calls;
  return out;
}

std::vector<CellId> Left(const std::vector<CellId>& cells, int gap) {
  return {cells.begin(), cells.begin() + gap + 1};
}
std::vector<CellId> Right(const std::vector<CellId>& cells, int gap) {
  return {cells.begin() + gap + 1, cells.end()};
}

double NormalizedScore(double prob, size_t total_cells, double alpha) {
  // |S| = number of imputed tokens (total minus the two endpoints).
  const double imputed =
      static_cast<double>(total_cells >= 2 ? total_cells - 2 : 0);
  return prob * std::pow(std::max(1.0, imputed), alpha);
}

}  // namespace

ImputedSegment IterativeBertImputer::Impute(const CandidateSource* model,
                                            const SegmentContext& context) const {
  // Algorithm 1. Segment starts as {S, D}; each iteration inserts the top
  // surviving candidate at the first gap until no gap remains.
  std::vector<CellId> cells = {context.s.cell, context.d.cell};
  double probability = 1.0;
  int calls = 0;
  int gap = FindFirstGap(cells);
  while (gap >= 0) {
    if (calls >= options_.max_bert_calls_per_segment) {
      return Failure(context, calls);
    }
    std::vector<Candidate> candidates =
        model->PredictMasked(Left(cells, gap), Right(cells, gap),
                             options_.top_k);
    ++calls;
    candidates = constraints_->Filter(context, candidates);

    bool inserted = false;
    for (const Candidate& candidate : candidates) {
      std::vector<CellId> attempt = cells;
      attempt.insert(attempt.begin() + gap + 1, candidate.cell);
      if (SpatialConstraints::DetectCycleAround(
              attempt, static_cast<size_t>(gap + 1),
              options_.cycle_window) > 0) {
        continue;  // Section 5.2: reject cycle-forming outcomes.
      }
      cells = std::move(attempt);
      probability *= candidate.prob;
      inserted = true;
      break;
    }
    if (!inserted) return Failure(context, calls);
    gap = FindFirstGap(cells);
  }

  ImputedSegment out;
  out.cells = std::move(cells);
  out.probability = probability;
  out.normalized_score = NormalizedScore(probability, out.cells.size(),
                                         options_.length_norm_alpha);
  out.bert_calls = calls;
  return out;
}

ImputedSegment BeamSearchImputer::Impute(const CandidateSource* model,
                                         const SegmentContext& context) const {
  // Algorithm 2. A "gap item" is one partial segment plus one of its gap
  // pointers; every iteration expands all gap items with one BERT call
  // each, then keeps the top-B new segments overall.
  struct BeamSegment {
    std::vector<CellId> cells;
    double prob = 1.0;
  };
  const int beam = std::max(1, options_.beam_size);
  const double alpha = options_.length_norm_alpha;

  BeamSegment initial{{context.s.cell, context.d.cell}, 1.0};
  if (FindFirstGap(initial.cells) < 0) {
    // Nothing to impute: the endpoints are already close enough.
    ImputedSegment out;
    out.cells = initial.cells;
    out.normalized_score = NormalizedScore(1.0, 2, alpha);
    return out;
  }

  std::vector<std::pair<BeamSegment, int>> all_gaps = {
      {initial, FindFirstGap(initial.cells)}};
  bool have_answer = false;
  BeamSegment best;
  double best_norm = 0.0;
  int calls = 0;

  while (!all_gaps.empty() && calls < options_.max_bert_calls_per_segment) {
    std::vector<BeamSegment> new_segments;
    for (const auto& [segment, gap] : all_gaps) {
      if (calls >= options_.max_bert_calls_per_segment) break;
      std::vector<Candidate> candidates = model->PredictMasked(
          Left(segment.cells, gap), Right(segment.cells, gap),
          std::max(options_.top_k, beam));
      ++calls;
      candidates = constraints_->Filter(context, candidates);
      int taken = 0;
      for (const Candidate& candidate : candidates) {
        if (taken >= beam) break;
        std::vector<CellId> cells = segment.cells;
        cells.insert(cells.begin() + gap + 1, candidate.cell);
        if (SpatialConstraints::DetectCycleAround(
                cells, static_cast<size_t>(gap + 1),
                options_.cycle_window) > 0) {
          continue;
        }
        new_segments.push_back(
            {std::move(cells), segment.prob * candidate.prob});
        ++taken;
      }
    }

    // Dedupe identical segments (different gap items can produce the same
    // insertion), keeping the higher probability.
    std::sort(new_segments.begin(), new_segments.end(),
              [](const BeamSegment& a, const BeamSegment& b) {
                if (a.cells != b.cells) return a.cells < b.cells;
                return a.prob > b.prob;
              });
    new_segments.erase(
        std::unique(new_segments.begin(), new_segments.end(),
                    [](const BeamSegment& a, const BeamSegment& b) {
                      return a.cells == b.cells;
                    }),
        new_segments.end());

    // Keep the top B by probability, bounded below by the best completed
    // normalized score (the paper's ProbLimit, Figure 7's "nothing less
    // than 0.12 is considered any further").
    std::sort(new_segments.begin(), new_segments.end(),
              [](const BeamSegment& a, const BeamSegment& b) {
                return a.prob > b.prob;
              });
    if (static_cast<int>(new_segments.size()) > beam) {
      new_segments.resize(static_cast<size_t>(beam));
    }

    all_gaps.clear();
    for (BeamSegment& segment : new_segments) {
      const std::vector<int> gaps = FindGaps(segment.cells);
      const double norm =
          NormalizedScore(segment.prob, segment.cells.size(), alpha);
      if (gaps.empty()) {
        if (!have_answer || norm > best_norm) {
          have_answer = true;
          best_norm = norm;
          best = std::move(segment);
        }
        continue;
      }
      if (have_answer && norm <= best_norm) continue;  // pruned by limit
      for (int gap : gaps) all_gaps.push_back({segment, gap});
    }
  }

  if (!have_answer) return Failure(context, calls);
  ImputedSegment out;
  out.cells = std::move(best.cells);
  out.probability = best.prob;
  out.normalized_score = best_norm;
  out.bert_calls = calls;
  return out;
}

ImputedSegment SinglePointImputer::Impute(const CandidateSource* model,
                                          const SegmentContext& context) const {
  std::vector<CellId> cells = {context.s.cell, context.d.cell};
  const int gap = FindFirstGap(cells);
  if (gap < 0) {
    ImputedSegment out;
    out.cells = std::move(cells);
    out.normalized_score = 1.0;
    return out;
  }
  std::vector<Candidate> candidates = model->PredictMasked(
      {context.s.cell}, {context.d.cell}, options_.top_k);
  candidates = constraints_->Filter(context, candidates);
  if (candidates.empty()) return Failure(context, /*bert_calls=*/1);

  cells = {context.s.cell, candidates.front().cell, context.d.cell};
  ImputedSegment out;
  out.cells = std::move(cells);
  out.probability = candidates.front().prob;
  out.bert_calls = 1;
  // A single token rarely closes the whole gap; the leftover distance is
  // implicitly a straight line, which the paper counts as failure.
  out.failed = FindFirstGap(out.cells) >= 0;
  out.normalized_score =
      out.failed ? 0.0
                 : NormalizedScore(out.probability, out.cells.size(),
                                   options_.length_norm_alpha);
  return out;
}

}  // namespace kamel
