#include "core/pyramid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace kamel {

Pyramid::Pyramid(const BBox& world, int height, int maintained_levels)
    : height_(height), maintained_levels_(maintained_levels) {
  KAMEL_CHECK(!world.Empty(), "pyramid world box must be non-empty");
  KAMEL_CHECK(height >= 0, "pyramid height must be >= 0");
  KAMEL_CHECK(maintained_levels >= 1 && maintained_levels <= height + 1,
              "maintained levels out of range");
  // Square the world up around its min corner so all cells are square.
  const double side = std::max(world.Width(), world.Height());
  world_ = BBox::FromCorners({world.min_x, world.min_y},
                             {world.min_x + side, world.min_y + side});
}

BBox Pyramid::CellBounds(const PyramidCell& cell) const {
  const double side = world_.Width() / static_cast<double>(1 << cell.level);
  const double x0 = world_.min_x + side * cell.x;
  const double y0 = world_.min_y + side * cell.y;
  return BBox::FromCorners({x0, y0}, {x0 + side, y0 + side});
}

PyramidCell Pyramid::CellAt(int level, const Vec2& p) const {
  KAMEL_CHECK(level >= 0 && level <= height_, "level out of range");
  const int n = 1 << level;
  const double side = world_.Width() / static_cast<double>(n);
  int x = static_cast<int>(std::floor((p.x - world_.min_x) / side));
  int y = static_cast<int>(std::floor((p.y - world_.min_y) / side));
  x = std::clamp(x, 0, n - 1);
  y = std::clamp(y, 0, n - 1);
  return {level, x, y};
}

PyramidCell Pyramid::SmallestEnclosing(const BBox& box) const {
  KAMEL_CHECK(!box.Empty(), "smallest-enclosing of empty box");
  for (int level = height_; level > 0; --level) {
    const PyramidCell lo = CellAt(level, {box.min_x, box.min_y});
    const PyramidCell hi = CellAt(level, {box.max_x, box.max_y});
    if (lo == hi && CellBounds(lo).Contains(box)) return lo;
  }
  return {0, 0, 0};
}

PyramidCell Pyramid::Parent(const PyramidCell& cell) const {
  KAMEL_CHECK(cell.level > 0, "root has no parent");
  return {cell.level - 1, cell.x / 2, cell.y / 2};
}

std::array<PyramidCell, 4> Pyramid::Children(const PyramidCell& cell) const {
  KAMEL_CHECK(cell.level < height_, "leaf has no children");
  const int l = cell.level + 1;
  const int x = cell.x * 2;
  const int y = cell.y * 2;
  return {PyramidCell{l, x, y}, PyramidCell{l, x + 1, y},
          PyramidCell{l, x, y + 1}, PyramidCell{l, x + 1, y + 1}};
}

std::vector<PyramidCell> Pyramid::EdgeNeighbors(
    const PyramidCell& cell) const {
  const int n = 1 << cell.level;
  std::vector<PyramidCell> out;
  const int dx[4] = {1, 0, -1, 0};
  const int dy[4] = {0, 1, 0, -1};
  for (int i = 0; i < 4; ++i) {
    const int x = cell.x + dx[i];
    const int y = cell.y + dy[i];
    if (x >= 0 && x < n && y >= 0 && y < n) {
      out.push_back({cell.level, x, y});
    }
  }
  return out;
}

int64_t Pyramid::ModelThreshold(int level, int64_t k) const {
  const int exponent = height_ - level;
  const double threshold =
      static_cast<double>(k) * std::pow(4.0, static_cast<double>(exponent));
  if (threshold >= 9.0e18) return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(threshold);
}

}  // namespace kamel
