#include "core/model_repository.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace kamel {

namespace {

// Deterministic per-cell seed salt so rebuilding the same repository from
// the same data yields identical models.
uint64_t CellSalt(const PyramidCell& cell, uint64_t kind) {
  return (static_cast<uint64_t>(cell.level) << 48) ^
         (static_cast<uint64_t>(static_cast<uint32_t>(cell.x)) << 24) ^
         static_cast<uint32_t>(cell.y) ^ (kind << 60);
}

}  // namespace

ModelRepository::ModelRepository(const Pyramid& pyramid,
                                 const KamelOptions& options,
                                 const TrajectoryStore* store)
    : pyramid_(pyramid), options_(options), store_(store) {
  KAMEL_CHECK(store != nullptr);
}

std::unique_ptr<TrajBert> ModelRepository::TrainOn(const BBox& bounds,
                                                   uint64_t salt,
                                                   ModelInfo* info,
                                                   const char* kind) {
  const std::vector<size_t> indices = store_->FullyEnclosed(bounds);
  std::vector<std::vector<CellId>> statements = store_->Statements(indices);
  // Statements with fewer than two tokens carry no transition signal.
  std::erase_if(statements,
                [](const std::vector<CellId>& s) { return s.size() < 2; });
  if (statements.empty()) return nullptr;

  int64_t tokens = 0;
  for (const auto& s : statements) tokens += static_cast<int64_t>(s.size());

  auto result = TrajBert::Train(statements, options_.bert,
                                options_.seed ^ salt);
  if (!result.ok()) {
    KAMEL_LOG(Warning) << "model training failed (" << kind
                       << "): " << result.status().ToString();
    return nullptr;
  }
  info->kind = kind;
  info->tokens_at_build = tokens;
  info->statements_at_build = static_cast<int64_t>(statements.size());
  info->build_count += 1;
  info->train_seconds = (*result)->train_stats().seconds;
  total_train_seconds_ += info->train_seconds;
  KAMEL_LOG(Debug) << "built " << kind << " model: "
                   << statements.size() << " statements, " << tokens
                   << " tokens, loss "
                   << (*result)->train_stats().final_loss;
  return std::move(result).value();
}

void ModelRepository::MaybeBuildSingle(const PyramidCell& cell) {
  const BBox bounds = pyramid_.CellBounds(cell);
  const int64_t tokens = store_->CountTokensIn(bounds);
  if (tokens <
      pyramid_.ModelThreshold(cell.level, options_.model_token_threshold)) {
    return;
  }
  Entry& entry = entries_[cell];
  auto model =
      TrainOn(bounds, CellSalt(cell, 1), &entry.single_info, "single");
  if (model != nullptr) {
    if (entry.single == nullptr) ++num_single_;
    entry.single = std::move(model);
  }
}

void ModelRepository::MaybeBuildNeighbors(const PyramidCell& cell,
                                          PairSet* built) {
  const BBox bounds = pyramid_.CellBounds(cell);
  const int64_t own_tokens = store_->CountTokensIn(bounds);
  for (const PyramidCell& neighbor : pyramid_.EdgeNeighbors(cell)) {
    const BBox nb_bounds = pyramid_.CellBounds(neighbor);
    const int64_t combined = own_tokens + store_->CountTokensIn(nb_bounds);
    // Neighbor-cell models double the single-cell threshold (Section 4.1).
    if (combined < 2 * pyramid_.ModelThreshold(
                           cell.level, options_.model_token_threshold)) {
      continue;
    }
    BBox pair_bounds = bounds;
    pair_bounds.Extend(nb_bounds);

    // The model lives at the west cell of an east-west pair and at the
    // north cell of a north-south pair. A batch may visit both endpoints;
    // `built` keeps each pair from being trained twice per batch.
    if (neighbor.y == cell.y) {
      const PyramidCell west = neighbor.x < cell.x ? neighbor : cell;
      if (!built->insert({west, /*south=*/false}).second) continue;
      Entry& entry = entries_[west];
      auto model = TrainOn(pair_bounds, CellSalt(west, 2), &entry.east_info,
                           "east-pair");
      if (model != nullptr) {
        if (entry.east_pair == nullptr) ++num_neighbor_;
        entry.east_pair = std::move(model);
      }
    } else {
      const PyramidCell north = neighbor.y > cell.y ? neighbor : cell;
      if (!built->insert({north, /*south=*/true}).second) continue;
      Entry& entry = entries_[north];
      auto model = TrainOn(pair_bounds, CellSalt(north, 3),
                           &entry.south_info, "south-pair");
      if (model != nullptr) {
        if (entry.south_pair == nullptr) ++num_neighbor_;
        entry.south_pair = std::move(model);
      }
    }
  }
}

Status ModelRepository::AddTrainingBatch(
    const std::vector<size_t>& new_indices) {
  if (!options_.enable_partitioning) {
    // Ablation "No Part.": one BERT model for the entire data (Section 8.7).
    auto model = TrainOn(pyramid_.world().Expanded(1.0), /*salt=*/0xA11,
                         &global_info_, "global");
    if (model == nullptr) {
      return Status::InvalidArgument(
          "no trainable statements in the store for the global model");
    }
    global_model_ = std::move(model);
    return Status::OK();
  }

  BBox batch_mbr;
  for (size_t index : new_indices) batch_mbr.Extend(store_->MbrOf(index));
  if (batch_mbr.Empty()) return Status::OK();

  const PyramidCell anchor = pyramid_.SmallestEnclosing(batch_mbr);

  // Collect every cell whose models steps (1)-(4) of Section 4.2 may
  // build, then train each at most once, deterministically ordered.
  std::unordered_set<PyramidCell, PyramidCellHash> cells;

  // Steps (1), (2) and (4): the anchor and its warranted descendants.
  // Descend while a child could still reach the minimum (leaf) threshold.
  std::vector<PyramidCell> stack = {anchor};
  while (!stack.empty()) {
    const PyramidCell cell = stack.back();
    stack.pop_back();
    cells.insert(cell);
    if (cell.level >= pyramid_.height()) continue;
    for (const PyramidCell& child : pyramid_.Children(cell)) {
      if (store_->CountTokensIn(pyramid_.CellBounds(child)) >=
          options_.model_token_threshold) {
        stack.push_back(child);
      }
    }
  }

  // Step (3): ancestors up to the lowest maintained level.
  PyramidCell cursor = anchor;
  while (cursor.level > pyramid_.lowest_maintained_level()) {
    cursor = pyramid_.Parent(cursor);
    if (!pyramid_.IsMaintained(cursor.level)) break;
    cells.insert(cursor);
  }

  std::vector<PyramidCell> ordered(cells.begin(), cells.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const PyramidCell& a, const PyramidCell& b) {
              if (a.level != b.level) return a.level > b.level;
              if (a.y != b.y) return a.y < b.y;
              return a.x < b.x;
            });
  PairSet built_pairs;
  for (const PyramidCell& cell : ordered) {
    if (!pyramid_.IsMaintained(cell.level)) continue;
    MaybeBuildSingle(cell);
    MaybeBuildNeighbors(cell, &built_pairs);
  }
  return Status::OK();
}

TrajBert* ModelRepository::LookupSingle(const PyramidCell& cell) const {
  auto it = entries_.find(cell);
  return it == entries_.end() ? nullptr : it->second.single.get();
}

TrajBert* ModelRepository::LookupPair(const PyramidCell& a,
                                      const PyramidCell& b) const {
  if (a.level != b.level) return nullptr;
  if (a.y == b.y && std::abs(a.x - b.x) == 1) {
    const PyramidCell& west = a.x < b.x ? a : b;
    auto it = entries_.find(west);
    return it == entries_.end() ? nullptr : it->second.east_pair.get();
  }
  if (a.x == b.x && std::abs(a.y - b.y) == 1) {
    const PyramidCell& north = a.y > b.y ? a : b;
    auto it = entries_.find(north);
    return it == entries_.end() ? nullptr : it->second.south_pair.get();
  }
  return nullptr;
}

TrajBert* ModelRepository::SelectModel(const BBox& mbr) const {
  if (!options_.enable_partitioning) return global_model_.get();
  if (mbr.Empty()) return nullptr;
  for (int level = pyramid_.height();
       level >= pyramid_.lowest_maintained_level(); --level) {
    const PyramidCell lo = pyramid_.CellAt(level, {mbr.min_x, mbr.min_y});
    const PyramidCell hi = pyramid_.CellAt(level, {mbr.max_x, mbr.max_y});
    if (lo == hi) {
      if (!pyramid_.CellBounds(lo).Contains(mbr)) continue;
      if (TrajBert* model = LookupSingle(lo)) return model;
    } else if ((lo.x == hi.x && std::abs(lo.y - hi.y) == 1) ||
               (lo.y == hi.y && std::abs(lo.x - hi.x) == 1)) {
      BBox pair = pyramid_.CellBounds(lo);
      pair.Extend(pyramid_.CellBounds(hi));
      if (!pair.Contains(mbr)) continue;
      if (TrajBert* model = LookupPair(lo, hi)) return model;
    }
  }
  return nullptr;
}

int ModelRepository::num_models() const {
  return num_single_ + num_neighbor_ + (global_model_ != nullptr ? 1 : 0);
}

std::vector<ModelInfo> ModelRepository::ModelInfos() const {
  std::vector<ModelInfo> out;
  if (global_model_ != nullptr) out.push_back(global_info_);
  for (const auto& [cell, entry] : entries_) {
    if (entry.single != nullptr) out.push_back(entry.single_info);
    if (entry.east_pair != nullptr) out.push_back(entry.east_info);
    if (entry.south_pair != nullptr) out.push_back(entry.south_info);
  }
  return out;
}

namespace {

void SaveInfo(BinaryWriter* writer, const ModelInfo& info) {
  writer->WriteString(info.kind);
  writer->WriteI64(info.tokens_at_build);
  writer->WriteI64(info.statements_at_build);
  writer->WriteI64(info.build_count);
  writer->WriteF64(info.train_seconds);
}

Status LoadInfo(BinaryReader* reader, ModelInfo* info) {
  KAMEL_ASSIGN_OR_RETURN(info->kind, reader->ReadString());
  KAMEL_ASSIGN_OR_RETURN(info->tokens_at_build, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(info->statements_at_build, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(info->build_count, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(info->train_seconds, reader->ReadF64());
  return Status::OK();
}

}  // namespace

void ModelRepository::Save(BinaryWriter* writer) const {
  writer->WriteString("kamel-repo-v1");
  writer->WriteU8(global_model_ != nullptr ? 1 : 0);
  if (global_model_ != nullptr) {
    SaveInfo(writer, global_info_);
    global_model_->Save(writer);
  }
  writer->WriteU32(static_cast<uint32_t>(entries_.size()));
  for (const auto& [cell, entry] : entries_) {
    writer->WriteI32(cell.level);
    writer->WriteI32(cell.x);
    writer->WriteI32(cell.y);
    uint8_t flags = 0;
    if (entry.single != nullptr) flags |= 1;
    if (entry.east_pair != nullptr) flags |= 2;
    if (entry.south_pair != nullptr) flags |= 4;
    writer->WriteU8(flags);
    if (entry.single != nullptr) {
      SaveInfo(writer, entry.single_info);
      entry.single->Save(writer);
    }
    if (entry.east_pair != nullptr) {
      SaveInfo(writer, entry.east_info);
      entry.east_pair->Save(writer);
    }
    if (entry.south_pair != nullptr) {
      SaveInfo(writer, entry.south_info);
      entry.south_pair->Save(writer);
    }
  }
  writer->WriteF64(total_train_seconds_);
}

Status ModelRepository::Load(BinaryReader* reader) {
  KAMEL_ASSIGN_OR_RETURN(std::string magic, reader->ReadString());
  if (magic != "kamel-repo-v1") {
    return Status::IOError("bad repository magic: " + magic);
  }
  entries_.clear();
  num_single_ = num_neighbor_ = 0;
  global_model_.reset();

  KAMEL_ASSIGN_OR_RETURN(uint8_t has_global, reader->ReadU8());
  if (has_global != 0) {
    KAMEL_RETURN_NOT_OK(LoadInfo(reader, &global_info_));
    KAMEL_ASSIGN_OR_RETURN(global_model_, TrajBert::Load(reader));
  }
  KAMEL_ASSIGN_OR_RETURN(uint32_t count, reader->ReadU32());
  for (uint32_t i = 0; i < count; ++i) {
    PyramidCell cell;
    KAMEL_ASSIGN_OR_RETURN(cell.level, reader->ReadI32());
    KAMEL_ASSIGN_OR_RETURN(cell.x, reader->ReadI32());
    KAMEL_ASSIGN_OR_RETURN(cell.y, reader->ReadI32());
    KAMEL_ASSIGN_OR_RETURN(uint8_t flags, reader->ReadU8());
    Entry& entry = entries_[cell];
    if (flags & 1) {
      KAMEL_RETURN_NOT_OK(LoadInfo(reader, &entry.single_info));
      KAMEL_ASSIGN_OR_RETURN(entry.single, TrajBert::Load(reader));
      ++num_single_;
    }
    if (flags & 2) {
      KAMEL_RETURN_NOT_OK(LoadInfo(reader, &entry.east_info));
      KAMEL_ASSIGN_OR_RETURN(entry.east_pair, TrajBert::Load(reader));
      ++num_neighbor_;
    }
    if (flags & 4) {
      KAMEL_RETURN_NOT_OK(LoadInfo(reader, &entry.south_info));
      KAMEL_ASSIGN_OR_RETURN(entry.south_pair, TrajBert::Load(reader));
      ++num_neighbor_;
    }
  }
  KAMEL_ASSIGN_OR_RETURN(total_train_seconds_, reader->ReadF64());
  return Status::OK();
}

}  // namespace kamel
