#include "core/model_repository.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <unordered_set>

#include "common/backoff.h"
#include "common/crc32c.h"
#include "common/fault_injection.h"
#include "common/io_env.h"
#include "common/io_watchdog.h"
#include "common/logging.h"

namespace kamel {

namespace {

// Deterministic per-cell seed salt so rebuilding the same repository from
// the same data yields identical models.
uint64_t CellSalt(const PyramidCell& cell, uint64_t kind) {
  return (static_cast<uint64_t>(cell.level) << 48) ^
         (static_cast<uint64_t>(static_cast<uint32_t>(cell.x)) << 24) ^
         static_cast<uint32_t>(cell.y) ^ (kind << 60);
}

}  // namespace

ShardedModelCache::ShardedModelCache(std::string path, int max_resident,
                                     uint64_t max_resident_bytes,
                                     LoadRetryPolicy retry, int num_shards)
    : path_(std::move(path)),
      // <= 0 models = no count cap (byte-only budgeting); otherwise split
      // the count across shards, at least one per shard.
      per_shard_capacity_(
          max_resident <= 0
              ? std::numeric_limits<size_t>::max()
              : std::max<size_t>(
                    1, static_cast<size_t>(max_resident) /
                           static_cast<size_t>(std::max(1, num_shards)))),
      max_bytes_(max_resident_bytes),
      retry_(retry) {
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

double ShardedModelCache::NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<ModelHandle> ShardedModelCache::LoadFromDisk(
    const LazyModelRef& ref) const {
  KAMEL_RETURN_NOT_OK(FaultInjector::Instance().Hit("repo.model.load"));
  if (!FaultInjector::Instance().Hit("model.load.slow").ok()) {
    // Hang simulation: sleep just past the stall budget so the watchdog
    // observes a stuck load; the load then completes normally.
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::min(0.25, std::max(0.0, retry_.stall_budget_s) + 0.05)));
  }
  KAMEL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> payload,
      io::ReadAt(path_, ref.payload_offset, ref.length, "model.io.read"));
  // The CRC recorded at index time guards against the file changing (or
  // rotting) between the index load and this demand load.
  if (Crc32c(payload.data(), payload.size()) != ref.stored_crc) {
    return Status::IOError("lazy model section failed its checksum");
  }
  BinaryReader reader(std::move(payload));
  // Section payload layout: kind, cell, TrajBert (verified at index time).
  KAMEL_RETURN_NOT_OK(reader.ReadString().status());
  KAMEL_RETURN_NOT_OK(reader.ReadI32().status());
  KAMEL_RETURN_NOT_OK(reader.ReadI32().status());
  KAMEL_RETURN_NOT_OK(reader.ReadI32().status());
  KAMEL_ASSIGN_OR_RETURN(std::unique_ptr<TrajBert> model,
                         TrajBert::Load(&reader));
  return ModelHandle(std::move(model));
}

Result<ModelHandle> ShardedModelCache::LoadWithRetries(
    const LazyModelRef& ref) const {
  RetryPolicy policy;
  policy.max_retries = retry_.max_retries;
  policy.base_backoff_ms = retry_.backoff_ms;
  ModelHandle model;
  // Seed per model: reproducible backoff schedules under test,
  // decorrelated schedules across models in production.
  const Status status = RetryWithBackoff(
      policy, 0xB4EA4E5u ^ static_cast<uint64_t>(ref.payload_offset),
      [&]() -> Status {
        Result<ModelHandle> loaded = LoadFromDisk(ref);
        if (!loaded.ok()) return loaded.status();
        model = *std::move(loaded);
        return Status::OK();
      });
  KAMEL_RETURN_NOT_OK(status);
  return model;
}

void ShardedModelCache::EvictLocked(Shard& shard) const {
  // Count pressure first (the legacy per-shard cap): unconditional.
  while (shard.entries.size() > per_shard_capacity_) {
    auto victim = shard.entries.find(shard.lru.back());
    resident_bytes_.fetch_sub(victim->second.bytes,
                              std::memory_order_relaxed);
    shard.entries.erase(victim);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  if (max_bytes_ == 0) return;
  // Byte pressure: walk this shard's LRU tail, skipping pinned models —
  // a handle held by an in-flight imputation keeps the weights alive, so
  // dropping the cache reference would lose the entry without reclaiming
  // a single byte. Pinned entries are picked up by a later trim.
  auto it = shard.lru.end();
  while (resident_bytes_.load(std::memory_order_relaxed) > max_bytes_ &&
         it != shard.lru.begin()) {
    --it;
    auto entry_it = shard.entries.find(*it);
    if (entry_it->second.model.use_count() > 1) {
      pinned_skips_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    resident_bytes_.fetch_sub(entry_it->second.bytes,
                              std::memory_order_relaxed);
    shard.entries.erase(entry_it);
    it = shard.lru.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedModelCache::TrimToBudget() const {
  if (max_bytes_ == 0) return;
  for (const auto& shard : shards_) {
    if (resident_bytes_.load(std::memory_order_relaxed) <= max_bytes_) {
      return;
    }
    std::lock_guard<std::mutex> lock(shard->mu);
    EvictLocked(*shard);
  }
}

void ShardedModelCache::ForEachResident(
    const std::function<void(const TrajBert&)>& fn) const {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->entries) {
      fn(*entry.model);
    }
  }
}

Result<ModelHandle> ShardedModelCache::GetOrLoad(const LazyModelRef& ref) {
  const size_t key = ref.payload_offset;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return it->second.model;
  }

  // Breaker check before any disk IO: an open breaker inside its cooldown
  // refuses immediately; past the cooldown this request becomes the
  // half-open probe and falls through to the load below.
  auto breaker_it = shard.breakers.find(key);
  if (breaker_it != shard.breakers.end() && breaker_it->second.open &&
      NowSeconds() - breaker_it->second.open_since_s <
          retry_.breaker_cooldown_s) {
    breaker_short_circuits_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "model load breaker open (offset " + std::to_string(key) +
        "); serving falls through to a pyramid ancestor");
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  // Load under the shard mutex: concurrent misses on other shards proceed
  // in parallel, and a thundering herd on one model does a single retry
  // sequence rather than N. The watchdog scope brackets the whole retry
  // sequence — a hung disk shows up in stuck_now() while this blocks.
  bool stalled = false;
  Result<ModelHandle> loaded = [&]() {
    auto watch =
        IoWatchdog::Instance().Watch("model.load", retry_.stall_budget_s);
    Result<ModelHandle> result = LoadWithRetries(ref);
    stalled = watch.stalled();
    return result;
  }();
  if (!loaded.ok() || stalled) {
    Breaker& breaker = shard.breakers[key];
    if (!breaker.open) {
      breaker.open = true;
      open_breakers_.fetch_add(1, std::memory_order_relaxed);
      breaker_opens_.fetch_add(1, std::memory_order_relaxed);
      KAMEL_LOG(Warning)
          << "model load breaker opened (offset " << key << "): "
          << (loaded.ok() ? "load exceeded its stall budget"
                          : loaded.status().ToString());
    }
    breaker.open_since_s = NowSeconds();  // probe failure restarts cooldown
    if (!loaded.ok()) return loaded.status();
    // Slow IO is failed IO for a latency-bounded serving path: the model
    // did arrive, so serve this one request, but leave the breaker open
    // and the model uncached — follow-ups fall through the pyramid
    // instead of queueing behind a struggling disk.
    return *std::move(loaded);
  }
  if (breaker_it != shard.breakers.end() && breaker_it->second.open) {
    // Successful half-open probe: the breaker re-closes.
    breaker_it->second.open = false;
    open_breakers_.fetch_sub(1, std::memory_order_relaxed);
    KAMEL_LOG(Info) << "model load breaker re-closed (offset " << key << ")";
  }
  ModelHandle model = *std::move(loaded);
  const uint64_t charge = ref.length;
  if (max_bytes_ > 0 && charge > max_bytes_) {
    // Larger than the whole budget: caching it would wedge the cache in
    // permanent over-budget. Serve it uncached — every request pays the
    // load, but the byte bound holds.
    uncacheable_loads_.fetch_add(1, std::memory_order_relaxed);
    return model;
  }
  shard.lru.push_front(key);
  shard.entries[key] = CacheEntry{model, shard.lru.begin(), charge};
  resident_bytes_.fetch_add(charge, std::memory_order_relaxed);
  EvictLocked(shard);
  return model;
}

BreakerState ShardedModelCache::breaker_state(const LazyModelRef& ref) const {
  const size_t key = ref.payload_offset;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.breakers.find(key);
  if (it == shard.breakers.end() || !it->second.open) {
    return BreakerState::kClosed;
  }
  return NowSeconds() - it->second.open_since_s < retry_.breaker_cooldown_s
             ? BreakerState::kOpen
             : BreakerState::kHalfOpen;
}

ModelRepository::ModelRepository(
    const Pyramid& pyramid, const KamelOptions& options,
    std::shared_ptr<const TrajectoryStore> store)
    : pyramid_(pyramid), options_(options), store_(std::move(store)) {}

ModelHandle ModelRepository::TrainOn(const BBox& bounds, uint64_t salt,
                                     ModelInfo* info, const char* kind) {
  KAMEL_CHECK(store_ != nullptr,
              "training on a serving-only repository copy");
  const std::vector<size_t> indices = store_->FullyEnclosed(bounds);
  std::vector<std::vector<CellId>> statements = store_->Statements(indices);
  // Statements with fewer than two tokens carry no transition signal.
  std::erase_if(statements,
                [](const std::vector<CellId>& s) { return s.size() < 2; });
  if (statements.empty()) return nullptr;

  int64_t tokens = 0;
  for (const auto& s : statements) tokens += static_cast<int64_t>(s.size());

  auto result = TrajBert::Train(statements, options_.bert,
                                options_.seed ^ salt);
  if (!result.ok()) {
    KAMEL_LOG(Warning) << "model training failed (" << kind
                       << "): " << result.status().ToString();
    return nullptr;
  }
  info->kind = kind;
  info->tokens_at_build = tokens;
  info->statements_at_build = static_cast<int64_t>(statements.size());
  info->build_count += 1;
  info->train_seconds = (*result)->train_stats().seconds;
  total_train_seconds_ += info->train_seconds;
  KAMEL_LOG(Debug) << "built " << kind << " model: "
                   << statements.size() << " statements, " << tokens
                   << " tokens, loss "
                   << (*result)->train_stats().final_loss;
  return ModelHandle(std::move(result).value());
}

void ModelRepository::MaybeBuildSingle(const PyramidCell& cell) {
  const BBox bounds = pyramid_.CellBounds(cell);
  const int64_t tokens = store_->CountTokensIn(bounds);
  if (tokens <
      pyramid_.ModelThreshold(cell.level, options_.model_token_threshold)) {
    return;
  }
  Entry& entry = entries_[cell];
  auto model =
      TrainOn(bounds, CellSalt(cell, 1), &entry.single.info, "single");
  if (model != nullptr) {
    if (!entry.single.present()) ++num_single_;
    entry.single.model = std::move(model);
    entry.single.lazy.reset();
  }
}

void ModelRepository::MaybeBuildNeighbors(const PyramidCell& cell,
                                          PairSet* built) {
  const BBox bounds = pyramid_.CellBounds(cell);
  const int64_t own_tokens = store_->CountTokensIn(bounds);
  for (const PyramidCell& neighbor : pyramid_.EdgeNeighbors(cell)) {
    const BBox nb_bounds = pyramid_.CellBounds(neighbor);
    const int64_t combined = own_tokens + store_->CountTokensIn(nb_bounds);
    // Neighbor-cell models double the single-cell threshold (Section 4.1).
    if (combined < 2 * pyramid_.ModelThreshold(
                           cell.level, options_.model_token_threshold)) {
      continue;
    }
    BBox pair_bounds = bounds;
    pair_bounds.Extend(nb_bounds);

    // The model lives at the west cell of an east-west pair and at the
    // north cell of a north-south pair. A batch may visit both endpoints;
    // `built` keeps each pair from being trained twice per batch.
    if (neighbor.y == cell.y) {
      const PyramidCell west = neighbor.x < cell.x ? neighbor : cell;
      if (!built->insert({west, /*south=*/false}).second) continue;
      Entry& entry = entries_[west];
      auto model = TrainOn(pair_bounds, CellSalt(west, 2),
                           &entry.east_pair.info, "east-pair");
      if (model != nullptr) {
        if (!entry.east_pair.present()) ++num_neighbor_;
        entry.east_pair.model = std::move(model);
        entry.east_pair.lazy.reset();
      }
    } else {
      const PyramidCell north = neighbor.y > cell.y ? neighbor : cell;
      if (!built->insert({north, /*south=*/true}).second) continue;
      Entry& entry = entries_[north];
      auto model = TrainOn(pair_bounds, CellSalt(north, 3),
                           &entry.south_pair.info, "south-pair");
      if (model != nullptr) {
        if (!entry.south_pair.present()) ++num_neighbor_;
        entry.south_pair.model = std::move(model);
        entry.south_pair.lazy.reset();
      }
    }
  }
}

Status ModelRepository::AddTrainingBatch(
    const std::vector<size_t>& new_indices) {
  if (!options_.enable_partitioning) {
    // Ablation "No Part.": one BERT model for the entire data (Section 8.7).
    auto model = TrainOn(pyramid_.world().Expanded(1.0), /*salt=*/0xA11,
                         &global_.info, "global");
    if (model == nullptr) {
      return Status::InvalidArgument(
          "no trainable statements in the store for the global model");
    }
    global_.model = std::move(model);
    global_.lazy.reset();
    return Status::OK();
  }

  BBox batch_mbr;
  for (size_t index : new_indices) batch_mbr.Extend(store_->MbrOf(index));
  if (batch_mbr.Empty()) return Status::OK();

  const PyramidCell anchor = pyramid_.SmallestEnclosing(batch_mbr);

  // Collect every cell whose models steps (1)-(4) of Section 4.2 may
  // build, then train each at most once, deterministically ordered.
  std::unordered_set<PyramidCell, PyramidCellHash> cells;

  // Steps (1), (2) and (4): the anchor and its warranted descendants.
  // Descend while a child could still reach the minimum (leaf) threshold.
  std::vector<PyramidCell> stack = {anchor};
  while (!stack.empty()) {
    const PyramidCell cell = stack.back();
    stack.pop_back();
    cells.insert(cell);
    if (cell.level >= pyramid_.height()) continue;
    for (const PyramidCell& child : pyramid_.Children(cell)) {
      if (store_->CountTokensIn(pyramid_.CellBounds(child)) >=
          options_.model_token_threshold) {
        stack.push_back(child);
      }
    }
  }

  // Step (3): ancestors up to the lowest maintained level.
  PyramidCell cursor = anchor;
  while (cursor.level > pyramid_.lowest_maintained_level()) {
    cursor = pyramid_.Parent(cursor);
    if (!pyramid_.IsMaintained(cursor.level)) break;
    cells.insert(cursor);
  }

  std::vector<PyramidCell> ordered(cells.begin(), cells.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const PyramidCell& a, const PyramidCell& b) {
              if (a.level != b.level) return a.level > b.level;
              if (a.y != b.y) return a.y < b.y;
              return a.x < b.x;
            });
  PairSet built_pairs;
  for (const PyramidCell& cell : ordered) {
    if (!pyramid_.IsMaintained(cell.level)) continue;
    MaybeBuildSingle(cell);
    MaybeBuildNeighbors(cell, &built_pairs);
  }
  return Status::OK();
}

ModelHandle ModelRepository::Resolve(const ModelSlot& slot) const {
  if (slot.model != nullptr) return slot.model;
  if (slot.lazy.has_value() && cache_ != nullptr) {
    Result<ModelHandle> loaded = cache_->GetOrLoad(*slot.lazy);
    if (loaded.ok()) return *std::move(loaded);
    // A failed demand load serves like a missing model: the caller walks
    // down the degradation ladder to a pyramid ancestor or the linear
    // fallback. Open-breaker refusals are the steady state of a damaged
    // shard — keep them off the Warning channel (opening was logged once).
    if (loaded.status().code() == StatusCode::kUnavailable) {
      KAMEL_LOG(Debug) << "lazy model load short-circuited: "
                       << loaded.status().ToString();
    } else {
      KAMEL_LOG(Warning) << "lazy model load failed: "
                         << loaded.status().ToString();
    }
  }
  return nullptr;
}

const ModelRepository::ModelSlot* ModelRepository::FindSingle(
    const PyramidCell& cell) const {
  auto it = entries_.find(cell);
  if (it == entries_.end() || !it->second.single.present()) return nullptr;
  return &it->second.single;
}

const ModelRepository::ModelSlot* ModelRepository::FindPair(
    const PyramidCell& a, const PyramidCell& b) const {
  if (a.level != b.level) return nullptr;
  const ModelSlot* slot = nullptr;
  if (a.y == b.y && std::abs(a.x - b.x) == 1) {
    const PyramidCell& west = a.x < b.x ? a : b;
    auto it = entries_.find(west);
    if (it != entries_.end()) slot = &it->second.east_pair;
  } else if (a.x == b.x && std::abs(a.y - b.y) == 1) {
    const PyramidCell& north = a.y > b.y ? a : b;
    auto it = entries_.find(north);
    if (it != entries_.end()) slot = &it->second.south_pair;
  }
  return slot != nullptr && slot->present() ? slot : nullptr;
}

ModelHandle ModelRepository::LookupSingle(const PyramidCell& cell) const {
  const ModelSlot* slot = FindSingle(cell);
  return slot == nullptr ? nullptr : Resolve(*slot);
}

ModelHandle ModelRepository::LookupPair(const PyramidCell& a,
                                        const PyramidCell& b) const {
  const ModelSlot* slot = FindPair(a, b);
  return slot == nullptr ? nullptr : Resolve(*slot);
}

ModelHandle ModelRepository::SelectModel(const BBox& mbr) const {
  return SelectModelLadder(mbr).model;
}

ModelRepository::ModelSelection ModelRepository::SelectModelLadder(
    const BBox& mbr) const {
  ModelSelection selection;
  if (!options_.enable_partitioning) {
    if (global_.present()) {
      selection.finest_level = 0;
      selection.model = Resolve(global_);
      if (selection.model != nullptr) selection.served_level = 0;
    }
    return selection;
  }
  if (mbr.Empty()) return selection;
  for (int level = pyramid_.height();
       level >= pyramid_.lowest_maintained_level(); --level) {
    const PyramidCell lo = pyramid_.CellAt(level, {mbr.min_x, mbr.min_y});
    const PyramidCell hi = pyramid_.CellAt(level, {mbr.max_x, mbr.max_y});
    const ModelSlot* slot = nullptr;
    if (lo == hi) {
      if (!pyramid_.CellBounds(lo).Contains(mbr)) continue;
      slot = FindSingle(lo);
    } else if ((lo.x == hi.x && std::abs(lo.y - hi.y) == 1) ||
               (lo.y == hi.y && std::abs(lo.x - hi.x) == 1)) {
      BBox pair = pyramid_.CellBounds(lo);
      pair.Extend(pyramid_.CellBounds(hi));
      if (!pair.Contains(mbr)) continue;
      slot = FindPair(lo, hi);
    }
    if (slot == nullptr) continue;
    // The index promises a model here even if it cannot be served right
    // now (open breaker, failed demand load): the first such level is the
    // ladder's reference point for "degraded".
    if (selection.finest_level < 0) selection.finest_level = level;
    selection.model = Resolve(*slot);
    if (selection.model != nullptr) {
      selection.served_level = level;
      return selection;
    }
  }
  return selection;
}

int ModelRepository::num_models() const {
  return num_single_ + num_neighbor_ + (global_.present() ? 1 : 0);
}

BBox ModelRepository::SingleBounds(const PyramidCell& cell) const {
  return pyramid_.CellBounds(cell);
}

BBox ModelRepository::EastPairBounds(const PyramidCell& cell) const {
  // An east-west pair is stored at its west cell (see
  // MaybeBuildNeighbors), so the partner is the east neighbor.
  BBox bounds = pyramid_.CellBounds(cell);
  bounds.Extend(pyramid_.CellBounds({cell.level, cell.x + 1, cell.y}));
  return bounds;
}

BBox ModelRepository::SouthPairBounds(const PyramidCell& cell) const {
  // A north-south pair is stored at its north cell; y grows north, so
  // the partner is at y - 1.
  BBox bounds = pyramid_.CellBounds(cell);
  bounds.Extend(pyramid_.CellBounds({cell.level, cell.x, cell.y - 1}));
  return bounds;
}

int ModelRepository::RetainModels(
    const std::function<bool(const BBox&)>& keep) {
  int dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& entry = it->second;
    const PyramidCell& cell = it->first;
    const auto drop_if = [&](ModelSlot* slot, const BBox& bounds,
                             bool pair) {
      if (!slot->present() || keep(bounds)) return;
      *slot = ModelSlot{};
      if (pair) {
        --num_neighbor_;
      } else {
        --num_single_;
      }
      ++dropped;
    };
    drop_if(&entry.single, SingleBounds(cell), /*pair=*/false);
    drop_if(&entry.east_pair, EastPairBounds(cell), /*pair=*/true);
    drop_if(&entry.south_pair, SouthPairBounds(cell), /*pair=*/true);
    if (!entry.single.present() && !entry.east_pair.present() &&
        !entry.south_pair.present()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

std::vector<ModelInfo> ModelRepository::ModelInfos() const {
  std::vector<ModelInfo> out;
  if (global_.present()) out.push_back(global_.info);
  for (const auto& [cell, entry] : entries_) {
    if (entry.single.present()) out.push_back(entry.single.info);
    if (entry.east_pair.present()) out.push_back(entry.east_pair.info);
    if (entry.south_pair.present()) out.push_back(entry.south_pair.info);
  }
  return out;
}

namespace {

void SaveInfo(BinaryWriter* writer, const ModelInfo& info) {
  writer->WriteString(info.kind);
  writer->WriteI64(info.tokens_at_build);
  writer->WriteI64(info.statements_at_build);
  writer->WriteI64(info.build_count);
  writer->WriteF64(info.train_seconds);
}

Status LoadInfo(BinaryReader* reader, ModelInfo* info) {
  KAMEL_ASSIGN_OR_RETURN(info->kind, reader->ReadString());
  KAMEL_ASSIGN_OR_RETURN(info->tokens_at_build, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(info->statements_at_build, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(info->build_count, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(info->train_seconds, reader->ReadF64());
  return Status::OK();
}

}  // namespace

std::string LoadReport::Summary() const {
  std::string out = std::to_string(models_loaded) + " models loaded, " +
                    std::to_string(models_quarantined) + " quarantined";
  if (repository_quarantined) out += ", repository index quarantined";
  if (detokenizer_quarantined) out += ", detokenizer quarantined";
  if (ingest_quarantined) out += ", ingest log quarantined";
  for (const std::string& note : quarantined) out += "; " + note;
  for (const std::string& note : notes) out += "; " + note;
  return out;
}

namespace {

std::string Describe(const std::string& kind, const PyramidCell& cell,
                     int slot) {
  if (slot == 0) return "global model";
  return kind + " model at level " + std::to_string(cell.level) +
         " cell (" + std::to_string(cell.x) + "," + std::to_string(cell.y) +
         ")";
}

}  // namespace

Result<ModelHandle> ModelRepository::ResolveForSave(
    const ModelSlot& slot) const {
  if (slot.model != nullptr) return slot.model;
  KAMEL_CHECK(slot.lazy.has_value(), "saving an empty model slot");
  if (cache_ == nullptr) {
    return Status::FailedPrecondition(
        "lazy model slot without a cache; cannot save");
  }
  return cache_->GetOrLoad(*slot.lazy);
}

Status ModelRepository::Save(BinaryWriter* writer,
                             nn::WeightFormat format) const {
  // Deterministic order, independent of hash-map iteration: the index and
  // the model sections that follow must agree.
  std::vector<std::pair<PyramidCell, const Entry*>> ordered;
  ordered.reserve(entries_.size());
  for (const auto& [cell, entry] : entries_) ordered.push_back({cell, &entry});
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.first.level != b.first.level) {
                return a.first.level < b.first.level;
              }
              if (a.first.y != b.first.y) return a.first.y < b.first.y;
              return a.first.x < b.first.x;
            });

  writer->BeginSection("repo.index");
  writer->WriteU8(global_.present() ? 1 : 0);
  if (global_.present()) SaveInfo(writer, global_.info);
  writer->WriteU32(static_cast<uint32_t>(ordered.size()));
  for (const auto& [cell, entry] : ordered) {
    writer->WriteI32(cell.level);
    writer->WriteI32(cell.x);
    writer->WriteI32(cell.y);
    uint8_t flags = 0;
    if (entry->single.present()) flags |= 1;
    if (entry->east_pair.present()) flags |= 2;
    if (entry->south_pair.present()) flags |= 4;
    writer->WriteU8(flags);
    if (entry->single.present()) SaveInfo(writer, entry->single.info);
    if (entry->east_pair.present()) SaveInfo(writer, entry->east_pair.info);
    if (entry->south_pair.present()) SaveInfo(writer, entry->south_pair.info);
  }
  writer->WriteF64(total_train_seconds_);
  writer->EndSection();

  const auto save_model = [this, writer, format](const char* kind,
                                                 const PyramidCell& cell,
                                                 const ModelSlot& slot)
      -> Status {
    KAMEL_ASSIGN_OR_RETURN(ModelHandle model, ResolveForSave(slot));
    writer->BeginSection("model");
    writer->WriteString(kind);
    writer->WriteI32(cell.level);
    writer->WriteI32(cell.x);
    writer->WriteI32(cell.y);
    KAMEL_RETURN_NOT_OK(model->Save(writer, format));
    writer->EndSection();
    return Status::OK();
  };
  if (global_.present()) {
    KAMEL_RETURN_NOT_OK(save_model("global", PyramidCell{}, global_));
  }
  for (const auto& [cell, entry] : ordered) {
    if (entry->single.present()) {
      KAMEL_RETURN_NOT_OK(save_model("single", cell, entry->single));
    }
    if (entry->east_pair.present()) {
      KAMEL_RETURN_NOT_OK(save_model("east-pair", cell, entry->east_pair));
    }
    if (entry->south_pair.present()) {
      KAMEL_RETURN_NOT_OK(save_model("south-pair", cell, entry->south_pair));
    }
  }
  return Status::OK();
}

ModelRepository::WeightResidency ModelRepository::GetWeightResidency() const {
  WeightResidency residency;
  const auto tally = [&residency](const TrajBert& model) {
    if (model.weight_format() == nn::WeightFormat::kF32) {
      ++residency.models_f32;
      residency.f32_bytes += model.WeightBytes();
    } else {
      ++residency.models_quant;
      residency.quant_bytes += model.WeightBytes();
    }
  };
  const auto tally_slot = [&tally](const ModelSlot& slot) {
    if (slot.model != nullptr) tally(*slot.model);
  };
  tally_slot(global_);
  for (const auto& [cell, entry] : entries_) {
    tally_slot(entry.single);
    tally_slot(entry.east_pair);
    tally_slot(entry.south_pair);
  }
  // Lazy slots hold no weights; whatever the cache currently has resident
  // is the demand-loaded share.
  if (cache_ != nullptr) cache_->ForEachResident(tally);
  return residency;
}

ModelRepository::ModelSlot* ModelRepository::SlotFor(
    const ExpectedModel& expected) {
  switch (expected.slot) {
    case 0:
      return &global_;
    case 1:
      return &entries_[expected.cell].single;
    case 2:
      return &entries_[expected.cell].east_pair;
    case 4:
      return &entries_[expected.cell].south_pair;
    default:
      return nullptr;
  }
}

Status ModelRepository::Load(BinaryReader* reader, LoadReport* report,
                             const std::string* source_path) {
  LoadReport local_report;
  if (report == nullptr) report = &local_report;
  entries_.clear();
  num_single_ = num_neighbor_ = 0;
  global_ = ModelSlot{};
  cache_.reset();
  const bool lazy = (options_.max_resident_models > 0 ||
                     options_.max_resident_bytes > 0) &&
                    source_path != nullptr;
  if (lazy) {
    cache_ = std::make_shared<ShardedModelCache>(
        *source_path, options_.max_resident_models,
        options_.max_resident_bytes,
        LoadRetryPolicy{options_.model_load_retries,
                        options_.model_load_backoff_ms,
                        options_.model_breaker_cooldown_s,
                        options_.model_load_stall_budget_s});
  }

  // Without a readable index there is nothing to quarantine against:
  // the caller decides whether to fail or serve model-less.
  KAMEL_RETURN_NOT_OK(reader->EnterSection("repo.index"));
  std::vector<ExpectedModel> expected;
  KAMEL_ASSIGN_OR_RETURN(uint8_t has_global, reader->ReadU8());
  if (has_global != 0) {
    ExpectedModel e;
    e.kind = "global";
    KAMEL_RETURN_NOT_OK(LoadInfo(reader, &e.info));
    expected.push_back(std::move(e));
  }
  KAMEL_ASSIGN_OR_RETURN(uint32_t count, reader->ReadU32());
  for (uint32_t i = 0; i < count; ++i) {
    PyramidCell cell;
    KAMEL_ASSIGN_OR_RETURN(cell.level, reader->ReadI32());
    KAMEL_ASSIGN_OR_RETURN(cell.x, reader->ReadI32());
    KAMEL_ASSIGN_OR_RETURN(cell.y, reader->ReadI32());
    KAMEL_ASSIGN_OR_RETURN(uint8_t flags, reader->ReadU8());
    const auto expect = [&](const char* kind, int slot) -> Status {
      ExpectedModel e;
      e.kind = kind;
      e.cell = cell;
      e.slot = slot;
      KAMEL_RETURN_NOT_OK(LoadInfo(reader, &e.info));
      expected.push_back(std::move(e));
      return Status::OK();
    };
    if (flags & 1) KAMEL_RETURN_NOT_OK(expect("single", 1));
    if (flags & 2) KAMEL_RETURN_NOT_OK(expect("east-pair", 2));
    if (flags & 4) KAMEL_RETURN_NOT_OK(expect("south-pair", 4));
  }
  KAMEL_ASSIGN_OR_RETURN(total_train_seconds_, reader->ReadF64());
  KAMEL_RETURN_NOT_OK(reader->LeaveSection());

  const auto quarantine = [report](const ExpectedModel& e,
                                   const std::string& why) {
    const std::string who = Describe(e.kind, e.cell, e.slot);
    ++report->models_quarantined;
    report->quarantined.push_back(who + ": " + why);
    KAMEL_LOG(Warning) << "quarantined " << who << ": " << why;
  };
  const auto count_installed = [this](const ExpectedModel& e) {
    if (e.slot == 1) ++num_single_;
    if (e.slot == 2 || e.slot == 4) ++num_neighbor_;
  };

  for (size_t i = 0; i < expected.size(); ++i) {
    const ExpectedModel& e = expected[i];
    Result<SectionInfo> section = reader->EnterSection();
    if (!section.ok() || section->name != "model") {
      // The frame stream itself is damaged; everything past this point is
      // unrecoverable (the caller's outer frame restores the cursor).
      if (section.ok()) KAMEL_RETURN_NOT_OK(reader->LeaveSection());
      const std::string why =
          section.ok() ? "model section stream out of sync"
                       : "unreadable section frame: " +
                             section.status().message();
      for (size_t j = i; j < expected.size(); ++j) {
        quarantine(expected[j], why);
      }
      break;
    }
    if (!section->crc_ok) {
      quarantine(e, "checksum mismatch (" + std::to_string(section->length) +
                        " bytes at offset " +
                        std::to_string(section->payload_offset) + ")");
      KAMEL_RETURN_NOT_OK(reader->LeaveSection());
      continue;
    }
    if (lazy) {
      // Verify the section matches the index promise, then record where it
      // lives instead of parsing the weights; the cache faults it in on
      // first SelectModel hit.
      Status header_ok = [&]() -> Status {
        KAMEL_ASSIGN_OR_RETURN(std::string kind, reader->ReadString());
        PyramidCell cell;
        KAMEL_ASSIGN_OR_RETURN(cell.level, reader->ReadI32());
        KAMEL_ASSIGN_OR_RETURN(cell.x, reader->ReadI32());
        KAMEL_ASSIGN_OR_RETURN(cell.y, reader->ReadI32());
        if (kind != e.kind || (e.slot != 0 && !(cell == e.cell))) {
          return Status::IOError(
              "model section does not match the index (found " + kind + ")");
        }
        return Status::OK();
      }();
      if (!header_ok.ok()) {
        quarantine(e, header_ok.message());
      } else {
        ModelSlot* slot = SlotFor(e);
        if (slot == nullptr) {
          quarantine(e, "bad model slot");
        } else {
          if (!slot->present()) count_installed(e);
          slot->model = nullptr;
          slot->lazy = LazyModelRef{section->payload_offset, section->length,
                                    section->stored_crc};
          slot->info = e.info;
          ++report->models_loaded;
        }
      }
    } else {
      Status loaded = LoadOneModel(reader, e);
      if (!loaded.ok()) quarantine(e, loaded.message());
      else ++report->models_loaded;
    }
    KAMEL_RETURN_NOT_OK(reader->LeaveSection());
  }
  return Status::OK();
}

Status ModelRepository::LoadOneModel(BinaryReader* reader,
                                     const ExpectedModel& expected) {
  KAMEL_ASSIGN_OR_RETURN(std::string kind, reader->ReadString());
  PyramidCell cell;
  KAMEL_ASSIGN_OR_RETURN(cell.level, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(cell.x, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(cell.y, reader->ReadI32());
  if (kind != expected.kind ||
      (expected.slot != 0 && !(cell == expected.cell))) {
    return Status::IOError("model section does not match the index (found " +
                           kind + ")");
  }
  KAMEL_ASSIGN_OR_RETURN(std::unique_ptr<TrajBert> model,
                         TrajBert::Load(reader));
  ModelSlot* slot = SlotFor(expected);
  if (slot == nullptr) return Status::Internal("bad model slot");
  const bool was_present = slot->present();
  slot->model = ModelHandle(std::move(model));
  slot->lazy.reset();
  slot->info = expected.info;
  if (!was_present) {
    if (expected.slot == 1) ++num_single_;
    if (expected.slot == 2 || expected.slot == 4) ++num_neighbor_;
  }
  return Status::OK();
}

}  // namespace kamel
