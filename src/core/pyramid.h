#ifndef KAMEL_CORE_PYRAMID_H_
#define KAMEL_CORE_PYRAMID_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "geo/bbox.h"

namespace kamel {

/// Address of one pyramid cell: level 0 is the root (whole space); level l
/// splits space into 2^l x 2^l equal cells; x grows east, y grows north.
struct PyramidCell {
  int level = 0;
  int x = 0;
  int y = 0;

  bool operator==(const PyramidCell&) const = default;
};

/// Hash functor so PyramidCell can key unordered containers.
struct PyramidCellHash {
  size_t operator()(const PyramidCell& c) const {
    uint64_t h = static_cast<uint64_t>(c.level) << 58;
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(c.x)) << 29;
    h ^= static_cast<uint32_t>(c.y);
    return std::hash<uint64_t>()(h * 0x9E3779B97F4A7C15ULL);
  }
};

/// Geometry of the disk-based hierarchical pyramid structure [5] backing
/// the model repository (Section 4.1). Only the lowest `maintained_levels`
/// levels hold models; the geometry still answers queries at any level.
class Pyramid {
 public:
  /// `world` is squared up (padded to its longer side) so cells stay
  /// square. Requires height >= 0 and 1 <= maintained_levels <= height+1.
  Pyramid(const BBox& world, int height, int maintained_levels);

  int height() const { return height_; }

  /// Lowest (coarsest) level that maintains models: H - L + 1.
  int lowest_maintained_level() const {
    return height_ - maintained_levels_ + 1;
  }

  bool IsMaintained(int level) const {
    return level >= lowest_maintained_level() && level <= height_;
  }

  /// Spatial extent of a cell.
  BBox CellBounds(const PyramidCell& cell) const;

  /// Cell containing `p` at `level` (coordinates clamped into the world).
  PyramidCell CellAt(int level, const Vec2& p) const;

  /// Deepest cell fully containing `box` (root if nothing deeper does).
  PyramidCell SmallestEnclosing(const BBox& box) const;

  PyramidCell Parent(const PyramidCell& cell) const;
  std::array<PyramidCell, 4> Children(const PyramidCell& cell) const;

  /// In-bounds edge neighbors (east, north, west, south order, skipping
  /// cells outside the world).
  std::vector<PyramidCell> EdgeNeighbors(const PyramidCell& cell) const;

  /// Token-count threshold for building a model at `level`:
  /// k * 4^(height - level) (Section 4.1), saturating instead of
  /// overflowing.
  int64_t ModelThreshold(int level, int64_t k) const;

  const BBox& world() const { return world_; }

 private:
  BBox world_;
  int height_;
  int maintained_levels_;
};

}  // namespace kamel

#endif  // KAMEL_CORE_PYRAMID_H_
