#ifndef KAMEL_CORE_DETOKENIZER_H_
#define KAMEL_CORE_DETOKENIZER_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "core/options.h"
#include "core/tokenizer.h"
#include "grid/grid_system.h"

namespace kamel {

/// One direction-coherent cluster of training points inside a token
/// (Figure 8a): where traffic flowing in `heading` actually drives within
/// the cell.
struct TokenCluster {
  Vec2 centroid;
  double heading = 0.0;  // circular mean of member headings, radians
  int32_t count = 0;
};

/// The Detokenization module (Section 7): converts imputed tokens back to
/// GPS points using per-token DBSCAN clusters learned offline.
///
/// Offline: every training observation (position + travel heading) is
/// grouped by token and clustered by heading. Online: each imputed token
/// is replaced by the centroid of the cluster whose heading best matches
/// the local segment direction; a token with one cluster returns that
/// cluster's centroid; a token never seen in training falls back to the
/// cell centroid (Figure 8's three cases).
class Detokenizer {
 public:
  /// `grid` is borrowed and must outlive this object.
  Detokenizer(const GridSystem* grid, const DbscanOptions& options);

  /// Accumulates per-point training observations (Tokenizer::
  /// TokenizePerPoint output). Call Refit() after adding batches.
  void AddObservations(const TokenizedTrajectory& per_point_tokens);

  /// Drops the accumulated observation history (clusters are kept).
  /// Used when the history is about to be replayed from a snapshot's
  /// ingest log, so restored observations are not double-counted.
  void ClearObservations() {
    observations_.clear();
    num_observations_ = 0;
  }

  /// (Re)clusters all accumulated observations.
  void Refit();

  /// Representative point for `cell` given the local travel direction
  /// (radians); no direction -> densest cluster. Implements the
  /// three-case rule of Figure 8.
  Vec2 PointOf(CellId cell, std::optional<double> direction) const;

  /// Converts the interior tokens of an imputed segment to points.
  /// `cells` must be the full segment S..D; `s_pos` and `d_pos` are the
  /// raw endpoint observations used both as anchors for direction
  /// computation and excluded from the output (only interior points are
  /// returned, in order).
  std::vector<Vec2> DetokenizeInterior(const std::vector<CellId>& cells,
                                       const Vec2& s_pos,
                                       const Vec2& d_pos) const;

  /// Clusters currently stored for a cell (empty if unseen).
  const std::vector<TokenCluster>& ClustersOf(CellId cell) const;

  size_t num_tokens_with_clusters() const { return clusters_.size(); }
  size_t num_observations() const { return num_observations_; }

  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  struct Observation {
    Vec2 position;
    double heading;
  };

  const GridSystem* grid_;
  DbscanOptions options_;
  std::unordered_map<CellId, std::vector<Observation>> observations_;
  std::unordered_map<CellId, std::vector<TokenCluster>> clusters_;
  size_t num_observations_ = 0;
};

}  // namespace kamel

#endif  // KAMEL_CORE_DETOKENIZER_H_
