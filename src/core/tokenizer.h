#ifndef KAMEL_CORE_TOKENIZER_H_
#define KAMEL_CORE_TOKENIZER_H_

#include <memory>
#include <vector>

#include "geo/projection.h"
#include "geo/trajectory.h"
#include "grid/grid_system.h"

namespace kamel {

/// One tokenized trajectory element: the cell (token) plus the raw
/// observation that produced it. Timestamps feed the speed constraints
/// (Section 5.1); positions and headings feed detokenizer clustering
/// (Section 7).
struct TokenPoint {
  CellId cell = kInvalidCellId;
  double time = 0.0;
  Vec2 position;
  double heading = 0.0;  // radians, travel direction at this observation
};

/// A trajectory expressed as tokens (the output of Figure 2).
using TokenizedTrajectory = std::vector<TokenPoint>;

/// The Tokenization module (Section 3): gateway converting GPS points to
/// grid-cell tokens. Consecutive points falling in the same cell collapse
/// into one token so a statement never stutters
/// ("t1 t1 t1 t2" -> "t1 t2"), which is what raises the training-data
/// factor (Section 1, challenge 2).
class Tokenizer {
 public:
  /// Neither pointer is owned; both must outlive the tokenizer.
  Tokenizer(const GridSystem* grid, const LocalProjection* projection);

  /// Tokenizes one trajectory, collapsing consecutive duplicates. Each
  /// token keeps the first observation of its run.
  TokenizedTrajectory Tokenize(const Trajectory& trajectory) const;

  /// Tokenizes without collapsing: one TokenPoint per GPS reading. Used by
  /// the Detokenization module to learn per-token point clusters.
  TokenizedTrajectory TokenizePerPoint(const Trajectory& trajectory) const;

  /// The cell sequence of a tokenized trajectory (the "statement").
  static std::vector<CellId> Cells(const TokenizedTrajectory& tokens);

  const GridSystem& grid() const { return *grid_; }
  const LocalProjection& projection() const { return *projection_; }

 private:
  const GridSystem* grid_;
  const LocalProjection* projection_;
};

}  // namespace kamel

#endif  // KAMEL_CORE_TOKENIZER_H_
