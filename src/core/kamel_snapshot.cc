#include "core/kamel_snapshot.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "geo/polyline.h"
#include "grid/hex_grid.h"
#include "grid/square_grid.h"

namespace kamel {

namespace {

std::unique_ptr<Imputer> MakeImputer(const GridSystem* grid,
                                     const SpatialConstraints* constraints,
                                     const KamelOptions& options) {
  if (!options.enable_multipoint) {
    return std::make_unique<SinglePointImputer>(grid, constraints, options);
  }
  if (options.method == ImputeMethod::kIterativeBert) {
    return std::make_unique<IterativeBertImputer>(grid, constraints, options);
  }
  return std::make_unique<BeamSearchImputer>(grid, constraints, options);
}

/// Shared by KamelBuilder::SaveToFile and KamelSnapshot::SaveToFile: both
/// persist exactly the same framed sections, so a snapshot written during
/// serving is indistinguishable from one written by the builder.
Status SaveSnapshotFile(const LocalProjection& projection,
                        const Pyramid& pyramid, double inferred_speed_mps,
                        double total_train_seconds,
                        const ModelRepository& repository,
                        const Detokenizer& detokenizer,
                        const std::vector<Trajectory>* ingest,
                        uint64_t wal_applied_lsn,
                        nn::WeightFormat weight_format,
                        const std::string& path) {
  BinaryWriter writer;
  // fp32 snapshots keep the version-2 header (and stay byte-identical to
  // pre-quantization builds); quantized weight sections bump the file to
  // version 3 so old readers refuse it cleanly instead of mis-parsing.
  writer.WriteMagicHeader(weight_format == nn::WeightFormat::kF32
                              ? kSnapshotVersion
                              : kSnapshotVersionQuant);
  writer.BeginSection("meta");
  writer.WriteF64(projection.origin().lat);
  writer.WriteF64(projection.origin().lng);
  const BBox& world = pyramid.world();
  writer.WriteF64(world.min_x);
  writer.WriteF64(world.min_y);
  writer.WriteF64(world.max_x);
  writer.WriteF64(world.max_y);
  writer.WriteF64(inferred_speed_mps);
  writer.WriteF64(total_train_seconds);
  writer.EndSection();
  // The outer "repo" frame is the recovery point for repository damage:
  // its length lets the loader skip even an internally torn repository
  // and still reach the detokenizer.
  writer.BeginSection("repo");
  KAMEL_RETURN_NOT_OK(repository.Save(&writer, weight_format));
  writer.EndSection();
  writer.BeginSection("detok");
  detokenizer.Save(&writer);
  writer.EndSection();
  if (ingest != nullptr) {
    // The ingest log turns a builder save into a durable checkpoint:
    // restoring it rebuilds the trajectory store and the detokenizer's
    // observation history, which is what makes WAL records at or below
    // wal_applied_lsn safe to delete. Serving snapshots omit it (they
    // never resume training), and old readers never reach it — the
    // previous sections are framed, so trailing data is invisible to
    // them.
    writer.BeginSection("ingest");
    writer.WriteU64(wal_applied_lsn);
    writer.WriteU64(static_cast<uint64_t>(ingest->size()));
    for (const Trajectory& trajectory : *ingest) {
      writer.WriteI64(trajectory.id);
      writer.WriteU32(static_cast<uint32_t>(trajectory.points.size()));
      for (const TrajPoint& point : trajectory.points) {
        writer.WriteF64(point.pos.lat);
        writer.WriteF64(point.pos.lng);
        writer.WriteF64(point.time);
      }
    }
    writer.EndSection();
  }
  return writer.FlushToFileAtomic(path);
}

}  // namespace

namespace {

/// Folds `s` into `total` (counters summed, outcomes concatenated).
void MergeStats(ImputeStats* total, const ImputeStats& s) {
  total->segments += s.segments;
  total->failed_segments += s.failed_segments;
  total->no_model_segments += s.no_model_segments;
  total->deadline_segments += s.deadline_segments;
  total->overload_segments += s.overload_segments;
  total->full_model_segments += s.full_model_segments;
  total->ancestor_segments += s.ancestor_segments;
  total->bert_calls += s.bert_calls;
  total->seconds += s.seconds;
  total->outcomes.insert(total->outcomes.end(), s.outcomes.begin(),
                         s.outcomes.end());
}

}  // namespace

ImputeStats AggregateBatchStats(const std::vector<ImputedTrajectory>& batch) {
  ImputeStats total;
  for (const ImputedTrajectory& imputed : batch) {
    MergeStats(&total, imputed.stats);
  }
  return total;
}

BBox GapMbr(const SegmentContext& context) {
  BBox mbr;
  mbr.Extend(context.s.position);
  mbr.Extend(context.d.position);
  return mbr;
}

// ---------------------------------------------------------------------------
// KamelSnapshot
// ---------------------------------------------------------------------------

void KamelSnapshot::AppendLinearFallback(
    const SegmentContext& context, std::vector<TrajPoint>* out_points) const {
  // Straight line with one point every max_gap_m (exclusive of endpoints).
  const Vec2 s = context.s.position;
  const Vec2 d = context.d.position;
  const double dist = Distance(s, d);
  const int steps = static_cast<int>(std::floor(dist / options_.max_gap_m));
  for (int i = 1; i <= steps; ++i) {
    const double t = static_cast<double>(i) / (steps + 1);
    const Vec2 p = s + (d - s) * t;
    out_points->push_back(
        {projection_->Unproject(p),
         context.s.time + t * (context.d.time - context.s.time)});
  }
}

void KamelSnapshot::ImputeSegment(const CandidateSource* model,
                                  const SegmentContext& context,
                                  bool deadline_expired,
                                  std::vector<TrajPoint>* out_points,
                                  ImputeStats* stats) const {
  ++stats->segments;
  stats->outcomes.push_back({context.s.time, context.d.time, false});
  SegmentOutcome& outcome = stats->outcomes.back();
  if (deadline_expired) {
    // Deadline overrun: remaining gaps take the paper's linear-line
    // failure path so the call returns promptly instead of piling up
    // BERT work behind an already-late response.
    ++stats->failed_segments;
    ++stats->deadline_segments;
    outcome.failed = true;
    AppendLinearFallback(context, out_points);
    return;
  }
  if (model == nullptr) {
    // Section 4.1: segments no model covers are imputed by a straight
    // line (and count as failures).
    ++stats->failed_segments;
    ++stats->no_model_segments;
    outcome.failed = true;
    AppendLinearFallback(context, out_points);
    return;
  }

  ImputedSegment segment = imputer_->Impute(model, context);
  stats->bert_calls += segment.bert_calls;
  if (segment.failed) {
    ++stats->failed_segments;
    outcome.failed = true;
    AppendLinearFallback(context, out_points);
    return;
  }

  const std::vector<Vec2> interior = detokenizer_->DetokenizeInterior(
      segment.cells, context.s.position, context.d.position);
  if (interior.empty()) return;

  // Timestamps: linear in arc length between the endpoint observations.
  std::vector<Vec2> path = {context.s.position};
  path.insert(path.end(), interior.begin(), interior.end());
  path.push_back(context.d.position);
  const double total_len = polyline::Length(path);
  double walked = 0.0;
  for (size_t i = 1; i + 1 < path.size(); ++i) {
    walked += Distance(path[i - 1], path[i]);
    const double fraction = total_len > 0.0 ? walked / total_len : 0.0;
    out_points->push_back(
        {projection_->Unproject(path[i]),
         context.s.time + fraction * (context.d.time - context.s.time)});
  }
}

Result<ImputePlan> KamelSnapshot::PlanImpute(const Trajectory& sparse) const {
  KAMEL_RETURN_NOT_OK(ValidateTrajectory(sparse));
  ImputePlan plan;
  plan.tokens = tokenizer_->Tokenize(sparse);
  const TokenizedTrajectory& tokens = plan.tokens;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (grid_->GridDistance(tokens[i].cell, tokens[i + 1].cell) <=
        imputer_->max_gap_cells()) {
      continue;  // already dense here
    }
    GapPlanEntry gap;
    gap.token_index = i;
    gap.context.s = tokens[i];
    gap.context.d = tokens[i + 1];
    if (i > 0) gap.context.prev = tokens[i - 1];
    if (i + 2 < tokens.size()) gap.context.next = tokens[i + 2];
    plan.gaps.push_back(std::move(gap));
  }
  return plan;
}

ImputedGap KamelSnapshot::ImputeGap(const SegmentContext& context,
                                    ImputeMode mode,
                                    bool deadline_expired) const {
  ImputedGap out;
  if (mode == ImputeMode::kLinearOnly) {
    // Bottom rung of the degradation ladder: the serving engine decided
    // accuracy is the thing to sacrifice, so skip model selection (and
    // any chance of a demand load) entirely.
    ++out.stats.segments;
    ++out.stats.failed_segments;
    ++out.stats.overload_segments;
    out.stats.outcomes.push_back({context.s.time, context.d.time, true});
    AppendLinearFallback(context, &out.interior);
    return out;
  }

  // Section 4.1 retrieval, ladder-aware: the finest covering model, or
  // a coarser pyramid ancestor when the finest one cannot be served
  // (open breaker, failed demand load). The handle pins the model for
  // the duration of the call even if the lazy cache evicts it
  // concurrently.
  ModelRepository::ModelSelection selection;
  if (!deadline_expired) {
    selection = repository_->SelectModelLadder(GapMbr(context));
  }
  if (selection.model != nullptr) {
    if (selection.degraded()) {
      ++out.stats.ancestor_segments;
    } else {
      ++out.stats.full_model_segments;
    }
  }
  ImputeSegment(selection.model.get(), context, deadline_expired,
                &out.interior, &out.stats);
  return out;
}

ImputedTrajectory KamelSnapshot::AssemblePlan(
    const Trajectory& sparse, const ImputePlan& plan,
    std::vector<ImputedGap> gaps) const {
  ImputedTrajectory out;
  out.trajectory.id = sparse.id;
  const TokenizedTrajectory& tokens = plan.tokens;
  if (tokens.size() < 2) {
    out.trajectory = sparse;
    return out;
  }

  std::vector<TrajPoint>* out_points = &out.trajectory.points;
  size_t next_gap = 0;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    // Original observation of the segment start.
    out_points->push_back(
        {projection_->Unproject(tokens[i].position), tokens[i].time});
    if (next_gap < plan.gaps.size() && next_gap < gaps.size() &&
        plan.gaps[next_gap].token_index == i) {
      ImputedGap& gap = gaps[next_gap];
      out_points->insert(out_points->end(), gap.interior.begin(),
                         gap.interior.end());
      MergeStats(&out.stats, gap.stats);
      ++next_gap;
    }
  }
  out_points->push_back(
      {projection_->Unproject(tokens.back().position), tokens.back().time});
  // Tokenization collapses same-cell runs to their first observation; if
  // the trajectory's final reading was collapsed away, restore it so the
  // output spans the full observed time range.
  if (!sparse.points.empty() &&
      sparse.points.back().time > out_points->back().time) {
    out_points->push_back(sparse.points.back());
  }
  return out;
}

Result<ImputedTrajectory> KamelSnapshot::Impute(const Trajectory& sparse,
                                                ImputeMode mode) const {
  Stopwatch watch;
  KAMEL_ASSIGN_OR_RETURN(ImputePlan plan, PlanImpute(sparse));
  std::vector<ImputedGap> gaps;
  gaps.reserve(plan.gaps.size());
  for (const GapPlanEntry& gap : plan.gaps) {
    const bool deadline_expired =
        mode == ImputeMode::kFull &&
        options_.impute_deadline_seconds > 0.0 &&
        watch.ElapsedSeconds() > options_.impute_deadline_seconds;
    gaps.push_back(ImputeGap(gap.context, mode, deadline_expired));
  }
  ImputedTrajectory out = AssemblePlan(sparse, plan, std::move(gaps));
  out.stats.seconds = watch.ElapsedSeconds();
  return out;
}

Status KamelSnapshot::SaveToFile(const std::string& path) const {
  return SaveSnapshotFile(*projection_, *pyramid_, inferred_speed_mps_,
                          total_train_seconds_, *repository_, *detokenizer_,
                          /*ingest=*/nullptr, /*wal_applied_lsn=*/0,
                          options_.serving_weight_format, path);
}

// ---------------------------------------------------------------------------
// KamelBuilder
// ---------------------------------------------------------------------------

KamelBuilder::KamelBuilder(const KamelOptions& options) : options_(options) {}
KamelBuilder::~KamelBuilder() = default;

Status KamelBuilder::InitializeGeometry(const TrajectoryDataset& data) {
  // Anchor the projection at the batch's geographic center.
  double min_lat = 90.0, max_lat = -90.0, min_lng = 180.0, max_lng = -180.0;
  size_t points = 0;
  for (const auto& trajectory : data.trajectories) {
    for (const auto& point : trajectory.points) {
      min_lat = std::min(min_lat, point.pos.lat);
      max_lat = std::max(max_lat, point.pos.lat);
      min_lng = std::min(min_lng, point.pos.lng);
      max_lng = std::max(max_lng, point.pos.lng);
      ++points;
    }
  }
  if (points == 0) {
    return Status::InvalidArgument("training dataset has no points");
  }
  projection_ = std::make_shared<const LocalProjection>(
      LatLng{(min_lat + max_lat) / 2.0, (min_lng + max_lng) / 2.0});

  if (options_.grid_type == GridType::kHex) {
    grid_ = std::make_shared<const HexGrid>(options_.hex_edge_m);
  } else {
    const double edge =
        options_.square_edge_m > 0.0
            ? options_.square_edge_m
            : SquareGrid::EdgeForEqualHexArea(options_.hex_edge_m);
    grid_ = std::make_shared<const SquareGrid>(edge);
  }
  tokenizer_ = std::make_unique<Tokenizer>(grid_.get(), projection_.get());
  store_ = std::make_shared<TrajectoryStore>();

  // Pyramid world: the batch MBR with 10% margin so later batches and the
  // imputation ellipses stay in bounds.
  BBox world = data.Mbr(*projection_);
  const double margin =
      0.1 * std::max({world.Width(), world.Height(), 100.0});
  pyramid_ = std::make_shared<const Pyramid>(world.Expanded(margin),
                                             options_.pyramid_height,
                                             options_.pyramid_levels);
  repository_ =
      std::make_unique<ModelRepository>(*pyramid_, options_, store_);
  constraints_ =
      std::make_unique<SpatialConstraints>(grid_.get(), options_);
  detokenizer_ =
      std::make_unique<Detokenizer>(grid_.get(), options_.dbscan);
  store_->AttachWal(wal_);
  return Status::OK();
}

void KamelBuilder::AttachWal(WriteAheadLog* wal) {
  wal_ = wal;
  if (store_ != nullptr) store_->AttachWal(wal);
}

void KamelBuilder::UpdateSpeedBound(const TrajectoryDataset& data) {
  if (options_.max_speed_mps > 0.0) {
    constraints_->set_max_speed_mps(options_.max_speed_mps);
    return;
  }
  std::vector<double> speeds;
  for (const auto& trajectory : data.trajectories) {
    for (size_t i = 1; i < trajectory.points.size(); ++i) {
      const double dt =
          trajectory.points[i].time - trajectory.points[i - 1].time;
      if (dt <= 0.0) continue;
      const double dist = HaversineMeters(trajectory.points[i - 1].pos,
                                          trajectory.points[i].pos);
      speeds.push_back(dist / dt);
    }
  }
  if (speeds.empty()) return;
  const size_t p95 = speeds.size() * 95 / 100;
  std::nth_element(speeds.begin(), speeds.begin() + p95, speeds.end());
  const double inferred = speeds[p95] * options_.speed_slack_factor;
  // Across batches keep the largest bound seen.
  inferred_speed_mps_ = std::max(inferred_speed_mps_, inferred);
  constraints_->set_max_speed_mps(inferred_speed_mps_);
}

Status KamelBuilder::Train(const TrajectoryDataset& data) {
  Stopwatch watch;
  // Validate before any geometry is derived: one NaN coordinate would
  // otherwise poison the projection anchor and the pyramid world.
  for (const auto& trajectory : data.trajectories) {
    KAMEL_RETURN_NOT_OK(ValidateTrajectory(trajectory));
  }
  if (projection_ == nullptr) {
    KAMEL_RETURN_NOT_OK(InitializeGeometry(data));
  }

  // Tokenization gateway (Section 3): everything passes through it first.
  std::vector<size_t> new_indices;
  new_indices.reserve(data.trajectories.size());
  for (const auto& trajectory : data.trajectories) {
    TokenizedTrajectory tokens = tokenizer_->Tokenize(trajectory);
    if (tokens.size() < 2) continue;
    size_t index = 0;
    KAMEL_RETURN_NOT_OK(store_->Append(std::move(tokens), &index));
    new_indices.push_back(index);
    // The raw trajectory rides along in the ingest log so a checkpoint
    // save captures the store's full provenance (not just its tokens).
    ingested_.push_back(trajectory);
    // Per-point observations feed detokenizer clustering (Section 7).
    detokenizer_->AddObservations(tokenizer_->TokenizePerPoint(trajectory));
  }
  if (new_indices.empty()) {
    return Status::InvalidArgument(
        "training batch produced no usable trajectories");
  }

  UpdateSpeedBound(data);
  KAMEL_RETURN_NOT_OK(repository_->AddTrainingBatch(new_indices));
  if (repository_->num_models() == 0) {
    KAMEL_LOG(Warning)
        << "no BERT model met its token threshold; imputation will fall "
           "back to straight lines until more data arrives";
  }
  detokenizer_->Refit();

  trained_ = true;
  total_train_seconds_ += watch.ElapsedSeconds();
  KAMEL_LOG(Info) << "trained on " << new_indices.size()
                  << " trajectories; models=" << repository_->num_models()
                  << " speed_bound=" << constraints_->max_speed_mps()
                  << " m/s";
  return Status::OK();
}

double KamelBuilder::max_speed_mps() const {
  return constraints_ != nullptr ? constraints_->max_speed_mps() : 0.0;
}

Result<std::shared_ptr<const KamelSnapshot>> KamelBuilder::Snapshot() const {
  if (!trained_) {
    return Status::FailedPrecondition(
        "KamelBuilder::Snapshot called before a successful Train() or "
        "LoadFromFile()");
  }
  auto snap = std::shared_ptr<KamelSnapshot>(new KamelSnapshot());
  snap->options_ = options_;
  snap->total_train_seconds_ = total_train_seconds_;
  snap->inferred_speed_mps_ = inferred_speed_mps_;
  snap->projection_ = projection_;
  snap->grid_ = grid_;
  snap->pyramid_ = pyramid_;
  snap->tokenizer_ =
      std::make_unique<Tokenizer>(grid_.get(), projection_.get());
  // Copying the repository shares the trained models (and the lazy cache)
  // but duplicates the index, pinning this snapshot's model set.
  snap->repository_ = std::make_unique<const ModelRepository>(*repository_);
  auto constraints =
      std::make_unique<SpatialConstraints>(grid_.get(), options_);
  constraints->set_max_speed_mps(constraints_->max_speed_mps());
  // The imputer must point at the snapshot's own constraints; a unique_ptr
  // move never relocates the pointee.
  snap->imputer_ = MakeImputer(grid_.get(), constraints.get(), options_);
  snap->constraints_ = std::move(constraints);
  snap->detokenizer_ = std::make_unique<const Detokenizer>(*detokenizer_);
  return std::shared_ptr<const KamelSnapshot>(std::move(snap));
}

Status KamelBuilder::SaveToFile(const std::string& path) const {
  if (!trained_) {
    return Status::FailedPrecondition("cannot save an untrained system");
  }
  return SaveSnapshotFile(*projection_, *pyramid_, inferred_speed_mps_,
                          total_train_seconds_, *repository_, *detokenizer_,
                          &ingested_, wal_applied_lsn_,
                          options_.serving_weight_format, path);
}

Status KamelBuilder::LoadFromFile(const std::string& path,
                                  LoadReport* report) {
  LoadReport local_report;
  if (report == nullptr) report = &local_report;
  *report = LoadReport{};

  KAMEL_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  KAMEL_RETURN_NOT_OK(reader.ReadMagicHeader().status());

  // Geometry is load-bearing for every module: damage here fails the
  // whole load (there is nothing sensible to serve without it).
  KAMEL_RETURN_NOT_OK(reader.EnterSection("meta"));
  LatLng origin;
  KAMEL_ASSIGN_OR_RETURN(origin.lat, reader.ReadF64());
  KAMEL_ASSIGN_OR_RETURN(origin.lng, reader.ReadF64());
  BBox world;
  KAMEL_ASSIGN_OR_RETURN(world.min_x, reader.ReadF64());
  KAMEL_ASSIGN_OR_RETURN(world.min_y, reader.ReadF64());
  KAMEL_ASSIGN_OR_RETURN(world.max_x, reader.ReadF64());
  KAMEL_ASSIGN_OR_RETURN(world.max_y, reader.ReadF64());
  KAMEL_ASSIGN_OR_RETURN(inferred_speed_mps_, reader.ReadF64());
  KAMEL_ASSIGN_OR_RETURN(total_train_seconds_, reader.ReadF64());
  KAMEL_RETURN_NOT_OK(reader.LeaveSection());
  if (!std::isfinite(origin.lat) || !std::isfinite(origin.lng) ||
      origin.lat < -90.0 || origin.lat > 90.0 || origin.lng < -180.0 ||
      origin.lng > 180.0) {
    return Status::IOError("snapshot meta: invalid projection origin");
  }
  if (!std::isfinite(world.min_x) || !std::isfinite(world.min_y) ||
      !std::isfinite(world.max_x) || !std::isfinite(world.max_y) ||
      world.min_x > world.max_x || world.min_y > world.max_y) {
    return Status::IOError("snapshot meta: invalid world box");
  }
  if (!std::isfinite(inferred_speed_mps_) || inferred_speed_mps_ < 0.0 ||
      !std::isfinite(total_train_seconds_) || total_train_seconds_ < 0.0) {
    return Status::IOError("snapshot meta: invalid scalar state");
  }

  // Rebuild the component graph around the restored geometry, then load
  // the trained state into it. Builder saves also carry the raw ingest
  // log (restored below), from which the trajectory store is rebuilt;
  // serving snapshots omit it and can impute but not continue training.
  TrajectoryDataset empty_geometry;
  Trajectory anchor;
  anchor.points.push_back({origin, 0.0});
  empty_geometry.trajectories.push_back(anchor);
  KAMEL_RETURN_NOT_OK(InitializeGeometry(empty_geometry));
  pyramid_ = std::make_shared<const Pyramid>(world, options_.pyramid_height,
                                             options_.pyramid_levels);
  repository_ =
      std::make_unique<ModelRepository>(*pyramid_, options_, store_);

  KAMEL_ASSIGN_OR_RETURN(SectionInfo repo_frame, reader.EnterSection());
  if (repo_frame.name != "repo") {
    return Status::IOError("snapshot: expected section 'repo', found '" +
                           repo_frame.name + "'");
  }
  const Status repo_loaded = repository_->Load(&reader, report, &path);
  if (!repo_loaded.ok()) {
    // The index was unreadable: quarantine the whole repository. The
    // system still serves — every gap takes the linear fallback.
    repository_ =
        std::make_unique<ModelRepository>(*pyramid_, options_, store_);
    report->repository_quarantined = true;
    report->quarantined.push_back("model repository: " +
                                  repo_loaded.message());
  }
  // Realigns the cursor past the repository no matter how the inner
  // parse left it.
  KAMEL_RETURN_NOT_OK(reader.LeaveSection());

  const Status detok_entered = reader.EnterSection("detok");
  if (detok_entered.ok()) {
    const Status detok_loaded = detokenizer_->Load(&reader);
    if (!detok_loaded.ok()) {
      report->detokenizer_quarantined = true;
      report->quarantined.push_back("detokenizer: " + detok_loaded.message());
    }
    KAMEL_RETURN_NOT_OK(reader.LeaveSection());
  } else {
    report->detokenizer_quarantined = true;
    report->quarantined.push_back("detokenizer: " + detok_entered.message());
  }
  if (report->detokenizer_quarantined) {
    // A fresh detokenizer serves cell centroids (Figure 8's unseen-token
    // case) — degraded precision, never an abort.
    detokenizer_ =
        std::make_unique<Detokenizer>(grid_.get(), options_.dbscan);
  }

  // Builder saves append an "ingest" section; restoring it rebuilds the
  // trajectory store and the detokenizer's observation history through
  // the normal tokenization gateway, so training resumes exactly where
  // the saved process stopped. Parsed fully before anything is applied —
  // a damaged section is quarantined atomically.
  ingested_.clear();
  wal_applied_lsn_ = 0;
  if (!reader.AtEnd()) {
    Status ingest_loaded = reader.EnterSection("ingest");
    if (ingest_loaded.ok()) {
      ingest_loaded = [&]() -> Status {
        KAMEL_ASSIGN_OR_RETURN(uint64_t applied_lsn, reader.ReadU64());
        KAMEL_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
        std::vector<Trajectory> restored;
        restored.reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
          Trajectory trajectory;
          KAMEL_ASSIGN_OR_RETURN(trajectory.id, reader.ReadI64());
          KAMEL_ASSIGN_OR_RETURN(uint32_t num_points, reader.ReadU32());
          trajectory.points.reserve(num_points);
          for (uint32_t p = 0; p < num_points; ++p) {
            TrajPoint point;
            KAMEL_ASSIGN_OR_RETURN(point.pos.lat, reader.ReadF64());
            KAMEL_ASSIGN_OR_RETURN(point.pos.lng, reader.ReadF64());
            KAMEL_ASSIGN_OR_RETURN(point.time, reader.ReadF64());
            trajectory.points.push_back(point);
          }
          KAMEL_RETURN_NOT_OK(ValidateTrajectory(trajectory));
          restored.push_back(std::move(trajectory));
        }
        const bool rebuild_clusters = report->detokenizer_quarantined;
        detokenizer_->ClearObservations();
        for (const Trajectory& trajectory : restored) {
          TokenizedTrajectory tokens = tokenizer_->Tokenize(trajectory);
          if (tokens.size() >= 2) store_->Add(std::move(tokens));
          detokenizer_->AddObservations(
              tokenizer_->TokenizePerPoint(trajectory));
        }
        if (rebuild_clusters && !restored.empty()) {
          // The saved clusters were damaged, but their inputs survived
          // in the ingest log: refit instead of serving cell centroids.
          detokenizer_->Refit();
          report->detokenizer_quarantined = false;
          report->notes.push_back(
              "detokenizer clusters rebuilt from the ingest log");
        }
        ingested_ = std::move(restored);
        wal_applied_lsn_ = applied_lsn;
        return Status::OK();
      }();
      KAMEL_RETURN_NOT_OK(reader.LeaveSection());
    }
    if (!ingest_loaded.ok()) {
      // Damage here costs training continuity, never serving: the store
      // stays empty and imputation proceeds from the trained state.
      report->ingest_quarantined = true;
      report->quarantined.push_back("ingest log: " + ingest_loaded.message());
    }
  }

  constraints_->set_max_speed_mps(options_.max_speed_mps > 0.0
                                      ? options_.max_speed_mps
                                      : inferred_speed_mps_);
  trained_ = true;
  if (report->partial()) {
    KAMEL_LOG(Warning) << "partial snapshot load from " << path << ": "
                       << report->Summary();
  }
  return Status::OK();
}

}  // namespace kamel
