#include "core/dbscan.h"

#include <deque>

namespace kamel {

std::vector<int> Dbscan(
    size_t n, const std::function<double(size_t, size_t)>& distance,
    double eps, int min_points) {
  constexpr int kUnvisited = -2;
  std::vector<int> labels(n, kUnvisited);

  auto neighbors_of = [&](size_t i) {
    std::vector<size_t> out;
    for (size_t j = 0; j < n; ++j) {
      if (distance(i, j) <= eps) out.push_back(j);
    }
    return out;
  };

  int next_cluster = 0;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] != kUnvisited) continue;
    std::vector<size_t> seeds = neighbors_of(i);
    if (static_cast<int>(seeds.size()) < min_points) {
      labels[i] = kDbscanNoise;
      continue;
    }
    const int cluster = next_cluster++;
    labels[i] = cluster;
    std::deque<size_t> frontier(seeds.begin(), seeds.end());
    while (!frontier.empty()) {
      const size_t j = frontier.front();
      frontier.pop_front();
      if (labels[j] == kDbscanNoise) labels[j] = cluster;  // border point
      if (labels[j] != kUnvisited) continue;
      labels[j] = cluster;
      std::vector<size_t> reach = neighbors_of(j);
      if (static_cast<int>(reach.size()) >= min_points) {
        frontier.insert(frontier.end(), reach.begin(), reach.end());
      }
    }
  }
  return labels;
}

}  // namespace kamel
