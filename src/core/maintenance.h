#ifndef KAMEL_CORE_MAINTENANCE_H_
#define KAMEL_CORE_MAINTENANCE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/kamel.h"
#include "io/wal.h"

namespace kamel {

/// Batching policy for deferred model maintenance.
struct MaintenanceOptions {
  /// Train once this many trajectories are pending.
  size_t min_batch_trajectories = 64;
  /// ... or once this many GPS points are pending, whichever first.
  size_t min_batch_points = 20000;
};

/// Deferred maintenance front-end for the model repository (Section 4.2:
/// "this does not need to happen for every single trajectory. Instead, it
/// is scheduled as a background process when needed for a batch of new
/// trajectories, without causing any downtime").
///
/// Incoming training trajectories are buffered; Kamel::Train — the
/// expensive model (re)building — runs only when a batch threshold is met
/// or Flush() is called. Between batches the system keeps serving
/// imputations from its existing models, which is exactly the paper's
/// no-downtime property (in this single-threaded reproduction "background"
/// becomes "deferred": training happens inside the Submit call that
/// crosses the threshold).
///
/// Durability (ISSUE: durable ingestion): with a write-ahead log attached
/// (AttachWal, normally via OpenDurableIngestion), every Submit appends a
/// kSubmit record before buffering, so an acknowledged trajectory
/// survives a crash even while it waits in the pending batch. A
/// successful Flush appends a kBatchTrained marker recording which
/// submits the batch consumed and — when a checkpoint path is configured
/// — saves a snapshot and lets the log delete fully-checkpointed
/// segments. A failed Flush retains the pending batch so nothing
/// acknowledged is dropped (the caller may retry; note that a mid-batch
/// Train failure can leave earlier trajectories of the batch already
/// stored, so an in-process retry can double-store them — crash recovery
/// does not have this problem because the partial in-memory effects die
/// with the process).
class MaintenanceScheduler {
 public:
  /// `system` is borrowed and must outlive the scheduler.
  MaintenanceScheduler(Kamel* system, MaintenanceOptions options = {});

  /// Buffers one training trajectory; triggers a training batch when a
  /// threshold is crossed. Returns the training status in that case.
  /// With a WAL attached, the trajectory is logged (and made durable per
  /// the log's fsync policy) before this call returns OK.
  ///
  /// Disk-budget governor (with a WAL + checkpoint path): when the log
  /// reports under_pressure(), a proactive Flush checkpoints and GCs
  /// segments before the append; a kResourceExhausted append triggers
  /// one emergency Flush + retry; if even that fails, the submit is
  /// SHED — refused with kResourceExhausted, never half-applied — and
  /// counted in shed_submits(). Degradation, never corruption.
  Status Submit(Trajectory trajectory);

  /// Trains on whatever is pending (no-op when nothing is). On failure
  /// the pending batch is retained, not dropped. On success, with a WAL
  /// attached, appends the kBatchTrained marker and — with a checkpoint
  /// path — saves a snapshot and garbage-collects the log.
  Status Flush();

  /// Attaches a write-ahead log (borrowed; null detaches) and the
  /// snapshot path used for checkpoints (empty = log but never
  /// checkpoint). Also attaches the log to the system's trajectory
  /// store, so Train() appends are logged too.
  void AttachWal(WriteAheadLog* wal, std::string checkpoint_path);

  /// Re-buffers one trajectory recovered from the log. Used only during
  /// replay: no WAL append (the record already exists at `lsn`) and no
  /// threshold check (recovery does a single threshold check at the
  /// tail, matching the state a never-crashed process would hold).
  void RestorePending(Trajectory trajectory, uint64_t lsn);

  /// Recovery-only variant of Flush(): trains the pending batch without
  /// emitting a kBatchTrained marker or advancing the checkpoint.
  /// OpenDurableIngestion uses it while older WAL records are still
  /// unreplayed — advancing the watermark mid-replay would orphan them.
  Status FlushRecovered();

  size_t pending_trajectories() const {
    return pending_.trajectories.size();
  }
  size_t pending_points() const { return pending_points_; }
  int batches_trained() const { return batches_trained_; }
  /// Flushes triggered proactively by WAL disk-budget pressure (the log
  /// crossed its gc_pressure_fraction high-water mark).
  int64_t pressure_flushes() const { return pressure_flushes_; }
  /// Submits refused with kResourceExhausted after the disk budget was
  /// exhausted and an emergency checkpoint could not reclaim room. A
  /// shed submit was never acknowledged — nothing durable is lost.
  int64_t shed_submits() const { return shed_submits_; }
  const MaintenanceOptions& options() const { return options_; }

  /// Highest kSubmit LSN in the pending batch (0 when none is logged).
  uint64_t pending_max_lsn() const { return pending_max_lsn_; }

  bool ThresholdMet() const {
    return pending_.trajectories.size() >= options_.min_batch_trajectories ||
           pending_points_ >= options_.min_batch_points;
  }

 private:
  /// Shared core of Flush()/FlushRecovered(): trains the pending batch
  /// and clears it on success only.
  Status TrainPending();

  Kamel* system_;
  MaintenanceOptions options_;
  TrajectoryDataset pending_;
  size_t pending_points_ = 0;
  uint64_t pending_max_lsn_ = 0;
  int batches_trained_ = 0;
  int64_t pressure_flushes_ = 0;
  int64_t shed_submits_ = 0;
  WriteAheadLog* wal_ = nullptr;  // borrowed; null = non-durable
  std::string checkpoint_path_;
};

/// What recovery found and did (OpenDurableIngestion).
struct IngestRecoveryReport {
  /// Log-level recovery: segments scanned, torn tail truncated, records
  /// surviving the checkpoint watermark.
  WalRecoveryReport wal;
  /// Snapshot-level recovery (quarantines); only meaningful when
  /// `snapshot_loaded` is set.
  LoadReport snapshot;
  bool snapshot_loaded = false;
  /// kSubmit records re-buffered into the pending batch.
  size_t submits_replayed = 0;
  /// kBatchTrained markers re-executed through Kamel::Train.
  size_t batches_retrained = 0;
  /// Records skipped because the snapshot already contained their
  /// effects (lsn <= the snapshot's wal_applied_lsn).
  size_t records_skipped = 0;
};

/// Opens (or creates) the durable ingestion state for `system` +
/// `scheduler`: loads the checkpoint snapshot if one exists, opens the
/// write-ahead log (truncating a torn tail), replays every surviving
/// record the snapshot does not already cover — kSubmit records are
/// re-buffered, kBatchTrained markers re-train their batch through the
/// normal Train path (deterministically seeded, so recovered models are
/// byte-identical to the originals) — then attaches the log to both
/// objects and runs the single deferred threshold check on the restored
/// tail. On success the returned log is live: the caller owns it and
/// must keep it alive for as long as the scheduler/system use it.
///
/// `checkpoint_path` may be empty: no snapshot is loaded or saved and
/// the log is replayed from its beginning on every open.
Result<std::unique_ptr<WriteAheadLog>> OpenDurableIngestion(
    Kamel* system, MaintenanceScheduler* scheduler,
    const WalOptions& wal_options, const std::string& checkpoint_path,
    IngestRecoveryReport* report = nullptr);

}  // namespace kamel

#endif  // KAMEL_CORE_MAINTENANCE_H_
