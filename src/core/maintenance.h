#ifndef KAMEL_CORE_MAINTENANCE_H_
#define KAMEL_CORE_MAINTENANCE_H_

#include <cstddef>

#include "core/kamel.h"

namespace kamel {

/// Batching policy for deferred model maintenance.
struct MaintenanceOptions {
  /// Train once this many trajectories are pending.
  size_t min_batch_trajectories = 64;
  /// ... or once this many GPS points are pending, whichever first.
  size_t min_batch_points = 20000;
};

/// Deferred maintenance front-end for the model repository (Section 4.2:
/// "this does not need to happen for every single trajectory. Instead, it
/// is scheduled as a background process when needed for a batch of new
/// trajectories, without causing any downtime").
///
/// Incoming training trajectories are buffered; Kamel::Train — the
/// expensive model (re)building — runs only when a batch threshold is met
/// or Flush() is called. Between batches the system keeps serving
/// imputations from its existing models, which is exactly the paper's
/// no-downtime property (in this single-threaded reproduction "background"
/// becomes "deferred": training happens inside the Submit call that
/// crosses the threshold).
class MaintenanceScheduler {
 public:
  /// `system` is borrowed and must outlive the scheduler.
  MaintenanceScheduler(Kamel* system, MaintenanceOptions options = {});

  /// Buffers one training trajectory; triggers a training batch when a
  /// threshold is crossed. Returns the training status in that case.
  Status Submit(Trajectory trajectory);

  /// Trains on whatever is pending (no-op when nothing is).
  Status Flush();

  size_t pending_trajectories() const {
    return pending_.trajectories.size();
  }
  size_t pending_points() const { return pending_points_; }
  int batches_trained() const { return batches_trained_; }

 private:
  Kamel* system_;
  MaintenanceOptions options_;
  TrajectoryDataset pending_;
  size_t pending_points_ = 0;
  int batches_trained_ = 0;
};

}  // namespace kamel

#endif  // KAMEL_CORE_MAINTENANCE_H_
