#ifndef KAMEL_CORE_TRAJECTORY_STORE_H_
#define KAMEL_CORE_TRAJECTORY_STORE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/tokenizer.h"
#include "geo/bbox.h"
#include "io/wal.h"

namespace kamel {

/// The raw trajectory store of Section 4 [18, 62]: keeps every tokenized
/// training trajectory so the Partitioning module can enrich new batches
/// with historical data and (re)build models for any pyramid cell.
///
/// The store answers two queries: trajectories fully enclosed in a
/// rectangle, and the number of tokens inside a rectangle. Both are
/// MBR-indexed linear scans — ample for the city-scale workloads KAMEL
/// targets, where model (re)building is an offline batch job.
class TrajectoryStore {
 public:
  /// Adds one tokenized trajectory; returns its store index.
  size_t Add(TokenizedTrajectory trajectory);

  /// Fallible front-end of Add used by the training path: carries the
  /// `store.append` failpoint so tests can drive a storage-layer failure
  /// through Kamel::Train, and — with a WAL attached — writes the
  /// trajectory through the log before it is applied, so a crash after a
  /// successful Append can never lose it. On success `*index` is the
  /// store index.
  Status Append(TokenizedTrajectory trajectory, size_t* index);

  /// Attaches a write-ahead log (borrowed; may be null to detach). Every
  /// subsequent Append emits a kStoreAppend record and is acknowledged
  /// only once the log has (per its fsync policy) made it durable.
  void AttachWal(WriteAheadLog* wal) { wal_ = wal; }

  /// Re-applies the kStoreAppend records of a recovered log in LSN order
  /// (other record types are skipped). Used on reopen, before AttachWal —
  /// replayed appends must not be logged again.
  Status ReplayWal(const std::vector<WalRecord>& records);

  /// Payload codec for kStoreAppend records.
  static std::vector<uint8_t> EncodeWalPayload(
      const TokenizedTrajectory& trajectory);
  static Result<TokenizedTrajectory> DecodeWalPayload(
      const std::vector<uint8_t>& payload);

  size_t size() const { return trajectories_.size(); }
  int64_t total_tokens() const { return total_tokens_; }

  const TokenizedTrajectory& Get(size_t index) const {
    return trajectories_[index];
  }
  const BBox& MbrOf(size_t index) const { return mbrs_[index]; }

  /// Indices of trajectories whose MBR lies entirely inside `bounds`.
  std::vector<size_t> FullyEnclosed(const BBox& bounds) const;

  /// Number of tokens whose position lies inside `bounds`.
  int64_t CountTokensIn(const BBox& bounds) const;

  /// Cell sequences ("statements") of the given trajectory indices.
  std::vector<std::vector<CellId>> Statements(
      const std::vector<size_t>& indices) const;

 private:
  std::vector<TokenizedTrajectory> trajectories_;
  std::vector<BBox> mbrs_;
  int64_t total_tokens_ = 0;
  WriteAheadLog* wal_ = nullptr;  // borrowed; null = non-durable store
};

}  // namespace kamel

#endif  // KAMEL_CORE_TRAJECTORY_STORE_H_
