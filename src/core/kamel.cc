#include "core/kamel.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "geo/polyline.h"
#include "grid/hex_grid.h"
#include "grid/square_grid.h"

namespace kamel {

Kamel::Kamel(const KamelOptions& options) : options_(options) {}
Kamel::~Kamel() = default;

Status Kamel::InitializeGeometry(const TrajectoryDataset& data) {
  // Anchor the projection at the batch's geographic center.
  double min_lat = 90.0, max_lat = -90.0, min_lng = 180.0, max_lng = -180.0;
  size_t points = 0;
  for (const auto& trajectory : data.trajectories) {
    for (const auto& point : trajectory.points) {
      min_lat = std::min(min_lat, point.pos.lat);
      max_lat = std::max(max_lat, point.pos.lat);
      min_lng = std::min(min_lng, point.pos.lng);
      max_lng = std::max(max_lng, point.pos.lng);
      ++points;
    }
  }
  if (points == 0) {
    return Status::InvalidArgument("training dataset has no points");
  }
  projection_ = std::make_unique<LocalProjection>(
      LatLng{(min_lat + max_lat) / 2.0, (min_lng + max_lng) / 2.0});

  if (options_.grid_type == GridType::kHex) {
    grid_ = std::make_unique<HexGrid>(options_.hex_edge_m);
  } else {
    const double edge =
        options_.square_edge_m > 0.0
            ? options_.square_edge_m
            : SquareGrid::EdgeForEqualHexArea(options_.hex_edge_m);
    grid_ = std::make_unique<SquareGrid>(edge);
  }
  tokenizer_ = std::make_unique<Tokenizer>(grid_.get(), projection_.get());
  store_ = std::make_unique<TrajectoryStore>();

  // Pyramid world: the batch MBR with 10% margin so later batches and the
  // imputation ellipses stay in bounds.
  BBox world = data.Mbr(*projection_);
  const double margin =
      0.1 * std::max({world.Width(), world.Height(), 100.0});
  pyramid_ = std::make_unique<Pyramid>(world.Expanded(margin),
                                       options_.pyramid_height,
                                       options_.pyramid_levels);
  repository_ =
      std::make_unique<ModelRepository>(*pyramid_, options_, store_.get());
  constraints_ =
      std::make_unique<SpatialConstraints>(grid_.get(), options_);
  detokenizer_ =
      std::make_unique<Detokenizer>(grid_.get(), options_.dbscan);

  if (!options_.enable_multipoint) {
    imputer_ = std::make_unique<SinglePointImputer>(
        grid_.get(), constraints_.get(), options_);
  } else if (options_.method == ImputeMethod::kIterativeBert) {
    imputer_ = std::make_unique<IterativeBertImputer>(
        grid_.get(), constraints_.get(), options_);
  } else {
    imputer_ = std::make_unique<BeamSearchImputer>(
        grid_.get(), constraints_.get(), options_);
  }
  return Status::OK();
}

void Kamel::UpdateSpeedBound(const TrajectoryDataset& data) {
  if (options_.max_speed_mps > 0.0) {
    constraints_->set_max_speed_mps(options_.max_speed_mps);
    return;
  }
  std::vector<double> speeds;
  for (const auto& trajectory : data.trajectories) {
    for (size_t i = 1; i < trajectory.points.size(); ++i) {
      const double dt =
          trajectory.points[i].time - trajectory.points[i - 1].time;
      if (dt <= 0.0) continue;
      const double dist = HaversineMeters(trajectory.points[i - 1].pos,
                                          trajectory.points[i].pos);
      speeds.push_back(dist / dt);
    }
  }
  if (speeds.empty()) return;
  const size_t p95 = speeds.size() * 95 / 100;
  std::nth_element(speeds.begin(), speeds.begin() + p95, speeds.end());
  const double inferred = speeds[p95] * options_.speed_slack_factor;
  // Across batches keep the largest bound seen.
  inferred_speed_mps_ = std::max(inferred_speed_mps_, inferred);
  constraints_->set_max_speed_mps(inferred_speed_mps_);
}

Status Kamel::Train(const TrajectoryDataset& data) {
  Stopwatch watch;
  // Validate before any geometry is derived: one NaN coordinate would
  // otherwise poison the projection anchor and the pyramid world.
  for (const auto& trajectory : data.trajectories) {
    KAMEL_RETURN_NOT_OK(ValidateTrajectory(trajectory));
  }
  if (projection_ == nullptr) {
    KAMEL_RETURN_NOT_OK(InitializeGeometry(data));
  }

  // Tokenization gateway (Section 3): everything passes through it first.
  std::vector<size_t> new_indices;
  new_indices.reserve(data.trajectories.size());
  for (const auto& trajectory : data.trajectories) {
    TokenizedTrajectory tokens = tokenizer_->Tokenize(trajectory);
    if (tokens.size() < 2) continue;
    size_t index = 0;
    KAMEL_RETURN_NOT_OK(store_->Append(std::move(tokens), &index));
    new_indices.push_back(index);
    // Per-point observations feed detokenizer clustering (Section 7).
    detokenizer_->AddObservations(tokenizer_->TokenizePerPoint(trajectory));
  }
  if (new_indices.empty()) {
    return Status::InvalidArgument(
        "training batch produced no usable trajectories");
  }

  UpdateSpeedBound(data);
  KAMEL_RETURN_NOT_OK(repository_->AddTrainingBatch(new_indices));
  if (repository_->num_models() == 0) {
    KAMEL_LOG(Warning)
        << "no BERT model met its token threshold; imputation will fall "
           "back to straight lines until more data arrives";
  }
  detokenizer_->Refit();

  trained_ = true;
  total_train_seconds_ += watch.ElapsedSeconds();
  KAMEL_LOG(Info) << "trained on " << new_indices.size()
                  << " trajectories; models=" << repository_->num_models()
                  << " speed_bound=" << constraints_->max_speed_mps()
                  << " m/s";
  return Status::OK();
}

double Kamel::max_speed_mps() const {
  return constraints_ != nullptr ? constraints_->max_speed_mps() : 0.0;
}

void Kamel::AppendLinearFallback(const SegmentContext& context,
                                 std::vector<TrajPoint>* out_points) const {
  // Straight line with one point every max_gap_m (exclusive of endpoints).
  const Vec2 s = context.s.position;
  const Vec2 d = context.d.position;
  const double dist = Distance(s, d);
  const int steps = static_cast<int>(std::floor(dist / options_.max_gap_m));
  for (int i = 1; i <= steps; ++i) {
    const double t = static_cast<double>(i) / (steps + 1);
    const Vec2 p = s + (d - s) * t;
    out_points->push_back(
        {projection_->Unproject(p),
         context.s.time + t * (context.d.time - context.s.time)});
  }
}

void Kamel::ImputeSegment(TrajBert* model, const SegmentContext& context,
                          bool deadline_expired,
                          std::vector<TrajPoint>* out_points,
                          ImputeStats* stats) {
  ++stats->segments;
  stats->outcomes.push_back({context.s.time, context.d.time, false});
  SegmentOutcome& outcome = stats->outcomes.back();
  if (deadline_expired) {
    // Deadline overrun: remaining gaps take the paper's linear-line
    // failure path so the call returns promptly instead of piling up
    // BERT work behind an already-late response.
    ++stats->failed_segments;
    ++stats->deadline_segments;
    outcome.failed = true;
    AppendLinearFallback(context, out_points);
    return;
  }
  if (model == nullptr) {
    // Section 4.1: segments no model covers are imputed by a straight
    // line (and count as failures).
    ++stats->failed_segments;
    ++stats->no_model_segments;
    outcome.failed = true;
    AppendLinearFallback(context, out_points);
    return;
  }

  ImputedSegment segment = imputer_->Impute(model, context);
  stats->bert_calls += segment.bert_calls;
  if (segment.failed) {
    ++stats->failed_segments;
    outcome.failed = true;
    AppendLinearFallback(context, out_points);
    return;
  }

  const std::vector<Vec2> interior = detokenizer_->DetokenizeInterior(
      segment.cells, context.s.position, context.d.position);
  if (interior.empty()) return;

  // Timestamps: linear in arc length between the endpoint observations.
  std::vector<Vec2> path = {context.s.position};
  path.insert(path.end(), interior.begin(), interior.end());
  path.push_back(context.d.position);
  const double total_len = polyline::Length(path);
  double walked = 0.0;
  for (size_t i = 1; i + 1 < path.size(); ++i) {
    walked += Distance(path[i - 1], path[i]);
    const double fraction = total_len > 0.0 ? walked / total_len : 0.0;
    out_points->push_back(
        {projection_->Unproject(path[i]),
         context.s.time + fraction * (context.d.time - context.s.time)});
  }
}

Result<ImputedTrajectory> Kamel::Impute(const Trajectory& sparse) {
  if (!trained_) {
    return Status::FailedPrecondition(
        "Kamel::Impute called before a successful Train()");
  }
  KAMEL_RETURN_NOT_OK(ValidateTrajectory(sparse));
  Stopwatch watch;
  ImputedTrajectory out;
  out.trajectory.id = sparse.id;

  const TokenizedTrajectory tokens = tokenizer_->Tokenize(sparse);
  if (tokens.size() < 2) {
    out.trajectory = sparse;
    out.stats.seconds = watch.ElapsedSeconds();
    return out;
  }

  std::vector<TrajPoint>* out_points = &out.trajectory.points;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    // Original observation of the segment start.
    out_points->push_back(
        {projection_->Unproject(tokens[i].position), tokens[i].time});

    if (grid_->GridDistance(tokens[i].cell, tokens[i + 1].cell) <=
        imputer_->max_gap_cells()) {
      continue;  // already dense here
    }

    SegmentContext context;
    context.s = tokens[i];
    context.d = tokens[i + 1];
    if (i > 0) context.prev = tokens[i - 1];
    if (i + 2 < tokens.size()) context.next = tokens[i + 2];

    const bool deadline_expired =
        options_.impute_deadline_seconds > 0.0 &&
        watch.ElapsedSeconds() > options_.impute_deadline_seconds;

    // Section 4.1 retrieval: the model for this segment's extent.
    BBox mbr;
    mbr.Extend(context.s.position);
    mbr.Extend(context.d.position);
    TrajBert* model =
        deadline_expired ? nullptr : repository_->SelectModel(mbr);
    ImputeSegment(model, context, deadline_expired, out_points, &out.stats);
  }
  out_points->push_back(
      {projection_->Unproject(tokens.back().position), tokens.back().time});
  // Tokenization collapses same-cell runs to their first observation; if
  // the trajectory's final reading was collapsed away, restore it so the
  // output spans the full observed time range.
  if (!sparse.points.empty() &&
      sparse.points.back().time > out_points->back().time) {
    out_points->push_back(sparse.points.back());
  }

  out.stats.seconds = watch.ElapsedSeconds();
  return out;
}

Result<std::vector<ImputedTrajectory>> Kamel::ImputeBatch(
    const TrajectoryDataset& batch) {
  std::vector<ImputedTrajectory> out;
  out.reserve(batch.trajectories.size());
  for (const auto& trajectory : batch.trajectories) {
    KAMEL_ASSIGN_OR_RETURN(ImputedTrajectory imputed, Impute(trajectory));
    out.push_back(std::move(imputed));
  }
  return out;
}

Status Kamel::SaveToFile(const std::string& path) const {
  if (!trained_) {
    return Status::FailedPrecondition("cannot save an untrained system");
  }
  BinaryWriter writer;
  writer.WriteMagicHeader();
  writer.BeginSection("meta");
  writer.WriteF64(projection_->origin().lat);
  writer.WriteF64(projection_->origin().lng);
  const BBox& world = pyramid_->world();
  writer.WriteF64(world.min_x);
  writer.WriteF64(world.min_y);
  writer.WriteF64(world.max_x);
  writer.WriteF64(world.max_y);
  writer.WriteF64(inferred_speed_mps_);
  writer.WriteF64(total_train_seconds_);
  writer.EndSection();
  // The outer "repo" frame is the recovery point for repository damage:
  // its length lets the loader skip even an internally torn repository
  // and still reach the detokenizer.
  writer.BeginSection("repo");
  repository_->Save(&writer);
  writer.EndSection();
  writer.BeginSection("detok");
  detokenizer_->Save(&writer);
  writer.EndSection();
  return writer.FlushToFileAtomic(path);
}

Status Kamel::LoadFromFile(const std::string& path, LoadReport* report) {
  LoadReport local_report;
  if (report == nullptr) report = &local_report;
  *report = LoadReport{};

  KAMEL_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  KAMEL_RETURN_NOT_OK(reader.ReadMagicHeader().status());

  // Geometry is load-bearing for every module: damage here fails the
  // whole load (there is nothing sensible to serve without it).
  KAMEL_RETURN_NOT_OK(reader.EnterSection("meta"));
  LatLng origin;
  KAMEL_ASSIGN_OR_RETURN(origin.lat, reader.ReadF64());
  KAMEL_ASSIGN_OR_RETURN(origin.lng, reader.ReadF64());
  BBox world;
  KAMEL_ASSIGN_OR_RETURN(world.min_x, reader.ReadF64());
  KAMEL_ASSIGN_OR_RETURN(world.min_y, reader.ReadF64());
  KAMEL_ASSIGN_OR_RETURN(world.max_x, reader.ReadF64());
  KAMEL_ASSIGN_OR_RETURN(world.max_y, reader.ReadF64());
  KAMEL_ASSIGN_OR_RETURN(inferred_speed_mps_, reader.ReadF64());
  KAMEL_ASSIGN_OR_RETURN(total_train_seconds_, reader.ReadF64());
  KAMEL_RETURN_NOT_OK(reader.LeaveSection());
  if (!std::isfinite(origin.lat) || !std::isfinite(origin.lng) ||
      origin.lat < -90.0 || origin.lat > 90.0 || origin.lng < -180.0 ||
      origin.lng > 180.0) {
    return Status::IOError("snapshot meta: invalid projection origin");
  }
  if (!std::isfinite(world.min_x) || !std::isfinite(world.min_y) ||
      !std::isfinite(world.max_x) || !std::isfinite(world.max_y) ||
      world.min_x > world.max_x || world.min_y > world.max_y) {
    return Status::IOError("snapshot meta: invalid world box");
  }
  if (!std::isfinite(inferred_speed_mps_) || inferred_speed_mps_ < 0.0 ||
      !std::isfinite(total_train_seconds_) || total_train_seconds_ < 0.0) {
    return Status::IOError("snapshot meta: invalid scalar state");
  }

  // Rebuild the component graph around the restored geometry, then load
  // the trained state into it. The trajectory store itself is not
  // persisted (the paper's store is a separate system [18, 62]); loaded
  // systems can impute but need original data to continue training.
  TrajectoryDataset empty_geometry;
  Trajectory anchor;
  anchor.points.push_back({origin, 0.0});
  empty_geometry.trajectories.push_back(anchor);
  KAMEL_RETURN_NOT_OK(InitializeGeometry(empty_geometry));
  pyramid_ = std::make_unique<Pyramid>(world, options_.pyramid_height,
                                       options_.pyramid_levels);
  repository_ =
      std::make_unique<ModelRepository>(*pyramid_, options_, store_.get());

  KAMEL_ASSIGN_OR_RETURN(SectionInfo repo_frame, reader.EnterSection());
  if (repo_frame.name != "repo") {
    return Status::IOError("snapshot: expected section 'repo', found '" +
                           repo_frame.name + "'");
  }
  const Status repo_loaded = repository_->Load(&reader, report);
  if (!repo_loaded.ok()) {
    // The index was unreadable: quarantine the whole repository. The
    // system still serves — every gap takes the linear fallback.
    repository_ =
        std::make_unique<ModelRepository>(*pyramid_, options_, store_.get());
    report->repository_quarantined = true;
    report->quarantined.push_back("model repository: " +
                                  repo_loaded.message());
  }
  // Realigns the cursor past the repository no matter how the inner
  // parse left it.
  KAMEL_RETURN_NOT_OK(reader.LeaveSection());

  const Status detok_entered = reader.EnterSection("detok");
  if (detok_entered.ok()) {
    const Status detok_loaded = detokenizer_->Load(&reader);
    if (!detok_loaded.ok()) {
      report->detokenizer_quarantined = true;
      report->quarantined.push_back("detokenizer: " + detok_loaded.message());
    }
    KAMEL_RETURN_NOT_OK(reader.LeaveSection());
  } else {
    report->detokenizer_quarantined = true;
    report->quarantined.push_back("detokenizer: " + detok_entered.message());
  }
  if (report->detokenizer_quarantined) {
    // A fresh detokenizer serves cell centroids (Figure 8's unseen-token
    // case) — degraded precision, never an abort.
    detokenizer_ =
        std::make_unique<Detokenizer>(grid_.get(), options_.dbscan);
  }

  constraints_->set_max_speed_mps(options_.max_speed_mps > 0.0
                                      ? options_.max_speed_mps
                                      : inferred_speed_mps_);
  trained_ = true;
  if (report->partial()) {
    KAMEL_LOG(Warning) << "partial snapshot load from " << path << ": "
                       << report->Summary();
  }
  return Status::OK();
}

Result<SnapshotFsckReport> FsckSnapshot(const std::string& path) {
  KAMEL_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  SnapshotFsckReport report;
  KAMEL_ASSIGN_OR_RETURN(report.version, reader.ReadMagicHeader());

  // Walks the frames in [cursor, end); the "repo" section is the only one
  // whose payload nests further frames.
  const std::function<void(size_t)> walk = [&](size_t end) {
    while (reader.Tell() < end) {
      Result<SectionInfo> section = reader.EnterSection();
      if (!section.ok()) {
        report.truncation_error = section.status().message();
        (void)reader.Seek(end);
        return;
      }
      report.sections.push_back({section->name, section->payload_offset,
                                 section->length, section->crc_ok});
      if (section->name == "repo") {
        walk(section->payload_offset + static_cast<size_t>(section->length));
      }
      (void)reader.LeaveSection();
    }
  };
  walk(reader.Tell() + reader.remaining());
  return report;
}

StreamingSession::StreamingSession(Kamel* system, Callback on_imputed,
                                   StreamingOptions options)
    : system_(system),
      on_imputed_(std::move(on_imputed)),
      options_(options) {
  KAMEL_CHECK(system != nullptr);
}

StreamingSession::StreamingSession(Kamel* system, Callback on_imputed,
                                   double session_timeout_seconds)
    : StreamingSession(system, std::move(on_imputed),
                       StreamingOptions{.session_timeout_seconds =
                                            session_timeout_seconds}) {}

void StreamingSession::Touch(int64_t object_id, Buffer* buffer) {
  (void)object_id;
  lru_.splice(lru_.end(), lru_, buffer->lru_it);
}

Trajectory StreamingSession::Detach(
    std::unordered_map<int64_t, Buffer>::iterator it) {
  Trajectory out = std::move(it->second.trajectory);
  total_points_ -= out.points.size();
  lru_.erase(it->second.lru_it);
  buffers_.erase(it);
  return out;
}

Status StreamingSession::EvictOne(int64_t protect) {
  for (int64_t victim : lru_) {
    if (victim == protect) continue;
    auto it = buffers_.find(victim);
    KAMEL_CHECK(it != buffers_.end(), "LRU list out of sync with buffers");
    Trajectory finished = Detach(it);
    ++evictions_;
    // The evicted trip is imputed and emitted, not dropped: overload
    // trades session longevity for bounded memory.
    return Emit(victim, std::move(finished));
  }
  return Status::ResourceExhausted("no evictable streaming session");
}

Status StreamingSession::Push(int64_t object_id, const TrajPoint& point) {
  // Boundary validation: a malformed reading is refused here, before it
  // can reach geometry code or be buffered.
  if (!std::isfinite(point.pos.lat) || !std::isfinite(point.pos.lng) ||
      !std::isfinite(point.time)) {
    return Status::InvalidArgument("object " + std::to_string(object_id) +
                                   ": non-finite reading");
  }
  if (point.pos.lat < -90.0 || point.pos.lat > 90.0 ||
      point.pos.lng < -180.0 || point.pos.lng > 180.0) {
    return Status::InvalidArgument("object " + std::to_string(object_id) +
                                   ": coordinates out of range");
  }

  auto it = buffers_.find(object_id);
  if (it == buffers_.end()) {
    // Admitting a new object may evict the least-recently-active one.
    while (buffers_.size() >= options_.max_open_objects) {
      KAMEL_RETURN_NOT_OK(EvictOne(object_id));
    }
    it = buffers_.emplace(object_id, Buffer{}).first;
    it->second.trajectory.id = object_id;
    it->second.lru_it = lru_.insert(lru_.end(), object_id);
  }
  Buffer& buffer = it->second;
  const std::vector<TrajPoint>& points = buffer.trajectory.points;

  if (!points.empty() && point.time - points.back().time >
                             options_.session_timeout_seconds) {
    // The object went silent long enough to close its trip; the reading
    // re-enters through the same admission and validation checks.
    Trajectory finished = Detach(it);
    KAMEL_RETURN_NOT_OK(Emit(object_id, std::move(finished)));
    return Push(object_id, point);
  }
  if (!points.empty() && point.time < points.back().time) {
    return Status::InvalidArgument(
        "stream timestamps must be non-decreasing per object");
  }
  if (points.size() >= options_.max_points_per_object) {
    return Status::ResourceExhausted(
        "object " + std::to_string(object_id) + ": buffer full at " +
        std::to_string(points.size()) +
        " points; EndTrajectory it or raise max_points_per_object");
  }
  // Global backpressure: shed other sessions before refusing this feed.
  while (total_points_ >= options_.max_total_points) {
    const Status evicted = EvictOne(object_id);
    if (!evicted.ok()) {
      return Status::ResourceExhausted(
          "stream buffer full (" + std::to_string(total_points_) +
          " points) and nothing evictable");
    }
  }
  buffer.trajectory.points.push_back(point);
  ++total_points_;
  Touch(object_id, &buffer);
  return Status::OK();
}

Status StreamingSession::EndTrajectory(int64_t object_id) {
  auto it = buffers_.find(object_id);
  if (it == buffers_.end()) {
    return Status::NotFound("no open trajectory for object " +
                            std::to_string(object_id));
  }
  Trajectory finished = Detach(it);
  return Emit(object_id, std::move(finished));
}

Status StreamingSession::Flush() {
  std::vector<int64_t> ids;
  ids.reserve(buffers_.size());
  for (const auto& [id, unused] : buffers_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (int64_t id : ids) KAMEL_RETURN_NOT_OK(EndTrajectory(id));
  return Status::OK();
}

Status StreamingSession::Emit(int64_t object_id, Trajectory trajectory) {
  KAMEL_ASSIGN_OR_RETURN(ImputedTrajectory imputed,
                         system_->Impute(trajectory));
  if (on_imputed_) on_imputed_(object_id, std::move(imputed));
  return Status::OK();
}

}  // namespace kamel
