#include "core/kamel.h"

#include <functional>
#include <utility>

#include "common/binary_io.h"

namespace kamel {

Kamel::Kamel(const KamelOptions& options) : builder_(options) {}
Kamel::~Kamel() = default;

Status Kamel::Train(const TrajectoryDataset& data) {
  snapshot_.reset();  // the cached serving state is stale after retraining
  return builder_.Train(data);
}

Result<const KamelSnapshot*> Kamel::EnsureSnapshot() {
  if (snapshot_ == nullptr) {
    KAMEL_ASSIGN_OR_RETURN(snapshot_, builder_.Snapshot());
  }
  return snapshot_.get();
}

Result<std::shared_ptr<const KamelSnapshot>> Kamel::Snapshot() {
  KAMEL_RETURN_NOT_OK(EnsureSnapshot().status());
  return snapshot_;
}

Result<ImputedTrajectory> Kamel::Impute(const Trajectory& sparse) {
  if (!builder_.trained()) {
    return Status::FailedPrecondition(
        "Kamel::Impute called before a successful Train()");
  }
  KAMEL_ASSIGN_OR_RETURN(const KamelSnapshot* snapshot, EnsureSnapshot());
  return snapshot->Impute(sparse);
}

Result<std::vector<ImputedTrajectory>> Kamel::ImputeBatch(
    const TrajectoryDataset& batch) {
  std::vector<ImputedTrajectory> out;
  out.reserve(batch.trajectories.size());
  for (const auto& trajectory : batch.trajectories) {
    KAMEL_ASSIGN_OR_RETURN(ImputedTrajectory imputed, Impute(trajectory));
    out.push_back(std::move(imputed));
  }
  return out;
}

Status Kamel::LoadFromFile(const std::string& path, LoadReport* report) {
  snapshot_.reset();
  return builder_.LoadFromFile(path, report);
}

Result<SnapshotFsckReport> FsckSnapshot(const std::string& path) {
  KAMEL_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  SnapshotFsckReport report;
  KAMEL_ASSIGN_OR_RETURN(report.version, reader.ReadMagicHeader());

  // Walks the frames in [cursor, end); the "repo" section is the only one
  // whose payload nests further frames.
  const std::function<void(size_t)> walk = [&](size_t end) {
    while (reader.Tell() < end) {
      Result<SectionInfo> section = reader.EnterSection();
      if (!section.ok()) {
        report.truncation_error = section.status().message();
        (void)reader.Seek(end);
        return;
      }
      report.sections.push_back({section->name, section->payload_offset,
                                 section->length, section->crc_ok});
      if (section->name == "repo") {
        walk(section->payload_offset + static_cast<size_t>(section->length));
      }
      (void)reader.LeaveSection();
    }
  };
  walk(reader.Tell() + reader.remaining());
  return report;
}

}  // namespace kamel
