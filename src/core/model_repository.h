#ifndef KAMEL_CORE_MODEL_REPOSITORY_H_
#define KAMEL_CORE_MODEL_REPOSITORY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bert/traj_bert.h"
#include "common/result.h"
#include "core/options.h"
#include "core/pyramid.h"
#include "core/trajectory_store.h"

namespace kamel {

/// Bookkeeping for one trained model in the repository (the paper's
/// per-model "metadata": statistics and last update, Section 4.1).
struct ModelInfo {
  std::string kind;            // "single", "east-pair", "south-pair", "global"
  int64_t tokens_at_build = 0;
  int64_t statements_at_build = 0;
  int64_t build_count = 0;
  double train_seconds = 0.0;
};

/// Summary of a snapshot load that survived damage. The quarantine policy
/// (ISSUE: crash-safe snapshots): a model whose section fails its CRC or
/// does not parse is dropped — the surviving pyramid keeps serving and
/// uncovered segments take the paper's linear-line failure path — instead
/// of the whole load failing.
struct LoadReport {
  int models_loaded = 0;
  int models_quarantined = 0;
  /// The repository index itself was unreadable: every model is lost and
  /// the system serves pure linear fallback (filled by Kamel).
  bool repository_quarantined = false;
  bool detokenizer_quarantined = false;  // filled by Kamel::LoadFromFile
  /// One human-readable note per casualty, e.g.
  /// "single model at level 2 cell (3,4): checksum mismatch".
  std::vector<std::string> quarantined;

  bool partial() const {
    return models_quarantined > 0 || repository_quarantined ||
           detokenizer_quarantined;
  }
  std::string Summary() const;
};

/// The model repository of the Partitioning module (Section 4): a pyramid
/// of single-cell and neighbor-cells BERT models, built offline from the
/// trajectory store and consulted online for imputation.
///
/// Single-cell models live at their cell. A neighbor-cells model for an
/// east-west pair is stored at the west cell; for a north-south pair at
/// the north cell — the other cell conceptually holds a pointer to it
/// (Section 4.1), which here is the lookup in SelectModel.
class ModelRepository {
 public:
  /// `store` is borrowed and must outlive the repository.
  ModelRepository(const Pyramid& pyramid, const KamelOptions& options,
                  const TrajectoryStore* store);

  /// Section 4.2 maintenance: integrates a batch of newly stored training
  /// trajectories (given by store indices), building or refreshing every
  /// model whose token threshold is now met. With partitioning disabled
  /// (ablation "No Part.") it trains one global model on the whole store.
  Status AddTrainingBatch(const std::vector<size_t>& new_indices);

  /// Section 4.1 retrieval: the model of the smallest single cell or
  /// neighbor-cell pair fully enclosing `mbr`; nullptr when no maintained
  /// model covers it (callers then split the trajectory or fall back to a
  /// straight line).
  TrajBert* SelectModel(const BBox& mbr) const;

  /// Number of trained models currently held.
  int num_models() const;
  int num_single_models() const { return num_single_; }
  int num_neighbor_models() const { return num_neighbor_; }

  /// Cumulative offline training time, seconds (Figure 11a).
  double total_train_seconds() const { return total_train_seconds_; }

  /// Info records of all models, for inspection and reporting.
  std::vector<ModelInfo> ModelInfos() const;

  const Pyramid& pyramid() const { return pyramid_; }

  /// Writes the repository as framed sections: one "repo.index" section
  /// (cell list, flags, metadata) followed by one "model" section per
  /// trained model, each independently CRC-protected so a reader can
  /// quarantine a single damaged model.
  void Save(BinaryWriter* writer) const;

  /// Loads what Save wrote. An unreadable or checksum-failing index is a
  /// non-OK Status (nothing can be recovered without it); an individually
  /// damaged model section is quarantined — skipped via its frame, noted
  /// in `report` — and loading continues. `report` may be null.
  Status Load(BinaryReader* reader, LoadReport* report = nullptr);

 private:
  struct Entry {
    std::unique_ptr<TrajBert> single;
    ModelInfo single_info;
    std::unique_ptr<TrajBert> east_pair;   // this cell + its east neighbor
    ModelInfo east_info;
    std::unique_ptr<TrajBert> south_pair;  // this cell + its south neighbor
    ModelInfo south_info;
  };

  /// Trains a TrajBert on all store trajectories fully enclosed in
  /// `bounds`; returns nullptr when the corpus is empty.
  std::unique_ptr<TrajBert> TrainOn(const BBox& bounds, uint64_t salt,
                                    ModelInfo* info, const char* kind);

  /// Identifies one neighbor-pair model by its storage cell and axis.
  struct PairKey {
    PyramidCell cell;
    bool south = false;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      return PyramidCellHash()(k.cell) * 2 + (k.south ? 1 : 0);
    }
  };
  using PairSet = std::unordered_set<PairKey, PairKeyHash>;

  /// Builds/refreshes the single-cell model at `cell` if warranted.
  void MaybeBuildSingle(const PyramidCell& cell);

  /// Builds/refreshes neighbor-pair models between `cell` and each of its
  /// in-bounds neighbors if warranted (threshold doubled, Section 4.1).
  /// `built` dedupes pairs within one training batch.
  void MaybeBuildNeighbors(const PyramidCell& cell, PairSet* built);

  TrajBert* LookupSingle(const PyramidCell& cell) const;
  TrajBert* LookupPair(const PyramidCell& a, const PyramidCell& b) const;

  /// One model the snapshot index promises; `slot` selects the Entry
  /// member (0 global, 1 single, 2 east-pair, 4 south-pair).
  struct ExpectedModel {
    std::string kind;
    PyramidCell cell;
    ModelInfo info;
    int slot = 0;
  };

  /// Parses one CRC-verified "model" section payload and installs it.
  Status LoadOneModel(BinaryReader* reader, const ExpectedModel& expected);

  Pyramid pyramid_;
  KamelOptions options_;
  const TrajectoryStore* store_;
  std::unordered_map<PyramidCell, Entry, PyramidCellHash> entries_;
  std::unique_ptr<TrajBert> global_model_;  // "No Part." ablation
  ModelInfo global_info_;
  int num_single_ = 0;
  int num_neighbor_ = 0;
  double total_train_seconds_ = 0.0;
};

}  // namespace kamel

#endif  // KAMEL_CORE_MODEL_REPOSITORY_H_
