#ifndef KAMEL_CORE_MODEL_REPOSITORY_H_
#define KAMEL_CORE_MODEL_REPOSITORY_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bert/traj_bert.h"
#include "common/result.h"
#include "core/options.h"
#include "core/pyramid.h"
#include "core/trajectory_store.h"

namespace kamel {

/// Shared, immutable handle to one trained model. Models are replaced (not
/// mutated) on retrain, so a handle obtained from SelectModel stays valid
/// and consistent for as long as the caller keeps it — even across cache
/// eviction or a repository rebuild on another thread.
using ModelHandle = std::shared_ptr<const TrajBert>;

/// Bookkeeping for one trained model in the repository (the paper's
/// per-model "metadata": statistics and last update, Section 4.1).
struct ModelInfo {
  std::string kind;            // "single", "east-pair", "south-pair", "global"
  int64_t tokens_at_build = 0;
  int64_t statements_at_build = 0;
  int64_t build_count = 0;
  double train_seconds = 0.0;
};

/// Summary of a snapshot load that survived damage. The quarantine policy
/// (ISSUE: crash-safe snapshots): a model whose section fails its CRC or
/// does not parse is dropped — the surviving pyramid keeps serving and
/// uncovered segments take the paper's linear-line failure path — instead
/// of the whole load failing.
struct LoadReport {
  int models_loaded = 0;
  int models_quarantined = 0;
  /// The repository index itself was unreadable: every model is lost and
  /// the system serves pure linear fallback (filled by Kamel).
  bool repository_quarantined = false;
  bool detokenizer_quarantined = false;  // filled by Kamel::LoadFromFile
  /// The snapshot's ingest log (builder saves only) was unreadable:
  /// serving is unaffected but the store stays empty, so training cannot
  /// resume from this snapshot alone.
  bool ingest_quarantined = false;
  /// One human-readable note per casualty, e.g.
  /// "single model at level 2 cell (3,4): checksum mismatch".
  std::vector<std::string> quarantined;
  /// Non-fatal informational notes, e.g. state recovered from redundant
  /// sections ("detokenizer clusters rebuilt from the ingest log").
  std::vector<std::string> notes;

  bool partial() const {
    return models_quarantined > 0 || repository_quarantined ||
           detokenizer_quarantined || ingest_quarantined;
  }
  std::string Summary() const;
};

/// Where a lazily-loaded model's section lives in the snapshot file, plus
/// the CRC recorded at index time (re-verified on every on-demand load).
struct LazyModelRef {
  size_t payload_offset = 0;
  uint64_t length = 0;
  uint32_t stored_crc = 0;
};

/// Retry and circuit-breaker tuning for demand loads (filled from the
/// model_load_* / model_breaker_* fields of KamelOptions).
struct LoadRetryPolicy {
  /// Retries after the first failed attempt (total attempts = 1 + this).
  int max_retries = 2;
  /// Base backoff between attempts, ms (doubles per retry, jittered).
  double backoff_ms = 1.0;
  /// Open-breaker cooldown before one half-open probe is allowed, s.
  double breaker_cooldown_s = 5.0;
  /// Stuck-IO budget for one demand load, seconds (<= 0 unwatched). A
  /// load finishing past it opens the breaker even on success.
  double stall_budget_s = 5.0;
};

/// Circuit-breaker state of one demand-loaded model (classic three-state
/// machine). kClosed: loads go to disk. kOpen: every attempt within the
/// cooldown is refused without touching the disk. kHalfOpen: the cooldown
/// elapsed and the next request is the single probe that re-closes the
/// breaker on success or re-opens it on failure.
enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Sharded-mutex LRU cache of on-demand loaded models. The shard of a model
/// is derived from its file offset, so concurrent misses on different
/// models usually load in parallel; a hit takes exactly one shard mutex.
/// Eviction only drops the cache's reference — serving threads holding a
/// ModelHandle keep their model alive until they release it.
///
/// Residency is byte-accounted: every cached model is charged its section
/// size against `max_resident_bytes` (a global atomic), and an insert
/// that pushes the total over budget trims the shard's LRU tail. A model
/// pinned by an in-flight imputation (the cache is not the only handle
/// owner) is skipped — dropping the cache reference would not reclaim
/// its bytes — and evicted on the next pressure once released. A model
/// larger than the entire budget is served uncached. The legacy model
/// count cap (`max_resident`) still applies per shard when > 0.
///
/// Every miss is retried through the shared RetryWithBackoff helper; a
/// model whose attempts are exhausted (disk rot, CRC mismatch) — or whose
/// load blew the stuck-IO budget — gets an open circuit breaker, so a
/// persistently failing shard costs one refusal per request instead of a
/// disk read + CRC pass — callers fall through the pyramid to an ancestor
/// or neighbor model. Breakers are per model, keyed like the cache
/// entries.
class ShardedModelCache {
 public:
  /// `path` is the snapshot file models are demand-loaded from.
  /// `max_resident` bounds cached model count (split across shards, at
  /// least one per shard; <= 0 = unbounded count). `max_resident_bytes`
  /// bounds their total section bytes (0 = unbounded).
  ShardedModelCache(std::string path, int max_resident,
                    uint64_t max_resident_bytes = 0,
                    LoadRetryPolicy retry = {}, int num_shards = 8);

  /// Returns the cached model for `ref`, loading (and possibly evicting the
  /// least-recently-used model of the same shard) on a miss. kUnavailable
  /// without disk IO while the breaker is open.
  Result<ModelHandle> GetOrLoad(const LazyModelRef& ref);

  /// Current breaker state of the model at `ref`.
  BreakerState breaker_state(const LazyModelRef& ref) const;

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Breakers currently open (or half-open awaiting their probe).
  int open_breakers() const {
    return open_breakers_.load(std::memory_order_relaxed);
  }
  /// Times any breaker transitioned closed -> open since construction.
  int64_t breaker_opens() const {
    return breaker_opens_.load(std::memory_order_relaxed);
  }
  /// Requests refused without disk IO because a breaker was open.
  int64_t breaker_short_circuits() const {
    return breaker_short_circuits_.load(std::memory_order_relaxed);
  }

  // -- Byte-accounted residency -------------------------------------------

  /// Section bytes currently held by cached models.
  uint64_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t max_resident_bytes() const { return max_bytes_; }
  /// True while the cache holds more bytes than its budget allows (every
  /// over-budget entry is pinned by an in-flight imputation).
  bool memory_pressure() const {
    return max_bytes_ > 0 && resident_bytes() > max_bytes_;
  }
  /// Entries dropped by byte- or count-pressure eviction.
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Eviction candidates skipped because an imputation pinned them.
  int64_t pinned_skips() const {
    return pinned_skips_.load(std::memory_order_relaxed);
  }
  /// Models served without caching (section larger than the budget).
  int64_t uncacheable_loads() const {
    return uncacheable_loads_.load(std::memory_order_relaxed);
  }
  /// Re-runs byte-pressure eviction across every shard, dropping entries
  /// whose pins have been released. The serving engine calls it from its
  /// health/stats probes so bytes freed by finished imputations are
  /// reclaimed promptly instead of on the next insert; const because the
  /// cache is internally synchronized and residency is not part of the
  /// observable mapping.
  void TrimToBudget() const;

  /// Invokes `fn` on every currently cached model, one shard at a time
  /// (each shard's mutex is held during its entries' callbacks — keep
  /// `fn` cheap). Stats/observability only; does not touch LRU order.
  void ForEachResident(const std::function<void(const TrajBert&)>& fn) const;

 private:
  struct CacheEntry {
    ModelHandle model;
    std::list<size_t>::iterator lru_it;
    uint64_t bytes = 0;  // budget charge (section size)
  };
  struct Breaker {
    bool open = false;
    double open_since_s = 0.0;  // steady-clock seconds at open time
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<size_t> lru;  // most recently used first, keyed by offset
    std::unordered_map<size_t, CacheEntry> entries;
    std::unordered_map<size_t, Breaker> breakers;
  };

  Shard& ShardFor(size_t key) const { return *shards_[key % shards_.size()]; }

  /// Reads + CRC-verifies + parses the model section at `ref`.
  Result<ModelHandle> LoadFromDisk(const LazyModelRef& ref) const;

  /// LoadFromDisk with up to 1 + retry_.max_retries attempts via the
  /// shared RetryWithBackoff helper. Called with the shard mutex held so
  /// a thundering herd on one model does a single retry sequence.
  Result<ModelHandle> LoadWithRetries(const LazyModelRef& ref) const;

  /// Drops unpinned LRU-tail entries of `shard` while the cache is over
  /// its count or byte budget. Caller holds `shard.mu`.
  void EvictLocked(Shard& shard) const;

  /// Steady-clock seconds since an arbitrary epoch (for cooldowns).
  static double NowSeconds();

  const std::string path_;
  const size_t per_shard_capacity_;
  const uint64_t max_bytes_;
  const LoadRetryPolicy retry_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  // Mutable: adjusted by const eviction (TrimToBudget / EvictLocked).
  mutable std::atomic<uint64_t> resident_bytes_{0};
  mutable std::atomic<int64_t> evictions_{0};
  mutable std::atomic<int64_t> pinned_skips_{0};
  std::atomic<int64_t> uncacheable_loads_{0};
  std::atomic<int> open_breakers_{0};
  std::atomic<int64_t> breaker_opens_{0};
  std::atomic<int64_t> breaker_short_circuits_{0};
};

/// The model repository of the Partitioning module (Section 4): a pyramid
/// of single-cell and neighbor-cells BERT models, built offline from the
/// trajectory store and consulted online for imputation.
///
/// Single-cell models live at their cell. A neighbor-cells model for an
/// east-west pair is stored at the west cell; for a north-south pair at
/// the north cell — the other cell conceptually holds a pointer to it
/// (Section 4.1), which here is the lookup in SelectModel.
///
/// Thread model: AddTrainingBatch and Load are offline, single-threaded
/// mutators. Once building is done, the entry index is never mutated, so
/// any number of threads may call SelectModel concurrently; in lazy mode
/// (max_resident_models > 0) misses go through the sharded-mutex LRU
/// cache. The repository is copyable — a copy shares the (immutable)
/// trained models and the lazy cache but owns its own index, which is how
/// KamelSnapshot pins a consistent model set while the builder retrains.
class ModelRepository {
 public:
  /// `store` backs offline training; serving-only copies may pass nullptr.
  ModelRepository(const Pyramid& pyramid, const KamelOptions& options,
                  std::shared_ptr<const TrajectoryStore> store);

  /// Section 4.2 maintenance: integrates a batch of newly stored training
  /// trajectories (given by store indices), building or refreshing every
  /// model whose token threshold is now met. With partitioning disabled
  /// (ablation "No Part.") it trains one global model on the whole store.
  Status AddTrainingBatch(const std::vector<size_t>& new_indices);

  /// Section 4.1 retrieval: the model of the smallest single cell or
  /// neighbor-cells pair fully enclosing `mbr`; nullptr when no maintained
  /// model covers it (callers then split the trajectory or fall back to a
  /// straight line). Thread-safe once building is done.
  ModelHandle SelectModel(const BBox& mbr) const;

  /// How one SelectModel lookup was satisfied, for the degradation
  /// ladder: `finest_level` is the finest pyramid level whose index
  /// promises a covering model (lazy or resident), `served_level` the
  /// level that actually resolved. served_level < finest_level means a
  /// finer model exists but could not be served (open breaker, failed
  /// demand load) and the request degraded to a pyramid ancestor.
  struct ModelSelection {
    ModelHandle model;      // null: nothing resolved at any level
    int served_level = -1;  // level of `model`, -1 when null
    int finest_level = -1;  // finest indexed covering level, -1 if none

    bool degraded() const {
      return model != nullptr && served_level < finest_level;
    }
  };

  /// SelectModel plus the ladder accounting above. The plain SelectModel
  /// is a thin wrapper over this.
  ModelSelection SelectModelLadder(const BBox& mbr) const;

  /// Drops every indexed model (single and pair) whose spatial bounds
  /// fail `keep`; the "No Part." global model is always retained. An
  /// offline mutator like AddTrainingBatch/Load — shard workers call it
  /// once after loading a shipped snapshot to pin only their partition
  /// (plus everything overlapping it, which is what keeps SelectModel
  /// byte-identical for owned queries), before any serving thread runs.
  /// Returns the number of models dropped.
  int RetainModels(const std::function<bool(const BBox&)>& keep);

  /// Spatial bounds of a model slot at `cell`: the cell itself for a
  /// single model, the union with the east/south neighbor for a pair.
  BBox SingleBounds(const PyramidCell& cell) const;
  BBox EastPairBounds(const PyramidCell& cell) const;
  BBox SouthPairBounds(const PyramidCell& cell) const;

  /// Number of trained models currently indexed (resident or lazy).
  int num_models() const;
  int num_single_models() const { return num_single_; }
  int num_neighbor_models() const { return num_neighbor_; }

  /// Cumulative offline training time, seconds (Figure 11a).
  double total_train_seconds() const { return total_train_seconds_; }

  /// Info records of all models, for inspection and reporting.
  std::vector<ModelInfo> ModelInfos() const;

  const Pyramid& pyramid() const { return pyramid_; }

  /// The lazy cache, when loading used one (for stats); nullptr otherwise.
  const ShardedModelCache* cache() const { return cache_.get(); }

  /// Writes the repository as framed sections: one "repo.index" section
  /// (cell list, flags, metadata) followed by one "model" section per
  /// trained model, each independently CRC-protected so a reader can
  /// quarantine a single damaged model. Non-resident lazy models are
  /// faulted in through the cache; an unreadable one fails the save.
  /// `format` selects the serving weight storage of every saved model:
  /// kF32 (the default) keeps the historical byte layout, a quantized
  /// format block-encodes the big weight matrices (serving-only
  /// snapshot).
  Status Save(BinaryWriter* writer,
              nn::WeightFormat format = nn::WeightFormat::kF32) const;

  /// Resident weight storage, split by format (for `kamel stats`).
  struct WeightResidency {
    int64_t f32_bytes = 0;    // weight bytes of resident fp32 models
    int64_t quant_bytes = 0;  // weight bytes of resident quantized models
    int models_f32 = 0;
    int models_quant = 0;
  };

  /// Tallies every resident model (eagerly loaded slots plus the lazy
  /// cache's current entries). Thread-safe once building is done.
  WeightResidency GetWeightResidency() const;

  /// Loads what Save wrote. An unreadable or checksum-failing index is a
  /// non-OK Status (nothing can be recovered without it); an individually
  /// damaged model section is quarantined — skipped via its frame, noted
  /// in `report` — and loading continues. `report` may be null.
  ///
  /// When `source_path` is given and either residency budget is set
  /// (`options.max_resident_models > 0` or `options.max_resident_bytes >
  /// 0`), model weights are NOT parsed up front: each intact section is
  /// indexed by file offset and demand-loaded through a ShardedModelCache
  /// bounded by those budgets.
  Status Load(BinaryReader* reader, LoadReport* report = nullptr,
              const std::string* source_path = nullptr);

 private:
  /// One model slot: resident handle, or a lazy file reference, or empty.
  struct ModelSlot {
    ModelHandle model;
    std::optional<LazyModelRef> lazy;
    ModelInfo info;

    bool present() const { return model != nullptr || lazy.has_value(); }
  };

  struct Entry {
    ModelSlot single;
    ModelSlot east_pair;   // this cell + its east neighbor
    ModelSlot south_pair;  // this cell + its south neighbor
  };

  /// Trains a TrajBert on all store trajectories fully enclosed in
  /// `bounds`; returns nullptr when the corpus is empty.
  ModelHandle TrainOn(const BBox& bounds, uint64_t salt, ModelInfo* info,
                      const char* kind);

  /// Identifies one neighbor-pair model by its storage cell and axis.
  struct PairKey {
    PyramidCell cell;
    bool south = false;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      return PyramidCellHash()(k.cell) * 2 + (k.south ? 1 : 0);
    }
  };
  using PairSet = std::unordered_set<PairKey, PairKeyHash>;

  /// Builds/refreshes the single-cell model at `cell` if warranted.
  void MaybeBuildSingle(const PyramidCell& cell);

  /// Builds/refreshes neighbor-pair models between `cell` and each of its
  /// in-bounds neighbors if warranted (threshold doubled, Section 4.1).
  /// `built` dedupes pairs within one training batch.
  void MaybeBuildNeighbors(const PyramidCell& cell, PairSet* built);

  /// Resolves a slot to a servable model: the resident handle, or a cache
  /// load for a lazy reference (nullptr if the load fails — the caller
  /// falls back exactly as for a missing model).
  ModelHandle Resolve(const ModelSlot& slot) const;

  /// The indexed slot (resident or lazy) for a single-cell / pair model;
  /// nullptr when the index holds nothing there. Presence is judged on
  /// the index alone — a present slot may still fail to Resolve.
  const ModelSlot* FindSingle(const PyramidCell& cell) const;
  const ModelSlot* FindPair(const PyramidCell& a, const PyramidCell& b) const;

  ModelHandle LookupSingle(const PyramidCell& cell) const;
  ModelHandle LookupPair(const PyramidCell& a, const PyramidCell& b) const;

  /// One model the snapshot index promises; `slot` selects the Entry
  /// member (0 global, 1 single, 2 east-pair, 4 south-pair).
  struct ExpectedModel {
    std::string kind;
    PyramidCell cell;
    ModelInfo info;
    int slot = 0;
  };

  ModelSlot* SlotFor(const ExpectedModel& expected);

  /// Parses one CRC-verified "model" section payload and installs it.
  Status LoadOneModel(BinaryReader* reader, const ExpectedModel& expected);

  /// Fetches the model for `slot`, faulting a lazy reference in through
  /// the cache; non-OK when a lazy load fails.
  Result<ModelHandle> ResolveForSave(const ModelSlot& slot) const;

  Pyramid pyramid_;
  KamelOptions options_;
  std::shared_ptr<const TrajectoryStore> store_;
  std::unordered_map<PyramidCell, Entry, PyramidCellHash> entries_;
  ModelSlot global_;  // "No Part." ablation
  std::shared_ptr<ShardedModelCache> cache_;  // set by lazy Load
  int num_single_ = 0;
  int num_neighbor_ = 0;
  double total_train_seconds_ = 0.0;
};

}  // namespace kamel

#endif  // KAMEL_CORE_MODEL_REPOSITORY_H_
