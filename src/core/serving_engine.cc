#include "core/serving_engine.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/io_watchdog.h"
#include "nn/backend/backend.h"

namespace kamel {

const char* ToString(HealthState state) {
  switch (state) {
    case HealthState::kServing:
      return "SERVING";
    case HealthState::kDegraded:
      return "DEGRADED";
    case HealthState::kShedding:
      return "SHEDDING";
    case HealthState::kDraining:
      return "DRAINING";
  }
  return "UNKNOWN";
}

std::string EngineStatsJson(const EngineStats& stats, HealthState health) {
  std::ostringstream out;
  out << "{\"health\":\"" << ToString(health) << "\""
      << ",\"admitted\":" << stats.admitted << ",\"shed\":" << stats.shed
      << ",\"degraded\":" << stats.degraded
      << ",\"pending\":" << stats.pending
      << ",\"peak_pending\":" << stats.peak_pending
      << ",\"resource_pressure\":"
      << (stats.resource_pressure ? "true" : "false")
      << ",\"io_stalls\":" << stats.io_stalls
      << ",\"io_stuck\":" << stats.io_stuck
      << ",\"cache_resident_bytes\":" << stats.cache_resident_bytes
      << ",\"backend\":\"" << stats.backend << "\""
      << ",\"quantized_models\":" << stats.quantized_models
      << ",\"model_bytes_f32\":" << stats.model_bytes_f32
      << ",\"model_bytes_quant\":" << stats.model_bytes_quant << "}";
  return out.str();
}

// ---------------------------------------------------------------------------
// ServingEngine
// ---------------------------------------------------------------------------

ServingEngine::ServingEngine(std::shared_ptr<const KamelSnapshot> snapshot,
                             ServingOptions options)
    : options_(options),
      snapshot_(std::move(snapshot)),
      pool_(options.num_threads) {
  KAMEL_CHECK(snapshot_ != nullptr,
              "ServingEngine needs a snapshot (KamelBuilder::Snapshot)");
}

std::shared_ptr<const KamelSnapshot> ServingEngine::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

void ServingEngine::UpdateSnapshot(
    std::shared_ptr<const KamelSnapshot> snapshot) {
  KAMEL_CHECK(snapshot != nullptr, "cannot serve a null snapshot");
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snapshot);
}

Result<ImputeMode> ServingEngine::AdmitOne() {
  std::unique_lock<std::mutex> lock(admit_mu_);
  if (draining_) {
    return Status::Unavailable("serving engine is draining");
  }
  ImputeMode mode = ImputeMode::kFull;
  if (options_.max_pending > 0 && pending_ >= options_.max_pending) {
    switch (options_.overload_policy) {
      case OverloadPolicy::kBlock:
        admit_cv_.wait(lock, [this] {
          return draining_ || pending_ < options_.max_pending;
        });
        if (draining_) {
          return Status::Unavailable(
              "serving engine began draining while this call was queued");
        }
        break;
      case OverloadPolicy::kShed:
        ++shed_;
        return Status::ResourceExhausted(
            "serving queue full (" + std::to_string(pending_) + "/" +
            std::to_string(options_.max_pending) +
            " pending imputations); retry with backoff");
      case OverloadPolicy::kDegrade:
        // Admit beyond the bound, but at the ladder's bottom rung: the
        // excess work is straight-line interpolation, so the queue keeps
        // moving instead of stacking BERT inference behind the bound.
        ++degraded_;
        mode = ImputeMode::kLinearOnly;
        break;
    }
  }
  ++pending_;
  peak_pending_ = std::max(peak_pending_, pending_);
  ++admitted_;
  return mode;
}

void ServingEngine::ReleaseOne() {
  std::lock_guard<std::mutex> lock(admit_mu_);
  --pending_;
  KAMEL_CHECK(pending_ >= 0, "admission release without admit");
  // Wakes both kBlock waiters in AdmitOne and the drainer in Drain.
  admit_cv_.notify_all();
}

Result<ImputedTrajectory> ServingEngine::Impute(
    const Trajectory& sparse) const {
  if (draining()) {
    return Status::Unavailable("serving engine is draining");
  }
  return snapshot()->Impute(sparse);
}

std::future<Result<ImputedTrajectory>> ServingEngine::ImputeAsync(
    Trajectory sparse) {
  Result<ImputeMode> admission = AdmitOne();
  if (!admission.ok()) {
    std::promise<Result<ImputedTrajectory>> refused;
    refused.set_value(admission.status());
    return refused.get_future();
  }
  const ImputeMode mode = admission.value();
  std::shared_ptr<const KamelSnapshot> snap = snapshot();
  // `this` outlives the task: the pool is the engine's last member, so
  // its destructor joins every queued task before the admission state
  // (or anything else) is torn down.
  return pool_.Submit(
      [this, mode, snap = std::move(snap), sparse = std::move(sparse)]() {
        Result<ImputedTrajectory> result = snap->Impute(sparse, mode);
        ReleaseOne();
        return result;
      });
}

Result<std::vector<ImputedGap>> ServingEngine::ImputeGaps(
    const std::vector<SegmentContext>& gaps) {
  KAMEL_ASSIGN_OR_RETURN(ImputeMode mode, AdmitOne());
  // Pin one snapshot for the whole slice: a concurrent UpdateSnapshot
  // must not split the gaps of one request across model generations.
  const std::shared_ptr<const KamelSnapshot> snap = snapshot();
  std::vector<ImputedGap> out;
  out.reserve(gaps.size());
  for (const SegmentContext& context : gaps) {
    out.push_back(snap->ImputeGap(context, mode));
  }
  ReleaseOne();
  return out;
}

Result<std::vector<ImputedTrajectory>> ServingEngine::ImputeBatch(
    const TrajectoryDataset& batch) {
  // One snapshot for the whole batch: a concurrent UpdateSnapshot must
  // not split the batch across two model generations.
  std::shared_ptr<const KamelSnapshot> snap = snapshot();

  // Each trajectory is admitted individually, so a bounded engine under
  // kBlock backpressures this thread between submissions instead of
  // dumping the whole batch on the queue at once.
  std::vector<std::future<Result<ImputedTrajectory>>> futures;
  futures.reserve(batch.trajectories.size());
  Status admission_error = Status::OK();
  for (const Trajectory& trajectory : batch.trajectories) {
    Result<ImputeMode> admission = AdmitOne();
    if (!admission.ok()) {
      // Remember the first refusal but keep admitting the rest: partial
      // shedding of a batch must not silently drop its tail, and the
      // futures already submitted reference locals, so we finish the
      // loop either way.
      if (admission_error.ok()) admission_error = admission.status();
      continue;
    }
    const ImputeMode mode = admission.value();
    futures.push_back(pool_.Submit([this, mode, &snap, &trajectory]() {
      Result<ImputedTrajectory> result = snap->Impute(trajectory, mode);
      ReleaseOne();
      return result;
    }));
  }

  // Collect by input index: result order — and therefore every aggregate
  // over the batch — is independent of which worker finished first. On
  // failure the lowest-index error wins, again deterministically, but
  // only after every future has been waited on (tasks reference locals).
  std::vector<ImputedTrajectory> out;
  out.reserve(futures.size());
  Status first_error = Status::OK();
  for (auto& future : futures) {
    Result<ImputedTrajectory> result = future.get();
    if (!result.ok()) {
      if (first_error.ok()) first_error = result.status();
      continue;
    }
    out.push_back(std::move(result).value());
  }
  KAMEL_RETURN_NOT_OK(first_error);
  KAMEL_RETURN_NOT_OK(admission_error);
  return out;
}

HealthState ServingEngine::health() const { return status().health; }

EngineStats ServingEngine::stats() const { return status().stats; }

EngineStatus ServingEngine::status() const {
  EngineStatus out;
  {
    // ONE hold of the admission lock produces both the counters and the
    // admission-derived health verdict, so the pair is consistent: a
    // probe can never read kShedding next to pending < max_pending.
    std::lock_guard<std::mutex> lock(admit_mu_);
    out.stats.admitted = admitted_;
    out.stats.shed = shed_;
    out.stats.degraded = degraded_;
    out.stats.pending = pending_;
    out.stats.peak_pending = peak_pending_;
    if (draining_) {
      out.health = HealthState::kDraining;
    } else if (options_.max_pending > 0 && pending_ >= options_.max_pending) {
      out.health = options_.overload_policy == OverloadPolicy::kShed
                       ? HealthState::kShedding
                       : HealthState::kDegraded;
    }
  }
  // Resource signals, gathered ONCE outside admit_mu_ (snapshot() takes
  // its own lock; the watchdog has its own) and applied to counters and
  // health alike.
  out.stats.io_stalls = IoWatchdog::Instance().stall_events();
  out.stats.io_stuck = IoWatchdog::Instance().stuck_now();
  bool breaker_open = false;
  const std::shared_ptr<const KamelSnapshot> snap = snapshot();
  const ShardedModelCache* cache = snap->repository().cache();
  if (cache != nullptr) {
    // Reclaim bytes whose pins were released before judging pressure:
    // pressure that a trim cannot fix (every over-budget entry pinned by
    // an in-flight imputation) is the real signal.
    cache->TrimToBudget();
    out.stats.cache_resident_bytes = cache->resident_bytes();
    out.stats.resource_pressure = cache->memory_pressure();
    breaker_open = cache->open_breakers() > 0;
  }
  out.stats.resource_pressure =
      out.stats.resource_pressure || out.stats.io_stuck > 0;
  out.stats.backend = nn::ActiveBackend()->name();
  const ModelRepository::WeightResidency residency =
      snap->repository().GetWeightResidency();
  out.stats.quantized_models = residency.models_quant;
  out.stats.model_bytes_f32 = residency.f32_bytes;
  out.stats.model_bytes_quant = residency.quant_bytes;
  // An open model-load breaker means some segments are being served by a
  // pyramid ancestor (or a straight line), and a hung IO operation means
  // probes should steer load elsewhere: degraded, not down. Terminal and
  // admission states take precedence.
  if (out.health == HealthState::kServing &&
      (breaker_open || out.stats.resource_pressure)) {
    out.health = HealthState::kDegraded;
  }
  return out;
}

bool ServingEngine::draining() const {
  std::lock_guard<std::mutex> lock(admit_mu_);
  return draining_;
}

ImputeMode ServingEngine::BypassMode() const {
  std::lock_guard<std::mutex> lock(admit_mu_);
  if (draining_) return ImputeMode::kLinearOnly;
  if (options_.overload_policy == OverloadPolicy::kDegrade &&
      options_.max_pending > 0 && pending_ >= options_.max_pending) {
    return ImputeMode::kLinearOnly;
  }
  return ImputeMode::kFull;
}

void ServingEngine::Drain() {
  std::unique_lock<std::mutex> lock(admit_mu_);
  draining_ = true;
  // Wake kBlock callers parked in AdmitOne: they observe draining_ and
  // return kUnavailable instead of a slot.
  admit_cv_.notify_all();
  admit_cv_.wait(lock, [this] { return pending_ == 0; });
}

// ---------------------------------------------------------------------------
// StreamingSession
// ---------------------------------------------------------------------------

StreamingSession::StreamingSession(ServingEngine* engine, ImputedSink* sink,
                                   StreamingOptions options)
    : engine_(engine), sink_(sink), options_(options) {
  KAMEL_CHECK(engine != nullptr);
}

StreamingSession::~StreamingSession() { Drain(); }

size_t StreamingSession::open_trajectories() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffers_.size();
}

size_t StreamingSession::total_buffered_points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_points_;
}

int64_t StreamingSession::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void StreamingSession::Touch(Buffer* buffer) {
  lru_.splice(lru_.end(), lru_, buffer->lru_it);
}

Trajectory StreamingSession::Detach(
    std::unordered_map<int64_t, Buffer>::iterator it) {
  Trajectory out = std::move(it->second.trajectory);
  total_points_ -= out.points.size();
  lru_.erase(it->second.lru_it);
  buffers_.erase(it);
  return out;
}

void StreamingSession::Emit(int64_t object_id, Trajectory trajectory) {
  // Pin the serving snapshot now, dispatch the BERT work to the pool:
  // Push returns immediately and results reach the sink from a worker.
  // The mode is also pinned here: a draining or degrade-saturated engine
  // serves this trip at the ladder's bottom rung (kLinearOnly).
  std::shared_ptr<const KamelSnapshot> snap = engine_->snapshot();
  const ImputeMode mode = engine_->BypassMode();
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    ++pending_emits_;
  }
  engine_->pool()->Schedule([this, object_id, mode, snap = std::move(snap),
                             trajectory = std::move(trajectory)]() {
    Result<ImputedTrajectory> imputed = snap->Impute(trajectory, mode);
    if (sink_ != nullptr) {
      if (imputed.ok()) {
        sink_->OnImputed(object_id, std::move(imputed).value());
      } else {
        sink_->OnImputeError(object_id, imputed.status());
      }
    }
    {
      // Notify under the lock: once the waiter in Drain() observes zero
      // it may destroy the session, so this task must not touch members
      // after releasing pending_mu_.
      std::lock_guard<std::mutex> lock(pending_mu_);
      --pending_emits_;
      pending_cv_.notify_all();
    }
  });
}

void StreamingSession::Drain() {
  std::unique_lock<std::mutex> lock(pending_mu_);
  pending_cv_.wait(lock, [this] { return pending_emits_ == 0; });
}

Status StreamingSession::EvictOne(int64_t protect) {
  for (int64_t victim : lru_) {
    if (victim == protect) continue;
    auto it = buffers_.find(victim);
    KAMEL_CHECK(it != buffers_.end(), "LRU list out of sync with buffers");
    Trajectory finished = Detach(it);
    ++evictions_;
    // The evicted trip is imputed and emitted, not dropped: overload
    // trades session longevity for bounded memory.
    Emit(victim, std::move(finished));
    return Status::OK();
  }
  return Status::ResourceExhausted("no evictable streaming session");
}

Status StreamingSession::Push(int64_t object_id, const TrajPoint& point) {
  std::lock_guard<std::mutex> lock(mu_);
  return PushLocked(object_id, point);
}

Status StreamingSession::PushLocked(int64_t object_id,
                                    const TrajPoint& point) {
  // Boundary validation: a malformed reading is refused here, before it
  // can reach geometry code or be buffered.
  if (!std::isfinite(point.pos.lat) || !std::isfinite(point.pos.lng) ||
      !std::isfinite(point.time)) {
    return Status::InvalidArgument("object " + std::to_string(object_id) +
                                   ": non-finite reading");
  }
  if (point.pos.lat < -90.0 || point.pos.lat > 90.0 ||
      point.pos.lng < -180.0 || point.pos.lng > 180.0) {
    return Status::InvalidArgument("object " + std::to_string(object_id) +
                                   ": coordinates out of range");
  }

  auto it = buffers_.find(object_id);
  if (it == buffers_.end()) {
    // Admitting a new object may evict the least-recently-active one.
    while (buffers_.size() >= options_.max_open_objects) {
      KAMEL_RETURN_NOT_OK(EvictOne(object_id));
    }
    it = buffers_.emplace(object_id, Buffer{}).first;
    it->second.trajectory.id = object_id;
    it->second.lru_it = lru_.insert(lru_.end(), object_id);
  }
  Buffer& buffer = it->second;
  const std::vector<TrajPoint>& points = buffer.trajectory.points;

  if (!points.empty() && point.time - points.back().time >
                             options_.session_timeout_seconds) {
    // The object went silent long enough to close its trip; the reading
    // re-enters through the same admission and validation checks.
    Trajectory finished = Detach(it);
    Emit(object_id, std::move(finished));
    return PushLocked(object_id, point);
  }
  if (!points.empty() && point.time < points.back().time) {
    return Status::InvalidArgument(
        "stream timestamps must be non-decreasing per object");
  }
  if (points.size() >= options_.max_points_per_object) {
    return Status::ResourceExhausted(
        "object " + std::to_string(object_id) + ": buffer full at " +
        std::to_string(points.size()) +
        " points; EndTrajectory it or raise max_points_per_object");
  }
  // Global backpressure: shed other sessions before refusing this feed.
  while (total_points_ >= options_.max_total_points) {
    const Status evicted = EvictOne(object_id);
    if (!evicted.ok()) {
      return Status::ResourceExhausted(
          "stream buffer full (" + std::to_string(total_points_) +
          " points) and nothing evictable");
    }
  }
  buffer.trajectory.points.push_back(point);
  ++total_points_;
  Touch(&buffer);
  return Status::OK();
}

Status StreamingSession::EndTrajectory(int64_t object_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buffers_.find(object_id);
  if (it == buffers_.end()) {
    return Status::NotFound("no open trajectory for object " +
                            std::to_string(object_id));
  }
  Trajectory finished = Detach(it);
  Emit(object_id, std::move(finished));
  return Status::OK();
}

Status StreamingSession::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int64_t> ids;
  ids.reserve(buffers_.size());
  for (const auto& [id, unused] : buffers_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (int64_t id : ids) {
    auto it = buffers_.find(id);
    KAMEL_CHECK(it != buffers_.end());
    Trajectory finished = Detach(it);
    Emit(id, std::move(finished));
  }
  return Status::OK();
}

}  // namespace kamel
