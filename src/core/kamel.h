#ifndef KAMEL_CORE_KAMEL_H_
#define KAMEL_CORE_KAMEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/kamel_snapshot.h"
#include "core/serving_engine.h"

namespace kamel {

/// KAMEL: the scalable BERT-based trajectory imputation system (Figure 1).
///
/// This is the single-threaded convenience facade over the builder /
/// snapshot / engine split (see core/kamel_snapshot.h and
/// core/serving_engine.h): it owns a KamelBuilder for offline training and
/// lazily mints an immutable KamelSnapshot for its serving calls. Use the
/// pieces directly when you need concurrency:
///
///   KamelBuilder builder(options);            // offline, single-threaded
///   builder.Train(data);
///   auto snapshot = builder.Snapshot();       // immutable, shareable
///   ServingEngine engine(*snapshot, {.num_threads = 8});
///   engine.ImputeBatch(batch);                // parallel across the pool
///
/// Lifecycle: construct with options, feed training batches through
/// Train() (offline, may be slow — it trains BERT models), then impute
/// sparse trajectories with Impute() (online, model inference only; no
/// trajectory data is scanned). The first Train() call anchors the local
/// projection and the pyramid world from the batch's extent.
///
/// Not thread-safe: one Kamel instance per thread. (The KamelSnapshot it
/// hands out via Snapshot() IS safe to share across threads.)
class Kamel {
 public:
  explicit Kamel(const KamelOptions& options);
  ~Kamel();

  Kamel(const Kamel&) = delete;
  Kamel& operator=(const Kamel&) = delete;

  /// Offline training path of Figure 1: tokenize, store, infer the speed
  /// bound, maintain the model repository, refit the detokenizer.
  /// Later batches enrich the system (Section 4.2). Invalidates any
  /// snapshot cached by a previous serving call — subsequent Impute()s
  /// see the new models (snapshots already handed out are unaffected).
  Status Train(const TrajectoryDataset& data);

  /// Online imputation of one sparse trajectory.
  /// FailedPrecondition if Train() has not succeeded yet.
  Result<ImputedTrajectory> Impute(const Trajectory& sparse);

  /// Bulk offline mode: imputes every trajectory of the batch on the
  /// calling thread, in input order (ServingEngine::ImputeBatch is the
  /// parallel equivalent and produces identical results).
  Result<std::vector<ImputedTrajectory>> ImputeBatch(
      const TrajectoryDataset& batch);

  /// The immutable serving snapshot of the current trained state (cached;
  /// rebuilt after Train/LoadFromFile). FailedPrecondition if untrained.
  Result<std::shared_ptr<const KamelSnapshot>> Snapshot();

  bool trained() const { return builder_.trained(); }
  const KamelOptions& options() const { return builder_.options(); }
  const GridSystem& grid() const { return builder_.grid(); }
  const LocalProjection& projection() const { return builder_.projection(); }
  const ModelRepository& repository() const { return builder_.repository(); }
  const Detokenizer& detokenizer() const { return builder_.detokenizer(); }
  const TrajectoryStore& store() const { return builder_.store(); }
  const Tokenizer& tokenizer() const { return builder_.tokenizer(); }

  /// Speed bound used by the ellipse constraint, m/s (inferred from
  /// training data unless fixed in the options).
  double max_speed_mps() const { return builder_.max_speed_mps(); }

  /// Cumulative offline training time (tokenization + model building +
  /// clustering), seconds — Figure 11(a).
  double total_train_seconds() const {
    return builder_.total_train_seconds();
  }

  /// Persists the trained state (projection anchor, world box, speed,
  /// models, clusters). Options are not stored: load with a Kamel
  /// constructed from the same options.
  ///
  /// The snapshot is crash-safe: bytes go to a temporary sibling file
  /// which is fsynced and atomically renamed over `path`, and every
  /// section carries a CRC32C so a later load detects damage.
  Status SaveToFile(const std::string& path) const {
    return builder_.SaveToFile(path);
  }

  /// Loads a snapshot. Corruption confined to one model (or to the
  /// detokenizer) is quarantined: the load succeeds, the damaged part is
  /// dropped, `report` (optional) says what was lost, and serving
  /// degrades to the linear-line fallback for uncovered segments.
  /// Damage to the header or geometry section fails the whole load with
  /// a descriptive Status — never an abort.
  Status LoadFromFile(const std::string& path, LoadReport* report = nullptr);

  /// Durable-ingestion plumbing (see core/maintenance.h): attaches a
  /// write-ahead log to the training path and exposes the checkpoint
  /// watermark the maintenance scheduler advances. Forwards to the
  /// builder; serving snapshots are unaffected.
  void AttachWal(WriteAheadLog* wal) { builder_.AttachWal(wal); }
  uint64_t wal_applied_lsn() const { return builder_.wal_applied_lsn(); }
  void set_wal_applied_lsn(uint64_t lsn) {
    builder_.set_wal_applied_lsn(lsn);
  }

  /// Every raw trajectory that contributed to the store, in ingest order.
  const std::vector<Trajectory>& ingested() const {
    return builder_.ingested();
  }

 private:
  /// Returns the cached snapshot, minting it on first use.
  Result<const KamelSnapshot*> EnsureSnapshot();

  KamelBuilder builder_;
  std::shared_ptr<const KamelSnapshot> snapshot_;  // serving cache
};

/// Integrity report of one snapshot file, produced without deserializing
/// any model weights: the header and every section frame are walked and
/// CRC-verified (`kamel fsck`).
struct SnapshotFsckReport {
  struct Section {
    std::string name;
    size_t payload_offset = 0;
    uint64_t length = 0;
    bool crc_ok = false;
  };
  uint32_t version = 0;
  std::vector<Section> sections;
  /// Set when the walk could not reach the end of the file (torn frame).
  std::string truncation_error;

  bool clean() const {
    if (!truncation_error.empty()) return false;
    for (const Section& s : sections) {
      if (!s.crc_ok) return false;
    }
    return true;
  }
};

/// Walks `path` as a KAMEL snapshot and CRC-checks every section. Returns
/// non-OK only when the file cannot be opened or its header is invalid;
/// per-section damage is reported in the result, naming the bad section.
Result<SnapshotFsckReport> FsckSnapshot(const std::string& path);

}  // namespace kamel

#endif  // KAMEL_CORE_KAMEL_H_
