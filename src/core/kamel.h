#ifndef KAMEL_CORE_KAMEL_H_
#define KAMEL_CORE_KAMEL_H_

#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/detokenizer.h"
#include "core/imputer.h"
#include "core/model_repository.h"
#include "core/options.h"
#include "core/tokenizer.h"
#include "core/trajectory_store.h"
#include "geo/trajectory.h"

namespace kamel {

/// Outcome of one imputed segment, keyed by its endpoint observation
/// times (the evaluation joins these with ground truth to compute per-
/// road-type failure rates, Figure 12-I/II).
struct SegmentOutcome {
  double s_time = 0.0;
  double d_time = 0.0;
  bool failed = false;
};

/// Per-trajectory imputation accounting (Section 8 metrics need the
/// failure rate and timing; Section 6 caps BERT calls).
struct ImputeStats {
  int segments = 0;          // sparse gaps that needed imputation
  int failed_segments = 0;   // drawn as straight lines
  int no_model_segments = 0; // failures caused by missing model coverage
  int deadline_segments = 0; // failures caused by the per-call deadline
  int64_t bert_calls = 0;
  double seconds = 0.0;
  std::vector<SegmentOutcome> outcomes;  // one per imputed segment
};

/// The imputed dense trajectory plus its accounting.
struct ImputedTrajectory {
  Trajectory trajectory;
  ImputeStats stats;
};

/// KAMEL: the scalable BERT-based trajectory imputation system (Figure 1).
///
/// Lifecycle: construct with options, feed training batches through
/// Train() (offline, may be slow — it trains BERT models), then impute
/// sparse trajectories with Impute() (online, model inference only; no
/// trajectory data is scanned). The first Train() call anchors the local
/// projection and the pyramid world from the batch's extent.
///
/// Not thread-safe: one Kamel instance per thread.
class Kamel {
 public:
  explicit Kamel(const KamelOptions& options);
  ~Kamel();

  Kamel(const Kamel&) = delete;
  Kamel& operator=(const Kamel&) = delete;

  /// Offline training path of Figure 1: tokenize, store, infer the speed
  /// bound, maintain the model repository, refit the detokenizer.
  /// Later batches enrich the system (Section 4.2).
  Status Train(const TrajectoryDataset& data);

  /// Online imputation of one sparse trajectory.
  /// FailedPrecondition if Train() has not succeeded yet.
  Result<ImputedTrajectory> Impute(const Trajectory& sparse);

  /// Bulk offline mode: imputes every trajectory of the batch.
  Result<std::vector<ImputedTrajectory>> ImputeBatch(
      const TrajectoryDataset& batch);

  bool trained() const { return trained_; }
  const KamelOptions& options() const { return options_; }
  const GridSystem& grid() const { return *grid_; }
  const LocalProjection& projection() const { return *projection_; }
  const ModelRepository& repository() const { return *repository_; }
  const Detokenizer& detokenizer() const { return *detokenizer_; }
  const TrajectoryStore& store() const { return *store_; }
  const Tokenizer& tokenizer() const { return *tokenizer_; }

  /// Speed bound used by the ellipse constraint, m/s (inferred from
  /// training data unless fixed in the options).
  double max_speed_mps() const;

  /// Cumulative offline training time (tokenization + model building +
  /// clustering), seconds — Figure 11(a).
  double total_train_seconds() const { return total_train_seconds_; }

  /// Persists the trained state (projection anchor, world box, speed,
  /// models, clusters). Options are not stored: load with a Kamel
  /// constructed from the same options.
  ///
  /// The snapshot is crash-safe: bytes go to a temporary sibling file
  /// which is fsynced and atomically renamed over `path`, and every
  /// section carries a CRC32C so a later load detects damage.
  Status SaveToFile(const std::string& path) const;

  /// Loads a snapshot. Corruption confined to one model (or to the
  /// detokenizer) is quarantined: the load succeeds, the damaged part is
  /// dropped, `report` (optional) says what was lost, and serving
  /// degrades to the linear-line fallback for uncovered segments.
  /// Damage to the header or geometry section fails the whole load with
  /// a descriptive Status — never an abort.
  Status LoadFromFile(const std::string& path,
                      LoadReport* report = nullptr);

 private:
  /// Lazily builds projection, grid, pyramid, and all modules from the
  /// first training batch's extent.
  Status InitializeGeometry(const TrajectoryDataset& data);

  /// 95th-percentile consecutive-point speed of the batch, slack-scaled
  /// (Section 5.1: "fixed speed inferred from its training data").
  void UpdateSpeedBound(const TrajectoryDataset& data);

  /// Imputes one gap; appends interior points (or a straight line on
  /// failure) to `out_points`. `deadline_expired` forces the linear
  /// failure path without consulting the model.
  void ImputeSegment(TrajBert* model, const SegmentContext& context,
                     bool deadline_expired, std::vector<TrajPoint>* out_points,
                     ImputeStats* stats);

  void AppendLinearFallback(const SegmentContext& context,
                            std::vector<TrajPoint>* out_points) const;

  KamelOptions options_;
  bool trained_ = false;
  double total_train_seconds_ = 0.0;
  double inferred_speed_mps_ = 0.0;

  std::unique_ptr<LocalProjection> projection_;
  std::unique_ptr<GridSystem> grid_;
  std::unique_ptr<Tokenizer> tokenizer_;
  std::unique_ptr<TrajectoryStore> store_;
  std::unique_ptr<Pyramid> pyramid_;
  std::unique_ptr<ModelRepository> repository_;
  std::unique_ptr<SpatialConstraints> constraints_;
  std::unique_ptr<Imputer> imputer_;
  std::unique_ptr<Detokenizer> detokenizer_;
};

/// Resource limits for the streaming front-end. A public GPS feed is
/// adversarial: objects that never close, bursts of new object ids, and
/// garbage points must all degrade gracefully instead of growing buffers
/// without bound or aborting the server.
struct StreamingOptions {
  /// A reading gap beyond this closes the object's trip (seconds).
  double session_timeout_seconds = 300.0;
  /// Per-object buffered-point cap; a Push beyond it is refused with
  /// ResourceExhausted (backpressure: callers should EndTrajectory).
  size_t max_points_per_object = 100000;
  /// Total buffered-point cap across all objects; crossing it force-
  /// closes (imputes and emits) least-recently-active objects first.
  size_t max_total_points = 1000000;
  /// Open-object cap; a new object beyond it evicts the least-recently-
  /// active open object (its trajectory is imputed and emitted, not lost).
  size_t max_open_objects = 10000;
};

/// Online streaming front-end (Figure 1's "Batch/Online Stream" input):
/// GPS readings arrive one at a time per moving object; a trajectory is
/// closed and imputed when EndTrajectory is called or when a reading gap
/// exceeds the session timeout.
///
/// Hardened for untrusted feeds: every reading is validated (finite,
/// in-range coordinates), buffers are bounded (see StreamingOptions), and
/// overload evicts sessions in LRU order rather than failing the feed.
class StreamingSession {
 public:
  using Callback = std::function<void(int64_t object_id, ImputedTrajectory)>;

  /// `system` is borrowed and must outlive the session and be trained.
  StreamingSession(Kamel* system, Callback on_imputed,
                   StreamingOptions options = {});

  /// Back-compat convenience: default limits with a custom timeout.
  StreamingSession(Kamel* system, Callback on_imputed,
                   double session_timeout_seconds);

  /// Feeds one reading; may trigger imputation of a timed-out trajectory
  /// or LRU eviction of other objects. InvalidArgument on malformed
  /// readings, ResourceExhausted when this object's buffer is full.
  Status Push(int64_t object_id, const TrajPoint& point);

  /// Closes one object's trajectory and imputes it.
  Status EndTrajectory(int64_t object_id);

  /// Closes all open trajectories.
  Status Flush();

  size_t open_trajectories() const { return buffers_.size(); }
  size_t total_buffered_points() const { return total_points_; }
  /// Objects force-closed by LRU eviction since construction.
  int64_t evictions() const { return evictions_; }

 private:
  struct Buffer {
    Trajectory trajectory;
    std::list<int64_t>::iterator lru_it;  // position in lru_ (front = LRU)
  };

  Status Emit(int64_t object_id, Trajectory trajectory);

  /// Moves `object_id` to the most-recently-active end of the LRU list,
  /// inserting it if new.
  void Touch(int64_t object_id, Buffer* buffer);

  /// Force-closes the least-recently-active object (skipping `protect`).
  Status EvictOne(int64_t protect);

  /// Removes the buffer and its LRU entry, returning the trajectory.
  Trajectory Detach(std::unordered_map<int64_t, Buffer>::iterator it);

  Kamel* system_;
  Callback on_imputed_;
  StreamingOptions options_;
  std::unordered_map<int64_t, Buffer> buffers_;
  std::list<int64_t> lru_;  // front = least recently active
  size_t total_points_ = 0;
  int64_t evictions_ = 0;
};

/// Integrity report of one snapshot file, produced without deserializing
/// any model weights: the header and every section frame are walked and
/// CRC-verified (`kamel fsck`).
struct SnapshotFsckReport {
  struct Section {
    std::string name;
    size_t payload_offset = 0;
    uint64_t length = 0;
    bool crc_ok = false;
  };
  uint32_t version = 0;
  std::vector<Section> sections;
  /// Set when the walk could not reach the end of the file (torn frame).
  std::string truncation_error;

  bool clean() const {
    if (!truncation_error.empty()) return false;
    for (const Section& s : sections) {
      if (!s.crc_ok) return false;
    }
    return true;
  }
};

/// Walks `path` as a KAMEL snapshot and CRC-checks every section. Returns
/// non-OK only when the file cannot be opened or its header is invalid;
/// per-section damage is reported in the result, naming the bad section.
Result<SnapshotFsckReport> FsckSnapshot(const std::string& path);

}  // namespace kamel

#endif  // KAMEL_CORE_KAMEL_H_
