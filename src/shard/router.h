#ifndef KAMEL_SHARD_ROUTER_H_
#define KAMEL_SHARD_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/result.h"
#include "core/kamel_snapshot.h"
#include "core/serving_engine.h"
#include "net/rpc.h"
#include "shard/partition.h"
#include "shard/wire.h"

namespace kamel::shard {

struct ShardEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RouterOptions {
  /// Per-attempt budget for one ImputeGaps RPC, seconds.
  double call_deadline_s = 2.0;
  /// Health prober cadence and per-probe budget, seconds.
  double probe_interval_s = 0.25;
  double probe_deadline_s = 0.5;
  /// Retry schedule for idempotent calls against one shard (jittered
  /// exponential via the shared common/backoff policy). kUnavailable,
  /// kDeadlineExceeded, and kIOError retry — the imputation is pure, so
  /// re-running work that may already have happened remotely is safe.
  /// kResourceExhausted (the shard shed) fails over instead.
  RetryPolicy call_retry{.max_retries = 2,
                         .base_backoff_ms = 5.0,
                         .max_backoff_ms = 100.0};
  /// Hedge a straggling call after max(hedge_min_s, p99 of the shard's
  /// observed call latencies): a second connection races the first and
  /// the first success wins. Off: wait out the full deadline.
  bool hedging = true;
  double hedge_min_s = 0.02;
  /// Per-shard latency observations kept for the p99 estimate.
  int latency_window = 128;
  uint64_t jitter_seed = 0;
};

/// Router-side counters (all monotonic).
struct RouterStats {
  int64_t imputations = 0;        // Impute() calls
  int64_t remote_calls = 0;       // RPC attempts, incl. retries + hedges
  int64_t retries = 0;            // same-shard re-attempts after backoff
  int64_t hedges = 0;             // hedge calls launched
  int64_t hedge_wins = 0;         // hedge finished first with a success
  int64_t failovers = 0;          // gap groups served off their owner
  int64_t linear_fallback_gaps = 0;  // gaps imputed router-local linear
};

/// Health-checked fan-out over a fleet of ShardWorkers. Impute() runs the
/// exact single-process pipeline — PlanImpute, impute every gap, and
/// AssemblePlan — with the middle step remoted: gaps group by the shard
/// owning their MBR key cell and ship as one ImputeGaps call per shard,
/// in parallel.
///
/// Failure ladder, applied per gap group:
///   1. the owner shard, with jittered-backoff retries on transport
///      errors and a hedged second connection past the p99 budget;
///   2. failover to the next healthy shard — coarse pyramid models are
///      replicated wherever their bounds reach, so a non-owner typically
///      still serves a pyramid-ancestor rung rather than nothing;
///   3. router-local linear imputation (ImputeMode::kLinearOnly), the
///      bottom rung — never an error for a well-formed trajectory.
/// A background prober keeps per-shard HealthState fresh; dead, SHEDDING,
/// and DRAINING shards are routed around until they recover.
///
/// With every shard healthy the output is byte-identical to
/// KamelSnapshot::Impute on the unsharded snapshot (`stats.seconds`
/// excepted — wall clock is not part of the identity contract).
///
/// Thread model: Impute and the observers are thread-safe; the snapshot
/// is pinned per call like ServingEngine does.
class ShardRouter {
 public:
  /// `snapshot` is the router's geometry + linear-fallback source (the
  /// same snapshot file the workers loaded; the router never consults
  /// its models). One endpoint per shard, indexed by shard id.
  ShardRouter(std::shared_ptr<const KamelSnapshot> snapshot,
              std::vector<ShardEndpoint> endpoints,
              RouterOptions options = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  Result<ImputedTrajectory> Impute(const Trajectory& sparse);

  /// Last probed health per shard (optimistically kServing before the
  /// first probe answers; a dead shard reads kDraining).
  std::vector<HealthState> ShardHealth() const;

  /// Blocks until every shard probes reachable and SERVING, or the
  /// timeout elapses (kDeadlineExceeded).
  Status WaitHealthy(double timeout_s);

  /// One Stats call per shard, unreachable shards reported in place.
  struct ProbedStatus {
    bool reachable = false;
    ShardStatus status;  // valid when reachable
    std::string error;   // set when not
  };
  std::vector<ProbedStatus> CollectStats();

  /// Tells every worker to reload `path` and hot-swap it (UpdateSnapshot
  /// fan-out). First failure wins; the rest are still attempted.
  Status BroadcastSnapshot(const std::string& path);

  RouterStats stats() const;
  const ShardPartition& partition() const { return partition_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  /// Per-shard connection pool, probed health, and latency window.
  struct Shard {
    ShardEndpoint endpoint;
    std::atomic<bool> reachable{true};  // optimistic until probed
    std::atomic<int> health{static_cast<int>(HealthState::kServing)};
    std::mutex pool_mu;
    std::vector<std::unique_ptr<net::RpcClient>> pool;
    std::mutex lat_mu;
    std::vector<double> lat;  // ring buffer, seconds
    size_t lat_next = 0;
  };

  /// Completion state shared by detached attempt threads (they must not
  /// touch the router after it signals, so the state is jointly owned).
  struct Outstanding {
    std::mutex mu;
    std::condition_variable cv;
    int count = 0;
  };

  std::unique_ptr<net::RpcClient> AcquireClient(Shard* shard);
  void ReleaseClient(Shard* shard, std::unique_ptr<net::RpcClient> client);

  /// One RPC attempt (pooled connection); records latency on success.
  Result<std::vector<uint8_t>> CallShard(int shard, net::MethodId method,
                                         const std::vector<uint8_t>& body,
                                         double deadline_s);

  /// CallShard with a hedged second connection after the p99 budget.
  Result<std::vector<uint8_t>> HedgedCall(
      int shard, net::MethodId method,
      std::shared_ptr<const std::vector<uint8_t>> body);

  /// HedgedCall with jittered-backoff retries on transport errors.
  Result<std::vector<uint8_t>> CallWithRetry(
      int shard, net::MethodId method,
      std::shared_ptr<const std::vector<uint8_t>> body);

  /// Imputes one shard's gap group, walking the failure ladder; writes
  /// results into `out` at the plan positions in `indices`.
  void ImputeGroup(const KamelSnapshot& snapshot, int owner,
                   const std::vector<size_t>& indices,
                   const ImputePlan& plan, std::vector<ImputedGap>* out);

  /// Owner-first candidate order, skipping dead/SHEDDING/DRAINING shards.
  std::vector<int> RouteCandidates(int owner) const;

  void RecordLatency(Shard* shard, double seconds);
  double HedgeBudgetSeconds(Shard* shard) const;

  /// Runs `fn` on a detached thread tracked by outstanding_ (the
  /// destructor waits for all of them).
  void Spawn(std::function<void()> fn);

  void ProbeLoop();
  /// One Stats round-trip against each shard, updating its health.
  void ProbeOnce();

  const std::shared_ptr<const KamelSnapshot> snapshot_;
  const RouterOptions options_;
  ShardPartition partition_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::shared_ptr<Outstanding> outstanding_ =
      std::make_shared<Outstanding>();

  std::atomic<int64_t> imputations_{0};
  std::atomic<int64_t> remote_calls_{0};
  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> hedges_{0};
  std::atomic<int64_t> hedge_wins_{0};
  std::atomic<int64_t> failovers_{0};
  std::atomic<int64_t> linear_fallback_gaps_{0};
  std::atomic<uint64_t> call_seq_{0};  // decorrelates retry jitter streams

  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  bool stopping_ = false;
  std::thread prober_;
};

}  // namespace kamel::shard

#endif  // KAMEL_SHARD_ROUTER_H_
