#ifndef KAMEL_SHARD_ROUTER_H_
#define KAMEL_SHARD_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/result.h"
#include "core/kamel_snapshot.h"
#include "core/serving_engine.h"
#include "net/rpc.h"
#include "replication/replication.h"
#include "shard/partition.h"
#include "shard/wire.h"

namespace kamel::shard {

struct ShardEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RouterOptions {
  /// Per-attempt budget for one ImputeGaps RPC, seconds.
  double call_deadline_s = 2.0;
  /// Health prober cadence and per-probe budget, seconds.
  double probe_interval_s = 0.25;
  double probe_deadline_s = 0.5;
  /// Retry schedule for idempotent calls against one replica (jittered
  /// exponential via the shared common/backoff policy). kUnavailable,
  /// kDeadlineExceeded, and kIOError retry — the imputation is pure, so
  /// re-running work that may already have happened remotely is safe.
  /// kResourceExhausted (the shard shed) fails over instead. Submit is
  /// NOT retried this way: appending twice duplicates the record, so the
  /// ambiguity belongs to the caller.
  RetryPolicy call_retry{.max_retries = 2,
                         .base_backoff_ms = 5.0,
                         .max_backoff_ms = 100.0};
  /// Hedge a straggling call after max(hedge_min_s, p99 of the replica's
  /// observed call latencies): a second connection races the first and
  /// the first success wins. Off: wait out the full deadline.
  bool hedging = true;
  double hedge_min_s = 0.02;
  /// Per-replica latency observations kept for the p99 estimate and the
  /// latency-weighted read balancing.
  int latency_window = 128;
  uint64_t jitter_seed = 0;

  // -- Replication -----------------------------------------------------------
  /// Warm standbys per shard group. endpoints.size() must equal
  /// num_groups * (replicas + 1), laid out group-major with each group's
  /// initial PRIMARY first, its standbys after. 0 = the PR-6 layout (one
  /// worker per shard, no roles).
  int replicas = 0;
  /// Consecutive failed probes of a group's primary before the prober
  /// promotes its best caught-up standby (fencing the old primary via a
  /// bumped epoch).
  int promote_after_failed_probes = 3;
  /// Per-promotion RPC budget, seconds (WAL reopen + epoch persist).
  double promote_deadline_s = 5.0;
  /// Spread reads across the owner group's caught-up replicas, weighted
  /// by each replica's observed mean latency (Efraimidis–Spirakis
  /// sampling, deterministic under jitter_seed). Off: primary first,
  /// standbys only as failover.
  bool balance_reads = true;
};

/// Router-side counters (all monotonic). Snapshots taken via stats()
/// are mutually consistent: every counter is incremented under one
/// internal mutex, and a hedge/retry is counted in the same critical
/// section as its remote_calls increment — a reader can never observe
/// hedges > remote_calls or retries > remote_calls, even mid-burst.
struct RouterStats {
  int64_t imputations = 0;        // Impute() calls
  int64_t remote_calls = 0;       // RPC attempts, incl. retries + hedges
  int64_t retries = 0;            // same-replica re-attempts after backoff
  int64_t hedges = 0;             // hedge calls launched
  int64_t hedge_wins = 0;         // hedge finished first with a success
  int64_t failovers = 0;          // gap groups served off their owner group
  int64_t linear_fallback_gaps = 0;  // gaps imputed router-local linear
  int64_t submits = 0;            // Submit() calls
  int64_t submit_failovers = 0;   // submits served off the believed primary
  int64_t promotions = 0;         // standby promotions the prober drove
  int64_t stale_primaries = 0;    // old-epoch primaries detected and fenced
};

/// Health-checked fan-out over a fleet of ShardWorkers. Impute() runs the
/// exact single-process pipeline — PlanImpute, impute every gap, and
/// AssemblePlan — with the middle step remoted: gaps group by the shard
/// group owning their MBR key cell and ship as one ImputeGaps call per
/// group, in parallel.
///
/// Failure ladder, applied per gap group:
///   1. the owner group's caught-up replicas (latency-weighted order
///      under balance_reads, primary-first otherwise), each with
///      jittered-backoff retries on transport errors and a hedged second
///      connection past the p99 budget;
///   2. failover to another group's healthy replicas — coarse pyramid
///      models are replicated wherever their bounds reach, so a
///      non-owner typically still serves a pyramid-ancestor rung;
///   3. router-local linear imputation (ImputeMode::kLinearOnly), the
///      bottom rung — never an error for a well-formed trajectory.
///
/// Replication awareness (options.replicas > 0): the background prober
/// speaks kMethodRole, learning each replica's role, fencing epoch, and
/// replication lag. When a group's primary stays unreachable for
/// promote_after_failed_probes probes, the prober promotes the group's
/// most-caught-up standby with epoch max_epoch+1; the old primary, if it
/// resurrects, reports a lower epoch, is marked stale, excluded from all
/// routing, and every standby refuses its stream (see
/// replication/standby.h) — split-brain cannot serve. Submit() routes a
/// durable trajectory ingest to the owner group's primary, sweeping the
/// group on "not primary" refusals.
///
/// With every shard healthy the output is byte-identical to
/// KamelSnapshot::Impute on the unsharded snapshot (`stats.seconds`
/// excepted — wall clock is not part of the identity contract).
///
/// Thread model: Impute/Submit and the observers are thread-safe; the
/// snapshot is pinned per call like ServingEngine does.
class ShardRouter {
 public:
  /// `snapshot` is the router's geometry + linear-fallback source (the
  /// same snapshot file the workers loaded; the router never consults
  /// its models). Endpoints are group-major (see RouterOptions::replicas);
  /// with replicas == 0, one endpoint per shard, indexed by shard id.
  ShardRouter(std::shared_ptr<const KamelSnapshot> snapshot,
              std::vector<ShardEndpoint> endpoints,
              RouterOptions options = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  Result<ImputedTrajectory> Impute(const Trajectory& sparse);

  /// Durably ingests one trajectory via the owner group's primary (WAL
  /// append + fsync + min_sync_standbys acks before the ack returns).
  /// Not blindly retried on transport errors — a lost ack is the
  /// caller's ambiguity to resolve (re-submitting duplicates a record,
  /// which the WAL tolerates but never hides). kFailedPrecondition
  /// sweeps the group looking for the real primary; kUnavailable when
  /// no member will take writes right now (e.g. mid-failover).
  Result<SubmitAck> Submit(const Trajectory& trajectory);

  /// Last probed health per replica, flat-indexed like the endpoint list
  /// (optimistically kServing before the first probe answers; a dead
  /// replica reads kDraining).
  std::vector<HealthState> ShardHealth() const;

  /// Blocks until every replica probes reachable and SERVING, or the
  /// timeout elapses (kDeadlineExceeded).
  Status WaitHealthy(double timeout_s);

  /// One Stats call per replica, unreachable replicas reported in place.
  struct ProbedStatus {
    bool reachable = false;
    ShardStatus status;  // valid when reachable
    std::string error;   // set when not
  };
  std::vector<ProbedStatus> CollectStats();

  /// The router's replication view of one replica (prober-maintained).
  struct ReplicaView {
    int group = 0;
    int member = 0;  ///< index within the group (0 = initial primary)
    ShardEndpoint endpoint;
    bool reachable = false;
    HealthState health = HealthState::kServing;
    replication::ReplicaRole role = replication::ReplicaRole::kNone;
    uint64_t epoch = 0;
    uint64_t durable_lsn = 0;
    uint64_t applied_lsn = 0;
    uint64_t lag = 0;
    /// Detected primary of a deposed epoch: excluded from all routing.
    bool stale = false;
    /// The router currently routes this group's writes here.
    bool is_primary = false;
  };
  std::vector<ReplicaView> ReplicaViews() const;

  /// Tells every worker to reload `path` and hot-swap it (UpdateSnapshot
  /// fan-out). First failure wins; the rest are still attempted.
  Status BroadcastSnapshot(const std::string& path);

  RouterStats stats() const;
  const ShardPartition& partition() const { return partition_; }
  /// Shard groups (the partition's shard count).
  int num_shards() const { return static_cast<int>(groups_.size()); }
  /// Total worker processes (groups × (replicas + 1)).
  int num_replicas() const { return static_cast<int>(replicas_.size()); }

 private:
  /// Per-replica connection pool, probed health + role, latency window.
  struct Replica {
    ShardEndpoint endpoint;
    int group = 0;
    int member = 0;
    std::atomic<bool> reachable{true};  // optimistic until probed
    std::atomic<int> health{static_cast<int>(HealthState::kServing)};
    std::atomic<uint8_t> role{
        static_cast<uint8_t>(replication::ReplicaRole::kNone)};
    std::atomic<uint64_t> epoch{0};
    std::atomic<uint64_t> durable_lsn{0};
    std::atomic<uint64_t> applied_lsn{0};
    std::atomic<uint64_t> lag{0};
    std::atomic<bool> stale{false};
    std::mutex pool_mu;
    std::vector<std::unique_ptr<net::RpcClient>> pool;
    std::mutex lat_mu;
    std::vector<double> lat;  // ring buffer, seconds
    size_t lat_next = 0;
  };

  /// One shard group: its member replicas (flat indices) and the member
  /// the router currently believes is primary.
  struct Group {
    std::vector<int> members;
    std::atomic<int> primary{0};  ///< flat replica index
    std::atomic<uint64_t> max_epoch{0};
    /// Consecutive probes the primary has failed (prober thread only).
    int failed_primary_probes = 0;
  };

  /// Completion state shared by detached attempt threads (they must not
  /// touch the router after it signals, so the state is jointly owned).
  struct Outstanding {
    std::mutex mu;
    std::condition_variable cv;
    int count = 0;
  };

  std::unique_ptr<net::RpcClient> AcquireClient(Replica* replica);
  void ReleaseClient(Replica* replica,
                     std::unique_ptr<net::RpcClient> client);

  /// One RPC attempt (pooled connection); records latency on success.
  /// `is_hedge`/`is_retry` are counted in the same critical section as
  /// the remote_calls increment (consistent stats snapshots).
  Result<std::vector<uint8_t>> CallShard(int replica, net::MethodId method,
                                         const std::vector<uint8_t>& body,
                                         double deadline_s,
                                         bool is_hedge = false,
                                         bool is_retry = false);

  /// CallShard with a hedged second connection after the p99 budget.
  Result<std::vector<uint8_t>> HedgedCall(
      int replica, net::MethodId method,
      std::shared_ptr<const std::vector<uint8_t>> body, bool is_retry);

  /// HedgedCall with jittered-backoff retries on transport errors.
  Result<std::vector<uint8_t>> CallWithRetry(
      int replica, net::MethodId method,
      std::shared_ptr<const std::vector<uint8_t>> body);

  /// Imputes one group's gap batch, walking the failure ladder; writes
  /// results into `out` at the plan positions in `indices`.
  void ImputeGroup(const KamelSnapshot& snapshot, int owner_group,
                   const std::vector<size_t>& indices,
                   const ImputePlan& plan, std::vector<ImputedGap>* out);

  /// True when reads may route to this replica right now.
  bool ReadReady(int replica) const;
  /// The owner group's read-ready members, latency-weighted (or
  /// primary-first), followed by other groups' read-ready members in
  /// owner-first rotation.
  std::vector<int> RouteCandidates(int owner_group);
  /// Owner group's members ordered for a write sweep: believed primary
  /// first, then the rest (reachable, non-stale).
  std::vector<int> WriteCandidates(int owner_group) const;

  void RecordLatency(Replica* replica, double seconds);
  double HedgeBudgetSeconds(Replica* replica) const;
  double MeanLatencySeconds(Replica* replica) const;

  /// Runs `fn` on a detached thread tracked by outstanding_ (the
  /// destructor waits for all of them).
  void Spawn(std::function<void()> fn);

  void ProbeLoop();
  /// One Role round-trip against each replica, updating health, role,
  /// epoch, and lag; then the promotion ladder per group.
  void ProbeOnce();
  void ProbeReplica(int replica);
  /// Detects primary loss / stale primaries and drives promotion.
  void ReconcileGroup(int group);

  const std::shared_ptr<const KamelSnapshot> snapshot_;
  const RouterOptions options_;
  ShardPartition partition_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<Group>> groups_;

  std::shared_ptr<Outstanding> outstanding_ =
      std::make_shared<Outstanding>();

  /// Satellite of the replication PR: ONE mutex over every counter, so
  /// stats() is a consistent snapshot (see RouterStats).
  mutable std::mutex stats_mu_;
  RouterStats counters_;

  std::atomic<uint64_t> call_seq_{0};  // decorrelates retry jitter streams

  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  bool stopping_ = false;
  std::thread prober_;
};

}  // namespace kamel::shard

#endif  // KAMEL_SHARD_ROUTER_H_
