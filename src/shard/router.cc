#include "shard/router.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "io/wal.h"

namespace kamel::shard {

namespace {

/// Transport errors safe to retry against the same replica: imputation is
/// pure and idempotent, so work that may already have run remotely can
/// simply run again.
bool IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kIOError:
      return true;
    default:
      return false;
  }
}

std::chrono::duration<double> Seconds(double s) {
  return std::chrono::duration<double>(s);
}

/// splitmix64: the repo's standard cheap deterministic stream (same
/// constants as common/backoff's jitter).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Uniform double in (0, 1] from a mixed seed (never 0: it feeds a log).
double UnitOpen(uint64_t seed) {
  const uint64_t bits = Mix64(seed) >> 11;  // 53 significant bits
  return (static_cast<double>(bits) + 1.0) / 9007199254740993.0;  // 2^53+1
}

}  // namespace

ShardRouter::ShardRouter(std::shared_ptr<const KamelSnapshot> snapshot,
                         std::vector<ShardEndpoint> endpoints,
                         RouterOptions options)
    : snapshot_(std::move(snapshot)), options_(options) {
  KAMEL_CHECK(snapshot_ != nullptr, "ShardRouter needs a snapshot");
  KAMEL_CHECK(!endpoints.empty(), "ShardRouter needs at least one shard");
  const int group_size = std::max(0, options_.replicas) + 1;
  KAMEL_CHECK(endpoints.size() % static_cast<size_t>(group_size) == 0,
              "endpoint count must be a multiple of replicas + 1");
  const int num_groups = static_cast<int>(endpoints.size()) / group_size;
  partition_ =
      MakePartition(snapshot_->repository().pyramid(), num_groups);
  replicas_.reserve(endpoints.size());
  groups_.reserve(static_cast<size_t>(num_groups));
  for (int g = 0; g < num_groups; ++g) {
    auto group = std::make_unique<Group>();
    for (int m = 0; m < group_size; ++m) {
      const int flat = g * group_size + m;
      auto replica = std::make_unique<Replica>();
      replica->endpoint = std::move(endpoints[flat]);
      replica->group = g;
      replica->member = m;
      group->members.push_back(flat);
      replicas_.push_back(std::move(replica));
    }
    // Until the prober learns better, member 0 (the initial primary by
    // the endpoint-layout contract) takes the group's writes.
    group->primary.store(group->members.front(), std::memory_order_relaxed);
    groups_.push_back(std::move(group));
  }
  prober_ = std::thread([this] { ProbeLoop(); });
}

ShardRouter::~ShardRouter() {
  {
    std::lock_guard<std::mutex> lock(probe_mu_);
    stopping_ = true;
  }
  probe_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
  // Wait out every detached attempt thread: they borrow `this` until the
  // moment they decrement the (jointly owned) counter.
  std::unique_lock<std::mutex> lock(outstanding_->mu);
  outstanding_->cv.wait(lock, [&] { return outstanding_->count == 0; });
}

// ---------------------------------------------------------------------------
// Connection pool + raw calls
// ---------------------------------------------------------------------------

std::unique_ptr<net::RpcClient> ShardRouter::AcquireClient(Replica* replica) {
  {
    std::lock_guard<std::mutex> lock(replica->pool_mu);
    if (!replica->pool.empty()) {
      std::unique_ptr<net::RpcClient> client =
          std::move(replica->pool.back());
      replica->pool.pop_back();
      return client;
    }
  }
  net::RpcClientOptions client_options;
  client_options.call_deadline_s = options_.call_deadline_s;
  client_options.connect_timeout_s =
      std::min(0.5, options_.call_deadline_s / 2.0);
  client_options.jitter_seed =
      options_.jitter_seed ^ call_seq_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<net::RpcClient>(replica->endpoint.host,
                                          replica->endpoint.port,
                                          client_options);
}

void ShardRouter::ReleaseClient(Replica* replica,
                                std::unique_ptr<net::RpcClient> client) {
  std::lock_guard<std::mutex> lock(replica->pool_mu);
  replica->pool.push_back(std::move(client));
}

Result<std::vector<uint8_t>> ShardRouter::CallShard(
    int replica_index, net::MethodId method, const std::vector<uint8_t>& body,
    double deadline_s, bool is_hedge, bool is_retry) {
  Replica* replica = replicas_[replica_index].get();
  std::unique_ptr<net::RpcClient> client = AcquireClient(replica);
  {
    // The attempt and its kind are counted in ONE critical section: a
    // stats() snapshot can never see a hedge or retry whose attempt is
    // not yet in remote_calls.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.remote_calls;
    if (is_hedge) ++counters_.hedges;
    if (is_retry) ++counters_.retries;
  }
  const double start = net::NowSeconds();
  Result<std::vector<uint8_t>> result =
      client->Call(method, body, deadline_s);
  if (result.ok()) {
    RecordLatency(replica, net::NowSeconds() - start);
  }
  // A failed client is returned too: transport errors poison its
  // connection and the next Call reconnects from scratch.
  ReleaseClient(replica, std::move(client));
  return result;
}

void ShardRouter::RecordLatency(Replica* replica, double seconds) {
  const size_t window =
      static_cast<size_t>(std::max(1, options_.latency_window));
  std::lock_guard<std::mutex> lock(replica->lat_mu);
  if (replica->lat.size() < window) {
    replica->lat.push_back(seconds);
  } else {
    replica->lat[replica->lat_next] = seconds;
  }
  replica->lat_next = (replica->lat_next + 1) % window;
}

double ShardRouter::HedgeBudgetSeconds(Replica* replica) const {
  std::vector<double> lat;
  {
    std::lock_guard<std::mutex> lock(replica->lat_mu);
    lat = replica->lat;
  }
  double p99 = 0.0;
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    p99 = lat[static_cast<size_t>(
        std::floor(0.99 * static_cast<double>(lat.size() - 1)))];
  }
  return std::max(options_.hedge_min_s, p99);
}

double ShardRouter::MeanLatencySeconds(Replica* replica) const {
  std::lock_guard<std::mutex> lock(replica->lat_mu);
  if (replica->lat.empty()) return 0.0;
  double sum = 0.0;
  for (double s : replica->lat) sum += s;
  return sum / static_cast<double>(replica->lat.size());
}

// ---------------------------------------------------------------------------
// Hedging + retries
// ---------------------------------------------------------------------------

void ShardRouter::Spawn(std::function<void()> fn) {
  std::shared_ptr<Outstanding> outstanding = outstanding_;
  {
    std::lock_guard<std::mutex> lock(outstanding->mu);
    ++outstanding->count;
  }
  std::thread([outstanding, fn = std::move(fn)] {
    fn();
    // `fn` must not be the last thing touching the router: the destructor
    // returns the moment count reaches zero, so only the jointly owned
    // state may be used past this point.
    std::lock_guard<std::mutex> lock(outstanding->mu);
    --outstanding->count;
    outstanding->cv.notify_all();
  }).detach();
}

Result<std::vector<uint8_t>> ShardRouter::HedgedCall(
    int replica_index, net::MethodId method,
    std::shared_ptr<const std::vector<uint8_t>> body, bool is_retry) {
  struct CallState {
    std::mutex mu;
    std::condition_variable cv;
    int outstanding = 0;
    bool succeeded = false;
    bool hedge_won = false;
    Result<std::vector<uint8_t>> result{
        Status::Unavailable("rpc: no attempt completed")};
  };
  auto state = std::make_shared<CallState>();
  const double deadline_s = options_.call_deadline_s;

  auto attempt = [this, replica_index, method, body, state, deadline_s,
                  is_retry](bool is_hedge) {
    Result<std::vector<uint8_t>> result = CallShard(
        replica_index, method, *body, deadline_s, is_hedge, is_retry);
    std::lock_guard<std::mutex> lock(state->mu);
    --state->outstanding;
    if (!state->succeeded) {
      // First success wins and freezes the result; until then the latest
      // error stands in. Losers never overwrite a success.
      if (result.ok()) {
        state->succeeded = true;
        state->hedge_won = is_hedge;
      }
      state->result = std::move(result);
    }
    state->cv.notify_all();
  };

  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->outstanding = 1;
  }
  Spawn([attempt] { attempt(false); });

  std::unique_lock<std::mutex> lock(state->mu);
  if (options_.hedging) {
    const double budget =
        HedgeBudgetSeconds(replicas_[replica_index].get());
    state->cv.wait_for(lock, Seconds(budget), [&] {
      return state->succeeded || state->outstanding == 0;
    });
    if (!state->succeeded && state->outstanding > 0) {
      ++state->outstanding;
      Spawn([attempt] { attempt(true); });
    }
  }
  state->cv.wait(lock, [&] {
    return state->succeeded || state->outstanding == 0;
  });
  if (state->hedge_won) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++counters_.hedge_wins;
  }
  // Safe to move: once succeeded no attempt writes the result again, and
  // with outstanding == 0 every writer has finished.
  return std::move(state->result);
}

Result<std::vector<uint8_t>> ShardRouter::CallWithRetry(
    int replica_index, net::MethodId method,
    std::shared_ptr<const std::vector<uint8_t>> body) {
  const uint64_t seed =
      options_.jitter_seed ^
      (call_seq_.fetch_add(1, std::memory_order_relaxed) *
       0x9E3779B97F4A7C15ULL);
  Backoff backoff(options_.call_retry, seed);
  Result<std::vector<uint8_t>> result =
      HedgedCall(replica_index, method, body, /*is_retry=*/false);
  for (int retry = 1; retry <= options_.call_retry.max_retries; ++retry) {
    if (result.ok() || !IsRetryable(result.status())) break;
    const double delay_ms = backoff.NextDelayMs(retry);
    if (delay_ms > 0.0) {
      std::this_thread::sleep_for(Seconds(delay_ms / 1000.0));
    }
    result = HedgedCall(replica_index, method, body, /*is_retry=*/true);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

bool ShardRouter::ReadReady(int replica_index) const {
  const Replica& replica = *replicas_[replica_index];
  if (!replica.reachable.load(std::memory_order_relaxed)) return false;
  if (replica.stale.load(std::memory_order_relaxed)) return false;
  const auto health = static_cast<HealthState>(
      replica.health.load(std::memory_order_relaxed));
  if (health != HealthState::kServing && health != HealthState::kDegraded) {
    return false;
  }
  switch (static_cast<replication::ReplicaRole>(
      replica.role.load(std::memory_order_relaxed))) {
    case replication::ReplicaRole::kNone:
    case replication::ReplicaRole::kPrimary:
    case replication::ReplicaRole::kStandby:
      return true;
    // CATCHING_UP replicas hold the right models but an incomplete ingest
    // history; FENCED primaries are deposed. Neither serves reads.
    case replication::ReplicaRole::kCatchingUp:
    case replication::ReplicaRole::kFenced:
      return false;
  }
  return false;
}

std::vector<int> ShardRouter::RouteCandidates(int owner_group) {
  std::vector<int> candidates;
  candidates.reserve(replicas_.size());

  // Owner group first. With balance_reads, order its ready members by
  // Efraimidis–Spirakis weighted sampling without replacement: each gets
  // key u^(1/w) with weight w = 1 / (mean latency + 1ms floor), sorted
  // descending — faster replicas win proportionally more often, slow ones
  // still see occasional traffic so their latency window stays fresh.
  // The u-stream is seeded from jitter_seed + a call counter, so tests
  // fixing jitter_seed get a reproducible routing sequence.
  const Group& owner = *groups_[owner_group];
  const int believed_primary =
      owner.primary.load(std::memory_order_relaxed);
  std::vector<int> ready;
  for (int member : owner.members) {
    if (ReadReady(member)) ready.push_back(member);
  }
  if (options_.balance_reads && ready.size() > 1) {
    const uint64_t draw_seed =
        options_.jitter_seed ^
        call_seq_.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::pair<double, int>> keyed;
    keyed.reserve(ready.size());
    for (size_t i = 0; i < ready.size(); ++i) {
      const double mean =
          MeanLatencySeconds(replicas_[ready[i]].get());
      const double weight = 1.0 / (mean + 0.001);
      const double u = UnitOpen(draw_seed + i);
      keyed.emplace_back(std::pow(u, 1.0 / weight), ready[i]);
    }
    std::sort(keyed.begin(), keyed.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [key, member] : keyed) candidates.push_back(member);
  } else {
    // Primary-first: deterministic order for balance_reads == false and
    // for the single-ready-member case.
    std::sort(ready.begin(), ready.end(), [&](int a, int b) {
      return (a == believed_primary) > (b == believed_primary);
    });
    for (int member : ready) candidates.push_back(member);
  }

  // Then the other groups in owner-first rotation, primary before
  // standbys: a non-owner typically still serves a pyramid-ancestor rung
  // (coarse models replicate wherever their bounds reach).
  const int num_groups = static_cast<int>(groups_.size());
  for (int i = 1; i < num_groups; ++i) {
    const int g = (owner_group + i) % num_groups;
    const Group& group = *groups_[g];
    const int primary = group.primary.load(std::memory_order_relaxed);
    if (ReadReady(primary)) candidates.push_back(primary);
    for (int member : group.members) {
      if (member != primary && ReadReady(member)) {
        candidates.push_back(member);
      }
    }
  }
  return candidates;
}

std::vector<int> ShardRouter::WriteCandidates(int owner_group) const {
  const Group& group = *groups_[owner_group];
  const int primary = group.primary.load(std::memory_order_relaxed);
  std::vector<int> candidates;
  candidates.reserve(group.members.size());
  auto writable = [&](int member) {
    const Replica& replica = *replicas_[member];
    return replica.reachable.load(std::memory_order_relaxed) &&
           !replica.stale.load(std::memory_order_relaxed);
  };
  if (writable(primary)) candidates.push_back(primary);
  // The rest of the group in member order: mid-failover the router's
  // believed primary can trail reality, and the sweep finds the worker
  // that actually holds the latest epoch (everyone else refuses with
  // kFailedPrecondition, which is cheap).
  for (int member : group.members) {
    if (member != primary && writable(member)) candidates.push_back(member);
  }
  return candidates;
}

void ShardRouter::ImputeGroup(const KamelSnapshot& snapshot, int owner_group,
                              const std::vector<size_t>& indices,
                              const ImputePlan& plan,
                              std::vector<ImputedGap>* out) {
  std::vector<SegmentContext> contexts;
  contexts.reserve(indices.size());
  for (size_t index : indices) {
    contexts.push_back(plan.gaps[index].context);
  }
  auto body = std::make_shared<const std::vector<uint8_t>>(
      EncodeGapRequest(contexts));

  for (int target : RouteCandidates(owner_group)) {
    Result<std::vector<uint8_t>> response =
        CallWithRetry(target, kMethodImputeGaps, body);
    if (!response.ok()) continue;  // next candidate (failover)
    auto gaps = DecodeGapResponse(*response);
    if (!gaps.ok() || gaps->size() != indices.size()) continue;
    if (replicas_[target]->group != owner_group) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.failovers;
    }
    for (size_t i = 0; i < indices.size(); ++i) {
      (*out)[indices[i]] = std::move((*gaps)[i]);
    }
    return;
  }

  // Bottom rung: every candidate refused, shed, or is dead — impute the
  // group locally at kLinearOnly (no model access; counted as overload
  // in the per-gap ladder accounting, which is exactly what it is).
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    counters_.linear_fallback_gaps +=
        static_cast<int64_t>(indices.size());
  }
  for (size_t index : indices) {
    (*out)[index] =
        snapshot.ImputeGap(plan.gaps[index].context, ImputeMode::kLinearOnly);
  }
}

Result<ImputedTrajectory> ShardRouter::Impute(const Trajectory& sparse) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.imputations;
  }
  Stopwatch watch;
  // Pin the snapshot for the whole call, like ServingEngine does.
  const std::shared_ptr<const KamelSnapshot> snapshot = snapshot_;
  KAMEL_ASSIGN_OR_RETURN(ImputePlan plan, snapshot->PlanImpute(sparse));

  std::vector<ImputedGap> gaps(plan.gaps.size());
  std::vector<std::vector<size_t>> groups(groups_.size());
  const Pyramid& pyramid = snapshot->repository().pyramid();
  for (size_t i = 0; i < plan.gaps.size(); ++i) {
    groups[ShardOfGap(partition_, pyramid, plan.gaps[i].context)]
        .push_back(i);
  }

  // Fan out one joined thread per non-empty group; the last group runs
  // on this thread (the single-shard case then spawns nothing).
  std::vector<int> active;
  for (size_t s = 0; s < groups.size(); ++s) {
    if (!groups[s].empty()) active.push_back(static_cast<int>(s));
  }
  std::vector<std::thread> threads;
  for (size_t i = 0; i + 1 < active.size(); ++i) {
    const int s = active[i];
    threads.emplace_back([this, &snapshot, s, &groups, &plan, &gaps] {
      ImputeGroup(*snapshot, s, groups[s], plan, &gaps);
    });
  }
  if (!active.empty()) {
    const int s = active.back();
    ImputeGroup(*snapshot, s, groups[s], plan, &gaps);
  }
  for (std::thread& thread : threads) thread.join();

  ImputedTrajectory out =
      snapshot->AssemblePlan(sparse, plan, std::move(gaps));
  out.stats.seconds = watch.ElapsedSeconds();
  return out;
}

Result<SubmitAck> ShardRouter::Submit(const Trajectory& trajectory) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.submits;
  }
  const std::shared_ptr<const KamelSnapshot> snapshot = snapshot_;
  KAMEL_RETURN_NOT_OK(ValidateTrajectory(trajectory));
  if (trajectory.empty()) {
    return Status::InvalidArgument("submit: empty trajectory");
  }
  const Vec2 center =
      trajectory.Mbr(snapshot->projection()).Center();
  const int owner_group = ShardOfPoint(
      partition_, snapshot->repository().pyramid(), center);
  const std::vector<uint8_t> body = EncodeTrajectoryPayload(trajectory);

  const Group& group = *groups_[owner_group];
  const int believed_primary =
      group.primary.load(std::memory_order_relaxed);
  Status last{Status::Unavailable("submit: no writable replica in group " +
                                  std::to_string(owner_group))};
  for (int target : WriteCandidates(owner_group)) {
    // No blind same-member retry and no hedging: a Submit that appends
    // twice duplicates the record. One attempt per member; transport
    // errors move the sweep along (an un-acked submit is the caller's
    // ambiguity, never counted as acked).
    Result<std::vector<uint8_t>> response =
        CallShard(target, kMethodSubmit, body, options_.call_deadline_s);
    if (response.ok()) {
      KAMEL_ASSIGN_OR_RETURN(SubmitAck ack, DecodeSubmitAck(*response));
      if (target != believed_primary) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++counters_.submit_failovers;
      }
      return ack;
    }
    last = response.status();
    // kFailedPrecondition = "not a primary" / fenced: sweep on. Transport
    // errors sweep on too. Anything else (bad payload, shed) is final.
    if (last.code() != StatusCode::kFailedPrecondition &&
        !IsRetryable(last)) {
      return last;
    }
  }
  return last;
}

// ---------------------------------------------------------------------------
// Health + role probing, promotion
// ---------------------------------------------------------------------------

void ShardRouter::ProbeReplica(int replica_index) {
  Replica* replica = replicas_[replica_index].get();
  Result<std::vector<uint8_t>> response = CallShard(
      replica_index, kMethodRole, {}, options_.probe_deadline_s);
  if (response.ok()) {
    auto info = DecodeRoleInfo(*response);
    if (!info.ok()) {
      replica->reachable.store(false, std::memory_order_relaxed);
      return;
    }
    replica->reachable.store(true, std::memory_order_relaxed);
    replica->health.store(static_cast<int>(info->health),
                          std::memory_order_relaxed);
    replica->role.store(static_cast<uint8_t>(info->role),
                        std::memory_order_relaxed);
    replica->epoch.store(info->epoch, std::memory_order_relaxed);
    replica->durable_lsn.store(info->durable_lsn, std::memory_order_relaxed);
    replica->applied_lsn.store(info->applied_lsn, std::memory_order_relaxed);
    replica->lag.store(info->lag, std::memory_order_relaxed);
    return;
  }
  if (response.status().code() == StatusCode::kUnimplemented) {
    // Pre-replication worker: fall back to the Stats probe it does speak.
    Result<std::vector<uint8_t>> stats_response = CallShard(
        replica_index, kMethodStats, {}, options_.probe_deadline_s);
    if (stats_response.ok()) {
      auto status = DecodeStatus(*stats_response);
      if (status.ok()) {
        replica->reachable.store(true, std::memory_order_relaxed);
        replica->health.store(static_cast<int>(status->health),
                              std::memory_order_relaxed);
        replica->role.store(
            static_cast<uint8_t>(replication::ReplicaRole::kNone),
            std::memory_order_relaxed);
        return;
      }
    }
  }
  replica->reachable.store(false, std::memory_order_relaxed);
}

void ShardRouter::ReconcileGroup(int group_index) {
  Group* group = groups_[group_index].get();
  if (group->members.size() < 2) return;  // nothing to promote to

  // Track the highest epoch any member reports; primaries below it are
  // deposed leftovers. (max_epoch only ever rises — a refused stale
  // probe can never un-fence anyone.)
  uint64_t max_epoch = group->max_epoch.load(std::memory_order_relaxed);
  for (int member : group->members) {
    const Replica& replica = *replicas_[member];
    if (!replica.reachable.load(std::memory_order_relaxed)) continue;
    max_epoch =
        std::max(max_epoch, replica.epoch.load(std::memory_order_relaxed));
  }
  group->max_epoch.store(max_epoch, std::memory_order_relaxed);

  int current_primary = group->primary.load(std::memory_order_relaxed);
  for (int member : group->members) {
    Replica& replica = *replicas_[member];
    if (!replica.reachable.load(std::memory_order_relaxed)) continue;
    const auto role = static_cast<replication::ReplicaRole>(
        replica.role.load(std::memory_order_relaxed));
    const uint64_t epoch = replica.epoch.load(std::memory_order_relaxed);
    const bool claims_primary =
        role == replication::ReplicaRole::kPrimary;
    if (claims_primary && epoch < max_epoch) {
      // A resurrected old primary. Mark it stale — excluded from reads
      // and writes — until it reports a current epoch again (it will:
      // re-started as a standby, or self-fenced).
      if (!replica.stale.exchange(true, std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++counters_.stale_primaries;
      }
      continue;
    }
    replica.stale.store(false, std::memory_order_relaxed);
    if (claims_primary && member != current_primary) {
      // Adopt a promotion we did not drive (another router, an operator,
      // or our own promote whose ack got lost).
      group->primary.store(member, std::memory_order_relaxed);
      current_primary = member;
    }
  }

  // Promotion ladder: primary unreachable for N consecutive probes →
  // promote the most caught-up reachable member, preferring STANDBY over
  // CATCHING_UP (bounded lag beats raw LSN recency only across that
  // boundary; within a class the higher applied watermark wins, so the
  // promoted history is the longest one available).
  Replica& primary = *replicas_[current_primary];
  if (primary.reachable.load(std::memory_order_relaxed)) {
    group->failed_primary_probes = 0;
    return;
  }
  if (++group->failed_primary_probes < options_.promote_after_failed_probes) {
    return;
  }
  int best = -1;
  bool best_standby = false;
  uint64_t best_applied = 0;
  for (int member : group->members) {
    if (member == current_primary) continue;
    const Replica& replica = *replicas_[member];
    if (!replica.reachable.load(std::memory_order_relaxed)) continue;
    if (replica.stale.load(std::memory_order_relaxed)) continue;
    const auto role = static_cast<replication::ReplicaRole>(
        replica.role.load(std::memory_order_relaxed));
    if (role != replication::ReplicaRole::kStandby &&
        role != replication::ReplicaRole::kCatchingUp) {
      continue;
    }
    const bool is_standby = role == replication::ReplicaRole::kStandby;
    const uint64_t applied =
        replica.applied_lsn.load(std::memory_order_relaxed);
    if (best < 0 || (is_standby && !best_standby) ||
        (is_standby == best_standby && applied > best_applied)) {
      best = member;
      best_standby = is_standby;
      best_applied = applied;
    }
  }
  if (best < 0) return;  // nobody promotable; keep counting probes

  const uint64_t new_epoch = max_epoch + 1;
  Result<std::vector<uint8_t>> response =
      CallShard(best, kMethodPromote, EncodePromoteRequest(new_epoch),
                options_.promote_deadline_s);
  if (!response.ok()) return;  // next probe round tries again
  auto ack = DecodePromoteAck(*response);
  if (!ack.ok()) return;
  group->primary.store(best, std::memory_order_relaxed);
  group->max_epoch.store(ack->epoch, std::memory_order_relaxed);
  group->failed_primary_probes = 0;
  Replica& promoted = *replicas_[best];
  promoted.role.store(static_cast<uint8_t>(replication::ReplicaRole::kPrimary),
                      std::memory_order_relaxed);
  promoted.epoch.store(ack->epoch, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.promotions;
  }
}

void ShardRouter::ProbeOnce() {
  for (size_t r = 0; r < replicas_.size(); ++r) {
    ProbeReplica(static_cast<int>(r));
  }
  for (size_t g = 0; g < groups_.size(); ++g) {
    ReconcileGroup(static_cast<int>(g));
  }
}

void ShardRouter::ProbeLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(probe_mu_);
      probe_cv_.wait_for(lock, Seconds(options_.probe_interval_s),
                         [&] { return stopping_; });
      if (stopping_) return;
    }
    ProbeOnce();
  }
}

// ---------------------------------------------------------------------------
// Observers
// ---------------------------------------------------------------------------

std::vector<HealthState> ShardRouter::ShardHealth() const {
  std::vector<HealthState> health;
  health.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    if (!replica->reachable.load(std::memory_order_relaxed)) {
      health.push_back(HealthState::kDraining);
    } else {
      health.push_back(static_cast<HealthState>(
          replica->health.load(std::memory_order_relaxed)));
    }
  }
  return health;
}

Status ShardRouter::WaitHealthy(double timeout_s) {
  const double deadline = net::NowSeconds() + timeout_s;
  while (true) {
    ProbeOnce();
    const std::vector<HealthState> health = ShardHealth();
    bool all_serving = true;
    for (size_t r = 0; r < health.size(); ++r) {
      if (!replicas_[r]->reachable.load(std::memory_order_relaxed) ||
          health[r] != HealthState::kServing) {
        all_serving = false;
        break;
      }
    }
    if (all_serving) return Status::OK();
    if (net::NowSeconds() >= deadline) {
      return Status::DeadlineExceeded(
          "router: shards did not all reach SERVING in time");
    }
    std::this_thread::sleep_for(Seconds(0.05));
  }
}

std::vector<ShardRouter::ProbedStatus> ShardRouter::CollectStats() {
  std::vector<ProbedStatus> statuses(replicas_.size());
  for (size_t r = 0; r < replicas_.size(); ++r) {
    Result<std::vector<uint8_t>> response = CallShard(
        static_cast<int>(r), kMethodStats, {}, options_.probe_deadline_s);
    if (!response.ok()) {
      statuses[r].error = response.status().ToString();
      continue;
    }
    auto status = DecodeStatus(*response);
    if (!status.ok()) {
      statuses[r].error = status.status().ToString();
      continue;
    }
    statuses[r].reachable = true;
    statuses[r].status = std::move(*status);
  }
  return statuses;
}

std::vector<ShardRouter::ReplicaView> ShardRouter::ReplicaViews() const {
  std::vector<ReplicaView> views;
  views.reserve(replicas_.size());
  for (size_t r = 0; r < replicas_.size(); ++r) {
    const Replica& replica = *replicas_[r];
    ReplicaView view;
    view.group = replica.group;
    view.member = replica.member;
    view.endpoint = replica.endpoint;
    view.reachable = replica.reachable.load(std::memory_order_relaxed);
    view.health = static_cast<HealthState>(
        replica.health.load(std::memory_order_relaxed));
    view.role = static_cast<replication::ReplicaRole>(
        replica.role.load(std::memory_order_relaxed));
    view.epoch = replica.epoch.load(std::memory_order_relaxed);
    view.durable_lsn = replica.durable_lsn.load(std::memory_order_relaxed);
    view.applied_lsn = replica.applied_lsn.load(std::memory_order_relaxed);
    view.lag = replica.lag.load(std::memory_order_relaxed);
    view.stale = replica.stale.load(std::memory_order_relaxed);
    view.is_primary =
        groups_[replica.group]->primary.load(std::memory_order_relaxed) ==
        static_cast<int>(r);
    views.push_back(view);
  }
  return views;
}

Status ShardRouter::BroadcastSnapshot(const std::string& path) {
  const std::vector<uint8_t> body = EncodeSnapshotPath(path);
  Status first_error = Status::OK();
  for (size_t r = 0; r < replicas_.size(); ++r) {
    // Reloading a snapshot reads the whole file back in; give it a much
    // larger budget than a serving call.
    Result<std::vector<uint8_t>> response =
        CallShard(static_cast<int>(r), kMethodUpdateSnapshot, body, 30.0);
    if (!response.ok() && first_error.ok()) {
      first_error = response.status();
    }
  }
  return first_error;
}

RouterStats ShardRouter::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return counters_;
}

}  // namespace kamel::shard
