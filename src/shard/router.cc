#include "shard/router.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"

namespace kamel::shard {

namespace {

/// Transport errors safe to retry against the same shard: imputation is
/// pure and idempotent, so work that may already have run remotely can
/// simply run again.
bool IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kIOError:
      return true;
    default:
      return false;
  }
}

std::chrono::duration<double> Seconds(double s) {
  return std::chrono::duration<double>(s);
}

}  // namespace

ShardRouter::ShardRouter(std::shared_ptr<const KamelSnapshot> snapshot,
                         std::vector<ShardEndpoint> endpoints,
                         RouterOptions options)
    : snapshot_(std::move(snapshot)), options_(options) {
  KAMEL_CHECK(snapshot_ != nullptr, "ShardRouter needs a snapshot");
  KAMEL_CHECK(!endpoints.empty(), "ShardRouter needs at least one shard");
  partition_ = MakePartition(snapshot_->repository().pyramid(),
                             static_cast<int>(endpoints.size()));
  shards_.reserve(endpoints.size());
  for (ShardEndpoint& endpoint : endpoints) {
    auto shard = std::make_unique<Shard>();
    shard->endpoint = std::move(endpoint);
    shards_.push_back(std::move(shard));
  }
  prober_ = std::thread([this] { ProbeLoop(); });
}

ShardRouter::~ShardRouter() {
  {
    std::lock_guard<std::mutex> lock(probe_mu_);
    stopping_ = true;
  }
  probe_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
  // Wait out every detached attempt thread: they borrow `this` until the
  // moment they decrement the (jointly owned) counter.
  std::unique_lock<std::mutex> lock(outstanding_->mu);
  outstanding_->cv.wait(lock, [&] { return outstanding_->count == 0; });
}

// ---------------------------------------------------------------------------
// Connection pool + raw calls
// ---------------------------------------------------------------------------

std::unique_ptr<net::RpcClient> ShardRouter::AcquireClient(Shard* shard) {
  {
    std::lock_guard<std::mutex> lock(shard->pool_mu);
    if (!shard->pool.empty()) {
      std::unique_ptr<net::RpcClient> client = std::move(shard->pool.back());
      shard->pool.pop_back();
      return client;
    }
  }
  net::RpcClientOptions client_options;
  client_options.call_deadline_s = options_.call_deadline_s;
  client_options.connect_timeout_s =
      std::min(0.5, options_.call_deadline_s / 2.0);
  client_options.jitter_seed =
      options_.jitter_seed ^ call_seq_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<net::RpcClient>(shard->endpoint.host,
                                          shard->endpoint.port,
                                          client_options);
}

void ShardRouter::ReleaseClient(Shard* shard,
                                std::unique_ptr<net::RpcClient> client) {
  std::lock_guard<std::mutex> lock(shard->pool_mu);
  shard->pool.push_back(std::move(client));
}

Result<std::vector<uint8_t>> ShardRouter::CallShard(
    int shard_index, net::MethodId method, const std::vector<uint8_t>& body,
    double deadline_s) {
  Shard* shard = shards_[shard_index].get();
  std::unique_ptr<net::RpcClient> client = AcquireClient(shard);
  remote_calls_.fetch_add(1, std::memory_order_relaxed);
  const double start = net::NowSeconds();
  Result<std::vector<uint8_t>> result =
      client->Call(method, body, deadline_s);
  if (result.ok()) {
    RecordLatency(shard, net::NowSeconds() - start);
  }
  // A failed client is returned too: transport errors poison its
  // connection and the next Call reconnects from scratch.
  ReleaseClient(shard, std::move(client));
  return result;
}

void ShardRouter::RecordLatency(Shard* shard, double seconds) {
  const size_t window =
      static_cast<size_t>(std::max(1, options_.latency_window));
  std::lock_guard<std::mutex> lock(shard->lat_mu);
  if (shard->lat.size() < window) {
    shard->lat.push_back(seconds);
  } else {
    shard->lat[shard->lat_next] = seconds;
  }
  shard->lat_next = (shard->lat_next + 1) % window;
}

double ShardRouter::HedgeBudgetSeconds(Shard* shard) const {
  std::vector<double> lat;
  {
    std::lock_guard<std::mutex> lock(shard->lat_mu);
    lat = shard->lat;
  }
  double p99 = 0.0;
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    p99 = lat[static_cast<size_t>(
        std::floor(0.99 * static_cast<double>(lat.size() - 1)))];
  }
  return std::max(options_.hedge_min_s, p99);
}

// ---------------------------------------------------------------------------
// Hedging + retries
// ---------------------------------------------------------------------------

void ShardRouter::Spawn(std::function<void()> fn) {
  std::shared_ptr<Outstanding> outstanding = outstanding_;
  {
    std::lock_guard<std::mutex> lock(outstanding->mu);
    ++outstanding->count;
  }
  std::thread([outstanding, fn = std::move(fn)] {
    fn();
    // `fn` must not be the last thing touching the router: the destructor
    // returns the moment count reaches zero, so only the jointly owned
    // state may be used past this point.
    std::lock_guard<std::mutex> lock(outstanding->mu);
    --outstanding->count;
    outstanding->cv.notify_all();
  }).detach();
}

Result<std::vector<uint8_t>> ShardRouter::HedgedCall(
    int shard_index, net::MethodId method,
    std::shared_ptr<const std::vector<uint8_t>> body) {
  struct CallState {
    std::mutex mu;
    std::condition_variable cv;
    int outstanding = 0;
    bool succeeded = false;
    Result<std::vector<uint8_t>> result{
        Status::Unavailable("rpc: no attempt completed")};
  };
  auto state = std::make_shared<CallState>();
  const double deadline_s = options_.call_deadline_s;

  auto attempt = [this, shard_index, method, body, state,
                  deadline_s](bool is_hedge) {
    Result<std::vector<uint8_t>> result =
        CallShard(shard_index, method, *body, deadline_s);
    std::lock_guard<std::mutex> lock(state->mu);
    --state->outstanding;
    if (!state->succeeded) {
      // First success wins and freezes the result; until then the latest
      // error stands in. Losers never overwrite a success.
      if (result.ok()) {
        state->succeeded = true;
        if (is_hedge) hedge_wins_.fetch_add(1, std::memory_order_relaxed);
      }
      state->result = std::move(result);
    }
    state->cv.notify_all();
  };

  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->outstanding = 1;
  }
  Spawn([attempt] { attempt(false); });

  std::unique_lock<std::mutex> lock(state->mu);
  if (options_.hedging) {
    const double budget = HedgeBudgetSeconds(shards_[shard_index].get());
    state->cv.wait_for(lock, Seconds(budget), [&] {
      return state->succeeded || state->outstanding == 0;
    });
    if (!state->succeeded && state->outstanding > 0) {
      ++state->outstanding;
      hedges_.fetch_add(1, std::memory_order_relaxed);
      Spawn([attempt] { attempt(true); });
    }
  }
  state->cv.wait(lock, [&] {
    return state->succeeded || state->outstanding == 0;
  });
  // Safe to move: once succeeded no attempt writes the result again, and
  // with outstanding == 0 every writer has finished.
  return std::move(state->result);
}

Result<std::vector<uint8_t>> ShardRouter::CallWithRetry(
    int shard_index, net::MethodId method,
    std::shared_ptr<const std::vector<uint8_t>> body) {
  const uint64_t seed =
      options_.jitter_seed ^
      (call_seq_.fetch_add(1, std::memory_order_relaxed) * 0x9E3779B97F4A7C15ULL);
  Backoff backoff(options_.call_retry, seed);
  Result<std::vector<uint8_t>> result = HedgedCall(shard_index, method, body);
  for (int retry = 1; retry <= options_.call_retry.max_retries; ++retry) {
    if (result.ok() || !IsRetryable(result.status())) break;
    const double delay_ms = backoff.NextDelayMs(retry);
    if (delay_ms > 0.0) {
      std::this_thread::sleep_for(Seconds(delay_ms / 1000.0));
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    result = HedgedCall(shard_index, method, body);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

std::vector<int> ShardRouter::RouteCandidates(int owner) const {
  auto routable = [&](int s) {
    const Shard& shard = *shards_[s];
    if (!shard.reachable.load(std::memory_order_relaxed)) return false;
    const auto health =
        static_cast<HealthState>(shard.health.load(std::memory_order_relaxed));
    return health == HealthState::kServing ||
           health == HealthState::kDegraded;
  };
  std::vector<int> candidates;
  candidates.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const int s = (owner + static_cast<int>(i)) %
                  static_cast<int>(shards_.size());
    if (routable(s)) candidates.push_back(s);
  }
  return candidates;
}

void ShardRouter::ImputeGroup(const KamelSnapshot& snapshot, int owner,
                              const std::vector<size_t>& indices,
                              const ImputePlan& plan,
                              std::vector<ImputedGap>* out) {
  std::vector<SegmentContext> contexts;
  contexts.reserve(indices.size());
  for (size_t index : indices) {
    contexts.push_back(plan.gaps[index].context);
  }
  auto body = std::make_shared<const std::vector<uint8_t>>(
      EncodeGapRequest(contexts));

  for (int target : RouteCandidates(owner)) {
    Result<std::vector<uint8_t>> response =
        CallWithRetry(target, kMethodImputeGaps, body);
    if (!response.ok()) continue;  // next candidate (failover)
    auto gaps = DecodeGapResponse(*response);
    if (!gaps.ok() || gaps->size() != indices.size()) continue;
    if (target != owner) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
    }
    for (size_t i = 0; i < indices.size(); ++i) {
      (*out)[indices[i]] = std::move((*gaps)[i]);
    }
    return;
  }

  // Bottom rung: every candidate refused, shed, or is dead — impute the
  // group locally at kLinearOnly (no model access; counted as overload
  // in the per-gap ladder accounting, which is exactly what it is).
  linear_fallback_gaps_.fetch_add(static_cast<int64_t>(indices.size()),
                                  std::memory_order_relaxed);
  for (size_t index : indices) {
    (*out)[index] =
        snapshot.ImputeGap(plan.gaps[index].context, ImputeMode::kLinearOnly);
  }
}

Result<ImputedTrajectory> ShardRouter::Impute(const Trajectory& sparse) {
  imputations_.fetch_add(1, std::memory_order_relaxed);
  Stopwatch watch;
  // Pin the snapshot for the whole call, like ServingEngine does.
  const std::shared_ptr<const KamelSnapshot> snapshot = snapshot_;
  KAMEL_ASSIGN_OR_RETURN(ImputePlan plan, snapshot->PlanImpute(sparse));

  std::vector<ImputedGap> gaps(plan.gaps.size());
  std::vector<std::vector<size_t>> groups(shards_.size());
  const Pyramid& pyramid = snapshot->repository().pyramid();
  for (size_t i = 0; i < plan.gaps.size(); ++i) {
    groups[ShardOfGap(partition_, pyramid, plan.gaps[i].context)]
        .push_back(i);
  }

  // Fan out one joined thread per non-empty group; the last group runs
  // on this thread (the single-shard case then spawns nothing).
  std::vector<int> active;
  for (size_t s = 0; s < groups.size(); ++s) {
    if (!groups[s].empty()) active.push_back(static_cast<int>(s));
  }
  std::vector<std::thread> threads;
  for (size_t i = 0; i + 1 < active.size(); ++i) {
    const int s = active[i];
    threads.emplace_back([this, &snapshot, s, &groups, &plan, &gaps] {
      ImputeGroup(*snapshot, s, groups[s], plan, &gaps);
    });
  }
  if (!active.empty()) {
    const int s = active.back();
    ImputeGroup(*snapshot, s, groups[s], plan, &gaps);
  }
  for (std::thread& thread : threads) thread.join();

  ImputedTrajectory out =
      snapshot->AssemblePlan(sparse, plan, std::move(gaps));
  out.stats.seconds = watch.ElapsedSeconds();
  return out;
}

// ---------------------------------------------------------------------------
// Health probing + observers
// ---------------------------------------------------------------------------

void ShardRouter::ProbeOnce() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    Result<std::vector<uint8_t>> response = CallShard(
        static_cast<int>(s), kMethodStats, {}, options_.probe_deadline_s);
    Shard* shard = shards_[s].get();
    if (!response.ok()) {
      shard->reachable.store(false, std::memory_order_relaxed);
      continue;
    }
    auto status = DecodeStatus(*response);
    if (!status.ok()) {
      shard->reachable.store(false, std::memory_order_relaxed);
      continue;
    }
    shard->reachable.store(true, std::memory_order_relaxed);
    shard->health.store(static_cast<int>(status->health),
                        std::memory_order_relaxed);
  }
}

void ShardRouter::ProbeLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(probe_mu_);
      probe_cv_.wait_for(lock, Seconds(options_.probe_interval_s),
                         [&] { return stopping_; });
      if (stopping_) return;
    }
    ProbeOnce();
  }
}

std::vector<HealthState> ShardRouter::ShardHealth() const {
  std::vector<HealthState> health;
  health.reserve(shards_.size());
  for (const auto& shard : shards_) {
    if (!shard->reachable.load(std::memory_order_relaxed)) {
      health.push_back(HealthState::kDraining);
    } else {
      health.push_back(static_cast<HealthState>(
          shard->health.load(std::memory_order_relaxed)));
    }
  }
  return health;
}

Status ShardRouter::WaitHealthy(double timeout_s) {
  const double deadline = net::NowSeconds() + timeout_s;
  while (true) {
    ProbeOnce();
    const std::vector<HealthState> health = ShardHealth();
    bool all_serving = true;
    for (size_t s = 0; s < health.size(); ++s) {
      if (!shards_[s]->reachable.load(std::memory_order_relaxed) ||
          health[s] != HealthState::kServing) {
        all_serving = false;
        break;
      }
    }
    if (all_serving) return Status::OK();
    if (net::NowSeconds() >= deadline) {
      return Status::DeadlineExceeded(
          "router: shards did not all reach SERVING in time");
    }
    std::this_thread::sleep_for(Seconds(0.05));
  }
}

std::vector<ShardRouter::ProbedStatus> ShardRouter::CollectStats() {
  std::vector<ProbedStatus> statuses(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    Result<std::vector<uint8_t>> response = CallShard(
        static_cast<int>(s), kMethodStats, {}, options_.probe_deadline_s);
    if (!response.ok()) {
      statuses[s].error = response.status().ToString();
      continue;
    }
    auto status = DecodeStatus(*response);
    if (!status.ok()) {
      statuses[s].error = status.status().ToString();
      continue;
    }
    statuses[s].reachable = true;
    statuses[s].status = std::move(*status);
  }
  return statuses;
}

Status ShardRouter::BroadcastSnapshot(const std::string& path) {
  const std::vector<uint8_t> body = EncodeSnapshotPath(path);
  Status first_error = Status::OK();
  for (size_t s = 0; s < shards_.size(); ++s) {
    // Reloading a snapshot reads the whole file back in; give it a much
    // larger budget than a serving call.
    Result<std::vector<uint8_t>> response =
        CallShard(static_cast<int>(s), kMethodUpdateSnapshot, body, 30.0);
    if (!response.ok() && first_error.ok()) {
      first_error = response.status();
    }
  }
  return first_error;
}

RouterStats ShardRouter::stats() const {
  RouterStats stats;
  stats.imputations = imputations_.load(std::memory_order_relaxed);
  stats.remote_calls = remote_calls_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.hedges = hedges_.load(std::memory_order_relaxed);
  stats.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  stats.failovers = failovers_.load(std::memory_order_relaxed);
  stats.linear_fallback_gaps =
      linear_fallback_gaps_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace kamel::shard
