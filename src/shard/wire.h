#ifndef KAMEL_SHARD_WIRE_H_
#define KAMEL_SHARD_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/kamel_snapshot.h"
#include "core/serving_engine.h"
#include "core/spatial_constraints.h"
#include "net/rpc.h"
#include "replication/replication.h"

namespace kamel::shard {

/// The worker RPC protocol, one method per concern. All bodies are
/// little-endian via common/binary_io — the same codec the snapshot
/// format uses, so a corrupted body surfaces as a descriptive Status,
/// never an abort. (Method 5, kMethodWalPull, lives in
/// replication/replication.h — the standby side speaks it without
/// linking the shard layer.)
inline constexpr net::MethodId kMethodPing = 1;
inline constexpr net::MethodId kMethodStats = 2;
inline constexpr net::MethodId kMethodImputeGaps = 3;
inline constexpr net::MethodId kMethodUpdateSnapshot = 4;
/// Durable trajectory ingest (primaries only). Request body: the raw
/// EncodeTrajectoryPayload bytes (io/wal.h) — exactly what lands in the
/// WAL, so the router ships what the log stores. Response: SubmitAck.
inline constexpr net::MethodId kMethodSubmit = 6;
/// Promotion (standbys only): request body EncodePromoteRequest with the
/// new fencing epoch, response PromoteAck. Idempotent when the worker is
/// already primary at exactly that epoch.
inline constexpr net::MethodId kMethodPromote = 7;
/// Cheap role probe every worker answers (role NONE when replication is
/// not configured). Response: RoleInfo.
inline constexpr net::MethodId kMethodRole = 8;

/// One worker's health + counters as reported by kMethodStats. `json`
/// carries the EngineStatsJson schema verbatim — the same dialect
/// `kamel stats` prints and the router aggregates, so every observer of
/// an engine reads identical keys. The replication fields mirror
/// RoleInfo at the same instant.
struct ShardStatus {
  int shard = 0;
  HealthState health = HealthState::kServing;
  std::string json;
  replication::ReplicaRole role = replication::ReplicaRole::kNone;
  uint64_t epoch = 0;
  uint64_t durable_lsn = 0;
  uint64_t applied_lsn = 0;
  uint64_t replication_lag = 0;
};

/// kMethodRole response: what the router's prober needs to route —
/// who is primary, at which epoch, and how far behind each standby is.
struct RoleInfo {
  int shard = 0;
  replication::ReplicaRole role = replication::ReplicaRole::kNone;
  uint64_t epoch = 0;
  /// Primary: its durable watermark. Standby: the primary's durable
  /// watermark as of its last good pull.
  uint64_t durable_lsn = 0;
  /// Standby: its applied watermark. Primary: == durable_lsn.
  uint64_t applied_lsn = 0;
  /// Records the standby trails the primary by (0 on a primary).
  uint64_t lag = 0;
  HealthState health = HealthState::kServing;
};

/// kMethodSubmit response: the record is durable on the primary (and on
/// min_sync_standbys standbys) at `lsn`, under fencing epoch `epoch`.
struct SubmitAck {
  uint64_t lsn = 0;
  uint64_t epoch = 0;
};

/// kMethodPromote response.
struct PromoteAck {
  uint64_t epoch = 0;
  /// The promoted worker's applied watermark at takeover — every record
  /// at or below it survived the failover.
  uint64_t applied_lsn = 0;
};

/// kMethodImputeGaps request: the gaps of one trajectory that route to
/// one shard. Tokens travel as exact TokenPoints (cell, time, projected
/// position, heading) so the worker never re-tokenizes — byte-identity
/// with single-process imputation depends on it.
std::vector<uint8_t> EncodeGapRequest(const std::vector<SegmentContext>& gaps);
Result<std::vector<SegmentContext>> DecodeGapRequest(
    const std::vector<uint8_t>& body);

/// kMethodImputeGaps response: one ImputedGap per requested gap, in
/// request order (interior points + the per-gap ladder accounting).
std::vector<uint8_t> EncodeGapResponse(const std::vector<ImputedGap>& gaps);
Result<std::vector<ImputedGap>> DecodeGapResponse(
    const std::vector<uint8_t>& body);

/// kMethodStats response.
std::vector<uint8_t> EncodeStatus(const ShardStatus& status);
Result<ShardStatus> DecodeStatus(const std::vector<uint8_t>& body);

/// kMethodUpdateSnapshot request: the snapshot file the worker should
/// reload its partition from and hot-swap into its engine.
std::vector<uint8_t> EncodeSnapshotPath(const std::string& path);
Result<std::string> DecodeSnapshotPath(const std::vector<uint8_t>& body);

/// kMethodRole response.
std::vector<uint8_t> EncodeRoleInfo(const RoleInfo& info);
Result<RoleInfo> DecodeRoleInfo(const std::vector<uint8_t>& body);

/// kMethodSubmit response.
std::vector<uint8_t> EncodeSubmitAck(const SubmitAck& ack);
Result<SubmitAck> DecodeSubmitAck(const std::vector<uint8_t>& body);

/// kMethodPromote request / response.
std::vector<uint8_t> EncodePromoteRequest(uint64_t new_epoch);
Result<uint64_t> DecodePromoteRequest(const std::vector<uint8_t>& body);
std::vector<uint8_t> EncodePromoteAck(const PromoteAck& ack);
Result<PromoteAck> DecodePromoteAck(const std::vector<uint8_t>& body);

}  // namespace kamel::shard

#endif  // KAMEL_SHARD_WIRE_H_
