#ifndef KAMEL_SHARD_WIRE_H_
#define KAMEL_SHARD_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/kamel_snapshot.h"
#include "core/serving_engine.h"
#include "core/spatial_constraints.h"
#include "net/rpc.h"

namespace kamel::shard {

/// The worker RPC protocol, one method per concern. All bodies are
/// little-endian via common/binary_io — the same codec the snapshot
/// format uses, so a corrupted body surfaces as a descriptive Status,
/// never an abort.
inline constexpr net::MethodId kMethodPing = 1;
inline constexpr net::MethodId kMethodStats = 2;
inline constexpr net::MethodId kMethodImputeGaps = 3;
inline constexpr net::MethodId kMethodUpdateSnapshot = 4;

/// One worker's health + counters as reported by kMethodStats. `json`
/// carries the EngineStatsJson schema verbatim — the same dialect
/// `kamel stats` prints and the router aggregates, so every observer of
/// an engine reads identical keys.
struct ShardStatus {
  int shard = 0;
  HealthState health = HealthState::kServing;
  std::string json;
};

/// kMethodImputeGaps request: the gaps of one trajectory that route to
/// one shard. Tokens travel as exact TokenPoints (cell, time, projected
/// position, heading) so the worker never re-tokenizes — byte-identity
/// with single-process imputation depends on it.
std::vector<uint8_t> EncodeGapRequest(const std::vector<SegmentContext>& gaps);
Result<std::vector<SegmentContext>> DecodeGapRequest(
    const std::vector<uint8_t>& body);

/// kMethodImputeGaps response: one ImputedGap per requested gap, in
/// request order (interior points + the per-gap ladder accounting).
std::vector<uint8_t> EncodeGapResponse(const std::vector<ImputedGap>& gaps);
Result<std::vector<ImputedGap>> DecodeGapResponse(
    const std::vector<uint8_t>& body);

/// kMethodStats response.
std::vector<uint8_t> EncodeStatus(const ShardStatus& status);
Result<ShardStatus> DecodeStatus(const std::vector<uint8_t>& body);

/// kMethodUpdateSnapshot request: the snapshot file the worker should
/// reload its partition from and hot-swap into its engine.
std::vector<uint8_t> EncodeSnapshotPath(const std::string& path);
Result<std::string> DecodeSnapshotPath(const std::vector<uint8_t>& body);

}  // namespace kamel::shard

#endif  // KAMEL_SHARD_WIRE_H_
