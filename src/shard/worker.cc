#include "shard/worker.h"

#include <utility>
#include <vector>

namespace kamel::shard {

ShardWorker::ShardWorker(WorkerOptions options)
    : options_(std::move(options)), server_(options_.host) {}

ShardWorker::~ShardWorker() { Stop(); }

Result<std::shared_ptr<const KamelSnapshot>> ShardWorker::LoadPartition(
    const std::string& path) {
  KamelBuilder builder(options_.kamel);
  KAMEL_RETURN_NOT_OK(builder.LoadFromFile(path));
  // The partition depends only on the pyramid geometry (deterministic
  // from the snapshot) and the shard count, so every worker and the
  // router agree on it without any coordination.
  const ShardPartition partition =
      MakePartition(builder.repository().pyramid(), options_.num_shards);
  if (options_.num_shards > 1) {
    const Pyramid& pyramid = builder.repository().pyramid();
    models_dropped_.store(builder.mutable_repository()->RetainModels(
        [&](const BBox& bounds) {
          return ShardOwns(partition, pyramid, options_.shard, bounds);
        }));
  }
  return builder.Snapshot();
}

Status ShardWorker::Start(const std::string& snapshot_path) {
  KAMEL_ASSIGN_OR_RETURN(auto snapshot, LoadPartition(snapshot_path));
  // Set once here, never from the (concurrent) UpdateSnapshot handler:
  // the partition is a pure function of the pyramid geometry and the
  // shard count, both fixed for the life of the worker.
  partition_ =
      MakePartition(snapshot->repository().pyramid(), options_.num_shards);
  engine_ = std::make_unique<ServingEngine>(std::move(snapshot),
                                            options_.serving);

  server_.Register(kMethodPing,
                   [](const std::vector<uint8_t>&)
                       -> Result<std::vector<uint8_t>> {
                     return std::vector<uint8_t>{};
                   });
  server_.Register(kMethodStats,
                   [this](const std::vector<uint8_t>&)
                       -> Result<std::vector<uint8_t>> {
                     ShardStatus status;
                     status.shard = options_.shard;
                     status.health = engine_->health();
                     status.json =
                         EngineStatsJson(engine_->stats(), status.health);
                     return EncodeStatus(status);
                   });
  server_.Register(
      kMethodImputeGaps,
      [this](const std::vector<uint8_t>& body)
          -> Result<std::vector<uint8_t>> {
        KAMEL_ASSIGN_OR_RETURN(std::vector<SegmentContext> gaps,
                               DecodeGapRequest(body));
        KAMEL_ASSIGN_OR_RETURN(std::vector<ImputedGap> imputed,
                               engine_->ImputeGaps(gaps));
        return EncodeGapResponse(imputed);
      });
  server_.Register(
      kMethodUpdateSnapshot,
      [this](const std::vector<uint8_t>& body)
          -> Result<std::vector<uint8_t>> {
        KAMEL_ASSIGN_OR_RETURN(std::string path, DecodeSnapshotPath(body));
        KAMEL_ASSIGN_OR_RETURN(auto snapshot, LoadPartition(path));
        engine_->UpdateSnapshot(std::move(snapshot));
        return std::vector<uint8_t>{};
      });

  return server_.Start(options_.port);
}

void ShardWorker::Stop() {
  server_.Stop();
  if (engine_ != nullptr) engine_->Drain();
}

}  // namespace kamel::shard
