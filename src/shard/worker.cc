#include "shard/worker.h"

#include <utility>
#include <vector>

#include "io/wal.h"

namespace kamel::shard {

namespace repl = ::kamel::replication;

ShardWorker::ShardWorker(WorkerOptions options)
    : options_(std::move(options)), server_(options_.host) {}

ShardWorker::~ShardWorker() { Stop(); }

Result<std::shared_ptr<const KamelSnapshot>> ShardWorker::LoadPartition(
    const std::string& path) {
  KamelBuilder builder(options_.kamel);
  KAMEL_RETURN_NOT_OK(builder.LoadFromFile(path));
  // The partition depends only on the pyramid geometry (deterministic
  // from the snapshot) and the shard count, so every worker and the
  // router agree on it without any coordination.
  const ShardPartition partition =
      MakePartition(builder.repository().pyramid(), options_.num_shards);
  if (options_.num_shards > 1) {
    const Pyramid& pyramid = builder.repository().pyramid();
    models_dropped_.store(builder.mutable_repository()->RetainModels(
        [&](const BBox& bounds) {
          return ShardOwns(partition, pyramid, options_.shard, bounds);
        }));
  }
  return builder.Snapshot();
}

Status ShardWorker::StartReplication() {
  if (options_.wal_dir.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(repl_mu_);
  if (options_.standby_of_port == 0) {
    // Primary: reuse a persisted epoch (a restarted primary that was
    // never deposed keeps serving its epoch; a deposed one gets fenced
    // by the first pull or probe that carries the newer epoch).
    KAMEL_ASSIGN_OR_RETURN(uint64_t epoch,
                           repl::LoadEpoch(options_.wal_dir));
    if (epoch == 0) {
      epoch = 1;
      KAMEL_RETURN_NOT_OK(repl::StoreEpoch(options_.wal_dir, epoch));
    }
    WalOptions wal_options;
    wal_options.dir = options_.wal_dir;
    // Submit acks require durability per record; batching policies would
    // let an acked record die with the primary before it ever shipped.
    wal_options.fsync_policy = FsyncPolicy::kEveryRecord;
    KAMEL_ASSIGN_OR_RETURN(auto wal, WriteAheadLog::Open(wal_options));
    primary_ = std::make_shared<repl::PrimaryReplication>(
        std::move(wal), epoch, options_.replication);
    return Status::OK();
  }
  repl::StandbyReplication::Options standby_options;
  standby_options.wal_dir = options_.wal_dir;
  standby_options.standby_id =
      options_.replica_id.empty()
          ? options_.host + ":" + std::to_string(options_.port)
          : options_.replica_id;
  standby_options.primary_host = options_.standby_of_host;
  standby_options.primary_port = options_.standby_of_port;
  standby_options.replication = options_.replication;
  KAMEL_ASSIGN_OR_RETURN(standby_,
                         repl::StandbyReplication::Start(standby_options));
  return Status::OK();
}

RoleInfo ShardWorker::BuildRoleInfo(HealthState health) const {
  RoleInfo info;
  info.shard = options_.shard;
  info.health = health;
  std::lock_guard<std::mutex> lock(repl_mu_);
  if (primary_ != nullptr) {
    info.role = primary_->fenced() ? repl::ReplicaRole::kFenced
                                   : repl::ReplicaRole::kPrimary;
    info.epoch = primary_->epoch();
    info.durable_lsn = primary_->durable_lsn();
    info.applied_lsn = info.durable_lsn;
    info.lag = 0;
  } else if (standby_ != nullptr) {
    const auto view = standby_->status();
    // Never-pulled standbys report CATCHING_UP: with no observation of
    // the primary's watermark a zero lag proves nothing.
    info.role = (view.pulls > 0 &&
                 view.lag <= options_.replication.max_lag_records)
                    ? repl::ReplicaRole::kStandby
                    : repl::ReplicaRole::kCatchingUp;
    info.epoch = view.epoch;
    info.durable_lsn = view.primary_durable_lsn;
    info.applied_lsn = view.applied_lsn;
    info.lag = view.lag;
  }
  return info;
}

RoleInfo ShardWorker::role_info() const {
  return BuildRoleInfo(engine_ != nullptr ? engine_->health()
                                          : HealthState::kServing);
}

Result<PromoteAck> ShardWorker::Promote(uint64_t new_epoch) {
  std::lock_guard<std::mutex> lock(repl_mu_);
  if (primary_ != nullptr) {
    if (primary_->epoch() == new_epoch && !primary_->fenced()) {
      // The router's promote retried after a lost ack: same answer.
      PromoteAck ack;
      ack.epoch = new_epoch;
      ack.applied_lsn = primary_->durable_lsn();
      return ack;
    }
    return Status::FailedPrecondition(
        "already primary at epoch " + std::to_string(primary_->epoch()) +
        (primary_->fenced() ? " (fenced)" : "") + "; cannot promote to " +
        std::to_string(new_epoch));
  }
  if (standby_ == nullptr) {
    return Status::FailedPrecondition(
        "not a standby: replication is not configured");
  }
  const auto view = standby_->status();
  if (new_epoch <= view.epoch) {
    return Status::FailedPrecondition(
        "stale promotion to epoch " + std::to_string(new_epoch) +
        ": standby already follows epoch " + std::to_string(view.epoch));
  }
  const uint64_t applied = standby_->StopForPromotion();
  // Epoch first: a crash after this point reopens as a primary (or
  // re-standby) of the NEW epoch — never as a promotable copy of the
  // old one.
  KAMEL_RETURN_NOT_OK(repl::StoreEpoch(options_.wal_dir, new_epoch));
  standby_.reset();
  WalOptions wal_options;
  wal_options.dir = options_.wal_dir;
  wal_options.fsync_policy = FsyncPolicy::kEveryRecord;
  // The replica segments ARE a valid log (byte-identical shipping);
  // Open truncates any torn tail and positions the writer after the
  // last durable record, which is exactly the applied watermark.
  KAMEL_ASSIGN_OR_RETURN(auto wal, WriteAheadLog::Open(wal_options));
  primary_ = std::make_shared<repl::PrimaryReplication>(
      std::move(wal), new_epoch, options_.replication);
  PromoteAck ack;
  ack.epoch = new_epoch;
  ack.applied_lsn = applied;
  return ack;
}

Status ShardWorker::Start(const std::string& snapshot_path) {
  KAMEL_ASSIGN_OR_RETURN(auto snapshot, LoadPartition(snapshot_path));
  // Set once here, never from the (concurrent) UpdateSnapshot handler:
  // the partition is a pure function of the pyramid geometry and the
  // shard count, both fixed for the life of the worker.
  partition_ =
      MakePartition(snapshot->repository().pyramid(), options_.num_shards);
  engine_ = std::make_unique<ServingEngine>(std::move(snapshot),
                                            options_.serving);
  KAMEL_RETURN_NOT_OK(StartReplication());

  server_.Register(kMethodPing,
                   [](const std::vector<uint8_t>&)
                       -> Result<std::vector<uint8_t>> {
                     return std::vector<uint8_t>{};
                   });
  server_.Register(kMethodStats,
                   [this](const std::vector<uint8_t>&)
                       -> Result<std::vector<uint8_t>> {
                     // ONE engine snapshot feeds health, json, and the
                     // role fields — no self-contradictory lines.
                     const EngineStatus engine_status = engine_->status();
                     const RoleInfo info =
                         BuildRoleInfo(engine_status.health);
                     ShardStatus status;
                     status.shard = options_.shard;
                     status.health = engine_status.health;
                     status.json = EngineStatsJson(engine_status.stats,
                                                   engine_status.health);
                     status.role = info.role;
                     status.epoch = info.epoch;
                     status.durable_lsn = info.durable_lsn;
                     status.applied_lsn = info.applied_lsn;
                     status.replication_lag = info.lag;
                     return EncodeStatus(status);
                   });
  server_.Register(
      kMethodImputeGaps,
      [this](const std::vector<uint8_t>& body)
          -> Result<std::vector<uint8_t>> {
        KAMEL_ASSIGN_OR_RETURN(std::vector<SegmentContext> gaps,
                               DecodeGapRequest(body));
        KAMEL_ASSIGN_OR_RETURN(std::vector<ImputedGap> imputed,
                               engine_->ImputeGaps(gaps));
        return EncodeGapResponse(imputed);
      });
  server_.Register(
      kMethodUpdateSnapshot,
      [this](const std::vector<uint8_t>& body)
          -> Result<std::vector<uint8_t>> {
        KAMEL_ASSIGN_OR_RETURN(std::string path, DecodeSnapshotPath(body));
        KAMEL_ASSIGN_OR_RETURN(auto snapshot, LoadPartition(path));
        engine_->UpdateSnapshot(std::move(snapshot));
        return std::vector<uint8_t>{};
      });
  server_.Register(
      kMethodRole,
      [this](const std::vector<uint8_t>&) -> Result<std::vector<uint8_t>> {
        return EncodeRoleInfo(role_info());
      });
  server_.Register(
      kMethodSubmit,
      [this](const std::vector<uint8_t>& body)
          -> Result<std::vector<uint8_t>> {
        // Pin the primary outside repl_mu_ for the blocking parts, so a
        // concurrent promotion never deadlocks on a parked Submit.
        std::shared_ptr<repl::PrimaryReplication> primary;
        {
          std::lock_guard<std::mutex> lock(repl_mu_);
          primary = primary_;
        }
        if (primary == nullptr) {
          return Status::FailedPrecondition(
              "not a primary: submit refused (shard " +
              std::to_string(options_.shard) + ")");
        }
        // Validate before logging: the body is the exact WAL payload,
        // and the log must never hold bytes that do not decode.
        KAMEL_ASSIGN_OR_RETURN(Trajectory trajectory,
                               DecodeTrajectoryPayload(body));
        (void)trajectory;
        KAMEL_ASSIGN_OR_RETURN(
            const uint64_t lsn,
            primary->Append(WalRecordType::kSubmit, body));
        KAMEL_RETURN_NOT_OK(primary->WaitReplicated(lsn));
        SubmitAck ack;
        ack.lsn = lsn;
        ack.epoch = primary->epoch();
        return EncodeSubmitAck(ack);
      });
  server_.Register(
      replication::kMethodWalPull,
      [this](const std::vector<uint8_t>& body)
          -> Result<std::vector<uint8_t>> {
        std::shared_ptr<repl::PrimaryReplication> primary;
        {
          std::lock_guard<std::mutex> lock(repl_mu_);
          primary = primary_;
        }
        if (primary == nullptr) {
          return Status::FailedPrecondition(
              "not a primary: nothing to pull");
        }
        KAMEL_ASSIGN_OR_RETURN(const repl::PullRequest request,
                               repl::DecodePullRequest(body));
        KAMEL_ASSIGN_OR_RETURN(const repl::PullResponse response,
                               primary->HandlePull(request));
        return repl::EncodePullResponse(response);
      });
  server_.Register(
      kMethodPromote,
      [this](const std::vector<uint8_t>& body)
          -> Result<std::vector<uint8_t>> {
        KAMEL_ASSIGN_OR_RETURN(const uint64_t new_epoch,
                               DecodePromoteRequest(body));
        KAMEL_ASSIGN_OR_RETURN(const PromoteAck ack, Promote(new_epoch));
        return EncodePromoteAck(ack);
      });

  return server_.Start(options_.port);
}

void ShardWorker::Stop() {
  server_.Stop();
  {
    // After the server joins its connection threads nothing can race the
    // role state; stop the pull thread before draining the engine.
    std::lock_guard<std::mutex> lock(repl_mu_);
    standby_.reset();
    primary_.reset();
  }
  if (engine_ != nullptr) engine_->Drain();
}

}  // namespace kamel::shard
