#include "shard/partition.h"

#include <algorithm>

#include "common/check.h"
#include "core/kamel_snapshot.h"

namespace kamel::shard {

ShardPartition MakePartition(const Pyramid& pyramid, int num_shards) {
  ShardPartition partition;
  partition.num_shards = std::max(1, num_shards);
  // Shallowest level with >= num_shards cells: 4^level >= num_shards.
  int level = 0;
  while (level < pyramid.height() &&
         (int64_t{1} << (2 * level)) < partition.num_shards) {
    ++level;
  }
  partition.level = level;
  return partition;
}

int ShardOfCell(const ShardPartition& partition, const PyramidCell& cell) {
  KAMEL_CHECK(cell.level == partition.level,
              "shard key cell at the wrong pyramid level");
  const int64_t dim = int64_t{1} << partition.level;
  const int64_t index = static_cast<int64_t>(cell.y) * dim + cell.x;
  // CellAt clamps into the world, so index is non-negative; the guard
  // keeps a hand-built cell from producing a negative shard.
  const int64_t shard = index % partition.num_shards;
  return static_cast<int>(shard < 0 ? shard + partition.num_shards : shard);
}

int ShardOfPoint(const ShardPartition& partition, const Pyramid& pyramid,
                 const Vec2& point) {
  return ShardOfCell(partition, pyramid.CellAt(partition.level, point));
}

int ShardOfGap(const ShardPartition& partition, const Pyramid& pyramid,
               const SegmentContext& context) {
  return ShardOfPoint(partition, pyramid, GapMbr(context).Center());
}

bool ShardOwns(const ShardPartition& partition, const Pyramid& pyramid,
               int shard, const BBox& bounds) {
  if (partition.num_shards <= 1) return true;
  if (bounds.min_x > bounds.max_x || bounds.min_y > bounds.max_y) {
    // The global model (and any other boundless slot) lives everywhere.
    return true;
  }
  // Walk the key cells intersecting `bounds`. CellAt clamps both corners
  // into the world, so the range is finite even for bounds that hang off
  // the edge; touching a cell border over-includes the neighbor, which
  // only ever retains an extra model.
  const PyramidCell lo =
      pyramid.CellAt(partition.level, {bounds.min_x, bounds.min_y});
  const PyramidCell hi =
      pyramid.CellAt(partition.level, {bounds.max_x, bounds.max_y});
  for (int y = lo.y; y <= hi.y; ++y) {
    for (int x = lo.x; x <= hi.x; ++x) {
      if (ShardOfCell(partition, {partition.level, x, y}) == shard) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace kamel::shard
