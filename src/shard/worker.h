#ifndef KAMEL_SHARD_WORKER_H_
#define KAMEL_SHARD_WORKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "core/kamel_snapshot.h"
#include "core/serving_engine.h"
#include "net/rpc.h"
#include "shard/partition.h"
#include "shard/wire.h"

namespace kamel::shard {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 picks a free port (see ShardWorker::port())
  /// This worker's shard index in [0, num_shards).
  int shard = 0;
  int num_shards = 1;
  /// Must match the options the snapshot was trained with (snapshots do
  /// not persist options, same contract as KamelBuilder::LoadFromFile).
  KamelOptions kamel;
  ServingOptions serving;
};

/// One shard-serving process: a ServingEngine over the cell-prefix
/// partition of the pyramid this worker owns, exposed over the RPC
/// protocol of shard/wire.h.
///
/// Start() loads the shipped snapshot, prunes the model index down to the
/// partition (ModelRepository::RetainModels — every model intersecting an
/// owned key cell is kept, so owned gaps impute byte-identically to a
/// single process), and begins serving. kMethodUpdateSnapshot reloads a
/// new snapshot file the same way and hot-swaps it into the engine;
/// in-flight imputations finish on the generation they started with.
class ShardWorker {
 public:
  explicit ShardWorker(WorkerOptions options);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Loads `snapshot_path`, prunes to the partition, and starts serving.
  Status Start(const std::string& snapshot_path);

  /// Stops the RPC server and drains the engine (terminal).
  void Stop();

  /// The bound port (useful with options.port == 0).
  uint16_t port() const { return server_.port(); }

  const ShardPartition& partition() const { return partition_; }

  /// Models dropped by the most recent partition prune.
  int models_dropped() const { return models_dropped_.load(); }

  /// The engine, for in-process tests; null before Start().
  ServingEngine* engine() { return engine_.get(); }

 private:
  /// Loads a snapshot and prunes its model index to this partition.
  Result<std::shared_ptr<const KamelSnapshot>> LoadPartition(
      const std::string& path);

  const WorkerOptions options_;
  ShardPartition partition_;
  std::atomic<int> models_dropped_{0};
  std::unique_ptr<ServingEngine> engine_;
  net::RpcServer server_;
};

}  // namespace kamel::shard

#endif  // KAMEL_SHARD_WORKER_H_
