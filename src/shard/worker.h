#ifndef KAMEL_SHARD_WORKER_H_
#define KAMEL_SHARD_WORKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "core/kamel_snapshot.h"
#include "core/serving_engine.h"
#include "net/rpc.h"
#include "replication/primary.h"
#include "replication/standby.h"
#include "shard/partition.h"
#include "shard/wire.h"

namespace kamel::shard {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 picks a free port (see ShardWorker::port())
  /// This worker's shard index in [0, num_shards).
  int shard = 0;
  int num_shards = 1;
  /// Must match the options the snapshot was trained with (snapshots do
  /// not persist options, same contract as KamelBuilder::LoadFromFile).
  KamelOptions kamel;
  ServingOptions serving;

  // -- Replication -----------------------------------------------------------
  /// Ingest WAL directory. Empty = replication off (role NONE, Submit
  /// refused). Set + standby_of_port == 0: start as PRIMARY (open/create
  /// the WAL here, serve Submit and WalPull). Set + standby_of_port != 0:
  /// start as a warm STANDBY replicating that primary's WAL into this
  /// directory, promotable via kMethodPromote.
  std::string wal_dir;
  std::string standby_of_host = "127.0.0.1";
  uint16_t standby_of_port = 0;
  /// Name reported on pulls (stats attribution); default "<host>:<port>".
  std::string replica_id;
  replication::ReplicationOptions replication;
};

/// One shard-serving process: a ServingEngine over the cell-prefix
/// partition of the pyramid this worker owns, exposed over the RPC
/// protocol of shard/wire.h.
///
/// Start() loads the shipped snapshot, prunes the model index down to the
/// partition (ModelRepository::RetainModels — every model intersecting an
/// owned key cell is kept, so owned gaps impute byte-identically to a
/// single process), and begins serving. kMethodUpdateSnapshot reloads a
/// new snapshot file the same way and hot-swaps it into the engine;
/// in-flight imputations finish on the generation they started with.
///
/// Replication (WorkerOptions::wal_dir): a primary owns the ingest WAL
/// and serves kMethodSubmit (durable append + semi-sync standby acks)
/// and kMethodWalPull; a standby pulls that WAL into a byte-identical
/// local copy and can be promoted in place — kMethodPromote stops the
/// pull, persists the new fencing epoch, and reopens the replica
/// segments as this worker's own WAL. Roles are dynamic: a primary that
/// sees a higher epoch fences itself (Submit starts refusing, role
/// FENCED); a standby reports CATCHING_UP until its lag is within
/// ReplicationOptions::max_lag_records.
class ShardWorker {
 public:
  explicit ShardWorker(WorkerOptions options);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Loads `snapshot_path`, prunes to the partition, starts replication
  /// per the options, and starts serving.
  Status Start(const std::string& snapshot_path);

  /// Stops the RPC server, replication, and drains the engine (terminal).
  void Stop();

  /// The bound port (useful with options.port == 0).
  uint16_t port() const { return server_.port(); }

  const ShardPartition& partition() const { return partition_; }

  /// Models dropped by the most recent partition prune.
  int models_dropped() const { return models_dropped_.load(); }

  /// The engine, for in-process tests; null before Start().
  ServingEngine* engine() { return engine_.get(); }

  /// This worker's replication view right now (role NONE when
  /// replication is off). Same data kMethodRole serves.
  RoleInfo role_info() const;

 private:
  /// Loads a snapshot and prunes its model index to this partition.
  Result<std::shared_ptr<const KamelSnapshot>> LoadPartition(
      const std::string& path);

  Status StartReplication();
  Result<PromoteAck> Promote(uint64_t new_epoch);
  RoleInfo BuildRoleInfo(HealthState health) const;

  const WorkerOptions options_;
  ShardPartition partition_;
  std::atomic<int> models_dropped_{0};
  std::unique_ptr<ServingEngine> engine_;

  /// Guards the role state machine. shared_ptr so a handler can pin the
  /// current primary/standby outside the lock for the duration of a
  /// blocking call (HandlePull long-poll, WaitReplicated).
  mutable std::mutex repl_mu_;
  std::shared_ptr<replication::PrimaryReplication> primary_;
  std::shared_ptr<replication::StandbyReplication> standby_;

  net::RpcServer server_;
};

}  // namespace kamel::shard

#endif  // KAMEL_SHARD_WORKER_H_
