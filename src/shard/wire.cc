#include "shard/wire.h"

#include <utility>

#include "common/binary_io.h"

namespace kamel::shard {

namespace {

void WriteToken(BinaryWriter* writer, const TokenPoint& token) {
  writer->WriteU64(token.cell);
  writer->WriteF64(token.time);
  writer->WriteF64(token.position.x);
  writer->WriteF64(token.position.y);
  writer->WriteF64(token.heading);
}

Result<TokenPoint> ReadToken(BinaryReader* reader) {
  TokenPoint token;
  KAMEL_ASSIGN_OR_RETURN(token.cell, reader->ReadU64());
  KAMEL_ASSIGN_OR_RETURN(token.time, reader->ReadF64());
  KAMEL_ASSIGN_OR_RETURN(token.position.x, reader->ReadF64());
  KAMEL_ASSIGN_OR_RETURN(token.position.y, reader->ReadF64());
  KAMEL_ASSIGN_OR_RETURN(token.heading, reader->ReadF64());
  return token;
}

void WriteStats(BinaryWriter* writer, const ImputeStats& stats) {
  writer->WriteI32(stats.segments);
  writer->WriteI32(stats.failed_segments);
  writer->WriteI32(stats.no_model_segments);
  writer->WriteI32(stats.deadline_segments);
  writer->WriteI32(stats.overload_segments);
  writer->WriteI32(stats.full_model_segments);
  writer->WriteI32(stats.ancestor_segments);
  writer->WriteI64(stats.bert_calls);
  writer->WriteF64(stats.seconds);
  writer->WriteU64(stats.outcomes.size());
  for (const SegmentOutcome& outcome : stats.outcomes) {
    writer->WriteF64(outcome.s_time);
    writer->WriteF64(outcome.d_time);
    writer->WriteU8(outcome.failed ? 1 : 0);
  }
}

Result<ImputeStats> ReadStats(BinaryReader* reader) {
  ImputeStats stats;
  KAMEL_ASSIGN_OR_RETURN(stats.segments, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(stats.failed_segments, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(stats.no_model_segments, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(stats.deadline_segments, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(stats.overload_segments, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(stats.full_model_segments, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(stats.ancestor_segments, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(stats.bert_calls, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(stats.seconds, reader->ReadF64());
  KAMEL_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  if (count > reader->remaining()) {
    return Status::IOError("shard wire: outcome count exceeds body");
  }
  stats.outcomes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SegmentOutcome outcome;
    KAMEL_ASSIGN_OR_RETURN(outcome.s_time, reader->ReadF64());
    KAMEL_ASSIGN_OR_RETURN(outcome.d_time, reader->ReadF64());
    KAMEL_ASSIGN_OR_RETURN(uint8_t failed, reader->ReadU8());
    outcome.failed = failed != 0;
    stats.outcomes.push_back(outcome);
  }
  return stats;
}

}  // namespace

std::vector<uint8_t> EncodeGapRequest(
    const std::vector<SegmentContext>& gaps) {
  BinaryWriter writer;
  writer.WriteU64(gaps.size());
  for (const SegmentContext& gap : gaps) {
    WriteToken(&writer, gap.s);
    WriteToken(&writer, gap.d);
    writer.WriteU8(gap.prev.has_value() ? 1 : 0);
    if (gap.prev.has_value()) WriteToken(&writer, *gap.prev);
    writer.WriteU8(gap.next.has_value() ? 1 : 0);
    if (gap.next.has_value()) WriteToken(&writer, *gap.next);
  }
  return writer.buffer();
}

Result<std::vector<SegmentContext>> DecodeGapRequest(
    const std::vector<uint8_t>& body) {
  BinaryReader reader(body);
  KAMEL_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  if (count > reader.remaining()) {
    return Status::IOError("shard wire: gap count exceeds body");
  }
  std::vector<SegmentContext> gaps;
  gaps.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SegmentContext gap;
    KAMEL_ASSIGN_OR_RETURN(gap.s, ReadToken(&reader));
    KAMEL_ASSIGN_OR_RETURN(gap.d, ReadToken(&reader));
    KAMEL_ASSIGN_OR_RETURN(uint8_t has_prev, reader.ReadU8());
    if (has_prev != 0) {
      KAMEL_ASSIGN_OR_RETURN(gap.prev, ReadToken(&reader));
    }
    KAMEL_ASSIGN_OR_RETURN(uint8_t has_next, reader.ReadU8());
    if (has_next != 0) {
      KAMEL_ASSIGN_OR_RETURN(gap.next, ReadToken(&reader));
    }
    gaps.push_back(std::move(gap));
  }
  return gaps;
}

std::vector<uint8_t> EncodeGapResponse(const std::vector<ImputedGap>& gaps) {
  BinaryWriter writer;
  writer.WriteU64(gaps.size());
  for (const ImputedGap& gap : gaps) {
    writer.WriteU64(gap.interior.size());
    for (const TrajPoint& point : gap.interior) {
      writer.WriteF64(point.pos.lat);
      writer.WriteF64(point.pos.lng);
      writer.WriteF64(point.time);
    }
    WriteStats(&writer, gap.stats);
  }
  return writer.buffer();
}

Result<std::vector<ImputedGap>> DecodeGapResponse(
    const std::vector<uint8_t>& body) {
  BinaryReader reader(body);
  KAMEL_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  if (count > reader.remaining()) {
    return Status::IOError("shard wire: gap count exceeds body");
  }
  std::vector<ImputedGap> gaps;
  gaps.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ImputedGap gap;
    KAMEL_ASSIGN_OR_RETURN(uint64_t points, reader.ReadU64());
    if (points > reader.remaining()) {
      return Status::IOError("shard wire: point count exceeds body");
    }
    gap.interior.reserve(points);
    for (uint64_t p = 0; p < points; ++p) {
      TrajPoint point;
      KAMEL_ASSIGN_OR_RETURN(point.pos.lat, reader.ReadF64());
      KAMEL_ASSIGN_OR_RETURN(point.pos.lng, reader.ReadF64());
      KAMEL_ASSIGN_OR_RETURN(point.time, reader.ReadF64());
      gap.interior.push_back(point);
    }
    KAMEL_ASSIGN_OR_RETURN(gap.stats, ReadStats(&reader));
    gaps.push_back(std::move(gap));
  }
  return gaps;
}

namespace {

Result<HealthState> ReadHealth(BinaryReader* reader) {
  KAMEL_ASSIGN_OR_RETURN(uint8_t health, reader->ReadU8());
  if (health > static_cast<uint8_t>(HealthState::kDraining)) {
    return Status::IOError("shard wire: unknown health state");
  }
  return static_cast<HealthState>(health);
}

Result<replication::ReplicaRole> ReadRole(BinaryReader* reader) {
  KAMEL_ASSIGN_OR_RETURN(uint8_t role, reader->ReadU8());
  if (role > static_cast<uint8_t>(replication::ReplicaRole::kFenced)) {
    return Status::IOError("shard wire: unknown replica role");
  }
  return static_cast<replication::ReplicaRole>(role);
}

}  // namespace

std::vector<uint8_t> EncodeStatus(const ShardStatus& status) {
  BinaryWriter writer;
  writer.WriteI32(status.shard);
  writer.WriteU8(static_cast<uint8_t>(status.health));
  writer.WriteString(status.json);
  writer.WriteU8(static_cast<uint8_t>(status.role));
  writer.WriteU64(status.epoch);
  writer.WriteU64(status.durable_lsn);
  writer.WriteU64(status.applied_lsn);
  writer.WriteU64(status.replication_lag);
  return writer.buffer();
}

Result<ShardStatus> DecodeStatus(const std::vector<uint8_t>& body) {
  BinaryReader reader(body);
  ShardStatus status;
  KAMEL_ASSIGN_OR_RETURN(status.shard, reader.ReadI32());
  KAMEL_ASSIGN_OR_RETURN(status.health, ReadHealth(&reader));
  KAMEL_ASSIGN_OR_RETURN(status.json, reader.ReadString());
  KAMEL_ASSIGN_OR_RETURN(status.role, ReadRole(&reader));
  KAMEL_ASSIGN_OR_RETURN(status.epoch, reader.ReadU64());
  KAMEL_ASSIGN_OR_RETURN(status.durable_lsn, reader.ReadU64());
  KAMEL_ASSIGN_OR_RETURN(status.applied_lsn, reader.ReadU64());
  KAMEL_ASSIGN_OR_RETURN(status.replication_lag, reader.ReadU64());
  return status;
}

std::vector<uint8_t> EncodeRoleInfo(const RoleInfo& info) {
  BinaryWriter writer;
  writer.WriteI32(info.shard);
  writer.WriteU8(static_cast<uint8_t>(info.role));
  writer.WriteU64(info.epoch);
  writer.WriteU64(info.durable_lsn);
  writer.WriteU64(info.applied_lsn);
  writer.WriteU64(info.lag);
  writer.WriteU8(static_cast<uint8_t>(info.health));
  return writer.buffer();
}

Result<RoleInfo> DecodeRoleInfo(const std::vector<uint8_t>& body) {
  BinaryReader reader(body);
  RoleInfo info;
  KAMEL_ASSIGN_OR_RETURN(info.shard, reader.ReadI32());
  KAMEL_ASSIGN_OR_RETURN(info.role, ReadRole(&reader));
  KAMEL_ASSIGN_OR_RETURN(info.epoch, reader.ReadU64());
  KAMEL_ASSIGN_OR_RETURN(info.durable_lsn, reader.ReadU64());
  KAMEL_ASSIGN_OR_RETURN(info.applied_lsn, reader.ReadU64());
  KAMEL_ASSIGN_OR_RETURN(info.lag, reader.ReadU64());
  KAMEL_ASSIGN_OR_RETURN(info.health, ReadHealth(&reader));
  return info;
}

std::vector<uint8_t> EncodeSubmitAck(const SubmitAck& ack) {
  BinaryWriter writer;
  writer.WriteU64(ack.lsn);
  writer.WriteU64(ack.epoch);
  return writer.buffer();
}

Result<SubmitAck> DecodeSubmitAck(const std::vector<uint8_t>& body) {
  BinaryReader reader(body);
  SubmitAck ack;
  KAMEL_ASSIGN_OR_RETURN(ack.lsn, reader.ReadU64());
  KAMEL_ASSIGN_OR_RETURN(ack.epoch, reader.ReadU64());
  return ack;
}

std::vector<uint8_t> EncodePromoteRequest(uint64_t new_epoch) {
  BinaryWriter writer;
  writer.WriteU64(new_epoch);
  return writer.buffer();
}

Result<uint64_t> DecodePromoteRequest(const std::vector<uint8_t>& body) {
  BinaryReader reader(body);
  return reader.ReadU64();
}

std::vector<uint8_t> EncodePromoteAck(const PromoteAck& ack) {
  BinaryWriter writer;
  writer.WriteU64(ack.epoch);
  writer.WriteU64(ack.applied_lsn);
  return writer.buffer();
}

Result<PromoteAck> DecodePromoteAck(const std::vector<uint8_t>& body) {
  BinaryReader reader(body);
  PromoteAck ack;
  KAMEL_ASSIGN_OR_RETURN(ack.epoch, reader.ReadU64());
  KAMEL_ASSIGN_OR_RETURN(ack.applied_lsn, reader.ReadU64());
  return ack;
}

std::vector<uint8_t> EncodeSnapshotPath(const std::string& path) {
  BinaryWriter writer;
  writer.WriteString(path);
  return writer.buffer();
}

Result<std::string> DecodeSnapshotPath(const std::vector<uint8_t>& body) {
  BinaryReader reader(body);
  return reader.ReadString();
}

}  // namespace kamel::shard
