#include "shard/wire.h"

#include <utility>

#include "common/binary_io.h"

namespace kamel::shard {

namespace {

void WriteToken(BinaryWriter* writer, const TokenPoint& token) {
  writer->WriteU64(token.cell);
  writer->WriteF64(token.time);
  writer->WriteF64(token.position.x);
  writer->WriteF64(token.position.y);
  writer->WriteF64(token.heading);
}

Result<TokenPoint> ReadToken(BinaryReader* reader) {
  TokenPoint token;
  KAMEL_ASSIGN_OR_RETURN(token.cell, reader->ReadU64());
  KAMEL_ASSIGN_OR_RETURN(token.time, reader->ReadF64());
  KAMEL_ASSIGN_OR_RETURN(token.position.x, reader->ReadF64());
  KAMEL_ASSIGN_OR_RETURN(token.position.y, reader->ReadF64());
  KAMEL_ASSIGN_OR_RETURN(token.heading, reader->ReadF64());
  return token;
}

void WriteStats(BinaryWriter* writer, const ImputeStats& stats) {
  writer->WriteI32(stats.segments);
  writer->WriteI32(stats.failed_segments);
  writer->WriteI32(stats.no_model_segments);
  writer->WriteI32(stats.deadline_segments);
  writer->WriteI32(stats.overload_segments);
  writer->WriteI32(stats.full_model_segments);
  writer->WriteI32(stats.ancestor_segments);
  writer->WriteI64(stats.bert_calls);
  writer->WriteF64(stats.seconds);
  writer->WriteU64(stats.outcomes.size());
  for (const SegmentOutcome& outcome : stats.outcomes) {
    writer->WriteF64(outcome.s_time);
    writer->WriteF64(outcome.d_time);
    writer->WriteU8(outcome.failed ? 1 : 0);
  }
}

Result<ImputeStats> ReadStats(BinaryReader* reader) {
  ImputeStats stats;
  KAMEL_ASSIGN_OR_RETURN(stats.segments, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(stats.failed_segments, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(stats.no_model_segments, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(stats.deadline_segments, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(stats.overload_segments, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(stats.full_model_segments, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(stats.ancestor_segments, reader->ReadI32());
  KAMEL_ASSIGN_OR_RETURN(stats.bert_calls, reader->ReadI64());
  KAMEL_ASSIGN_OR_RETURN(stats.seconds, reader->ReadF64());
  KAMEL_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  if (count > reader->remaining()) {
    return Status::IOError("shard wire: outcome count exceeds body");
  }
  stats.outcomes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SegmentOutcome outcome;
    KAMEL_ASSIGN_OR_RETURN(outcome.s_time, reader->ReadF64());
    KAMEL_ASSIGN_OR_RETURN(outcome.d_time, reader->ReadF64());
    KAMEL_ASSIGN_OR_RETURN(uint8_t failed, reader->ReadU8());
    outcome.failed = failed != 0;
    stats.outcomes.push_back(outcome);
  }
  return stats;
}

}  // namespace

std::vector<uint8_t> EncodeGapRequest(
    const std::vector<SegmentContext>& gaps) {
  BinaryWriter writer;
  writer.WriteU64(gaps.size());
  for (const SegmentContext& gap : gaps) {
    WriteToken(&writer, gap.s);
    WriteToken(&writer, gap.d);
    writer.WriteU8(gap.prev.has_value() ? 1 : 0);
    if (gap.prev.has_value()) WriteToken(&writer, *gap.prev);
    writer.WriteU8(gap.next.has_value() ? 1 : 0);
    if (gap.next.has_value()) WriteToken(&writer, *gap.next);
  }
  return writer.buffer();
}

Result<std::vector<SegmentContext>> DecodeGapRequest(
    const std::vector<uint8_t>& body) {
  BinaryReader reader(body);
  KAMEL_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  if (count > reader.remaining()) {
    return Status::IOError("shard wire: gap count exceeds body");
  }
  std::vector<SegmentContext> gaps;
  gaps.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SegmentContext gap;
    KAMEL_ASSIGN_OR_RETURN(gap.s, ReadToken(&reader));
    KAMEL_ASSIGN_OR_RETURN(gap.d, ReadToken(&reader));
    KAMEL_ASSIGN_OR_RETURN(uint8_t has_prev, reader.ReadU8());
    if (has_prev != 0) {
      KAMEL_ASSIGN_OR_RETURN(gap.prev, ReadToken(&reader));
    }
    KAMEL_ASSIGN_OR_RETURN(uint8_t has_next, reader.ReadU8());
    if (has_next != 0) {
      KAMEL_ASSIGN_OR_RETURN(gap.next, ReadToken(&reader));
    }
    gaps.push_back(std::move(gap));
  }
  return gaps;
}

std::vector<uint8_t> EncodeGapResponse(const std::vector<ImputedGap>& gaps) {
  BinaryWriter writer;
  writer.WriteU64(gaps.size());
  for (const ImputedGap& gap : gaps) {
    writer.WriteU64(gap.interior.size());
    for (const TrajPoint& point : gap.interior) {
      writer.WriteF64(point.pos.lat);
      writer.WriteF64(point.pos.lng);
      writer.WriteF64(point.time);
    }
    WriteStats(&writer, gap.stats);
  }
  return writer.buffer();
}

Result<std::vector<ImputedGap>> DecodeGapResponse(
    const std::vector<uint8_t>& body) {
  BinaryReader reader(body);
  KAMEL_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  if (count > reader.remaining()) {
    return Status::IOError("shard wire: gap count exceeds body");
  }
  std::vector<ImputedGap> gaps;
  gaps.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ImputedGap gap;
    KAMEL_ASSIGN_OR_RETURN(uint64_t points, reader.ReadU64());
    if (points > reader.remaining()) {
      return Status::IOError("shard wire: point count exceeds body");
    }
    gap.interior.reserve(points);
    for (uint64_t p = 0; p < points; ++p) {
      TrajPoint point;
      KAMEL_ASSIGN_OR_RETURN(point.pos.lat, reader.ReadF64());
      KAMEL_ASSIGN_OR_RETURN(point.pos.lng, reader.ReadF64());
      KAMEL_ASSIGN_OR_RETURN(point.time, reader.ReadF64());
      gap.interior.push_back(point);
    }
    KAMEL_ASSIGN_OR_RETURN(gap.stats, ReadStats(&reader));
    gaps.push_back(std::move(gap));
  }
  return gaps;
}

std::vector<uint8_t> EncodeStatus(const ShardStatus& status) {
  BinaryWriter writer;
  writer.WriteI32(status.shard);
  writer.WriteU8(static_cast<uint8_t>(status.health));
  writer.WriteString(status.json);
  return writer.buffer();
}

Result<ShardStatus> DecodeStatus(const std::vector<uint8_t>& body) {
  BinaryReader reader(body);
  ShardStatus status;
  KAMEL_ASSIGN_OR_RETURN(status.shard, reader.ReadI32());
  KAMEL_ASSIGN_OR_RETURN(uint8_t health, reader.ReadU8());
  if (health > static_cast<uint8_t>(HealthState::kDraining)) {
    return Status::IOError("shard wire: unknown health state");
  }
  status.health = static_cast<HealthState>(health);
  KAMEL_ASSIGN_OR_RETURN(status.json, reader.ReadString());
  return status;
}

std::vector<uint8_t> EncodeSnapshotPath(const std::string& path) {
  BinaryWriter writer;
  writer.WriteString(path);
  return writer.buffer();
}

Result<std::string> DecodeSnapshotPath(const std::vector<uint8_t>& body) {
  BinaryReader reader(body);
  return reader.ReadString();
}

}  // namespace kamel::shard
