#ifndef KAMEL_SHARD_PARTITION_H_
#define KAMEL_SHARD_PARTITION_H_

#include "core/pyramid.h"
#include "core/spatial_constraints.h"
#include "geo/bbox.h"

namespace kamel::shard {

/// How the pyramid's space is split across worker processes: the cells of
/// one pyramid level are the shard keys, assigned round-robin in row-major
/// order. Every gap routes to the shard of the level-`level` cell holding
/// its MBR center; every worker retains each model whose bounds intersect
/// any cell it owns.
///
/// That retention rule is what makes sharding invisible in the output:
/// any model SelectModelLadder can serve for a gap has bounds containing
/// the gap's MBR — hence containing its center — hence intersecting the
/// key cell the gap routed by. The owning worker therefore holds every
/// candidate the single-process repository would have consulted, and the
/// imputed bytes are identical. Coarse models (bounds spanning many key
/// cells) are simply replicated on every shard they touch.
struct ShardPartition {
  int level = 0;       // pyramid level whose cells are the shard keys
  int num_shards = 1;  // worker count; cell (x,y) -> (y*dim+x) % num_shards
};

/// Picks the shallowest pyramid level with at least `num_shards` cells
/// (clamped to the pyramid height), so each shard owns at least one key
/// cell whenever the pyramid is deep enough.
ShardPartition MakePartition(const Pyramid& pyramid, int num_shards);

/// Shard owning `cell` (which must be at partition.level).
int ShardOfCell(const ShardPartition& partition, const PyramidCell& cell);

/// Shard owning the key cell containing `point` (projected local-frame
/// coordinates). The routing primitive both ShardOfGap and the router's
/// Submit path reduce to.
int ShardOfPoint(const ShardPartition& partition, const Pyramid& pyramid,
                 const Vec2& point);

/// Shard a gap routes to: the owner of the key cell containing the gap's
/// MBR center. Deterministic — the router and every test agree on it.
int ShardOfGap(const ShardPartition& partition, const Pyramid& pyramid,
               const SegmentContext& context);

/// True when `shard` must retain a model with spatial `bounds`: some key
/// cell owned by `shard` intersects them. An empty/inverted box (e.g. the
/// global "No Part." model) is owned by every shard.
bool ShardOwns(const ShardPartition& partition, const Pyramid& pyramid,
               int shard, const BBox& bounds);

}  // namespace kamel::shard

#endif  // KAMEL_SHARD_PARTITION_H_
