#ifndef KAMEL_EVAL_SCENARIO_H_
#define KAMEL_EVAL_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/imputation_method.h"
#include "baselines/linear.h"
#include "baselines/map_matching.h"
#include "baselines/trimpute.h"
#include "core/kamel.h"
#include "sim/datasets.h"

namespace kamel {

/// Everything a figure bench needs: the simulated scenario plus all four
/// trained methods of Section 8 (KAMEL, TrImpute, Linear, MapMatch).
struct BenchSystems {
  SimScenario sim;
  KamelOptions kamel_options;
  std::unique_ptr<Kamel> kamel;
  std::unique_ptr<KamelMethod> kamel_method;
  std::unique_ptr<TrImpute> trimpute;
  std::unique_ptr<LinearInterpolation> linear;
  std::unique_ptr<MapMatching> map_matching;

  /// Methods in the paper's table order.
  std::vector<ImputationMethod*> AllMethods();
};

/// KAMEL options sized for the single-CPU benchmark harness: a small
/// encoder (2 layers / 48 dims / 4 heads), a 3-level pyramid over the
/// scenario extent, and a narrower beam. Paper-default behaviour knobs
/// (hex 75 m, 45-degree cone, cycle window 6, alpha 1, max_gap 100 m) are
/// kept.
KamelOptions BenchKamelOptions();

/// Training-data modification applied before training (Figure 12-IV/V
/// ablations). Identity by default.
struct BenchVariant {
  /// Fraction of training trajectories used (Figure 12-IV: 1.0/0.75/...).
  double train_subsample = 1.0;
  /// > 0: resample training readings to this period (Figure 12-V:
  /// 15/30/60 s variants of the dense feed).
  double resample_interval_s = 0.0;
};

/// Builds the scenario, trains (or cache-loads) KAMEL, trains TrImpute,
/// and wires the baselines. KAMEL training state is cached on disk under
/// CacheDir(), keyed by every training-relevant option, so repeated bench
/// binaries in one session train each distinct configuration once —
/// mirroring the paper's "training is offline" deployment (Section 4).
Result<BenchSystems> PrepareBenchSystems(const ScenarioSpec& spec,
                                         const KamelOptions& options,
                                         const BenchVariant& variant = {});

/// Cache directory: $KAMEL_CACHE_DIR or /tmp/kamel_cache.
std::string CacheDir();

/// Cache key of a (scenario, options, variant) triple — exposed for tests.
std::string TrainingCacheKey(const ScenarioSpec& spec,
                             const KamelOptions& options,
                             const BenchVariant& variant = {});

}  // namespace kamel

#endif  // KAMEL_EVAL_SCENARIO_H_
