#include "eval/cell_size_tuner.h"

#include <algorithm>
#include <unordered_set>

#include "baselines/imputation_method.h"
#include "common/check.h"
#include "common/logging.h"
#include "core/kamel.h"

namespace kamel {

Result<std::vector<CellSizeResult>> TuneCellSize(
    const TrajectoryDataset& train, const TrajectoryDataset& validation,
    const CellSizeTunerOptions& options) {
  if (train.trajectories.empty() || validation.trajectories.empty()) {
    return Status::InvalidArgument("tuner needs train and validation data");
  }
  // Deterministic sample: every k-th trajectory.
  TrajectoryDataset sample;
  const double fraction =
      std::min(1.0, std::max(0.05, options.sample_fraction));
  const size_t stride = static_cast<size_t>(1.0 / fraction);
  for (size_t i = 0; i < train.trajectories.size(); i += stride) {
    sample.trajectories.push_back(train.trajectories[i]);
  }

  std::vector<CellSizeResult> results;
  results.reserve(options.candidate_edges_m.size());
  for (double edge : options.candidate_edges_m) {
    KamelOptions candidate = options.base;
    candidate.hex_edge_m = edge;

    Kamel system(candidate);
    KAMEL_RETURN_NOT_OK(system.Train(sample));

    Evaluator evaluator(&system.projection());
    KamelMethod method(&system);
    KAMEL_ASSIGN_OR_RETURN(
        RunOutput run,
        evaluator.RunMethod(&method, validation,
                            options.sparse_distance_m));
    ScoreConfig score;
    score.delta_m = options.delta_m;
    score.max_gap_m = candidate.max_gap_m;
    const EvalResult eval = evaluator.Score(run, score);

    CellSizeResult result;
    result.edge_m = edge;
    result.recall = eval.recall;
    result.precision = eval.precision;
    // Distinct tokens at this size (the x-axis driver of Figure 3d).
    result.vocab_cells = 0;
    {
      std::unordered_set<CellId> distinct;
      for (size_t i = 0; i < system.store().size(); ++i) {
        for (const TokenPoint& token : system.store().Get(i)) {
          distinct.insert(token.cell);
        }
      }
      result.vocab_cells = static_cast<int>(distinct.size());
    }
    KAMEL_LOG(Info) << "cell size " << edge << "m: recall=" << result.recall
                    << " precision=" << result.precision
                    << " cells=" << result.vocab_cells;
    results.push_back(result);
  }
  return results;
}

double PickBestCellSize(const std::vector<CellSizeResult>& results) {
  KAMEL_CHECK(!results.empty(), "no tuning results");
  const CellSizeResult* best = &results[0];
  for (const CellSizeResult& r : results) {
    if (r.recall > best->recall ||
        (r.recall == best->recall && r.precision > best->precision)) {
      best = &r;
    }
  }
  return best->edge_m;
}

}  // namespace kamel
