#ifndef KAMEL_EVAL_METRICS_H_
#define KAMEL_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "geo/latlng.h"

namespace kamel {

/// Hit/total counts behind a ratio metric; pooled across trajectories.
struct RatioCount {
  int64_t hits = 0;
  int64_t total = 0;

  double Ratio() const {
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  void Accumulate(const RatioCount& other) {
    hits += other.hits;
    total += other.total;
  }
};

/// The paper's recall building block (Section 8, "Performance metrics"):
/// discretize `ground_truth` with one point every `max_gap_m`, count those
/// within `delta_m` of the `imputed` polyline.
RatioCount RecallCount(const std::vector<Vec2>& ground_truth,
                       const std::vector<Vec2>& imputed, double max_gap_m,
                       double delta_m);

/// The precision counterpart: discretize `imputed`, count points within
/// `delta_m` of the `ground_truth` polyline.
RatioCount PrecisionCount(const std::vector<Vec2>& imputed,
                          const std::vector<Vec2>& ground_truth,
                          double max_gap_m, double delta_m);

}  // namespace kamel

#endif  // KAMEL_EVAL_METRICS_H_
