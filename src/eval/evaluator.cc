#include "eval/evaluator.h"

#include <cmath>

#include "common/check.h"
#include "geo/polyline.h"
#include "sim/sparsifier.h"

namespace kamel {

Evaluator::Evaluator(const LocalProjection* projection)
    : projection_(projection) {
  KAMEL_CHECK(projection != nullptr);
}

namespace {

// Projects one (dense ground truth, sparsified input, imputed output)
// triple into the local frame for scoring.
TrajRun AssembleRun(const LocalProjection& projection,
                    const Trajectory& dense, const Trajectory& sparse,
                    const ImputedTrajectory& imputed) {
  TrajRun run;
  run.dense.reserve(dense.points.size());
  run.dense_times.reserve(dense.points.size());
  for (const TrajPoint& p : dense.points) {
    run.dense.push_back(projection.Project(p.pos));
    run.dense_times.push_back(p.time);
  }
  run.imputed.reserve(imputed.trajectory.points.size());
  run.imputed_times.reserve(imputed.trajectory.points.size());
  for (const TrajPoint& p : imputed.trajectory.points) {
    run.imputed.push_back(projection.Project(p.pos));
    run.imputed_times.push_back(p.time);
  }
  run.sparse_times.reserve(sparse.points.size());
  for (const TrajPoint& p : sparse.points) {
    run.sparse_times.push_back(p.time);
  }
  run.outcomes = imputed.stats.outcomes;
  return run;
}

}  // namespace

Result<RunOutput> Evaluator::RunMethod(ImputationMethod* method,
                                       const TrajectoryDataset& dense_test,
                                       double sparse_distance_m) const {
  RunOutput output;
  output.runs.reserve(dense_test.trajectories.size());
  for (const Trajectory& dense : dense_test.trajectories) {
    if (dense.points.size() < 2) continue;
    const Trajectory sparse = Sparsify(dense, sparse_distance_m);
    KAMEL_ASSIGN_OR_RETURN(ImputedTrajectory imputed,
                           method->Impute(sparse));

    output.impute_seconds += imputed.stats.seconds;
    output.bert_calls += imputed.stats.bert_calls;
    ++output.trajectories;
    output.runs.push_back(AssembleRun(*projection_, dense, sparse, imputed));
  }
  return output;
}

Result<RunOutput> Evaluator::RunEngine(ServingEngine* engine,
                                       const TrajectoryDataset& dense_test,
                                       double sparse_distance_m) const {
  // Sparsify up front, impute the whole batch across the pool, then
  // assemble runs in input order (ImputeBatch positions results by input
  // index, so scoring is independent of the engine's thread count).
  TrajectoryDataset sparse_batch;
  std::vector<const Trajectory*> dense_kept;
  for (const Trajectory& dense : dense_test.trajectories) {
    if (dense.points.size() < 2) continue;
    sparse_batch.trajectories.push_back(Sparsify(dense, sparse_distance_m));
    dense_kept.push_back(&dense);
  }
  KAMEL_ASSIGN_OR_RETURN(std::vector<ImputedTrajectory> imputed,
                         engine->ImputeBatch(sparse_batch));

  RunOutput output;
  output.runs.reserve(imputed.size());
  for (size_t i = 0; i < imputed.size(); ++i) {
    output.impute_seconds += imputed[i].stats.seconds;
    output.bert_calls += imputed[i].stats.bert_calls;
    ++output.trajectories;
    output.runs.push_back(AssembleRun(*projection_, *dense_kept[i],
                                      sparse_batch.trajectories[i],
                                      imputed[i]));
  }
  return output;
}

namespace {

// Dense sub-polyline whose timestamps fall in [t0, t1].
void SliceByTime(const std::vector<Vec2>& points,
                 const std::vector<double>& times, double t0, double t1,
                 std::vector<Vec2>* out) {
  out->clear();
  constexpr double kEps = 1e-9;
  for (size_t i = 0; i < points.size(); ++i) {
    if (times[i] >= t0 - kEps && times[i] <= t1 + kEps) {
      out->push_back(points[i]);
    }
  }
}

}  // namespace

EvalResult Evaluator::Score(const RunOutput& run,
                            const ScoreConfig& config) const {
  RatioCount recall;
  RatioCount precision;
  int segments = 0;
  int failed = 0;

  std::vector<Vec2> gt_slice;
  std::vector<Vec2> imputed_slice;
  for (const TrajRun& traj : run.runs) {
    for (size_t s = 0; s + 1 < traj.sparse_times.size(); ++s) {
      const double t0 = traj.sparse_times[s];
      const double t1 = traj.sparse_times[s + 1];
      SliceByTime(traj.dense, traj.dense_times, t0, t1, &gt_slice);
      if (gt_slice.size() < 2) continue;

      // Road-type classification (Section 8.4): straight segments have
      // ground-truth path length ~= endpoint Euclidean distance.
      if (config.segment_class != SegmentClass::kAll) {
        const double path_len = polyline::Length(gt_slice);
        const double direct = Distance(gt_slice.front(), gt_slice.back());
        const bool straight =
            path_len - direct <= config.straightness_tolerance_m;
        if (config.segment_class == SegmentClass::kStraight && !straight) {
          continue;
        }
        if (config.segment_class == SegmentClass::kCurved && straight) {
          continue;
        }
      }

      recall.Accumulate(RecallCount(gt_slice, traj.imputed,
                                    config.max_gap_m, config.delta_m));
      SliceByTime(traj.imputed, traj.imputed_times, t0, t1, &imputed_slice);
      if (imputed_slice.size() >= 2) {
        precision.Accumulate(PrecisionCount(imputed_slice, traj.dense,
                                            config.max_gap_m,
                                            config.delta_m));
      }

      // Failure accounting joins on the segment's start time.
      for (const SegmentOutcome& outcome : traj.outcomes) {
        if (std::fabs(outcome.s_time - t0) < 1e-6) {
          ++segments;
          if (outcome.failed) ++failed;
          break;
        }
      }
    }
  }

  EvalResult result;
  result.recall = recall.Ratio();
  result.precision = precision.Ratio();
  result.segments = segments;
  result.failed_segments = failed;
  result.failure_rate =
      segments == 0 ? 0.0 : static_cast<double>(failed) / segments;
  result.impute_seconds = run.impute_seconds;
  result.avg_impute_seconds_per_trajectory =
      run.trajectories == 0 ? 0.0 : run.impute_seconds / run.trajectories;
  result.bert_calls = run.bert_calls;
  return result;
}

}  // namespace kamel
