#ifndef KAMEL_EVAL_BOOTSTRAP_H_
#define KAMEL_EVAL_BOOTSTRAP_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "eval/evaluator.h"

namespace kamel {

/// A metric estimate with a bootstrap confidence interval.
struct IntervalEstimate {
  double value = 0.0;  // point estimate over the whole run
  double lo = 0.0;     // lower CI bound
  double hi = 0.0;     // upper CI bound
};

/// Recall/precision/failure estimates with confidence intervals.
struct ScoredWithIntervals {
  IntervalEstimate recall;
  IntervalEstimate precision;
  IntervalEstimate failure_rate;
  int resamples = 0;
};

/// Options for the bootstrap.
struct BootstrapOptions {
  /// Number of trajectory-level resamples.
  int resamples = 200;
  /// Two-sided confidence level (0.95 -> the 2.5/97.5 percentiles).
  double confidence = 0.95;
  uint64_t seed = 1234;
};

/// Trajectory-level bootstrap over a stored run: resamples whole
/// trajectories with replacement and rescoring each resample, which
/// respects the strong within-trajectory correlation of the paper's
/// pooled point metrics. Gives the uncertainty the figure tables omit —
/// essential at reproduction scale where test sets are small.
ScoredWithIntervals ScoreWithBootstrap(const Evaluator& evaluator,
                                       const RunOutput& run,
                                       const ScoreConfig& config,
                                       const BootstrapOptions& options = {});

}  // namespace kamel

#endif  // KAMEL_EVAL_BOOTSTRAP_H_
