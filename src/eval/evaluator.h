#ifndef KAMEL_EVAL_EVALUATOR_H_
#define KAMEL_EVAL_EVALUATOR_H_

#include <vector>

#include "baselines/imputation_method.h"
#include "core/serving_engine.h"
#include "eval/metrics.h"
#include "geo/projection.h"
#include "geo/trajectory.h"

namespace kamel {

/// Road-type restriction for Figure 12-I/II.
enum class SegmentClass { kAll, kStraight, kCurved };

/// Scoring knobs — applied to a stored run, so one (expensive) imputation
/// run can be scored at many accuracy thresholds (Figure 10) and segment
/// classes without re-imputing.
struct ScoreConfig {
  double delta_m = 50.0;
  double max_gap_m = 100.0;
  SegmentClass segment_class = SegmentClass::kAll;
  /// A segment is "straight" when its along-path ground-truth length is
  /// within this of the endpoint Euclidean distance (the paper uses 5 m on
  /// noise-free network distance; noisy GPS paths need a looser bound).
  double straightness_tolerance_m = 25.0;
};

/// One trajectory's imputation run, everything projected to the local
/// frame.
struct TrajRun {
  std::vector<Vec2> dense;           // ground truth
  std::vector<double> dense_times;
  std::vector<Vec2> imputed;
  std::vector<double> imputed_times;
  std::vector<double> sparse_times;  // kept-point times (segment bounds)
  std::vector<SegmentOutcome> outcomes;
};

/// A full pass of one method over the test set at one sparsity level.
struct RunOutput {
  std::vector<TrajRun> runs;
  double impute_seconds = 0.0;   // sum of per-trajectory imputation time
  int64_t bert_calls = 0;
  int trajectories = 0;
};

/// Aggregate scores (the y-axes of Figures 9, 10 and 12).
struct EvalResult {
  double recall = 0.0;
  double precision = 0.0;
  double failure_rate = 0.0;
  int segments = 0;
  int failed_segments = 0;
  double impute_seconds = 0.0;
  double avg_impute_seconds_per_trajectory = 0.0;
  int64_t bert_calls = 0;
};

/// Runs methods over sparsified test data and scores stored runs.
class Evaluator {
 public:
  /// `projection` is borrowed; it must be the frame the scenario uses.
  explicit Evaluator(const LocalProjection* projection);

  /// Sparsifies every dense test trajectory at `sparse_distance_m`,
  /// imputes it with `method`, and stores everything needed for scoring.
  Result<RunOutput> RunMethod(ImputationMethod* method,
                              const TrajectoryDataset& dense_test,
                              double sparse_distance_m) const;

  /// Like RunMethod, but imputes the sparsified test set through a
  /// ServingEngine's thread pool (ImputeBatch). Results are assembled in
  /// input order, so the stored run is identical to RunMethod over the
  /// same snapshot regardless of the engine's thread count.
  Result<RunOutput> RunEngine(ServingEngine* engine,
                              const TrajectoryDataset& dense_test,
                              double sparse_distance_m) const;

  /// Scores a stored run under the given configuration.
  EvalResult Score(const RunOutput& run, const ScoreConfig& config) const;

 private:
  const LocalProjection* projection_;
};

}  // namespace kamel

#endif  // KAMEL_EVAL_EVALUATOR_H_
