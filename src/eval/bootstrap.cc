#include "eval/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace kamel {

namespace {

IntervalEstimate Summarize(double point, std::vector<double>* samples,
                           double confidence) {
  IntervalEstimate estimate;
  estimate.value = point;
  if (samples->empty()) {
    estimate.lo = estimate.hi = point;
    return estimate;
  }
  std::sort(samples->begin(), samples->end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto pick = [&](double q) {
    const double idx = q * (static_cast<double>(samples->size()) - 1.0);
    const size_t lo = static_cast<size_t>(std::floor(idx));
    const size_t hi = std::min(samples->size() - 1, lo + 1);
    const double frac = idx - static_cast<double>(lo);
    return (*samples)[lo] * (1.0 - frac) + (*samples)[hi] * frac;
  };
  estimate.lo = pick(alpha);
  estimate.hi = pick(1.0 - alpha);
  return estimate;
}

}  // namespace

ScoredWithIntervals ScoreWithBootstrap(const Evaluator& evaluator,
                                       const RunOutput& run,
                                       const ScoreConfig& config,
                                       const BootstrapOptions& options) {
  KAMEL_CHECK(options.resamples > 0, "resamples must be positive");
  KAMEL_CHECK(options.confidence > 0.0 && options.confidence < 1.0,
              "confidence must be in (0,1)");
  const EvalResult point = evaluator.Score(run, config);

  ScoredWithIntervals out;
  out.resamples = options.resamples;
  if (run.runs.empty()) {
    out.recall = {point.recall, point.recall, point.recall};
    out.precision = {point.precision, point.precision, point.precision};
    out.failure_rate = {point.failure_rate, point.failure_rate,
                        point.failure_rate};
    return out;
  }

  Rng rng(options.seed);
  std::vector<double> recalls;
  std::vector<double> precisions;
  std::vector<double> failures;
  recalls.reserve(static_cast<size_t>(options.resamples));
  precisions.reserve(static_cast<size_t>(options.resamples));
  failures.reserve(static_cast<size_t>(options.resamples));

  RunOutput resample;
  for (int r = 0; r < options.resamples; ++r) {
    resample.runs.clear();
    resample.trajectories = run.trajectories;
    resample.impute_seconds = run.impute_seconds;
    resample.bert_calls = run.bert_calls;
    for (size_t i = 0; i < run.runs.size(); ++i) {
      resample.runs.push_back(
          run.runs[rng.NextUint64(run.runs.size())]);
    }
    const EvalResult scored = evaluator.Score(resample, config);
    recalls.push_back(scored.recall);
    precisions.push_back(scored.precision);
    failures.push_back(scored.failure_rate);
  }

  out.recall = Summarize(point.recall, &recalls, options.confidence);
  out.precision =
      Summarize(point.precision, &precisions, options.confidence);
  out.failure_rate =
      Summarize(point.failure_rate, &failures, options.confidence);
  return out;
}

}  // namespace kamel
