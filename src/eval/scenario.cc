#include "eval/scenario.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "common/logging.h"

namespace kamel {

std::vector<ImputationMethod*> BenchSystems::AllMethods() {
  std::vector<ImputationMethod*> out;
  if (kamel_method != nullptr) out.push_back(kamel_method.get());
  if (trimpute != nullptr) out.push_back(trimpute.get());
  if (linear != nullptr) out.push_back(linear.get());
  if (map_matching != nullptr) out.push_back(map_matching.get());
  return out;
}

KamelOptions BenchKamelOptions() {
  KamelOptions options;
  options.grid_type = GridType::kHex;
  options.hex_edge_m = 75.0;  // paper default (Section 8)

  // A height-1 pyramid over the scenario extent: the root plus four
  // quadrant cells, all maintained. With k=450 this builds the root
  // model, the quadrant singles above threshold, and their neighbor-cell
  // pair models — a handful per scenario, echoing the paper's 3 (Porto)
  // vs 20 (Jakarta) model counts at our scale.
  options.pyramid_height = 1;
  options.pyramid_levels = 2;
  options.model_token_threshold = 450;

  options.enable_constraints = true;
  options.direction_cone_deg = 45.0;  // paper default
  options.cycle_window = 6;           // paper default
  options.speed_slack_factor = 1.6;

  options.method = ImputeMethod::kBidirectionalBeam;
  options.max_gap_m = 100.0;  // paper default
  options.top_k = 10;
  options.beam_size = 6;
  options.length_norm_alpha = 1.0;  // paper default
  options.max_bert_calls_per_segment = 320;

  options.bert.encoder.d_model = 64;
  options.bert.encoder.num_heads = 4;
  options.bert.encoder.num_layers = 2;
  options.bert.encoder.ffn_dim = 256;
  options.bert.encoder.max_seq_len = 48;
  options.bert.encoder.dropout = 0.1;

  options.bert.train.steps = 3500;
  options.bert.train.batch_size = 16;
  options.bert.train.peak_lr = 1e-3;
  options.bert.train.warmup_steps = 150;
  options.bert.train.mask_prob = 0.15;
  options.bert.train.seed = 7;

  options.dbscan.eps_heading_deg = 30.0;
  options.dbscan.min_points = 5;
  options.seed = 42;
  return options;
}

std::string CacheDir() {
  const char* env = std::getenv("KAMEL_CACHE_DIR");
  return env != nullptr && env[0] != '\0' ? env : "/tmp/kamel_cache";
}

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string TrainingCacheKey(const ScenarioSpec& spec,
                             const KamelOptions& o,
                             const BenchVariant& variant) {
  // Only options that influence the *trained state* belong in the key;
  // imputation-time knobs (beam size, constraints, multipoint) do not, so
  // ablations reuse the same trained models where the paper's do.
  std::ostringstream key;
  key << "spec:" << spec.name << ',' << spec.origin.lat << ','
      << spec.origin.lng << ',' << spec.train_fraction;
  const NetworkGenConfig& n = spec.network;
  key << "|net:" << n.width_m << ',' << n.height_m << ',' << n.block_m << ','
      << n.drop_fraction << ',' << n.num_diagonals << ',' << n.ring_road
      << ',' << n.num_winding_roads << ',' << n.junction_stride << ','
      << n.grid_speed_mps << ',' << n.avenue_speed_mps << ',' << n.seed;
  const TripConfig& t = spec.trips;
  key << "|trips:" << t.num_trips << ',' << t.sampling_interval_s << ','
      << t.noise_stddev_m << ',' << t.min_trip_m << ',' << t.speed_factor_lo
      << ',' << t.speed_factor_hi << ',' << t.num_waypoints << ',' << t.seed;
  key << "|grid:" << static_cast<int>(o.grid_type) << ',' << o.hex_edge_m
      << ',' << o.square_edge_m;
  key << "|pyr:" << o.pyramid_height << ',' << o.pyramid_levels << ','
      << o.model_token_threshold << ',' << o.enable_partitioning;
  const nn::BertConfig& e = o.bert.encoder;
  key << "|enc:" << e.d_model << ',' << e.num_heads << ',' << e.num_layers
      << ',' << e.ffn_dim << ',' << e.max_seq_len << ',' << e.dropout;
  const nn::MlmTrainOptions& tr = o.bert.train;
  key << "|mlm:" << tr.steps << ',' << tr.batch_size << ',' << tr.peak_lr
      << ',' << tr.warmup_steps << ',' << tr.mask_prob << ',' << tr.seed
      << ',' << tr.crop_prob << ',' << tr.gap_deletion_prob << ','
      << tr.gap_min_len << ',' << tr.gap_max_len;
  key << "|dbscan:" << o.dbscan.eps_heading_deg << ',' << o.dbscan.min_points;
  key << "|speed:" << o.max_speed_mps << ',' << o.speed_slack_factor;
  key << "|seed:" << o.seed;
  key << "|variant:" << variant.train_subsample << ','
      << variant.resample_interval_s;

  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv1a(key.str())));
  return spec.name + "-" + hex;
}

Result<BenchSystems> PrepareBenchSystems(const ScenarioSpec& spec,
                                         const KamelOptions& options,
                                         const BenchVariant& variant) {
  BenchSystems systems;
  systems.sim = BuildScenario(spec);
  systems.kamel_options = options;
  systems.kamel = std::make_unique<Kamel>(options);

  // Figure 12-IV/V training-set variants.
  if (variant.train_subsample < 1.0) {
    const size_t keep = static_cast<size_t>(
        variant.train_subsample * systems.sim.train.trajectories.size());
    systems.sim.train.trajectories.resize(std::max<size_t>(1, keep));
  }
  if (variant.resample_interval_s > 0.0) {
    systems.sim.train =
        ResampleDataset(systems.sim.train, variant.resample_interval_s);
  }

  // KAMEL: load cached trained state or train and cache.
  std::error_code ec;
  std::filesystem::create_directories(CacheDir(), ec);
  const std::string cache_path =
      CacheDir() + "/" + TrainingCacheKey(spec, options, variant) + ".kamel";
  bool loaded = false;
  if (std::filesystem::exists(cache_path)) {
    const Status status = systems.kamel->LoadFromFile(cache_path);
    if (status.ok()) {
      loaded = true;
      KAMEL_LOG(Info) << "loaded cached KAMEL state: " << cache_path;
    } else {
      KAMEL_LOG(Warning) << "cache load failed (" << status.ToString()
                         << "); retraining";
    }
  }
  if (!loaded) {
    KAMEL_RETURN_NOT_OK(systems.kamel->Train(systems.sim.train));
    const Status status = systems.kamel->SaveToFile(cache_path);
    if (!status.ok()) {
      KAMEL_LOG(Warning) << "cache save failed: " << status.ToString();
    }
  }
  systems.kamel_method =
      std::make_unique<KamelMethod>(systems.kamel.get());

  // Baselines (all fast to prepare).
  TrImputeOptions trimpute_options;
  trimpute_options.max_gap_m = options.max_gap_m;
  systems.trimpute = std::make_unique<TrImpute>(trimpute_options);
  KAMEL_RETURN_NOT_OK(systems.trimpute->Train(systems.sim.train));

  systems.linear = std::make_unique<LinearInterpolation>(options.max_gap_m);
  KAMEL_RETURN_NOT_OK(systems.linear->Train(systems.sim.train));

  MapMatchingOptions mm_options;
  mm_options.max_gap_m = options.max_gap_m;
  systems.map_matching = std::make_unique<MapMatching>(
      systems.sim.network.get(), systems.sim.projection.get(), mm_options);
  KAMEL_RETURN_NOT_OK(systems.map_matching->Train(systems.sim.train));

  return systems;
}

}  // namespace kamel
