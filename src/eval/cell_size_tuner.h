#ifndef KAMEL_EVAL_CELL_SIZE_TUNER_H_
#define KAMEL_EVAL_CELL_SIZE_TUNER_H_

#include <vector>

#include "common/result.h"
#include "core/options.h"
#include "eval/evaluator.h"
#include "geo/trajectory.h"

namespace kamel {

/// Options of the cell-size auto-tuning pass (Section 3.2): sample the
/// training data, train a model per candidate hexagon size, and pick the
/// size with the best validation accuracy (the optimum of Figure 3d).
struct CellSizeTunerOptions {
  std::vector<double> candidate_edges_m = {25.0, 50.0, 75.0, 100.0, 150.0,
                                           200.0};
  /// Fraction of training trajectories used per candidate.
  double sample_fraction = 0.5;
  /// Validation sparsity and threshold.
  double sparse_distance_m = 1000.0;
  double delta_m = 50.0;
  /// Base system configuration; the tuner overrides hex_edge_m.
  KamelOptions base;
};

/// One candidate's outcome.
struct CellSizeResult {
  double edge_m = 0.0;
  double recall = 0.0;
  double precision = 0.0;
  int vocab_cells = 0;  // distinct tokens at this size (Figure 3 tradeoff)
};

/// Runs the sweep. `validation` should be dense held-out trajectories.
Result<std::vector<CellSizeResult>> TuneCellSize(
    const TrajectoryDataset& train, const TrajectoryDataset& validation,
    const CellSizeTunerOptions& options);

/// The edge with the highest recall (ties -> higher precision).
double PickBestCellSize(const std::vector<CellSizeResult>& results);

}  // namespace kamel

#endif  // KAMEL_EVAL_CELL_SIZE_TUNER_H_
