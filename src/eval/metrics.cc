#include "eval/metrics.h"

#include "geo/polyline.h"

namespace kamel {

namespace {

RatioCount CountWithin(const std::vector<Vec2>& discretized,
                       const std::vector<Vec2>& reference, double delta_m) {
  RatioCount count;
  count.total = static_cast<int64_t>(discretized.size());
  for (const Vec2& p : discretized) {
    if (polyline::PointToPolylineDistance(p, reference) <= delta_m) {
      ++count.hits;
    }
  }
  return count;
}

}  // namespace

RatioCount RecallCount(const std::vector<Vec2>& ground_truth,
                       const std::vector<Vec2>& imputed, double max_gap_m,
                       double delta_m) {
  if (ground_truth.empty()) return {};
  return CountWithin(polyline::ResampleEvery(ground_truth, max_gap_m),
                     imputed, delta_m);
}

RatioCount PrecisionCount(const std::vector<Vec2>& imputed,
                          const std::vector<Vec2>& ground_truth,
                          double max_gap_m, double delta_m) {
  if (imputed.empty()) return {};
  return CountWithin(polyline::ResampleEvery(imputed, max_gap_m),
                     ground_truth, delta_m);
}

}  // namespace kamel
