#include "io/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/binary_io.h"
#include "common/crc32c.h"
#include "common/fault_injection.h"
#include "common/io_env.h"
#include "common/io_watchdog.h"

namespace kamel {

namespace {

namespace fs = std::filesystem;

// Frame layout after the per-segment header:
//   u32 crc32c   over everything after this field
//   u32 len      payload bytes
//   u64 lsn
//   u8  type
//   payload[len]
constexpr size_t kFrameHeaderBytes = 4 + 4 + 8 + 1;
constexpr size_t kSegmentHeaderBytes = 4 + 4 + 8;  // magic, version, base lsn

std::string SegmentName(uint64_t base_lsn) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016" PRIx64 ".log", base_lsn);
  return buf;
}

template <typename T>
void AppendRaw(std::vector<uint8_t>* buffer, T value) {
  uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  buffer->insert(buffer->end(), bytes, bytes + sizeof(T));
}

template <typename T>
T ReadRaw(const uint8_t* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

std::vector<uint8_t> BuildFrame(uint64_t lsn, WalRecordType type,
                                const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendRaw<uint32_t>(&frame, 0);  // crc, patched below
  AppendRaw<uint32_t>(&frame, static_cast<uint32_t>(payload.size()));
  AppendRaw<uint64_t>(&frame, lsn);
  AppendRaw<uint8_t>(&frame, static_cast<uint8_t>(type));
  frame.insert(frame.end(), payload.begin(), payload.end());
  const uint32_t crc = Crc32c(frame.data() + 4, frame.size() - 4);
  std::memcpy(frame.data(), &crc, sizeof(crc));
  return frame;
}

Result<std::vector<uint8_t>> ReadWholeFile(const std::string& path) {
  return io::ReadFile(path, "wal.io.read");
}

/// One parsed frame, or a classification of why parsing stopped.
struct FrameScan {
  enum class Kind {
    kRecord,   // valid record parsed
    kEnd,      // clean end of segment
    kTorn,     // file ends inside the frame (torn write)
    kCorrupt,  // complete frame that fails validation (data loss)
  };
  Kind kind = Kind::kEnd;
  WalRecord record;
  size_t next_offset = 0;
  std::string error;
};

/// Parses the frame at `offset`. Distinguishing rule: a frame the file is
/// too short to hold is a torn write; a complete frame whose checksum or
/// framing is wrong is corruption.
FrameScan ScanFrame(const std::vector<uint8_t>& data, size_t offset) {
  FrameScan scan;
  const size_t remaining = data.size() - offset;
  if (remaining == 0) {
    scan.kind = FrameScan::Kind::kEnd;
    return scan;
  }
  if (remaining < kFrameHeaderBytes) {
    scan.kind = FrameScan::Kind::kTorn;
    scan.error = "partial frame header (" + std::to_string(remaining) +
                 " bytes) at offset " + std::to_string(offset);
    return scan;
  }
  const uint8_t* frame = data.data() + offset;
  const uint32_t stored_crc = ReadRaw<uint32_t>(frame);
  const uint32_t len = ReadRaw<uint32_t>(frame + 4);
  const uint64_t lsn = ReadRaw<uint64_t>(frame + 8);
  const uint8_t type = ReadRaw<uint8_t>(frame + 16);
  if (len > kMaxWalRecordBytes) {
    // The length field is complete (the header fit), so an insane value
    // is not the prefix a torn write leaves behind — it is corruption,
    // and never an allocation request.
    scan.kind = FrameScan::Kind::kCorrupt;
    scan.error = "insane payload length " + std::to_string(len) +
                 " at offset " + std::to_string(offset);
    return scan;
  }
  if (remaining < kFrameHeaderBytes + len) {
    scan.kind = FrameScan::Kind::kTorn;
    scan.error = "frame claims " + std::to_string(len) +
                 " payload bytes but only " +
                 std::to_string(remaining - kFrameHeaderBytes) +
                 " remain at offset " + std::to_string(offset);
    return scan;
  }
  const uint32_t actual_crc =
      Crc32c(frame + 4, kFrameHeaderBytes - 4 + len);
  if (actual_crc != stored_crc) {
    scan.kind = FrameScan::Kind::kCorrupt;
    scan.error = "checksum mismatch on record lsn " + std::to_string(lsn) +
                 " (" + std::to_string(len) + " payload bytes at offset " +
                 std::to_string(offset) + ")";
    return scan;
  }
  if (type < static_cast<uint8_t>(WalRecordType::kSubmit) ||
      type > static_cast<uint8_t>(WalRecordType::kCheckpoint)) {
    scan.kind = FrameScan::Kind::kCorrupt;
    scan.error = "unknown record type " + std::to_string(type) +
                 " at offset " + std::to_string(offset);
    return scan;
  }
  scan.kind = FrameScan::Kind::kRecord;
  scan.record.lsn = lsn;
  scan.record.type = static_cast<WalRecordType>(type);
  scan.record.payload.assign(frame + kFrameHeaderBytes,
                             frame + kFrameHeaderBytes + len);
  scan.next_offset = offset + kFrameHeaderBytes + len;
  return scan;
}

Result<uint64_t> ParseSegmentHeader(const std::vector<uint8_t>& data,
                                    const std::string& path) {
  if (data.size() < kSegmentHeaderBytes) {
    return Status::IOError("wal segment too short for header: " + path);
  }
  const uint32_t magic = ReadRaw<uint32_t>(data.data());
  if (magic != kWalMagic) {
    return Status::IOError("bad wal segment magic in " + path);
  }
  const uint32_t version = ReadRaw<uint32_t>(data.data() + 4);
  if (version != kWalVersion) {
    return Status::IOError("unsupported wal segment version " +
                           std::to_string(version) + " in " + path);
  }
  return ReadRaw<uint64_t>(data.data() + 8);
}

Result<std::vector<std::pair<uint64_t, std::string>>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t base = 0;
    if (std::sscanf(name.c_str(), "wal-%16" SCNx64 ".log", &base) == 1) {
      segments.emplace_back(base, entry.path().string());
    }
  }
  if (ec) {
    return Status::IOError("cannot list wal dir: " + dir + ": " +
                           ec.message());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace

// ---------------------------------------------------------------------------
// WriteAheadLog
// ---------------------------------------------------------------------------

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const WalOptions& options, WalRecoveryReport* report) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("WalOptions::dir must be set");
  }
  WalRecoveryReport local_report;
  if (report == nullptr) report = &local_report;
  *report = WalRecoveryReport{};

  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IOError("cannot create wal dir: " + options.dir + ": " +
                           ec.message());
  }
  auto log =
      std::unique_ptr<WriteAheadLog>(new WriteAheadLog(options));
  KAMEL_ASSIGN_OR_RETURN(auto listed, ListSegments(options.dir));
  log->segments_.reserve(listed.size());
  for (const auto& [base_lsn, path] : listed) {
    log->segments_.push_back(Segment{base_lsn, path, 0});
  }

  uint64_t expected_lsn = 1;
  for (size_t i = 0; i < log->segments_.size(); ++i) {
    const uint64_t base_lsn = log->segments_[i].base_lsn;
    const std::string path = log->segments_[i].path;
    const bool last_segment = i + 1 == log->segments_.size();
    KAMEL_ASSIGN_OR_RETURN(std::vector<uint8_t> data, ReadWholeFile(path));
    if (last_segment && data.size() < kSegmentHeaderBytes) {
      // A crash during rotation can leave a successor whose header never
      // finished: a torn tail in its purest form. Drop the empty shell —
      // and make the deletion durable with a directory fsync, or a crash
      // right here could resurrect the shell and fail the next open.
      report->torn_tail_bytes = data.size();
      report->torn_tail_segment = path;
      KAMEL_RETURN_NOT_OK(io::Unlink(path, "wal.io.unlink"));
      KAMEL_RETURN_NOT_OK(io::FsyncDir(options.dir, "wal.io.dirsync"));
      log->segments_.pop_back();
      break;
    }
    KAMEL_ASSIGN_OR_RETURN(uint64_t header_base,
                           ParseSegmentHeader(data, path));
    if (header_base != base_lsn) {
      return Status::IOError("wal segment " + path +
                             " header base lsn disagrees with its name");
    }
    ++report->segments_scanned;
    // Checkpointing deletes whole prefixes of the log, so the surviving
    // history starts at the first segment's base LSN, not at 1.
    if (i == 0) expected_lsn = header_base;

    size_t offset = kSegmentHeaderBytes;
    while (true) {
      FrameScan scan = ScanFrame(data, offset);
      if (scan.kind == FrameScan::Kind::kEnd) break;
      if (scan.kind == FrameScan::Kind::kTorn) {
        if (!last_segment) {
          // Rotation fsyncs a segment before its successor exists, so a
          // closed segment can never legitimately end mid-frame.
          return Status::IOError("mid-log corruption in " + path + ": " +
                                 scan.error +
                                 " (closed segment with a torn tail); "
                                 "data past this point is lost");
        }
        report->torn_tail_bytes = data.size() - offset;
        report->torn_tail_segment = path;
        KAMEL_ASSIGN_OR_RETURN(
            const int fd, io::OpenFd(path, O_WRONLY, 0, "wal.io.open"));
        Status truncated =
            io::Ftruncate(fd, offset, path, "wal.io.truncate");
        ::fsync(fd);
        ::close(fd);
        KAMEL_RETURN_NOT_OK(truncated);
        data.resize(offset);
        break;
      }
      if (scan.kind == FrameScan::Kind::kCorrupt) {
        return Status::IOError(
            "mid-log corruption in " + path + ": " + scan.error +
            "; records past this point cannot be trusted (run `kamel fsck "
            "--wal-dir` to map the damage)");
      }
      if (scan.record.lsn != expected_lsn) {
        return Status::IOError(
            "wal lsn discontinuity in " + path + ": expected " +
            std::to_string(expected_lsn) + ", found " +
            std::to_string(scan.record.lsn) + " at offset " +
            std::to_string(offset));
      }
      expected_lsn = scan.record.lsn + 1;
      ++report->records_scanned;
      if (scan.record.type == WalRecordType::kCheckpoint) {
        KAMEL_ASSIGN_OR_RETURN(uint64_t watermark,
                               DecodeLsnPayload(scan.record.payload));
        report->checkpoint_lsn =
            std::max(report->checkpoint_lsn, watermark);
      } else {
        report->records.push_back(std::move(scan.record));
      }
      offset = scan.next_offset;
    }

    log->segments_[i].bytes = data.size();
  }

  // Disk-budget accounting baseline: every surviving segment's bytes.
  log->closed_bytes_ = 0;
  for (size_t i = 0; i + 1 < log->segments_.size(); ++i) {
    log->closed_bytes_ += log->segments_[i].bytes;
  }
  log->current_bytes_ =
      log->segments_.empty() ? 0 : log->segments_.back().bytes;

  // Drop everything a checkpoint already covers.
  if (report->checkpoint_lsn > 0) {
    const uint64_t watermark = report->checkpoint_lsn;
    const size_t before = report->records.size();
    report->records.erase(
        std::remove_if(report->records.begin(), report->records.end(),
                       [watermark](const WalRecord& r) {
                         return r.lsn <= watermark;
                       }),
        report->records.end());
    report->records_skipped = before - report->records.size();
  }

  log->next_lsn_ = expected_lsn;
  if (log->segments_.empty()) {
    KAMEL_RETURN_NOT_OK(log->OpenSegmentForAppend(log->next_lsn_, true));
  } else {
    KAMEL_RETURN_NOT_OK(
        log->OpenSegmentForAppend(log->segments_.back().base_lsn, false));
  }
  // Everything on disk after recovery is durable (torn tails are gone),
  // so the replication watermarks start at the recovered positions.
  log->durable_bytes_ = log->current_bytes_;
  log->durable_lsn_ = log->next_lsn_ - 1;
  return log;
}

double WriteAheadLog::utilization() const {
  if (options_.disk_budget_bytes == 0) return 0.0;
  return static_cast<double>(live_bytes()) /
         static_cast<double>(options_.disk_budget_bytes);
}

bool WriteAheadLog::under_pressure() const {
  return options_.disk_budget_bytes > 0 &&
         utilization() >= options_.gc_pressure_fraction;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    if (!poisoned_) ::fsync(fd_);  // best-effort durability on clean close
    ::close(fd_);
  }
}

Status WriteAheadLog::OpenSegmentForAppend(uint64_t base_lsn, bool create) {
  const std::string path = options_.dir + "/" + SegmentName(base_lsn);
  const int flags =
      create ? (O_WRONLY | O_CREAT | O_EXCL) : (O_WRONLY | O_APPEND);
  KAMEL_ASSIGN_OR_RETURN(const int fd,
                         io::OpenFd(path, flags, 0644, "wal.io.open"));
  if (create) {
    std::vector<uint8_t> header;
    AppendRaw<uint32_t>(&header, kWalMagic);
    AppendRaw<uint32_t>(&header, kWalVersion);
    AppendRaw<uint64_t>(&header, base_lsn);
    Status written =
        io::WriteAll(fd, header.data(), header.size(), path, "wal.io.write");
    if (written.ok()) {
      written = io::Fsync(fd, path, "wal.io.fsync");
    }
    if (!written.ok()) {
      ::close(fd);
      ::unlink(path.c_str());
      return written;
    }
    // The outgoing segment's bytes move from "current" to "closed"; the
    // successor starts its budget charge at just the header.
    closed_bytes_ += current_bytes_;
    segments_.push_back(Segment{base_lsn, path, kSegmentHeaderBytes});
    current_bytes_ = kSegmentHeaderBytes;
    durable_bytes_ = kSegmentHeaderBytes;  // the header was just fsynced
    KAMEL_RETURN_NOT_OK(io::FsyncDir(options_.dir, "wal.io.dirsync"));
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  unsynced_records_ = 0;
  return Status::OK();
}

Status WriteAheadLog::Rotate() {
  KAMEL_RETURN_NOT_OK(FaultInjector::Instance().Hit("wal.rotate"));
  // The outgoing segment must be durable before its successor exists:
  // recovery treats a torn tail on a closed segment as corruption.
  KAMEL_RETURN_NOT_OK(SyncNow());
  KAMEL_RETURN_NOT_OK(OpenSegmentForAppend(next_lsn_, true));
  ++stats_.rotations;
  return Status::OK();
}

Status WriteAheadLog::SyncNow() {
  KAMEL_RETURN_NOT_OK(FaultInjector::Instance().Hit("wal.fsync"));
  auto watch = IoWatchdog::Instance().Watch("wal.fsync",
                                            options_.io_stall_budget_s);
  KAMEL_RETURN_NOT_OK(
      io::Fsync(fd_, segments_.back().path, "wal.io.fsync"));
  unsynced_records_ = 0;
  ++stats_.fsyncs;
  // The whole written prefix is now durable; replication may ship it.
  durable_bytes_ = current_bytes_;
  durable_lsn_ = next_lsn_ - 1;
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "wal poisoned by a torn write; reopen to recover");
  }
  return SyncNow();
}

Result<uint64_t> WriteAheadLog::Append(WalRecordType type,
                                       const std::vector<uint8_t>& payload) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "wal poisoned by a torn write; reopen to recover");
  }
  KAMEL_RETURN_NOT_OK(FaultInjector::Instance().Hit("wal.append"));
  if (payload.size() > kMaxWalRecordBytes) {
    return Status::InvalidArgument("wal record payload too large: " +
                                   std::to_string(payload.size()));
  }

  const size_t frame_bytes = kFrameHeaderBytes + payload.size();
  const bool is_data = type == WalRecordType::kSubmit ||
                       type == WalRecordType::kStoreAppend;
  if (is_data && options_.disk_budget_bytes > 0) {
    // Refuse over-budget data appends before a single byte (or a
    // rotation) happens: the caller gets a clean kResourceExhausted it
    // can turn into checkpoint GC or shed. Markers stay exempt — they
    // are what unlocks GC on a full log.
    uint64_t reserve = frame_bytes;
    if (current_bytes_ >= options_.segment_bytes) {
      reserve += kSegmentHeaderBytes;  // the rotation's new header
    }
    if (live_bytes() + reserve > options_.disk_budget_bytes) {
      ++stats_.budget_refusals;
      return Status::ResourceExhausted(
          "wal disk budget exhausted: " + std::to_string(live_bytes()) +
          " live + " + std::to_string(reserve) + " requested > " +
          std::to_string(options_.disk_budget_bytes) +
          " budget; checkpoint to reclaim segments");
    }
  }

  if (current_bytes_ >= options_.segment_bytes) {
    KAMEL_RETURN_NOT_OK(Rotate());
  }
  const uint64_t lsn = next_lsn_;
  const std::vector<uint8_t> frame = BuildFrame(lsn, type, payload);
  const std::string& path = segments_.back().path;

  const Status torn = FaultInjector::Instance().Hit("wal.append.torn");
  if (!torn.ok()) {
    // Crash simulation: half the frame reaches the disk, the process
    // "dies". Whatever happens to this object afterwards must not write
    // again — recovery on reopen truncates the tear.
    (void)io::WriteAll(fd_, frame.data(), frame.size() / 2, path, nullptr);
    ::fsync(fd_);
    poisoned_ = true;
    return torn;
  }

  size_t wrote = 0;
  const Status written =
      io::WriteAll(fd_, frame.data(), frame.size(), path, "wal.io.write",
                   &wrote);
  if (!written.ok()) {
    if (wrote > 0) {
      // Some of the frame reached the disk: the tail is torn, exactly
      // the shape wal.append.torn simulates. Poison so no later append
      // interleaves garbage after the tear; reopen truncates it. A
      // zero-byte failure is a clean refusal — the log stays usable.
      ::fsync(fd_);
      poisoned_ = true;
      current_bytes_ += wrote;
      segments_.back().bytes = current_bytes_;
    }
    return written;
  }
  current_bytes_ += frame.size();
  segments_.back().bytes = current_bytes_;
  next_lsn_ = lsn + 1;
  ++stats_.appends;
  stats_.bytes_appended += frame.size();
  ++unsynced_records_;

  switch (options_.fsync_policy) {
    case FsyncPolicy::kEveryRecord:
      KAMEL_RETURN_NOT_OK(SyncNow());
      break;
    case FsyncPolicy::kEveryN:
      if (unsynced_records_ >= options_.fsync_every_n) {
        KAMEL_RETURN_NOT_OK(SyncNow());
      }
      break;
    case FsyncPolicy::kOnRotate:
      break;
  }
  return lsn;
}

Status WriteAheadLog::Checkpoint(uint64_t upto_lsn) {
  KAMEL_RETURN_NOT_OK(
      Append(WalRecordType::kCheckpoint, EncodeLsnPayload(upto_lsn))
          .status());
  // The watermark must be durable before anything below it disappears.
  KAMEL_RETURN_NOT_OK(Sync());
  KAMEL_RETURN_NOT_OK(FaultInjector::Instance().Hit("wal.checkpoint"));
  // A segment is deletable when every record it holds is at or below the
  // watermark, i.e. its successor starts at or below upto_lsn + 1. The
  // open segment (holding the checkpoint record itself) always survives.
  bool deleted = false;
  while (segments_.size() >= 2 && segments_[1].base_lsn <= upto_lsn + 1) {
    const Segment& victim = segments_.front();
    KAMEL_RETURN_NOT_OK(io::Unlink(victim.path, "wal.io.unlink"));
    closed_bytes_ -= std::min(closed_bytes_, victim.bytes);
    segments_.erase(segments_.begin());
    ++stats_.segments_deleted;
    deleted = true;
  }
  // Make the deletions durable: without the directory fsync a crash here
  // can resurrect a GC'd segment, whose records would then replay on top
  // of the snapshot that already captured them.
  if (deleted) {
    KAMEL_RETURN_NOT_OK(io::FsyncDir(options_.dir, "wal.io.dirsync"));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// TailChunk (primary-side replication read)
// ---------------------------------------------------------------------------

Result<WalShipChunk> WriteAheadLog::TailChunk(uint64_t segment_base,
                                              uint64_t offset,
                                              uint64_t max_bytes) const {
  WalShipChunk chunk;
  chunk.segment_base = segment_base;
  chunk.offset = offset;
  chunk.durable_lsn = durable_lsn_;
  if (segments_.empty()) {
    return Status::FailedPrecondition("wal has no segments to tail");
  }
  size_t index = segments_.size();
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].base_lsn == segment_base) {
      index = i;
      break;
    }
  }
  if (index == segments_.size()) {
    // A fresh replica (base 0), a position below our GC'd history, or a
    // base from a divergent history: either way the replica must start
    // over from our earliest live segment.
    chunk.kind = WalShipChunk::Kind::kReset;
    chunk.next_segment_base = segments_.front().base_lsn;
    return chunk;
  }
  const bool last_segment = index + 1 == segments_.size();
  const uint64_t durable =
      last_segment ? durable_bytes_ : segments_[index].bytes;
  if (offset > durable) {
    // The replica holds bytes past our durable size for this segment — a
    // tail we never fsynced (and lost in a crash). It must shrink to the
    // durable boundary before the histories re-converge.
    chunk.kind = WalShipChunk::Kind::kTruncate;
    chunk.truncate_to = durable;
    return chunk;
  }
  if (offset == durable) {
    if (!last_segment) {
      chunk.kind = WalShipChunk::Kind::kRotate;
      chunk.next_segment_base = segments_[index + 1].base_lsn;
      return chunk;
    }
    chunk.kind = WalShipChunk::Kind::kData;  // caught up; bytes empty
    return chunk;
  }
  const uint64_t want =
      std::min<uint64_t>(max_bytes == 0 ? (64ull << 10) : max_bytes,
                         durable - offset);
  KAMEL_ASSIGN_OR_RETURN(
      chunk.bytes,
      io::ReadAt(segments_[index].path, offset, want, "wal.io.read"));
  chunk.kind = WalShipChunk::Kind::kData;
  return chunk;
}

// ---------------------------------------------------------------------------
// WalReplicaApplier
// ---------------------------------------------------------------------------

Result<std::unique_ptr<WalReplicaApplier>> WalReplicaApplier::Open(
    const std::string& dir, OpenReport* report) {
  if (dir.empty()) {
    return Status::InvalidArgument("replica wal dir must be set");
  }
  OpenReport local_report;
  if (report == nullptr) report = &local_report;
  *report = OpenReport{};

  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create replica wal dir: " + dir + ": " +
                           ec.message());
  }
  auto applier =
      std::unique_ptr<WalReplicaApplier>(new WalReplicaApplier(dir));
  KAMEL_ASSIGN_OR_RETURN(auto listed, ListSegments(dir));

  uint64_t expected_lsn = 0;
  for (size_t i = 0; i < listed.size(); ++i) {
    const auto& [base_lsn, path] = listed[i];
    const bool last_segment = i + 1 == listed.size();
    KAMEL_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                           io::ReadFile(path, "replica.io.read"));
    if (last_segment && data.size() < kSegmentHeaderBytes) {
      // A crash before the successor's shipped header finished: drop the
      // shell, exactly like WriteAheadLog::Open does.
      report->torn_tail_bytes = data.size();
      report->torn_tail_segment = path;
      KAMEL_RETURN_NOT_OK(io::Unlink(path, "replica.io.unlink"));
      KAMEL_RETURN_NOT_OK(io::FsyncDir(dir, "replica.io.dirsync"));
      break;
    }
    KAMEL_ASSIGN_OR_RETURN(uint64_t header_base,
                           ParseSegmentHeader(data, path));
    if (header_base != base_lsn) {
      return Status::IOError("replica wal segment " + path +
                             " header base lsn disagrees with its name");
    }
    if (i == 0) expected_lsn = base_lsn;

    size_t offset = kSegmentHeaderBytes;
    while (true) {
      FrameScan scan = ScanFrame(data, offset);
      if (scan.kind == FrameScan::Kind::kEnd) break;
      if (scan.kind == FrameScan::Kind::kTorn) {
        if (!last_segment) {
          return Status::IOError("mid-log corruption in replica wal " +
                                 path + ": " + scan.error +
                                 " (closed segment with a torn tail)");
        }
        // The shape a SIGKILL mid-Apply leaves: truncate our own torn
        // tail; the next pull resumes from the durable boundary.
        report->torn_tail_bytes = data.size() - offset;
        report->torn_tail_segment = path;
        KAMEL_ASSIGN_OR_RETURN(
            const int fd, io::OpenFd(path, O_WRONLY, 0, "replica.io.open"));
        Status truncated =
            io::Ftruncate(fd, offset, path, "replica.io.truncate");
        ::fsync(fd);
        ::close(fd);
        KAMEL_RETURN_NOT_OK(truncated);
        data.resize(offset);
        break;
      }
      if (scan.kind == FrameScan::Kind::kCorrupt) {
        return Status::IOError("mid-log corruption in replica wal " + path +
                               ": " + scan.error);
      }
      if (scan.record.lsn != expected_lsn) {
        return Status::IOError(
            "replica wal lsn discontinuity in " + path + ": expected " +
            std::to_string(expected_lsn) + ", found " +
            std::to_string(scan.record.lsn));
      }
      expected_lsn = scan.record.lsn + 1;
      offset = scan.next_offset;
    }

    applier->segment_base_ = base_lsn;
    applier->offset_ = data.size();
    applier->header_parsed_ = true;
  }
  // The first record of the first segment starts at its base LSN, so an
  // empty (or header-only) history applies up to base - 1.
  applier->applied_lsn_ = expected_lsn > 0 ? expected_lsn - 1 : 0;
  return applier;
}

WalReplicaApplier::~WalReplicaApplier() { CloseFd(); }

void WalReplicaApplier::CloseFd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalReplicaApplier::ScanTail() {
  if (!header_parsed_) {
    if (tail_.size() < kSegmentHeaderBytes) return Status::OK();
    KAMEL_ASSIGN_OR_RETURN(
        uint64_t header_base,
        ParseSegmentHeader(tail_, dir_ + "/" + SegmentName(segment_base_)));
    if (header_base != segment_base_) {
      return Status::IOError(
          "replica stream shipped a header for segment " +
          std::to_string(header_base) + " while applying segment " +
          std::to_string(segment_base_));
    }
    tail_.erase(tail_.begin(), tail_.begin() + kSegmentHeaderBytes);
    header_parsed_ = true;
    // Records below this segment's base are not coming (fresh replica or
    // reset past GC'd history): the watermark starts just under it.
    applied_lsn_ = std::max(applied_lsn_, segment_base_ - 1);
  }
  size_t consumed = 0;
  while (true) {
    FrameScan scan = ScanFrame(tail_, consumed);
    if (scan.kind == FrameScan::Kind::kEnd ||
        scan.kind == FrameScan::Kind::kTorn) {
      break;  // wait for more bytes
    }
    if (scan.kind == FrameScan::Kind::kCorrupt) {
      return Status::IOError("replica stream corrupt: " + scan.error);
    }
    if (scan.record.lsn != applied_lsn_ + 1) {
      return Status::IOError(
          "replica stream lsn discontinuity: expected " +
          std::to_string(applied_lsn_ + 1) + ", got " +
          std::to_string(scan.record.lsn));
    }
    applied_lsn_ = scan.record.lsn;
    consumed = scan.next_offset;
  }
  if (consumed > 0) {
    tail_.erase(tail_.begin(),
                tail_.begin() + static_cast<ptrdiff_t>(consumed));
  }
  return Status::OK();
}

Status WalReplicaApplier::ApplyData(const WalShipChunk& chunk) {
  if (chunk.bytes.empty()) return Status::OK();  // caught up
  const std::string path = dir_ + "/" + SegmentName(segment_base_);
  if (fd_ < 0) {
    KAMEL_ASSIGN_OR_RETURN(
        fd_, io::OpenFd(path, O_WRONLY | O_CREAT | O_APPEND, 0644,
                        "replica.io.open"));
  }
  size_t wrote = 0;
  const Status written = io::WriteAll(fd_, chunk.bytes.data(),
                                      chunk.bytes.size(), path,
                                      "replica.io.write", &wrote);
  if (!written.ok()) {
    if (wrote > 0) {
      // Our own torn tail: poison until reopened (Open truncates it),
      // exactly the primary WAL's discipline.
      ::fsync(fd_);
      poisoned_ = true;
    }
    return written;
  }
  // Durability before acknowledgment: the applied watermark this chunk
  // advances is what the primary's sync-ack waits on.
  const Status synced = io::Fsync(fd_, path, "replica.io.fsync");
  if (!synced.ok()) {
    poisoned_ = true;  // unknown how much reached the platter
    return synced;
  }
  offset_ += chunk.bytes.size();
  tail_.insert(tail_.end(), chunk.bytes.begin(), chunk.bytes.end());
  return ScanTail();
}

Status WalReplicaApplier::RescanCurrentSegment() {
  const std::string path = dir_ + "/" + SegmentName(segment_base_);
  KAMEL_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                         io::ReadFile(path, "replica.io.read"));
  KAMEL_ASSIGN_OR_RETURN(uint64_t header_base,
                         ParseSegmentHeader(data, path));
  if (header_base != segment_base_) {
    return Status::IOError("replica wal segment " + path +
                           " header disagrees after truncate");
  }
  // Recompute the watermark from scratch: a truncate can move it DOWN
  // (the primary lost an unsynced tail we had already applied).
  uint64_t applied = segment_base_ - 1;
  size_t offset = kSegmentHeaderBytes;
  while (true) {
    FrameScan scan = ScanFrame(data, offset);
    if (scan.kind == FrameScan::Kind::kEnd) break;
    if (scan.kind != FrameScan::Kind::kRecord) {
      return Status::IOError(
          "replica wal " + path +
          " does not end on a frame boundary after truncate: " + scan.error);
    }
    applied = scan.record.lsn;
    offset = scan.next_offset;
  }
  // Earlier segments contribute the prefix below this segment's base, so
  // the local maximum of this segment IS the global watermark.
  applied_lsn_ = applied;
  offset_ = data.size();
  tail_.clear();
  header_parsed_ = true;
  return Status::OK();
}

Status WalReplicaApplier::Reset() {
  CloseFd();
  KAMEL_ASSIGN_OR_RETURN(auto listed, ListSegments(dir_));
  for (const auto& [base_lsn, path] : listed) {
    (void)base_lsn;
    KAMEL_RETURN_NOT_OK(io::Unlink(path, "replica.io.unlink"));
  }
  if (!listed.empty()) {
    KAMEL_RETURN_NOT_OK(io::FsyncDir(dir_, "replica.io.dirsync"));
  }
  segment_base_ = 0;
  offset_ = 0;
  applied_lsn_ = 0;
  tail_.clear();
  header_parsed_ = false;
  poisoned_ = false;
  return Status::OK();
}

Status WalReplicaApplier::Apply(const WalShipChunk& chunk) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "replica wal poisoned by a torn write; reopen to recover");
  }
  switch (chunk.kind) {
    case WalShipChunk::Kind::kData:
      if (chunk.segment_base != segment_base_ || chunk.offset != offset_) {
        return Status::IOError(
            "replica stream out of sync: chunk at segment " +
            std::to_string(chunk.segment_base) + " offset " +
            std::to_string(chunk.offset) + ", applier at segment " +
            std::to_string(segment_base_) + " offset " +
            std::to_string(offset_));
      }
      return ApplyData(chunk);
    case WalShipChunk::Kind::kRotate:
      if (chunk.segment_base != segment_base_) {
        return Status::IOError("replica stream out of sync on rotate");
      }
      if (!tail_.empty()) {
        return Status::IOError(
            "rotate arrived mid-frame: the closed segment cannot end "
            "inside a record");
      }
      CloseFd();
      segment_base_ = chunk.next_segment_base;
      offset_ = 0;
      header_parsed_ = false;
      return Status::OK();
    case WalShipChunk::Kind::kTruncate: {
      if (chunk.segment_base != segment_base_) {
        return Status::IOError("replica stream out of sync on truncate");
      }
      if (chunk.truncate_to > offset_) {
        return Status::IOError("truncate target beyond local size");
      }
      CloseFd();
      const std::string path = dir_ + "/" + SegmentName(segment_base_);
      KAMEL_ASSIGN_OR_RETURN(
          const int fd, io::OpenFd(path, O_WRONLY, 0, "replica.io.open"));
      Status truncated =
          io::Ftruncate(fd, chunk.truncate_to, path, "replica.io.truncate");
      ::fsync(fd);
      ::close(fd);
      KAMEL_RETURN_NOT_OK(truncated);
      return RescanCurrentSegment();
    }
    case WalShipChunk::Kind::kReset:
      KAMEL_RETURN_NOT_OK(Reset());
      segment_base_ = chunk.next_segment_base;
      offset_ = 0;
      header_parsed_ = false;
      return Status::OK();
  }
  return Status::InvalidArgument("unknown wal ship chunk kind");
}

// ---------------------------------------------------------------------------
// FsckWal
// ---------------------------------------------------------------------------

Result<WalFsckReport> FsckWal(const std::string& dir) {
  WalFsckReport report;
  KAMEL_ASSIGN_OR_RETURN(auto segments, ListSegments(dir));
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [base_lsn, path] = segments[i];
    const bool last_segment = i + 1 == segments.size();
    KAMEL_ASSIGN_OR_RETURN(std::vector<uint8_t> data, ReadWholeFile(path));
    ++report.segments;
    report.bytes += data.size();

    Result<uint64_t> header = ParseSegmentHeader(data, path);
    if (!header.ok()) {
      // An unfinished header is only survivable on the last segment (a
      // crash during rotation); anywhere else the chain is broken.
      const bool torn = last_segment && data.size() < kSegmentHeaderBytes;
      report.damaged.push_back(
          {path, 0, 0, torn, header.status().message()});
      continue;
    }
    size_t offset = kSegmentHeaderBytes;
    uint64_t record_index = 0;
    while (true) {
      FrameScan scan = ScanFrame(data, offset);
      if (scan.kind == FrameScan::Kind::kEnd) break;
      if (scan.kind != FrameScan::Kind::kRecord) {
        const bool torn =
            scan.kind == FrameScan::Kind::kTorn && last_segment;
        report.damaged.push_back(
            {path, offset, record_index, torn, scan.error});
        break;  // framing is lost past the first bad record
      }
      ++report.records;
      if (report.first_lsn == 0) report.first_lsn = scan.record.lsn;
      report.last_lsn = scan.record.lsn;
      if (scan.record.type == WalRecordType::kCheckpoint) {
        if (auto watermark = DecodeLsnPayload(scan.record.payload);
            watermark.ok()) {
          report.checkpoint_lsn = std::max(report.checkpoint_lsn,
                                           *watermark);
        }
      }
      ++record_index;
      offset = scan.next_offset;
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

std::vector<uint8_t> EncodeTrajectoryPayload(const Trajectory& trajectory) {
  BinaryWriter writer;
  writer.WriteI64(trajectory.id);
  writer.WriteU32(static_cast<uint32_t>(trajectory.points.size()));
  for (const TrajPoint& point : trajectory.points) {
    writer.WriteF64(point.pos.lat);
    writer.WriteF64(point.pos.lng);
    writer.WriteF64(point.time);
  }
  return writer.buffer();
}

Result<Trajectory> DecodeTrajectoryPayload(
    const std::vector<uint8_t>& payload) {
  BinaryReader reader(payload);
  Trajectory trajectory;
  KAMEL_ASSIGN_OR_RETURN(trajectory.id, reader.ReadI64());
  KAMEL_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  trajectory.points.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TrajPoint point;
    KAMEL_ASSIGN_OR_RETURN(point.pos.lat, reader.ReadF64());
    KAMEL_ASSIGN_OR_RETURN(point.pos.lng, reader.ReadF64());
    KAMEL_ASSIGN_OR_RETURN(point.time, reader.ReadF64());
    trajectory.points.push_back(point);
  }
  if (!reader.AtEnd()) {
    return Status::IOError("trailing bytes after trajectory payload");
  }
  return trajectory;
}

std::vector<uint8_t> EncodeLsnPayload(uint64_t lsn) {
  std::vector<uint8_t> payload;
  AppendRaw<uint64_t>(&payload, lsn);
  return payload;
}

Result<uint64_t> DecodeLsnPayload(const std::vector<uint8_t>& payload) {
  if (payload.size() != sizeof(uint64_t)) {
    return Status::IOError("lsn payload must be 8 bytes, got " +
                           std::to_string(payload.size()));
  }
  return ReadRaw<uint64_t>(payload.data());
}

}  // namespace kamel
