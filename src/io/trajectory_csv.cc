#include "io/trajectory_csv.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>

namespace kamel::io {

namespace {

std::string FormatRow(int64_t id, const TrajPoint& point) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%lld,%.7f,%.7f,%.3f\n",
                static_cast<long long>(id), point.pos.lat, point.pos.lng,
                point.time);
  return buf;
}

// Splits one CSV line on commas (no quoting — the format is numeric).
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  for (char ch : line) {
    if (ch == ',') {
      out.push_back(field);
      field.clear();
    } else if (ch != '\r') {
      field += ch;
    }
  }
  out.push_back(field);
  return out;
}

Result<double> ParseDouble(const std::string& field, int line_no,
                           const char* what) {
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": bad " + what + " value '" + field +
                                   "'");
  }
  // strtod happily parses "nan" and "inf", and NaN then slips through
  // every range comparison below — refuse it at the parse.
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                   what + " value '" + field +
                                   "' is not finite");
  }
  return value;
}

}  // namespace

std::string WriteCsvString(const TrajectoryDataset& data) {
  std::string out = "trajectory_id,lat,lng,time\n";
  for (const Trajectory& trajectory : data.trajectories) {
    for (const TrajPoint& point : trajectory.points) {
      out += FormatRow(trajectory.id, point);
    }
  }
  return out;
}

Status WriteCsvFile(const TrajectoryDataset& data, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << WriteCsvString(data);
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<TrajectoryDataset> ReadCsvString(const std::string& text) {
  TrajectoryDataset data;
  std::unordered_set<int64_t> finished_ids;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line == "\r") continue;
    if (!saw_header) {
      // The header is mandatory; it guards against column-order mistakes.
      if (line.find("trajectory_id") == std::string::npos) {
        return Status::InvalidArgument(
            "line 1: expected header 'trajectory_id,lat,lng,time'");
      }
      saw_header = true;
      continue;
    }
    const std::vector<std::string> fields = SplitFields(line);
    if (fields.size() != 4) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 4 fields, found " +
                                     std::to_string(fields.size()));
    }
    KAMEL_ASSIGN_OR_RETURN(const double id_raw,
                           ParseDouble(fields[0], line_no, "trajectory_id"));
    KAMEL_ASSIGN_OR_RETURN(const double lat,
                           ParseDouble(fields[1], line_no, "lat"));
    KAMEL_ASSIGN_OR_RETURN(const double lng,
                           ParseDouble(fields[2], line_no, "lng"));
    KAMEL_ASSIGN_OR_RETURN(const double time,
                           ParseDouble(fields[3], line_no, "time"));
    if (lat < -90.0 || lat > 90.0 || lng < -180.0 || lng > 180.0) {
      return Status::OutOfRange("line " + std::to_string(line_no) +
                                ": coordinates out of range");
    }
    const auto id = static_cast<int64_t>(id_raw);

    if (data.trajectories.empty() || data.trajectories.back().id != id) {
      if (!finished_ids.insert(id).second) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": trajectory " +
            std::to_string(id) + " reappears non-contiguously");
      }
      Trajectory trajectory;
      trajectory.id = id;
      data.trajectories.push_back(std::move(trajectory));
    }
    Trajectory& current = data.trajectories.back();
    if (!current.points.empty() && time < current.points.back().time) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": timestamps must be non-decreasing");
    }
    current.points.push_back({{lat, lng}, time});
  }
  if (!saw_header) {
    return Status::InvalidArgument("empty input: missing header");
  }
  return data;
}

Result<TrajectoryDataset> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsvString(buffer.str());
}

std::string WriteGeoJsonString(const TrajectoryDataset& data) {
  std::string out =
      "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first_feature = true;
  for (const Trajectory& trajectory : data.trajectories) {
    if (!first_feature) out += ',';
    first_feature = false;
    out += "{\"type\":\"Feature\",\"properties\":{\"id\":" +
           std::to_string(trajectory.id) +
           ",\"points\":" + std::to_string(trajectory.points.size()) +
           "},\"geometry\":{\"type\":\"LineString\",\"coordinates\":[";
    for (size_t i = 0; i < trajectory.points.size(); ++i) {
      if (i > 0) out += ',';
      char buf[64];
      std::snprintf(buf, sizeof(buf), "[%.7f,%.7f]",
                    trajectory.points[i].pos.lng,
                    trajectory.points[i].pos.lat);
      out += buf;
    }
    out += "]}}";
  }
  out += "]}";
  return out;
}

Status WriteGeoJsonFile(const TrajectoryDataset& data,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << WriteGeoJsonString(data);
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

}  // namespace kamel::io
