#ifndef KAMEL_IO_TRAJECTORY_CSV_H_
#define KAMEL_IO_TRAJECTORY_CSV_H_

#include <string>

#include "common/result.h"
#include "geo/trajectory.h"

namespace kamel {

/// Reads/writes trajectory datasets as CSV with the header
/// `trajectory_id,lat,lng,time` — the interchange format of the CLI and
/// the simplest way to feed real GPS data into KAMEL.
///
/// Rows of one trajectory must be contiguous and time-ordered; the reader
/// validates both and fails with a line-numbered error otherwise. Blank
/// lines and `#` comments are skipped.
namespace io {

/// Serializes a dataset; points are written with 7 decimal digits
/// (~1 cm at city scale).
std::string WriteCsvString(const TrajectoryDataset& data);

/// Writes a dataset to a CSV file.
Status WriteCsvFile(const TrajectoryDataset& data, const std::string& path);

/// Parses a dataset from CSV text.
Result<TrajectoryDataset> ReadCsvString(const std::string& text);

/// Reads a dataset from a CSV file.
Result<TrajectoryDataset> ReadCsvFile(const std::string& path);

/// Exports trajectories as a GeoJSON FeatureCollection of LineStrings
/// (one feature per trajectory, id + point count in `properties`) for
/// inspection in any web map.
std::string WriteGeoJsonString(const TrajectoryDataset& data);

/// Writes the GeoJSON export to a file.
Status WriteGeoJsonFile(const TrajectoryDataset& data,
                        const std::string& path);

}  // namespace io
}  // namespace kamel

#endif  // KAMEL_IO_TRAJECTORY_CSV_H_
