#ifndef KAMEL_IO_WAL_H_
#define KAMEL_IO_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geo/trajectory.h"

namespace kamel {

/// Segment file header: 4 magic bytes, a format version, and the LSN of
/// the first record the segment may contain (also encoded in the file
/// name, `wal-<base-lsn, 16 hex digits>.log`).
inline constexpr uint32_t kWalMagic = 0x4B4D574Cu;  // "KMWL"
inline constexpr uint32_t kWalVersion = 1;

/// Hard sanity bound on one record's payload. A length field above this is
/// treated as corruption, never as an allocation request.
inline constexpr uint64_t kMaxWalRecordBytes = 64ull << 20;

/// When an Append is considered durable (acknowledged to the caller).
enum class FsyncPolicy {
  kEveryRecord,  ///< fsync after every record — strongest, slowest
  kEveryN,       ///< fsync once per `fsync_every_n` records
  kOnRotate,     ///< fsync only at rotation, checkpoint, and Sync()
};

struct WalOptions {
  /// Directory holding the segment files; created if missing.
  std::string dir;
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryRecord;
  /// Records between fsyncs under FsyncPolicy::kEveryN.
  int fsync_every_n = 32;
  /// Rotation threshold: a segment at or above this size is closed (and
  /// fsynced) and a fresh one started before the next append.
  uint64_t segment_bytes = 4ull << 20;
  /// Disk budget governor: total live bytes (all segment files plus the
  /// checkpoint snapshot accounted via AccountExternalBytes) the log may
  /// hold; 0 = unlimited. A data append (kSubmit / kStoreAppend) that
  /// would exceed it is refused with kResourceExhausted BEFORE any byte
  /// is written — a clean refusal the ingestion layer turns into
  /// proactive checkpoint GC, backpressure, or shed. Marker records
  /// (kBatchTrained / kCheckpoint) are exempt: they are tiny and they
  /// are precisely what unlocks segment GC, so refusing them would
  /// wedge a full log permanently.
  uint64_t disk_budget_bytes = 0;
  /// Pressure high-water mark: utilization at or above this fraction of
  /// the budget reports under_pressure(), inviting a proactive
  /// checkpoint before appends start being refused.
  double gc_pressure_fraction = 0.8;
  /// Stuck-IO watchdog budget for one fsync, seconds (<= 0 unwatched).
  /// A sync past it counts an IoWatchdog stall and — while in flight —
  /// shows up in stuck_now(), which the serving engine surfaces as
  /// RESOURCE_PRESSURE.
  double io_stall_budget_s = 5.0;
};

/// What a WAL record describes. Payload encodings live next to their
/// producers (raw trajectories below; tokenized trajectories with
/// TrajectoryStore) so the log itself stays payload-agnostic.
enum class WalRecordType : uint8_t {
  /// A raw trajectory acknowledged into the pending maintenance batch
  /// (MaintenanceScheduler::Submit). Payload: EncodeTrajectoryPayload.
  kSubmit = 1,
  /// A tokenized trajectory appended to a WAL-attached TrajectoryStore.
  /// Payload: TrajectoryStore::EncodeWalPayload.
  kStoreAppend = 2,
  /// Marker: every kSubmit with lsn <= payload was consumed by a
  /// successful training batch. Payload: EncodeLsnPayload.
  kBatchTrained = 3,
  /// Marker: all state with lsn <= payload is durably captured in a saved
  /// snapshot; segments entirely below it are deletable. Payload:
  /// EncodeLsnPayload.
  kCheckpoint = 4,
};

struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kSubmit;
  std::vector<uint8_t> payload;
};

/// What WriteAheadLog::Open found and did. `records` carries every record
/// newer than the last checkpoint watermark, in LSN order, ready for
/// replay.
struct WalRecoveryReport {
  std::vector<WalRecord> records;
  /// Highest kCheckpoint watermark seen; records at or below it are
  /// already captured by a snapshot and were skipped.
  uint64_t checkpoint_lsn = 0;
  size_t segments_scanned = 0;
  size_t records_scanned = 0;
  size_t records_skipped = 0;  // at or below checkpoint_lsn
  /// Bytes of torn tail truncated from the last segment (0 = clean).
  size_t torn_tail_bytes = 0;
  std::string torn_tail_segment;
};

/// One unit of the WAL replication stream: the primary answers a pull at
/// (`segment_base`, `offset`) with one of four instructions. Chunks carry
/// raw segment bytes (headers included), so a replica that applies every
/// chunk holds byte-identical segment files.
struct WalShipChunk {
  enum class Kind : uint8_t {
    /// Append `bytes` at `offset` of segment `segment_base` (empty bytes
    /// = caught up to the durable watermark; poll again later).
    kData = 1,
    /// The replica reached the durable end of a CLOSED segment: continue
    /// at offset 0 of segment `next_segment_base`.
    kRotate = 2,
    /// The replica holds more bytes of this segment than the primary's
    /// durable size (a diverged tail): truncate the local file to
    /// `truncate_to` and pull again.
    kTruncate = 3,
    /// The replica's position predates the primary's history (checkpoint
    /// GC, a fresh standby, or an epoch change): discard every local
    /// segment and restart at offset 0 of segment `next_segment_base`.
    kReset = 4,
  };
  Kind kind = Kind::kData;
  uint64_t segment_base = 0;       ///< segment the pull addressed
  uint64_t offset = 0;             ///< byte offset the pull addressed
  std::vector<uint8_t> bytes;      ///< kData payload
  uint64_t next_segment_base = 0;  ///< kRotate / kReset continuation
  uint64_t truncate_to = 0;        ///< kTruncate target size
  /// The primary's durable LSN watermark at read time — what the
  /// replica's lag is measured against.
  uint64_t durable_lsn = 0;
};

/// Segmented write-ahead log: the durability gap-closer between
/// "acknowledged" and "persisted" for trajectory ingestion. Records are
/// CRC32C-framed (`u32 crc | u32 payload_len | u64 lsn | u8 type |
/// payload`, crc covering everything after itself) inside append-only
/// segment files, so recovery can tell a torn write (the file ends inside
/// a frame — the expected crash shape, truncated silently) from mid-log
/// corruption (a complete frame whose checksum fails — bit rot; Open
/// refuses, data loss must be surfaced, never skipped).
///
/// Not thread-safe: one writer, external synchronization if shared (the
/// MaintenanceScheduler that owns ingestion is itself single-threaded).
///
/// Failpoints (see common/fault_injection.h): `wal.append` fails before
/// any byte is written; `wal.append.torn` writes half a frame then fails,
/// poisoning the log object (crash simulation — reopen to recover);
/// `wal.fsync` fails the durability step; `wal.rotate` fails segment
/// rollover; `wal.checkpoint` fails between the checkpoint record and
/// segment deletion. Every raw syscall additionally goes through the
/// errno seam (common/io_env.h) under `wal.io.*` failpoints — an
/// injected ENOSPC/EIO/short write mid-frame poisons the log exactly
/// like `wal.append.torn`, so the on-disk tail stays truncatable and
/// nothing acknowledged is lost.
class WriteAheadLog {
 public:
  /// Opens (creating if needed) the log in `options.dir`: scans every
  /// segment in LSN order, replays valid records into `report`, truncates
  /// a torn tail on the last segment, and positions the writer after the
  /// last durable record. Fails on mid-log corruption — by then the tail
  /// of the log cannot be trusted; `FsckWal` names the damage.
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const WalOptions& options, WalRecoveryReport* report = nullptr);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record and applies the fsync policy; the record is
  /// acknowledged (and its LSN returned) only after both succeed.
  Result<uint64_t> Append(WalRecordType type,
                          const std::vector<uint8_t>& payload);

  /// Forces an fsync of the current segment regardless of policy.
  Status Sync();

  /// Declares every record with lsn <= `upto_lsn` durably captured
  /// elsewhere (a saved snapshot): writes a fsynced kCheckpoint record,
  /// then deletes every closed segment whose records all fall at or below
  /// the watermark. The current segment is never deleted.
  Status Checkpoint(uint64_t upto_lsn);

  uint64_t next_lsn() const { return next_lsn_; }
  /// Live segment files, including the one being written.
  size_t segment_count() const { return segments_.size(); }
  const WalOptions& options() const { return options_; }

  // -- Replication (primary-side segment tailing) ---------------------------

  /// Highest LSN known durable (fsynced). Under FsyncPolicy::kEveryRecord
  /// this tracks next_lsn() - 1; under the lazier policies it lags until
  /// the next sync. Replication ships only durable bytes, so a standby
  /// can never hold a record the primary could still lose in a crash.
  uint64_t durable_lsn() const { return durable_lsn_; }

  /// Reads the next chunk a replica at (`segment_base`, `offset`) should
  /// apply — raw segment bytes, so the replica's log is byte-identical to
  /// the primary's by construction. See WalShipChunk for the protocol
  /// (data / rotate / truncate / reset). `segment_base` 0 means "I have
  /// nothing": the reply is a kReset pointing at the earliest live
  /// segment. Only durable (fsynced) bytes are ever shipped, and the
  /// durable prefix always ends on a frame boundary.
  ///
  /// Not thread-safe (like every other method): the replication layer
  /// serializes tailing against appends.
  Result<WalShipChunk> TailChunk(uint64_t segment_base, uint64_t offset,
                                 uint64_t max_bytes) const;

  // -- Disk budget governor -------------------------------------------------

  /// Bytes currently charged against the budget: every live segment file
  /// plus the external (checkpoint snapshot) bytes.
  uint64_t live_bytes() const {
    return closed_bytes_ + current_bytes_ + external_bytes_;
  }
  uint64_t disk_budget() const { return options_.disk_budget_bytes; }
  /// live_bytes / budget, 0 when unlimited.
  double utilization() const;
  /// True at or past the gc_pressure_fraction high-water mark: time for
  /// a proactive checkpoint before appends start being refused.
  bool under_pressure() const;
  /// Adjusts the budget at runtime (operator intervention, or a soak
  /// shrinking the volume under the log). 0 = unlimited.
  void set_disk_budget(uint64_t bytes) {
    options_.disk_budget_bytes = bytes;
  }
  /// Charges bytes held outside the segment files against the same
  /// budget — the checkpoint snapshot, which shares the volume.
  /// Replaces the previous external charge (checkpoints overwrite).
  void AccountExternalBytes(uint64_t bytes) { external_bytes_ = bytes; }

  struct Stats {
    int64_t appends = 0;
    int64_t fsyncs = 0;
    int64_t rotations = 0;
    int64_t segments_deleted = 0;
    uint64_t bytes_appended = 0;
    /// Data appends refused cleanly by the disk budget (nothing written).
    int64_t budget_refusals = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Segment {
    uint64_t base_lsn = 0;
    std::string path;
    uint64_t bytes = 0;  // on-disk size (tracked for the disk budget)
  };

  explicit WriteAheadLog(WalOptions options)
      : options_(std::move(options)) {}

  Status OpenSegmentForAppend(uint64_t base_lsn, bool create);
  Status Rotate();
  Status SyncNow();

  WalOptions options_;
  int fd_ = -1;
  uint64_t next_lsn_ = 1;
  uint64_t current_bytes_ = 0;
  /// Fsynced prefix of the open segment / highest fsynced LSN. Only
  /// these are visible to TailChunk: a torn or unsynced tail never
  /// reaches a replica.
  uint64_t durable_bytes_ = 0;
  uint64_t durable_lsn_ = 0;
  /// Sum of the sizes of every closed (non-last) segment.
  uint64_t closed_bytes_ = 0;
  /// Checkpoint snapshot bytes charged against the budget.
  uint64_t external_bytes_ = 0;
  int unsynced_records_ = 0;
  /// A torn-write fault fired: the on-disk tail is mid-frame, so further
  /// appends would interleave garbage. Every operation refuses until the
  /// log is reopened (which truncates the tear).
  bool poisoned_ = false;
  /// Ascending by base LSN; the last entry is the open segment.
  std::vector<Segment> segments_;
  Stats stats_;
};

/// Replica-side byte applier: reconstructs a primary's WAL directory from
/// the WalShipChunk stream, fsyncing every chunk before it is
/// acknowledged and maintaining the applied-LSN watermark by scanning
/// complete frames out of the received bytes (the replica computes its
/// own watermark — it never trusts the primary's word for what it holds).
///
/// Torn-tail safe: Open() scans the local segments exactly like
/// WriteAheadLog::Open — a torn tail on the last segment (the shape a
/// SIGKILL mid-Apply leaves) is truncated, and the next pull resumes from
/// the truncated durable position, re-converging to the primary's byte
/// state. Mid-log corruption is refused.
///
/// Not thread-safe: one applier per stream, driven by one pull loop.
///
/// Failpoints: every syscall goes through the errno seam under
/// `replica.io.*` (open/write/fsync/read/unlink/truncate/dirsync), so
/// tests can tear the replica's own tail independently of the primary's.
class WalReplicaApplier {
 public:
  struct OpenReport {
    uint64_t torn_tail_bytes = 0;  ///< truncated from the last segment
    std::string torn_tail_segment;
  };

  /// Opens (creating if needed) the replica directory and scans local
  /// segments to recover position + applied watermark.
  static Result<std::unique_ptr<WalReplicaApplier>> Open(
      const std::string& dir, OpenReport* report = nullptr);

  ~WalReplicaApplier();

  WalReplicaApplier(const WalReplicaApplier&) = delete;
  WalReplicaApplier& operator=(const WalReplicaApplier&) = delete;

  /// Pull position: the segment being filled and its local byte size.
  /// segment_base() == 0 means "nothing yet" (a fresh replica) — the
  /// primary answers that with a kReset.
  uint64_t segment_base() const { return segment_base_; }
  uint64_t offset() const { return offset_; }
  /// Highest LSN whose frame is completely and durably applied locally.
  uint64_t applied_lsn() const { return applied_lsn_; }
  const std::string& dir() const { return dir_; }

  /// Applies one chunk (write + fsync before returning OK, so an OK here
  /// is what backs the replica's ack). kIOError on byte streams that do
  /// not parse as valid frames — the stream must restart (Reset).
  Status Apply(const WalShipChunk& chunk);

  /// Discards every local segment (epoch change / kReset): the next pull
  /// starts over from the primary's earliest segment.
  Status Reset();

 private:
  explicit WalReplicaApplier(std::string dir) : dir_(std::move(dir)) {}

  Status ApplyData(const WalShipChunk& chunk);
  /// Scans complete frames out of tail_, advancing applied_lsn_.
  Status ScanTail();
  /// Rebuilds parse state (tail_, applied_lsn_) by re-reading the
  /// current segment from disk (after a truncate).
  Status RescanCurrentSegment();
  void CloseFd();

  std::string dir_;
  int fd_ = -1;
  uint64_t segment_base_ = 0;
  uint64_t offset_ = 0;
  uint64_t applied_lsn_ = 0;
  /// Received bytes of the current segment past the last complete frame
  /// (includes the 16-byte segment header until it parses).
  std::vector<uint8_t> tail_;
  bool header_parsed_ = false;
  /// Set after a partial write or failed fsync: further Apply calls are
  /// refused until the applier is reopened (Open truncates the torn tail).
  bool poisoned_ = false;
};

/// Integrity report of one WAL directory, produced without replaying
/// anything (`kamel fsck --wal-dir`). Every damaged record is named with
/// its segment, offset, and classification: a torn tail is recoverable
/// (Open truncates it), mid-log corruption is data loss.
struct WalFsckReport {
  struct Damage {
    std::string segment;
    uint64_t offset = 0;
    uint64_t record_index = 0;  // within its segment
    /// True: file ends inside the frame (torn write, recoverable).
    /// False: complete frame with a bad checksum or framing (data loss).
    bool torn_tail = false;
    std::string error;
  };
  size_t segments = 0;
  uint64_t records = 0;        // records that verified clean
  uint64_t bytes = 0;          // total bytes scanned
  uint64_t first_lsn = 0;
  uint64_t last_lsn = 0;
  uint64_t checkpoint_lsn = 0;
  std::vector<Damage> damaged;

  bool clean() const { return damaged.empty(); }
  /// Any damage that truncation cannot recover from.
  bool data_loss() const {
    for (const Damage& d : damaged) {
      if (!d.torn_tail) return true;
    }
    return false;
  }
};

/// Walks every segment of `dir` and CRC-checks every record. Returns
/// non-OK only when the directory cannot be read; per-record damage is
/// reported in the result.
Result<WalFsckReport> FsckWal(const std::string& dir);

/// Payload codec for kSubmit records: one raw trajectory.
std::vector<uint8_t> EncodeTrajectoryPayload(const Trajectory& trajectory);
Result<Trajectory> DecodeTrajectoryPayload(
    const std::vector<uint8_t>& payload);

/// Payload codec for the kBatchTrained / kCheckpoint LSN markers.
std::vector<uint8_t> EncodeLsnPayload(uint64_t lsn);
Result<uint64_t> DecodeLsnPayload(const std::vector<uint8_t>& payload);

}  // namespace kamel

#endif  // KAMEL_IO_WAL_H_
