// Quickstart: train KAMEL on a small synthetic city and impute one sparse
// trajectory. Demonstrates the minimal public API surface:
//   BuildScenario -> Kamel::Train -> Sparsify -> Kamel::Impute.
#include <cstdio>

#include "core/kamel.h"
#include "eval/evaluator.h"
#include "eval/scenario.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

namespace {

kamel::KamelOptions QuickstartOptions() {
  kamel::KamelOptions options = kamel::BenchKamelOptions();
  // Shrink everything: the quickstart city is tiny (a few hundred
  // tokens), so a single root-level model is appropriate.
  options.bert.encoder.d_model = 32;
  options.bert.encoder.ffn_dim = 128;
  options.bert.train.steps = 900;
  options.pyramid_height = 0;
  options.pyramid_levels = 1;
  options.model_token_threshold = 200;
  return options;
}

}  // namespace

int main() {
  // 1. A synthetic city with simulated GPS trips (stand-in for your own
  //    trajectory data; KAMEL never sees the underlying road network).
  const kamel::SimScenario scenario =
      kamel::BuildScenario(kamel::MiniSpec());
  std::printf("city: %d road nodes, %zu train trips, %zu test trips\n",
              scenario.network->num_nodes(),
              scenario.train.trajectories.size(),
              scenario.test.trajectories.size());

  // 2. Train the system (offline; builds BERT models + token clusters).
  kamel::Kamel system(QuickstartOptions());
  const kamel::Status trained = system.Train(scenario.train);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.ToString().c_str());
    return 1;
  }
  std::printf("trained: %d models, %.1fs, speed bound %.1f m/s\n",
              system.repository().num_models(),
              system.total_train_seconds(), system.max_speed_mps());

  // 3. Take a dense test trajectory, punch 400 m gaps into it, impute.
  const kamel::Trajectory& dense = scenario.test.trajectories.front();
  const kamel::Trajectory sparse = kamel::Sparsify(dense, 400.0);
  auto imputed = system.Impute(sparse);
  if (!imputed.ok()) {
    std::fprintf(stderr, "imputation failed: %s\n",
                 imputed.status().ToString().c_str());
    return 1;
  }
  std::printf("dense ground truth: %zu points\n", dense.points.size());
  std::printf("sparsified input:   %zu points\n", sparse.points.size());
  std::printf("imputed output:     %zu points (%d segments, %d failed, "
              "%lld BERT calls)\n",
              imputed->trajectory.points.size(), imputed->stats.segments,
              imputed->stats.failed_segments,
              static_cast<long long>(imputed->stats.bert_calls));

  // 4. Score against the ground truth.
  kamel::Evaluator evaluator(scenario.projection.get());
  kamel::KamelMethod method(&system);
  kamel::TrajectoryDataset one;
  one.trajectories.push_back(dense);
  auto run = evaluator.RunMethod(&method, one, 400.0);
  if (run.ok()) {
    kamel::ScoreConfig score;
    score.delta_m = 50.0;
    const kamel::EvalResult result = evaluator.Score(*run, score);
    std::printf("recall=%.3f precision=%.3f failure_rate=%.3f\n",
                result.recall, result.precision, result.failure_rate);
  }
  return 0;
}
