// Bulk offline imputation over a city-scale workload (the paper's main
// deployment mode): train on 80% of a Porto-style taxi feed, impute the
// sparsified remainder, and compare against linear interpolation.
//
// Trained state is cached under $KAMEL_CACHE_DIR (default
// /tmp/kamel_cache), so re-runs skip the offline training step — exactly
// the paper's "training is offline, imputation is online" split.
#include <cstdio>
#include <cstdlib>

#include "eval/evaluator.h"
#include "eval/scenario.h"

int main() {
  auto systems = kamel::PrepareBenchSystems(kamel::PortoLikeSpec(),
                                            kamel::BenchKamelOptions());
  if (!systems.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 systems.status().ToString().c_str());
    return 1;
  }
  std::printf("scenario '%s': %zu train / %zu test trips, %d BERT models\n",
              systems->sim.name.c_str(),
              systems->sim.train.trajectories.size(),
              systems->sim.test.trajectories.size(),
              systems->kamel->repository().num_models());

  // Keep the example snappy: impute a slice of the test set.
  kamel::TrajectoryDataset test;
  const size_t limit = 20;
  for (size_t i = 0;
       i < systems->sim.test.trajectories.size() && i < limit; ++i) {
    test.trajectories.push_back(systems->sim.test.trajectories[i]);
  }

  kamel::Evaluator evaluator(systems->sim.projection.get());
  kamel::ScoreConfig score;
  score.delta_m = 50.0;

  const double sparseness = 1000.0;  // paper default: 1 km gaps
  std::printf("\nimputing %zu trajectories with %.0f m gaps:\n",
              test.trajectories.size(), sparseness);
  for (kamel::ImputationMethod* method :
       {static_cast<kamel::ImputationMethod*>(systems->kamel_method.get()),
        static_cast<kamel::ImputationMethod*>(systems->linear.get())}) {
    auto run = evaluator.RunMethod(method, test, sparseness);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", method->name().c_str(),
                   run.status().ToString().c_str());
      return 1;
    }
    const kamel::EvalResult result = evaluator.Score(*run, score);
    std::printf(
        "  %-8s recall=%.3f precision=%.3f failure=%.3f  (%.2fs/traj)\n",
        method->name().c_str(), result.recall, result.precision,
        result.failure_rate, result.avg_impute_seconds_per_trajectory);
  }
  return 0;
}
