// Online streaming mode (Figure 1's "Batch/Online Stream" input): GPS
// readings from multiple vehicles arrive interleaved; KAMEL closes and
// imputes each trip when its stream goes quiet or ends.
#include <cstdio>

#include "core/kamel.h"
#include "eval/scenario.h"
#include "sim/datasets.h"
#include "sim/sparsifier.h"

int main() {
  auto systems = kamel::PrepareBenchSystems(kamel::PortoLikeSpec(),
                                            kamel::BenchKamelOptions());
  if (!systems.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 systems.status().ToString().c_str());
    return 1;
  }

  // The serving engine runs imputations on a thread pool; the session
  // dispatches each closed trip to it and the sink serializes the output.
  auto snapshot = systems->kamel->Snapshot();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  kamel::ServingEngine engine(*snapshot);
  int completed = 0;
  kamel::FunctionSink sink(
      [&completed](int64_t object_id, kamel::ImputedTrajectory imputed) {
        ++completed;
        std::printf(
            "  vehicle %lld: trip imputed, %zu points out, %d gaps filled, "
            "%d failures\n",
            static_cast<long long>(object_id),
            imputed.trajectory.points.size(), imputed.stats.segments,
            imputed.stats.failed_segments);
      });
  kamel::StreamingSession session(&engine, &sink);

  // Simulate a live feed: sparse readings from 5 vehicles, interleaved by
  // timestamp, as a telematics gateway would deliver them.
  struct Reading {
    int64_t vehicle;
    kamel::TrajPoint point;
  };
  std::vector<Reading> feed;
  for (size_t v = 0; v < 5 && v < systems->sim.test.trajectories.size();
       ++v) {
    const kamel::Trajectory sparse =
        kamel::Sparsify(systems->sim.test.trajectories[v], 800.0);
    for (const kamel::TrajPoint& point : sparse.points) {
      feed.push_back({static_cast<int64_t>(v), point});
    }
  }
  std::stable_sort(feed.begin(), feed.end(),
                   [](const Reading& a, const Reading& b) {
                     return a.point.time < b.point.time;
                   });

  std::printf("pushing %zu readings from 5 vehicles...\n", feed.size());
  for (const Reading& reading : feed) {
    const kamel::Status status =
        session.Push(reading.vehicle, reading.point);
    if (!status.ok()) {
      std::fprintf(stderr, "push failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  const kamel::Status flushed = session.Flush();
  if (!flushed.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", flushed.ToString().c_str());
    return 1;
  }
  session.Drain();  // wait for the pool to deliver every trip
  std::printf("stream closed: %d trips imputed\n", completed);
  return 0;
}
