// KAMEL as a pre-processing step for map inference — the target
// application motivating the paper (Section 1): infer where roads are
// from trajectories alone. Sparse trajectories leave most road cells
// unobserved; imputed ones recover them.
//
// A simple occupancy-raster "map inference" over 30 m cells measures how
// much of the true road network each input covers.
#include <cstdio>
#include <unordered_set>

#include "eval/scenario.h"
#include "geo/polyline.h"
#include "sim/sparsifier.h"

namespace {

// Cells (30 m squares) touched by a set of trajectories.
std::unordered_set<int64_t> CoveredCells(
    const std::vector<kamel::Trajectory>& trajectories,
    const kamel::LocalProjection& projection) {
  std::unordered_set<int64_t> cells;
  constexpr double kCell = 30.0;
  for (const kamel::Trajectory& trajectory : trajectories) {
    std::vector<kamel::Vec2> line;
    for (const auto& point : trajectory.points) {
      line.push_back(projection.Project(point.pos));
    }
    // Walk the polyline densely so long hops still paint their path.
    for (const kamel::Vec2& p : kamel::polyline::ResampleEvery(line, 15.0)) {
      const auto ix = static_cast<int64_t>(std::floor(p.x / kCell));
      const auto iy = static_cast<int64_t>(std::floor(p.y / kCell));
      cells.insert((ix << 32) ^ (iy & 0xFFFFFFFF));
    }
  }
  return cells;
}

// Fraction of road-cells (cells the true network passes through) that the
// trajectory set covers: the recall a map-inference pipeline could reach.
double RoadCoverage(const std::unordered_set<int64_t>& covered,
                    const kamel::RoadNetwork& network) {
  constexpr double kCell = 30.0;
  std::unordered_set<int64_t> road_cells;
  for (size_t e = 0; e < network.edges().size(); e += 2) {
    const auto& edge = network.edges()[e];
    const kamel::Vec2 a = network.NodePosition(edge.from);
    const kamel::Vec2 b = network.NodePosition(edge.to);
    for (const kamel::Vec2& p :
         kamel::polyline::ResampleEvery({a, b}, 15.0)) {
      const auto ix = static_cast<int64_t>(std::floor(p.x / kCell));
      const auto iy = static_cast<int64_t>(std::floor(p.y / kCell));
      road_cells.insert((ix << 32) ^ (iy & 0xFFFFFFFF));
    }
  }
  if (road_cells.empty()) return 0.0;
  size_t hit = 0;
  for (int64_t cell : road_cells) hit += covered.count(cell);
  return static_cast<double>(hit) / road_cells.size();
}

}  // namespace

int main() {
  auto systems = kamel::PrepareBenchSystems(kamel::PortoLikeSpec(),
                                            kamel::BenchKamelOptions());
  if (!systems.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 systems.status().ToString().c_str());
    return 1;
  }
  const kamel::LocalProjection& projection = *systems->sim.projection;

  // Sparse field data: 1.5 km gaps, as collected by low-power trackers.
  std::vector<kamel::Trajectory> sparse;
  std::vector<kamel::Trajectory> imputed;
  const size_t limit = 25;
  for (size_t i = 0;
       i < systems->sim.test.trajectories.size() && i < limit; ++i) {
    sparse.push_back(
        kamel::Sparsify(systems->sim.test.trajectories[i], 1500.0));
    auto result = systems->kamel->Impute(sparse.back());
    if (!result.ok()) {
      std::fprintf(stderr, "imputation failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    imputed.push_back(std::move(result->trajectory));
  }

  const double sparse_cov =
      RoadCoverage(CoveredCells(sparse, projection), *systems->sim.network);
  const double imputed_cov =
      RoadCoverage(CoveredCells(imputed, projection), *systems->sim.network);

  std::printf("map-inference input coverage of the true road network:\n");
  std::printf("  raw sparse trajectories: %5.1f%% of road cells\n",
              100.0 * sparse_cov);
  std::printf("  KAMEL-imputed:           %5.1f%% of road cells\n",
              100.0 * imputed_cov);
  std::printf("imputation %s road coverage for downstream map inference\n",
              imputed_cov > sparse_cov ? "increases" : "did not increase");
  return 0;
}
