#ifndef KAMEL_BENCH_BENCH_COMMON_H_
#define KAMEL_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "common/table.h"
#include "eval/evaluator.h"
#include "eval/scenario.h"

namespace kamel::bench {

/// Number of test trajectories each figure harness imputes per
/// configuration point ($KAMEL_BENCH_TEST_LIMIT, default 30). Raising it
/// tightens the estimates at linear cost.
size_t TestLimit();

/// The sparseness sweep of Figure 9 ($KAMEL_BENCH_SPARSE_STEPS can thin
/// it): 500..4000 m.
std::vector<double> SparsenessSweep();

/// First `TestLimit()` trajectories of a test set.
TrajectoryDataset LimitedTest(const TrajectoryDataset& test);

/// Default accuracy threshold per scenario (paper: 50 m Porto, 25 m
/// Jakarta).
double DefaultDelta(const std::string& scenario_name);

/// Options for the Figure-12 variant sweeps (grid type, training size,
/// training density): a shortened training schedule and a single
/// root-level model, so each of a figure's 2-4 *internally compared*
/// variants trains in about a minute. Figures whose subject is the
/// partitioning itself (the ablation) override the pyramid back.
KamelOptions VariantBenchOptions();

/// Per-scenario base options: Porto uses the full BenchKamelOptions();
/// Jakarta's long 48-token statements make each training step ~2.5x more
/// expensive, so its base configuration shortens the schedule and raises
/// the model threshold (5 models instead of 9) to keep the bench suite's
/// wall clock within reason on one core.
KamelOptions BenchOptionsFor(const ScenarioSpec& spec);

/// Prints the table and appends its CSV to
/// $KAMEL_BENCH_CSV_DIR/<slug>.csv when that directory is set.
void Emit(const Table& table, const std::string& slug);

// ---- bench JSON baselines --------------------------------------------

/// Minimal JSON value for the committed BENCH_*.json perf baselines.
/// Build a document with the static factories and hand it to
/// EmitBenchJson(); object fields keep insertion order. The dump style
/// matches the committed baselines: the top-level object and its array
/// fields are one-entry-per-line, everything nested deeper is inline.
class Json {
 public:
  static Json Str(std::string v);
  static Json Int(int64_t v);
  /// Fixed-point number printed with `decimals` fractional digits (the
  /// baselines are diffed as text, so formatting must be stable).
  static Json Num(double v, int decimals);
  static Json Bool(bool v);
  static Json Object(std::vector<std::pair<std::string, Json>> fields);
  static Json Array(std::vector<Json> items);

  std::string Dump() const;

 private:
  enum class Kind { kStr, kInt, kNum, kBool, kObject, kArray };

  void Append(std::string* out, int depth) const;

  Kind kind_ = Kind::kInt;
  std::string str_;
  int64_t int_ = 0;
  double num_ = 0.0;
  int decimals_ = 2;
  bool bool_ = false;
  std::vector<std::pair<std::string, Json>> fields_;
  std::vector<Json> items_;
};

/// Writes `doc` to the path in $KAMEL_BENCH_JSON when that variable is
/// set — the shared emission hook behind every committed BENCH_*.json
/// baseline (micro_throughput -> BENCH_serving.json, micro_nn ->
/// BENCH_nn.json). No-op when the variable is unset or empty.
void EmitBenchJson(const Json& doc);

}  // namespace kamel::bench

#endif  // KAMEL_BENCH_BENCH_COMMON_H_
