// Figure 10: impact of the accuracy threshold delta on recall and
// precision (one imputation run per method, scored at every delta).
#include <cstdio>

#include "bench/bench_common.h"

namespace kamel::bench {
namespace {

int Run() {
  const std::vector<double> deltas = {5, 10, 25, 50, 75, 100};
  const double sparseness = 1000.0;  // paper default

  Table table("Figure 10: recall/precision vs accuracy threshold",
              {"dataset", "delta_m", "method", "recall", "precision"});
  for (const ScenarioSpec& spec : {PortoLikeSpec(), JakartaLikeSpec()}) {
    auto systems = PrepareBenchSystems(spec, BenchOptionsFor(spec));
    if (!systems.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   systems.status().ToString().c_str());
      return 1;
    }
    const TrajectoryDataset test = LimitedTest(systems->sim.test);
    Evaluator evaluator(systems->sim.projection.get());

    for (ImputationMethod* method : systems->AllMethods()) {
      auto run = evaluator.RunMethod(method, test, sparseness);
      if (!run.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", method->name().c_str(),
                     run.status().ToString().c_str());
        return 1;
      }
      for (double delta : deltas) {
        ScoreConfig score;
        score.delta_m = delta;
        const EvalResult result = evaluator.Score(*run, score);
        table.AddRow({spec.name, Table::Num(delta, 0), method->name(),
                      Table::Num(result.recall),
                      Table::Num(result.precision)});
      }
    }
  }
  Emit(table, "fig10_threshold");
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
