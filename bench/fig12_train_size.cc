// Figure 12-IV: impact of training data size — KAMEL trained on 100%,
// 75%, 50% and 25% of the available training trajectories.
#include <cstdio>

#include "bench/bench_common.h"

namespace kamel::bench {
namespace {

int Run() {
  const ScenarioSpec spec = JakartaLikeSpec();
  const double delta = DefaultDelta(spec.name);

  Table sweep_table("Figure 12-IV(a-c): training size vs sparseness",
                    {"train_size", "sparseness_m", "recall", "precision",
                     "failure_rate"});
  Table delta_table("Figure 12-IV(d-e): training size vs threshold",
                    {"train_size", "delta_m", "recall", "precision"});

  for (double fraction : {1.0, 0.75, 0.5, 0.25}) {
    BenchVariant variant;
    variant.train_subsample = fraction;
    auto systems =
        PrepareBenchSystems(spec, VariantBenchOptions(), variant);
    if (!systems.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   systems.status().ToString().c_str());
      return 1;
    }
    const TrajectoryDataset test = LimitedTest(systems->sim.test);
    Evaluator evaluator(systems->sim.projection.get());
    const std::string label = Table::Num(100.0 * fraction, 0) + "%";

    for (double sparseness : SparsenessSweep()) {
      auto run = evaluator.RunMethod(systems->kamel_method.get(), test,
                                     sparseness);
      if (!run.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      ScoreConfig score;
      score.delta_m = delta;
      const EvalResult result = evaluator.Score(*run, score);
      sweep_table.AddRow({label, Table::Num(sparseness, 0),
                          Table::Num(result.recall),
                          Table::Num(result.precision),
                          Table::Num(result.failure_rate)});
    }

    auto run = evaluator.RunMethod(systems->kamel_method.get(), test,
                                   /*sparse=*/1000.0);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    for (double d : {10.0, 25.0, 50.0, 75.0, 100.0}) {
      ScoreConfig score;
      score.delta_m = d;
      const EvalResult result = evaluator.Score(*run, score);
      delta_table.AddRow({label, Table::Num(d, 0),
                          Table::Num(result.recall),
                          Table::Num(result.precision)});
    }
  }
  Emit(sweep_table, "fig12_train_size_sparseness");
  Emit(delta_table, "fig12_train_size_threshold");
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
