// Figure 12-VI: ablation study — full KAMEL vs No Partitioning, No
// Spatial Constraints, No Multipoint Imputation (Section 8.7). The
// constraint and multipoint ablations are imputation-time toggles and
// reuse the full system's trained models; No Part. trains one global
// model for the whole space.
#include <cstdio>

#include "bench/bench_common.h"

namespace kamel::bench {
namespace {

// The ablation's subject includes the partitioning module, so unlike the
// other variant figures it keeps a real pyramid — with a raised model
// threshold so the "full" system still trains a handful of models rather
// than all nine, and a shortened schedule shared by every variant.
KamelOptions AblationOptions() {
  KamelOptions options = BenchKamelOptions();
  options.bert.train.steps = 1800;
  options.model_token_threshold = 3600;
  return options;
}

int Run() {
  const ScenarioSpec spec = JakartaLikeSpec();
  const double delta = DefaultDelta(spec.name);

  struct Variant {
    const char* label;
    KamelOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"KAMEL", AblationOptions()});
  {
    KamelOptions o = AblationOptions();
    o.enable_partitioning = false;
    variants.push_back({"NoPart", o});
  }
  {
    KamelOptions o = AblationOptions();
    o.enable_constraints = false;
    variants.push_back({"NoConst", o});
  }
  {
    KamelOptions o = AblationOptions();
    o.enable_multipoint = false;
    variants.push_back({"NoMulti", o});
  }

  Table sweep_table("Figure 12-VI(a-c): ablation vs sparseness",
                    {"variant", "sparseness_m", "recall", "precision",
                     "failure_rate"});
  Table delta_table("Figure 12-VI(d-e): ablation vs threshold",
                    {"variant", "delta_m", "recall", "precision"});

  for (const Variant& variant : variants) {
    auto systems = PrepareBenchSystems(spec, variant.options);
    if (!systems.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   systems.status().ToString().c_str());
      return 1;
    }
    const TrajectoryDataset test = LimitedTest(systems->sim.test);
    Evaluator evaluator(systems->sim.projection.get());

    for (double sparseness : SparsenessSweep()) {
      auto run = evaluator.RunMethod(systems->kamel_method.get(), test,
                                     sparseness);
      if (!run.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      ScoreConfig score;
      score.delta_m = delta;
      const EvalResult result = evaluator.Score(*run, score);
      sweep_table.AddRow({variant.label, Table::Num(sparseness, 0),
                          Table::Num(result.recall),
                          Table::Num(result.precision),
                          Table::Num(result.failure_rate)});
    }

    auto run = evaluator.RunMethod(systems->kamel_method.get(), test,
                                   /*sparse=*/1000.0);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    for (double d : {10.0, 25.0, 50.0, 75.0, 100.0}) {
      ScoreConfig score;
      score.delta_m = d;
      const EvalResult result = evaluator.Score(*run, score);
      delta_table.AddRow({variant.label, Table::Num(d, 0),
                          Table::Num(result.recall),
                          Table::Num(result.precision)});
    }
  }
  Emit(sweep_table, "fig12_ablation_sparseness");
  Emit(delta_table, "fig12_ablation_threshold");
  return 0;
}

}  // namespace
}  // namespace kamel::bench

int main() { return kamel::bench::Run(); }
